#include "fault/fault_plan.h"

namespace sds::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropSample:
      return "drop_sample";
    case FaultKind::kCoalesce:
      return "coalesce";
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kSamplerDeath:
      return "sampler_death";
    case FaultKind::kCounterReset:
      return "counter_reset";
    case FaultKind::kSaturation:
      return "saturation";
    case FaultKind::kCorruption:
      return "corruption";
    case FaultKind::kKindCount:
      break;
  }
  return "?";
}

bool FaultPlan::enabled() const {
  if (!scheduled.empty()) return true;
  for (const double r : rates) {
    if (r > 0.0) return true;
  }
  return false;
}

FaultPlan FaultPlan::Single(FaultKind kind, double rate, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.set_rate(kind, rate);
  return plan;
}

}  // namespace sds::fault
