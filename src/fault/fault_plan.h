// Deterministic fault plans for the monitoring plane.
//
// A FaultPlan describes WHICH imperfections the monitoring plane suffers and
// HOW OFTEN, in two composable forms:
//
//   * stochastic rates — per-tick Bernoulli probabilities drawn from the
//     plan's own seeded RNG stream (never the simulation's), so a fault
//     sweep perturbs the monitoring plane without changing the workload or
//     attack realization under it;
//   * scheduled faults — exact (tick, kind, duration) triples for tests and
//     reproductions that need a fault at a known instant.
//
// The plan is plain data: the FaultInjector (fault_injector.h) interprets it.
// A default-constructed plan is inert (enabled() == false) and the injector
// then degenerates to a bit-transparent passthrough.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sds::fault {

enum class FaultKind : std::uint8_t {
  // One PCM read is lost in transport: the interval's delta is consumed but
  // never reaches the consumer (a one-tick hole in the stream).
  kDropSample = 0,
  // One read is delayed and merged into the next: the consumer sees a hole
  // followed by a delta spanning both intervals (interval jitter/coalescing).
  kCoalesce,
  // Transient sampler outage: no reads for `duration` ticks, after which the
  // first read spans the whole gap. Self-recovers.
  kOutage,
  // The sampler process dies: no reads, and it stays dead until a watchdog
  // restart succeeds (TryRestart fails for `duration` ticks).
  kSamplerDeath,
  // Cumulative counters reset mid-interval (VM migration, MSR reprogramming):
  // the delta against the stale baseline wraps to a physically impossible
  // value for exactly one sample.
  kCounterReset,
  // Counter saturation: the interval delta clamps at a ceiling, silently
  // under-reporting activity while the fault is active.
  kSaturation,
  // Corrupted sample: a high bit flips (absurd value) or the fields zero out
  // (plausible but wrong), chosen by the plan's RNG.
  kCorruption,
  kKindCount,
};

inline constexpr std::size_t kFaultKindCount =
    static_cast<std::size_t>(FaultKind::kKindCount);

const char* FaultKindName(FaultKind kind);

struct ScheduledFault {
  Tick tick = 0;
  FaultKind kind = FaultKind::kDropSample;
  // Duration in ticks for windowed kinds (outage, death, saturation);
  // ignored by the one-shot kinds.
  Tick duration = 0;
};

struct FaultPlan {
  // Seed of the injector's private RNG stream.
  std::uint64_t seed = 0x5eedfa0175ull;

  // Per-tick injection probability per kind, indexed by FaultKind.
  std::array<double, kFaultKindCount> rates{};

  // Duration ranges (inclusive) for the windowed kinds when drawn
  // stochastically.
  Tick outage_min_ticks = 5;
  Tick outage_max_ticks = 50;
  Tick death_min_ticks = 50;
  Tick death_max_ticks = 400;
  Tick saturation_min_ticks = 10;
  Tick saturation_max_ticks = 100;

  // Ceiling a saturated counter delta clamps to.
  std::uint64_t saturation_cap = 64;

  // Exact faults, applied when the simulation reaches `tick`. Order within
  // one tick follows vector order.
  std::vector<ScheduledFault> scheduled;

  double rate(FaultKind kind) const {
    return rates[static_cast<std::size_t>(kind)];
  }
  void set_rate(FaultKind kind, double r) {
    rates[static_cast<std::size_t>(kind)] = r;
  }

  // True when the plan can inject anything at all.
  bool enabled() const;

  // Convenience: a plan injecting exactly one kind at `rate` per tick.
  static FaultPlan Single(FaultKind kind, double rate, std::uint64_t seed);
};

// Per-kind and aggregate injection counts, kept by the injector.
struct FaultStats {
  std::array<std::uint64_t, kFaultKindCount> injected{};
  // Ticks on which the consumer received nothing (drops, coalesce holes,
  // outage and death ticks combined).
  std::uint64_t missing_ticks = 0;
  // Samples whose values were tampered with (reset/saturation/corruption).
  std::uint64_t tampered_samples = 0;
  std::uint64_t restart_attempts = 0;
  std::uint64_t restarts_denied = 0;
  std::uint64_t restarts = 0;

  std::uint64_t injected_total() const {
    std::uint64_t sum = 0;
    for (const auto v : injected) sum += v;
    return sum;
  }
};

}  // namespace sds::fault
