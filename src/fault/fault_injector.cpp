#include "fault/fault_injector.h"

#include <algorithm>
#include <limits>
#include <string>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace sds::fault {

namespace tel = sds::telemetry;

FaultInjector::FaultInjector(vm::Hypervisor& hypervisor, OwnerId target,
                             const FaultPlan& plan)
    : hypervisor_(hypervisor),
      target_(target),
      plan_(plan),
      rng_(plan.seed),
      inner_(hypervisor, target) {
  SDS_CHECK(plan_.outage_min_ticks > 0 &&
                plan_.outage_max_ticks >= plan_.outage_min_ticks,
            "bad outage duration range");
  SDS_CHECK(plan_.death_min_ticks > 0 &&
                plan_.death_max_ticks >= plan_.death_min_ticks,
            "bad death duration range");
  SDS_CHECK(plan_.saturation_min_ticks > 0 &&
                plan_.saturation_max_ticks >= plan_.saturation_min_ticks,
            "bad saturation duration range");
  for (const double r : plan_.rates) {
    SDS_CHECK(r >= 0.0 && r <= 1.0, "fault rate must be a probability");
  }
  if (tel::Telemetry* t = hypervisor_.telemetry()) {
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
      t_injected_[k] = t->metrics().GetCounter(
          std::string("fault.injected.") +
          FaultKindName(static_cast<FaultKind>(k)));
    }
    t_missing_ = t->metrics().GetCounter("fault.missing_ticks");
  }
}

void FaultInjector::Start() {
  SDS_CHECK(!started_, "fault injector already started");
  started_ = true;
  if (!dead_ && !inner_.started()) inner_.Start();
}

void FaultInjector::Stop() {
  SDS_CHECK(started_, "fault injector not started");
  started_ = false;
  if (inner_.started()) inner_.Stop();
}

void FaultInjector::RecordInjection(FaultKind kind, Tick now, double detail) {
  const auto k = static_cast<std::size_t>(kind);
  ++stats_.injected[k];
  if (t_injected_[k]) t_injected_[k]->Add();
  tel::Telemetry* t = hypervisor_.telemetry();
  if (t && t->tracer().enabled(tel::Layer::kFault)) {
    t->tracer().Emit(tel::MakeEvent(now, tel::Layer::kFault,
                                    FaultKindName(kind), target_)
                         .Num("detail", detail));
  }
}

void FaultInjector::OpenWindow(FaultKind kind, Tick now, Tick duration) {
  switch (kind) {
    case FaultKind::kOutage:
      outage_until_ = std::max(outage_until_, now + duration);
      break;
    case FaultKind::kSamplerDeath:
      dead_ = true;
      dead_until_ = std::max(dead_until_, now + duration);
      if (inner_.started()) inner_.Stop();
      break;
    case FaultKind::kSaturation:
      saturation_until_ = std::max(saturation_until_, now + duration);
      break;
    default:
      break;
  }
}

std::optional<FaultKind> FaultInjector::DecideFault(Tick now) {
  std::optional<FaultKind> hit;

  // Scheduled faults bind when the monitoring plane is actually read at or
  // after their tick; window kinds measure their duration from the
  // scheduled tick (wall-tick time), not from the read that applied them.
  while (next_scheduled_ < plan_.scheduled.size() &&
         plan_.scheduled[next_scheduled_].tick <= now) {
    const ScheduledFault& sf = plan_.scheduled[next_scheduled_];
    ++next_scheduled_;
    switch (sf.kind) {
      case FaultKind::kOutage:
      case FaultKind::kSaturation:
      case FaultKind::kSamplerDeath: {
        const Tick until = sf.tick + std::max<Tick>(sf.duration, 1);
        if (until <= now && sf.kind != FaultKind::kSamplerDeath) continue;
        RecordInjection(sf.kind, now, static_cast<double>(sf.duration));
        if (sf.kind == FaultKind::kSamplerDeath) {
          dead_ = true;
          dead_until_ = std::max(dead_until_, until);
          if (inner_.started()) inner_.Stop();
        } else if (sf.kind == FaultKind::kOutage) {
          outage_until_ = std::max(outage_until_, until);
        } else {
          saturation_until_ = std::max(saturation_until_, until);
        }
        break;
      }
      default:
        RecordInjection(sf.kind, now, 0.0);
        if (!hit) hit = sf.kind;
        break;
    }
  }

  // Stochastic draws: one Bernoulli per enabled kind per tick, in enum
  // order, independent of outcomes — keeps the RNG stream (and therefore
  // the whole injected-fault schedule) deterministic. The first hit in enum
  // order wins the tick; window kinds open their window either way.
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    const double r = plan_.rate(kind);
    if (r <= 0.0 || !rng_.Bernoulli(r)) continue;
    Tick duration = 0;
    switch (kind) {
      case FaultKind::kOutage:
        duration = rng_.UniformInt(plan_.outage_min_ticks,
                                   plan_.outage_max_ticks);
        break;
      case FaultKind::kSamplerDeath:
        duration = rng_.UniformInt(plan_.death_min_ticks,
                                   plan_.death_max_ticks);
        break;
      case FaultKind::kSaturation:
        duration = rng_.UniformInt(plan_.saturation_min_ticks,
                                   plan_.saturation_max_ticks);
        break;
      default:
        break;
    }
    RecordInjection(kind, now, static_cast<double>(duration));
    OpenWindow(kind, now, duration);
    if (!hit) hit = kind;
  }
  return hit;
}

pcm::PcmSample FaultInjector::Tamper(FaultKind kind, pcm::PcmSample s) {
  ++stats_.tampered_samples;
  switch (kind) {
    case FaultKind::kCounterReset: {
      // A delta computed across a counter reset: new_cumulative (small) minus
      // stale baseline (large) wraps around the 64-bit space.
      constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
      s.access_num = kMax - s.access_num;
      s.miss_num = kMax - s.miss_num;
      break;
    }
    case FaultKind::kSaturation:
      s.access_num = std::min(s.access_num, plan_.saturation_cap);
      s.miss_num = std::min(s.miss_num, plan_.saturation_cap);
      break;
    case FaultKind::kCorruption:
      if (rng_.Bernoulli(0.5)) {
        // Zeroed read: plausible but wrong.
        s.access_num = 0;
        s.miss_num = 0;
      } else {
        // High bit flip: absurd value the sanity gate must catch.
        s.access_num ^= std::uint64_t{1}
                        << (40 + rng_.UniformInt(std::uint64_t{16}));
      }
      break;
    default:
      break;
  }
  return s;
}

std::optional<pcm::PcmSample> FaultInjector::Next() {
  SDS_CHECK(started_, "fault injector not started");
  const Tick now = hypervisor_.now();
  const auto fault = DecideFault(now);

  const auto missing = [&]() -> std::optional<pcm::PcmSample> {
    ++stats_.missing_ticks;
    if (t_missing_) t_missing_->Add();
    return std::nullopt;
  };

  if (dead_ || now < outage_until_) return missing();

  if (fault == FaultKind::kDropSample) {
    // The read happened (delta consumed) but the sample never arrives.
    if (inner_.started()) (void)inner_.Sample();
    return missing();
  }
  if (fault == FaultKind::kCoalesce) {
    // The read is skipped; PcmSampler's missed-tick tolerance folds this
    // interval into the next delivered delta.
    return missing();
  }

  if (!inner_.started()) inner_.Start();
  pcm::PcmSample s = inner_.Sample();
  if (fault == FaultKind::kCounterReset || fault == FaultKind::kCorruption) {
    s = Tamper(*fault, s);
  } else if (now < saturation_until_) {
    s = Tamper(FaultKind::kSaturation, s);
  }
  return s;
}

bool FaultInjector::TryRestart() {
  ++stats_.restart_attempts;
  const Tick now = hypervisor_.now();
  tel::Telemetry* t = hypervisor_.telemetry();
  if (dead_ && now < dead_until_) {
    ++stats_.restarts_denied;
    if (t && t->tracer().enabled(tel::Layer::kFault)) {
      t->tracer().Emit(tel::MakeEvent(now, tel::Layer::kFault,
                                      "restart_denied", target_)
                           .Num("dead_for", static_cast<double>(
                                                dead_until_ - now)));
    }
    return false;
  }
  dead_ = false;
  // Restarting the agent also un-wedges a transient outage: the stuck read
  // loop is replaced, so delivery resumes immediately.
  outage_until_ = 0;
  if (started_) {
    // Re-baseline: deltas never span the dead window.
    if (inner_.started()) inner_.Stop();
    inner_.Start();
  }
  ++stats_.restarts;
  if (t && t->tracer().enabled(tel::Layer::kFault)) {
    t->tracer().Emit(
        tel::MakeEvent(now, tel::Layer::kFault, "sampler_restarted", target_));
  }
  return true;
}

}  // namespace sds::fault
