#include "fault/host_plan.h"

namespace sds::fault {

const char* HostFaultKindName(HostFaultKind kind) {
  switch (kind) {
    case HostFaultKind::kCrash:
      return "host-crash";
    case HostFaultKind::kDegrade:
      return "host-degrade";
    case HostFaultKind::kFlakyRecovery:
      return "flaky-recovery";
    case HostFaultKind::kPermanentDeath:
      return "permanent-death";
    case HostFaultKind::kKindCount:
      break;
  }
  return "?";
}

bool HostFaultPlan::enabled() const {
  if (!scheduled.empty()) return true;
  for (const double r : rates) {
    if (r > 0.0) return true;
  }
  return false;
}

HostFaultPlan HostFaultPlan::Single(HostFaultKind kind, double rate,
                                    std::uint64_t seed) {
  HostFaultPlan plan;
  plan.seed = seed;
  plan.set_rate(kind, rate);
  return plan;
}

}  // namespace sds::fault
