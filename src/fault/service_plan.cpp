#include "fault/service_plan.h"

namespace sds::fault {

const char* ServiceFaultKindName(ServiceFaultKind kind) {
  switch (kind) {
    case ServiceFaultKind::kCrashMidWalAppend:
      return "crash_mid_wal_append";
    case ServiceFaultKind::kCrashMidCheckpoint:
      return "crash_mid_checkpoint";
    case ServiceFaultKind::kCrashAfterWalAppend:
      return "crash_after_wal_append";
    case ServiceFaultKind::kKindCount:
      break;
  }
  return "?";
}

ServiceFaultPlan ServiceFaultPlan::Single(ServiceFaultKind kind,
                                          std::uint64_t op_index,
                                          double byte_fraction) {
  ServiceFaultPlan plan;
  ServiceCrashPoint point;
  point.kind = kind;
  point.op_index = op_index;
  point.byte_fraction = byte_fraction;
  plan.points.push_back(point);
  return plan;
}

}  // namespace sds::fault
