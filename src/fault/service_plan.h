// Deterministic fault plans for the STORAGE plane of the streaming detection
// service (the durability counterpart of fault_plan.h's monitoring-plane and
// actuation_plan.h's control-plane catalogs).
//
// Where a FaultPlan rots the detector's input stream and an
// ActuationFaultPlan breaks the response path, a ServiceFaultPlan kills the
// service PROCESS at an exact, reproducible point in its durability
// protocol: mid-WAL-append (a torn log record), mid-checkpoint (a torn
// snapshot blob in the inactive slot), after a whole append (clean final
// record, everything after it lost), or between ticks (clean shutdown with
// volatile state discarded). Real services die exactly like this — power
// loss tears the tail of the log, a deploy kills the process between
// fsyncs — which is why the WAL + checkpoint recovery machinery exists.
//
// The plan is plain data interpreted by the svc layer's StableStore: crash
// points are addressed by OPERATION ORDINAL (the Nth WAL append, the Nth
// checkpoint write), not by wall time, so a chaos run crashes at exactly the
// same byte in every execution. A default-constructed plan is inert
// (enabled() == false) and the store then never fails.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sds::fault {

enum class ServiceFaultKind : std::uint8_t {
  // The process dies while appending a WAL record: only a prefix of the
  // frame reaches stable storage (a torn record). `byte_fraction` selects
  // how much of the frame survives.
  kCrashMidWalAppend = 0,
  // The process dies while writing a checkpoint blob into the inactive
  // slot: the active checkpoint and the WAL survive intact, the torn blob
  // must be rejected by its envelope checksum on recovery.
  kCrashMidCheckpoint,
  // The process dies immediately AFTER a WAL append completes: the final
  // record is whole, but nothing later (queue contents, un-checkpointed
  // eviction order) survives.
  kCrashAfterWalAppend,
  kKindCount,
};

inline constexpr std::size_t kServiceFaultKindCount =
    static_cast<std::size_t>(ServiceFaultKind::kKindCount);

const char* ServiceFaultKindName(ServiceFaultKind kind);

// One deterministic crash point. The store counts operations of the kind's
// class (WAL appends for the two append kinds, checkpoint writes for
// kCrashMidCheckpoint) and fires when the count reaches `op_index`
// (1-based: op_index 1 == the first such operation).
struct ServiceCrashPoint {
  ServiceFaultKind kind = ServiceFaultKind::kCrashMidWalAppend;
  std::uint64_t op_index = 1;
  // For kCrashMidWalAppend / kCrashMidCheckpoint: fraction of the frame's
  // bytes that reach stable storage before the process dies, in [0, 1).
  // The store rounds down to whole bytes; 0.0 means the append vanishes
  // entirely (crash before the first byte).
  double byte_fraction = 0.5;
  // For kCrashMidWalAppend: when >= 0, the exact number of surviving bytes
  // (overrides byte_fraction) — the torn-write tests sweep every offset.
  std::int64_t byte_offset = -1;
};

struct ServiceFaultPlan {
  // Crash points, fired in vector order: the store arms the first point,
  // and once it fires the service is dead — later points only matter if a
  // recovered service reuses the same plan (the chaos harness never does;
  // it hands the recovered service an inert plan).
  std::vector<ServiceCrashPoint> points;

  bool enabled() const { return !points.empty(); }

  // Convenience: a plan with exactly one crash point.
  static ServiceFaultPlan Single(ServiceFaultKind kind,
                                 std::uint64_t op_index,
                                 double byte_fraction = 0.5);
};

}  // namespace sds::fault
