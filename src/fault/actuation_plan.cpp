#include "fault/actuation_plan.h"

namespace sds::fault {

const char* ActuationFaultKindName(ActuationFaultKind kind) {
  switch (kind) {
    case ActuationFaultKind::kCommandLost:
      return "command-lost";
    case ActuationFaultKind::kMigrationAbort:
      return "migration-abort";
    case ActuationFaultKind::kSpareHostDown:
      return "spare-host-down";
    case ActuationFaultKind::kSpareAtCapacity:
      return "spare-at-capacity";
    case ActuationFaultKind::kStopRejected:
      return "stop-rejected";
    case ActuationFaultKind::kKindCount:
      break;
  }
  return "?";
}

bool ActuationFaultPlan::enabled() const {
  if (latency_max_ticks > 0) return true;
  for (const double r : rates) {
    if (r > 0.0) return true;
  }
  return false;
}

ActuationFaultPlan ActuationFaultPlan::Single(ActuationFaultKind kind,
                                              double rate, std::uint64_t seed,
                                              Tick latency_min,
                                              Tick latency_max) {
  ActuationFaultPlan plan;
  plan.seed = seed;
  plan.set_rate(kind, rate);
  plan.latency_min_ticks = latency_min;
  plan.latency_max_ticks = latency_max;
  return plan;
}

}  // namespace sds::fault
