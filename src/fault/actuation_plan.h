// Deterministic fault plans for the ACTUATION plane (the control-plane
// counterpart of fault_plan.h's monitoring-plane catalog).
//
// Where a FaultPlan describes how the detector's INPUT stream rots, an
// ActuationFaultPlan describes how the provider's RESPONSE path fails: the
// hypervisor commands a mitigation (migrate the victim, stop the attacker)
// and the command is lost in transport, aborts mid-flight, or bounces off a
// spare host that is down or out of capacity. Real clouds pay exactly these
// costs — live migration fails and retries, placement constraints reject the
// chosen destination — which is why the MitigationEngine needs retry,
// escalation and verification machinery at all.
//
// The plan is plain data interpreted by cluster::Actuator. All stochastic
// decisions come from the plan's private seeded RNG stream (never the
// simulation's), so an actuation sweep perturbs the control plane without
// changing the workload or attack trajectory under it. A default-constructed
// plan is inert (enabled() == false): every command then lands instantly and
// infallibly, and the actuator is bit-transparent.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.h"

namespace sds::fault {

enum class ActuationFaultKind : std::uint8_t {
  // The command is lost in transport: it is accepted but never acknowledged
  // and never executes. Only the engine's per-action timeout catches it.
  kCommandLost = 0,
  // The migration aborts mid-flight after its full latency was paid: the
  // source VM keeps running in place, nothing moved.
  kMigrationAbort,
  // The destination host goes down for a drawn window. The triggering
  // command fails, and every later migration into that host fails fast
  // until the window expires.
  kSpareHostDown,
  // The placement check at completion rejects the destination as full even
  // though the capacity bookkeeping said otherwise (stale admission data).
  kSpareAtCapacity,
  // A stop/resume command bounces off the target hypervisor.
  kStopRejected,
  kKindCount,
};

inline constexpr std::size_t kActuationFaultKindCount =
    static_cast<std::size_t>(ActuationFaultKind::kKindCount);

const char* ActuationFaultKindName(ActuationFaultKind kind);

struct ActuationFaultPlan {
  // Seed of the actuator's private RNG stream.
  std::uint64_t seed = 0xac70a7e5eedull;

  // Per-command injection probability per kind, indexed by
  // ActuationFaultKind. Kinds that do not apply to a command type (e.g.
  // kStopRejected for a migration) are skipped without consuming a draw.
  std::array<double, kActuationFaultKindCount> rates{};

  // Actuation latency in ticks, drawn uniformly per command (inclusive
  // range). The default 0..0 completes commands synchronously at submit,
  // which is what keeps a null plan bit-transparent.
  Tick latency_min_ticks = 0;
  Tick latency_max_ticks = 0;

  // How long a host stays unusable once kSpareHostDown fires (inclusive
  // range, drawn per event).
  Tick host_down_min_ticks = 20;
  Tick host_down_max_ticks = 120;

  double rate(ActuationFaultKind kind) const {
    return rates[static_cast<std::size_t>(kind)];
  }
  void set_rate(ActuationFaultKind kind, double r) {
    rates[static_cast<std::size_t>(kind)] = r;
  }

  // True when the plan can perturb anything at all (any nonzero rate or
  // nonzero latency).
  bool enabled() const;

  // Convenience: a plan injecting exactly one kind at `rate` per command,
  // with the given command latency range.
  static ActuationFaultPlan Single(ActuationFaultKind kind, double rate,
                                   std::uint64_t seed, Tick latency_min = 0,
                                   Tick latency_max = 0);
};

// Per-kind and aggregate actuation accounting, kept by the actuator.
struct ActuationFaultStats {
  std::array<std::uint64_t, kActuationFaultKindCount> injected{};
  std::uint64_t commands = 0;   // submissions accepted (conflicts excluded)
  std::uint64_t conflicts = 0;  // submissions rejected: target already busy
  std::uint64_t completed = 0;  // commands that executed successfully
  std::uint64_t failed = 0;     // commands that completed with an error
  std::uint64_t lost = 0;       // commands that will never acknowledge
  std::uint64_t cancelled = 0;  // commands abandoned by the caller
  // Total submit->completion latency over completed + failed commands.
  std::uint64_t latency_ticks = 0;

  std::uint64_t injected_total() const {
    std::uint64_t sum = 0;
    for (const auto v : injected) sum += v;
    return sum;
  }
};

}  // namespace sds::fault
