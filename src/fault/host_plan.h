// Deterministic fault plans for the HOST plane (the infrastructure
// counterpart of fault_plan.h's monitoring-plane catalog and
// actuation_plan.h's control-plane catalog).
//
// Where a FaultPlan rots the detector's input stream and an
// ActuationFaultPlan rots individual mitigation commands, a HostFaultPlan
// kills or degrades whole hosts: a host crashes and stops ticking for a
// window, hangs in a degraded mode where it serves only one tick in N,
// comes back through a recovery phase with scheduled latency, fails that
// recovery (flaky hardware), or dies permanently. Real fleets pay exactly
// these costs — which is why the cluster needs a host state machine, VM
// evacuation, and warm detector-state handoff at all (DESIGN.md §17).
//
// The plan is plain data interpreted by cluster::HostLifecycle. All
// stochastic decisions come from the plan's private seeded RNG stream
// (never the simulation's), so a host-chaos sweep perturbs the
// infrastructure without changing the workload or attack trajectory under
// it. A default-constructed plan is inert (enabled() == false): every host
// then serves every tick forever, and the lifecycle layer is
// bit-transparent (pinned by tests/integration/hostchaos_transparency_test).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sds::fault {

enum class HostFaultKind : std::uint8_t {
  // The host stops serving ticks for a drawn down window, then enters
  // recovery (drawn latency) before serving again.
  kCrash = 0,
  // The host hangs intermittently for a drawn window: it serves only one
  // tick in every `degrade_stride` (VMs and samplers on it stall).
  kDegrade,
  // A completed recovery fails: the host drops straight back into a fresh
  // down window instead of coming up. Rate is per recovery ATTEMPT, not per
  // host-tick.
  kFlakyRecovery,
  // The host crashes and never recovers. Its VMs are gone unless the
  // evacuation engine moves them elsewhere.
  kPermanentDeath,
  kKindCount,
};

inline constexpr std::size_t kHostFaultKindCount =
    static_cast<std::size_t>(HostFaultKind::kKindCount);

const char* HostFaultKindName(HostFaultKind kind);

// A fault pinned to an exact (tick, host) — deterministic chaos scheduling
// for tests and for sweep cells that must contain at least one event
// regardless of the Bernoulli rates. kFlakyRecovery cannot be scheduled
// (it is a property of a recovery attempt, not of a tick).
struct ScheduledHostFault {
  Tick tick = 0;
  int host = 0;
  HostFaultKind kind = HostFaultKind::kCrash;
  // Down window (kCrash) or degrade window (kDegrade); 0 = draw from the
  // plan's range. Ignored for kPermanentDeath.
  Tick duration = 0;
};

struct HostFaultPlan {
  // Seed of the lifecycle's private RNG stream.
  std::uint64_t seed = 0x405fa17c4a05ull;

  // Injection probability per kind, indexed by HostFaultKind. kCrash,
  // kDegrade and kPermanentDeath are per host-tick (drawn for every UP host
  // every tick); kFlakyRecovery is per recovery attempt.
  std::array<double, kHostFaultKindCount> rates{};

  // Crash outage window (inclusive range, drawn per crash).
  Tick down_min_ticks = 200;
  Tick down_max_ticks = 1200;

  // Degraded-mode window (inclusive range, drawn per degrade event) and the
  // service stride while inside it: the host serves one tick in every
  // `degrade_stride`.
  Tick degrade_min_ticks = 100;
  Tick degrade_max_ticks = 600;
  int degrade_stride = 4;

  // Scheduled recovery latency: ticks spent in the recovering state after a
  // down window expires, before the host serves again (inclusive range,
  // drawn per recovery attempt).
  Tick recovery_min_ticks = 50;
  Tick recovery_max_ticks = 250;

  // Deterministic events applied on top of (and before) the Bernoulli
  // draws at their exact tick.
  std::vector<ScheduledHostFault> scheduled;

  double rate(HostFaultKind kind) const {
    return rates[static_cast<std::size_t>(kind)];
  }
  void set_rate(HostFaultKind kind, double r) {
    rates[static_cast<std::size_t>(kind)] = r;
  }

  // True when the plan can perturb anything at all (any nonzero rate or any
  // scheduled fault).
  bool enabled() const;

  // Convenience: a plan injecting exactly one kind at `rate` per host-tick.
  static HostFaultPlan Single(HostFaultKind kind, double rate,
                              std::uint64_t seed);
};

// Per-kind and aggregate host-plane accounting, kept by the lifecycle.
struct HostFaultStats {
  std::array<std::uint64_t, kHostFaultKindCount> injected{};
  std::uint64_t crashes = 0;            // down windows entered (incl. flaky)
  std::uint64_t degraded_windows = 0;   // degrade windows entered
  std::uint64_t degraded_skipped = 0;   // ticks a degraded host did not serve
  std::uint64_t down_ticks = 0;         // host-ticks spent down or recovering
  std::uint64_t recovery_attempts = 0;  // down windows that expired
  std::uint64_t recovery_failures = 0;  // attempts that went straight back down
  std::uint64_t permanent_deaths = 0;

  std::uint64_t injected_total() const {
    std::uint64_t sum = 0;
    for (const auto v : injected) sum += v;
    return sum;
  }
};

}  // namespace sds::fault
