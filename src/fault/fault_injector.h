// FaultInjector: a SampleSource that perturbs a PcmSampler's stream
// according to a deterministic FaultPlan.
//
// The injector owns the underlying PcmSampler and sits between it and the
// detector, so the detector's view of the monitoring plane — and only that
// view — degrades. The simulated machine, the workloads and the attack all
// run untouched; with the same simulation seed, a fault sweep compares
// detector behavior across monitoring-plane conditions on the SAME
// trajectory.
//
// Determinism: all stochastic decisions come from the plan's private RNG
// (seeded by plan.seed), with a fixed draw order per tick. Two runs with the
// same plan, seed and call sequence inject the same faults at the same
// ticks.
//
// Fault semantics (see FaultKind for the catalog):
//   * drop       — the interval's delta is read and discarded; the stream
//                  has a one-tick hole and the NEXT sample is normal;
//   * coalesce   — the read is skipped; the next read's delta spans the
//                  hole (PcmSampler's missed-tick tolerance produces
//                  exactly this);
//   * outage     — like coalesce but for a drawn window; self-recovers;
//   * death      — no samples and healthy() == false until TryRestart()
//                  succeeds, which it refuses to do while the drawn death
//                  window is still running (this is what gives a watchdog's
//                  exponential backoff something to chew on); a successful
//                  restart re-baselines the sampler;
//   * reset      — one sample's deltas wrap to absurd values, as a real
//                  delta computed across a counter reset would;
//   * saturation — deltas clamp to plan.saturation_cap for a window;
//   * corruption — one sample is zeroed or gets a high bit flipped.
//
// Every injection is counted in FaultStats and emitted as a Layer::kFault
// trace event plus a `fault.injected.<kind>` metric when telemetry is
// attached.
#pragma once

#include <optional>

#include "common/rng.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "pcm/pcm_sampler.h"
#include "pcm/sample_source.h"
#include "vm/hypervisor.h"

namespace sds::fault {

class FaultInjector final : public pcm::SampleSource {
 public:
  FaultInjector(vm::Hypervisor& hypervisor, OwnerId target,
                const FaultPlan& plan);

  // SampleSource. Start/Stop track the consumer's session intent; a dead
  // injector keeps the inner sampler detached until restarted.
  void Start() override;
  void Stop() override;
  bool started() const override { return started_; }
  OwnerId target() const override { return target_; }
  std::optional<pcm::PcmSample> Next() override;
  Tick last_span() const override { return inner_.last_span(); }
  bool healthy() const override { return !dead_; }
  bool TryRestart() override;

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }
  bool dead() const { return dead_; }

 private:
  // Draws this tick's stochastic faults and folds in scheduled ones.
  // Returns the dominant fault for the tick (window kinds also update the
  // active windows), or nullopt for a clean tick.
  std::optional<FaultKind> DecideFault(Tick now);
  void OpenWindow(FaultKind kind, Tick now, Tick duration);
  void RecordInjection(FaultKind kind, Tick now, double detail);
  pcm::PcmSample Tamper(FaultKind kind, pcm::PcmSample s);

  vm::Hypervisor& hypervisor_;
  OwnerId target_;
  FaultPlan plan_;
  Rng rng_;
  pcm::PcmSampler inner_;

  bool started_ = false;
  bool dead_ = false;
  // TryRestart() fails before this tick.
  Tick dead_until_ = 0;
  // No samples are delivered while now < outage_until_.
  Tick outage_until_ = 0;
  // Deltas clamp while now < saturation_until_.
  Tick saturation_until_ = 0;
  // Index of the next unapplied scheduled fault (plan_.scheduled is
  // consumed in order; entries are expected sorted by tick).
  std::size_t next_scheduled_ = 0;

  FaultStats stats_;
  telemetry::Counter* t_injected_[kFaultKindCount] = {};
  telemetry::Counter* t_missing_ = nullptr;
};

}  // namespace sds::fault
