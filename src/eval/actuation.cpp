#include "eval/actuation.h"

#include <algorithm>
#include <memory>
#include <ostream>

#include "attacks/bus_lock_attacker.h"
#include "attacks/scheduled_workload.h"
#include "common/check.h"
#include "workloads/catalog.h"

namespace sds::eval {

ActuationRunResult RunActuationRun(const ActuationRunConfig& config,
                                   std::uint64_t seed) {
  SDS_CHECK(config.clean_window > 0 && config.attack_lead > 0 &&
                config.post_window > 0,
            "measurement windows must be positive");
  cluster::Cluster cl(2, cluster::HostConfig{}, seed);

  const Tick attack_start = config.warmup_ticks + config.clean_window;
  const cluster::VmRef victim = cl.Deploy(
      0, "victim", [&config] { return workloads::MakeApp(config.app); });
  const cluster::VmRef attacker =
      cl.Deploy(0, "attacker", [attack_start] {
        return std::make_unique<attacks::ScheduledWorkload>(
            std::make_unique<attacks::BusLockAttacker>(
                attacks::BusLockConfig{}),
            attack_start, -1);
      });
  for (int i = 0; i < config.benign_vms; ++i) {
    cl.Deploy(0, "benign", [] { return workloads::MakeBenignUtility(); });
  }

  cluster::Actuator actuator(cl, config.plan);
  cluster::MitigationEngine engine(cl, victim, config.mitigation, &actuator);

  const auto step = [&] {
    cl.RunTick();
    engine.OnTick();
  };
  std::uint64_t mark = 0;
  const auto window_rate = [&](const cluster::VmRef& placement, Tick ticks) {
    const std::uint64_t now = cl.counters(placement).llc_accesses;
    const double rate =
        static_cast<double>(now - mark) / static_cast<double>(ticks);
    mark = now;
    return rate;
  };

  ActuationRunResult result;

  for (Tick t = 0; t < config.warmup_ticks; ++t) step();
  mark = cl.counters(victim).llc_accesses;
  for (Tick t = 0; t < config.clean_window; ++t) step();
  result.rate_clean = window_rate(victim, config.clean_window);

  for (Tick t = 0; t < config.attack_lead; ++t) step();
  result.rate_attacked = window_rate(victim, config.attack_lead);

  result.alarm_tick = cl.now();
  engine.OnAlarm(config.attribute ? attacker.id : 0);
  Tick waited = 0;
  while (engine.state() != cluster::MitigationState::kSettled &&
         engine.state() != cluster::MitigationState::kFailed &&
         waited < config.settle_cap) {
    step();
    ++waited;
  }

  result.final_state = engine.state();
  result.settled = engine.state() == cluster::MitigationState::kSettled;
  result.failed = engine.state() == cluster::MitigationState::kFailed;
  result.applied = engine.applied_policy();
  if (result.settled) {
    result.time_to_settled = engine.settled_tick() - result.alarm_tick;
  }

  const cluster::VmRef placement = engine.victim();
  mark = cl.counters(placement).llc_accesses;
  for (Tick t = 0; t < config.post_window; ++t) step();
  result.rate_post = window_rate(placement, config.post_window);
  if (result.rate_clean > 0.0) {
    result.residual_degradation =
        1.0 - std::min(1.0, result.rate_post / result.rate_clean);
  }

  result.mitigation = engine.stats();
  result.actuation = actuator.stats();
  return result;
}

namespace {

// Runs runs_per_cell seeded runs of one grid cell and aggregates them.
ActuationCell RunCell(const ActuationSweepConfig& config,
                      const fault::ActuationFaultPlan& plan,
                      fault::ActuationFaultKind kind, double rate) {
  ActuationCell cell;
  cell.kind = kind;
  cell.rate = rate;
  double settle_sum = 0.0;
  double residual_sum = 0.0;
  for (int r = 0; r < config.runs_per_cell; ++r) {
    ActuationRunConfig run = config.run;
    run.plan = plan;
    // Vary the fault schedule with the run AND the grid cell while keeping
    // it a pure function of (fault_seed, kind, rate, run index). Cells fire
    // few commands each, so if only the run index entered the seed every
    // cell would share one fault schedule and a single lucky draw would
    // blank the whole grid.
    run.plan.seed =
        config.fault_seed +
        std::uint64_t{0x9e3779b97f4a7c15} * static_cast<std::uint64_t>(r + 1) +
        std::uint64_t{0x85ebca6b} *
            (static_cast<std::uint64_t>(kind) + 1) +
        std::uint64_t{0xc2b2ae3d} * static_cast<std::uint64_t>(rate * 1000.0);
    const ActuationRunResult res = RunActuationRun(
        run, config.base_seed + static_cast<std::uint64_t>(r));
    ++cell.runs;
    if (res.settled) {
      ++cell.settled_runs;
      settle_sum += static_cast<double>(res.time_to_settled);
      cell.max_time_to_settled =
          std::max(cell.max_time_to_settled, res.time_to_settled);
    }
    if (res.failed) ++cell.failed_runs;
    if (res.mitigation.escalations > 0) ++cell.escalated_runs;
    if (res.applied == cluster::MitigationPolicy::kThrottleFallback) {
      ++cell.throttle_runs;
    }
    residual_sum += res.residual_degradation;

    cell.dispatches += res.mitigation.dispatches;
    cell.retries += res.mitigation.retries;
    cell.timeouts += res.mitigation.timeouts;
    cell.escalations += res.mitigation.escalations;
    cell.injected += res.actuation.injected_total();
    cell.lost += res.actuation.lost;
    cell.cancelled += res.actuation.cancelled;
    cell.conflicts += res.actuation.conflicts;
  }
  if (cell.settled_runs > 0) {
    cell.mean_time_to_settled = settle_sum / cell.settled_runs;
  }
  cell.mean_residual_degradation = residual_sum / cell.runs;
  return cell;
}

void WriteCellJson(std::ostream& os, const ActuationCell& cell,
                   const char* kind_name) {
  os << "{\"kind\":\"" << kind_name << "\",\"rate\":" << cell.rate
     << ",\"runs\":" << cell.runs << ",\"settled_runs\":" << cell.settled_runs
     << ",\"failed_runs\":" << cell.failed_runs
     << ",\"settle_ratio\":" << cell.settle_ratio()
     << ",\"mean_time_to_settled\":" << cell.mean_time_to_settled
     << ",\"max_time_to_settled\":" << cell.max_time_to_settled
     << ",\"escalated_runs\":" << cell.escalated_runs
     << ",\"throttle_runs\":" << cell.throttle_runs
     << ",\"mean_residual_degradation\":" << cell.mean_residual_degradation
     << ",\"dispatches\":" << cell.dispatches
     << ",\"retries\":" << cell.retries << ",\"timeouts\":" << cell.timeouts
     << ",\"escalations\":" << cell.escalations
     << ",\"injected\":" << cell.injected << ",\"lost\":" << cell.lost
     << ",\"cancelled\":" << cell.cancelled
     << ",\"conflicts\":" << cell.conflicts << "}";
}

}  // namespace

ActuationSweepResult RunActuationSweep(const ActuationSweepConfig& config) {
  SDS_CHECK(config.runs_per_cell >= 1, "need at least one run per cell");
  SDS_CHECK(!config.kinds.empty() && !config.rates.empty(),
            "empty sweep grid");
  ActuationSweepResult result;

  // Baseline: the full engine + actuator machinery in the path, but an
  // inert plan — synchronous, infallible, settles at the alarm tick. Equals
  // the one-shot engine's behavior by the actuation golden invariant.
  result.baseline =
      RunCell(config, fault::ActuationFaultPlan{},
              fault::ActuationFaultKind::kCommandLost, 0.0);

  for (const fault::ActuationFaultKind kind : config.kinds) {
    for (const double rate : config.rates) {
      SDS_CHECK(rate > 0.0 && rate <= 1.0,
                "sweep rates must be probabilities > 0");
      result.cells.push_back(RunCell(
          config,
          fault::ActuationFaultPlan::Single(kind, rate, 0,
                                            config.faulted_latency_min,
                                            config.faulted_latency_max),
          kind, rate));
    }
  }
  return result;
}

void WriteActuationJson(std::ostream& os, const ActuationSweepConfig& config,
                        const ActuationSweepResult& result) {
  os << "{\"bench\":\"actuation\",\"app\":\"" << config.run.app
     << "\",\"policy\":\""
     << cluster::MitigationPolicyName(config.run.mitigation.policy)
     << "\",\"attributed\":" << (config.run.attribute ? "true" : "false")
     << ",\"runs_per_cell\":" << config.runs_per_cell
     << ",\"command_timeout\":" << config.run.mitigation.command_timeout
     << ",\"max_attempts\":" << config.run.mitigation.max_attempts
     << ",\"verify_window\":" << config.run.mitigation.verify_window
     << ",\"latency\":[" << config.faulted_latency_min << ","
     << config.faulted_latency_max << "],\"baseline\":";
  WriteCellJson(os, result.baseline, "none");
  os << ",\"cells\":[";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    if (i > 0) os << ",";
    WriteCellJson(os, result.cells[i],
                  fault::ActuationFaultKindName(result.cells[i].kind));
  }
  os << "]}";
}

}  // namespace sds::eval
