// Scenario construction: the paper's standard deployment (Section 5.1) — one
// victim VM running a catalog application, one attack VM, and seven benign
// VMs running light utilities, all sharing one simulated server.
#pragma once

#include <memory>
#include <string>

#include "attacks/bus_lock_attacker.h"
#include "attacks/llc_cleansing_attacker.h"
#include "common/types.h"
#include "sim/machine.h"
#include "vm/hypervisor.h"

namespace sds::eval {

enum class AttackKind : std::uint8_t { kNone, kBusLock, kLlcCleansing };

const char* AttackName(AttackKind kind);

struct ScenarioConfig {
  // Catalog application on the victim VM.
  std::string app = "kmeans";
  AttackKind attack = AttackKind::kNone;
  // Ticks at which the attack program starts/stops; stop < 0 = never stops.
  Tick attack_start = 0;
  Tick attack_stop = -1;
  // Optional second, colluding attack VM (the attribution sweep's two-
  // attacker cell). Scheduled independently of the first.
  AttackKind attack2 = AttackKind::kNone;
  Tick attack2_start = 0;
  Tick attack2_stop = -1;
  // Number of benign co-tenant VMs (paper: 7).
  int benign_vms = 7;
  std::uint64_t seed = 1;

  sim::MachineConfig machine;
  vm::HypervisorConfig hypervisor;
  attacks::BusLockConfig bus_lock;
  // Cache geometry fields are overwritten from `machine` at build time.
  attacks::LlcCleansingConfig cleansing;
};

// A built scenario. The machine must outlive the hypervisor; both are owned
// here. `attacker` is 0 when the scenario has no attack VM; `attacker2` is 0
// unless config.attack2 requested the colluding second attack VM.
struct Scenario {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<vm::Hypervisor> hypervisor;
  OwnerId victim = 0;
  OwnerId attacker = 0;
  OwnerId attacker2 = 0;

  void RunTicks(Tick n) {
    for (Tick t = 0; t < n; ++t) hypervisor->RunTick();
  }
};

// Builds the full deployment. With attack != kNone the attack VM exists from
// the start (co-located, idle) and its program activates at attack_start.
Scenario BuildScenario(const ScenarioConfig& config);

}  // namespace sds::eval
