// Shared reporting helpers for the bench binaries.
#pragma once

#include <iosfwd>
#include <string>

#include "detect/params.h"
#include "stats/descriptive.h"

namespace sds::eval {

// Prints Table 1 (the detection-scheme parameters) plus the KStest baseline
// settings, so every bench output is self-describing.
void PrintParams(std::ostream& os, const detect::DetectorParams& params,
                 const detect::KsTestParams& ks);

// "0.97 [0.93, 1.00]" — median with the 10th/90th percentile error bar.
std::string FormatSummary(const PercentileSummary& s, int decimals);

}  // namespace sds::eval
