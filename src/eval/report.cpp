#include "eval/report.h"

#include <ostream>

#include "common/csv.h"
#include "common/types.h"

namespace sds::eval {

void PrintParams(std::ostream& os, const detect::DetectorParams& params,
                 const detect::KsTestParams& ks) {
  TextTable t;
  t.SetHeader({"parameter", "value"});
  t.Row("T_PCM (s)", FormatFixed(kDefaultTpcmSeconds, 2));
  t.Row("window W", params.window);
  t.Row("step dW", params.step);
  t.Row("EWMA alpha", FormatFixed(params.alpha, 2));
  t.Row("boundary k", FormatFixed(params.boundary_k, 3));
  t.Row("H_C", params.h_c);
  t.Row("W_P multiplier", FormatFixed(params.wp_multiplier, 1));
  t.Row("dW_P", params.delta_wp);
  t.Row("H_P", params.h_p);
  t.Row("period tolerance", FormatFixed(params.period_tolerance, 2));
  t.Row("KStest L_R (ticks)", static_cast<long long>(ks.l_r));
  t.Row("KStest W_R (ticks)", static_cast<long long>(ks.w_r));
  t.Row("KStest L_M (ticks)", static_cast<long long>(ks.l_m));
  t.Row("KStest W_M (ticks)", static_cast<long long>(ks.w_m));
  t.Row("KStest alpha", FormatFixed(ks.alpha, 2));
  t.Row("KStest consecutive", ks.consecutive_rejections);
  os << "Parameters (paper Table 1 + Section 3.2 KStest settings):\n";
  t.Print(os);
  os << '\n';
}

std::string FormatSummary(const PercentileSummary& s, int decimals) {
  return FormatFixed(s.median, decimals) + " [" +
         FormatFixed(s.p10, decimals) + ", " + FormatFixed(s.p90, decimals) +
         "]";
}

}  // namespace sds::eval
