// Attribution accuracy sweep: scores the forensics engine against ground
// truth the simulator knows exactly — which VM actually ran the attack.
//
// The grid covers the attack x workload cells of the accuracy protocol
// (single attacker, both attack programs), one quiet cell per application
// (a false-positive alarm must stay unattributed), one colluding
// two-attacker cell, and one cell that runs the full KStest baseline with
// its identification sweep so the hardware evidence can be scored against
// the baseline's throttling-derived culprit. Per cell the sweep records the
// forensic rank of the true attacker; the headline metrics are rank-1
// fraction (single-attacker cells), attribution precision/recall over the
// whole grid, and an FNV fingerprint of every report — two sweeps of the
// same seed must fingerprint identically or scoring has gone
// non-deterministic (bench_attrib_sweep runs the self-check).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "detect/forensics.h"
#include "eval/scenario.h"

namespace sds::eval {

struct AttributionSweepConfig {
  std::vector<std::string> apps = {"kmeans", "terasort", "bayes", "pca"};
  // Quiet lead-in before the attack program activates.
  Tick warmup_ticks = 200;
  // Evidence-collection window under attack; the forced alarm fires at its
  // end (the sweep scores attribution, not detection delay).
  Tick attack_ticks = 600;
  std::uint64_t base_seed = 9100;
  detect::ForensicsConfig forensics;
  // Run the KStest baseline cell (bayes vs bus locking, full identification
  // sweep). Dominates the sweep's runtime; off in unit tests.
  bool kstest_cell = true;
  // Tick budget for the KStest cell before giving up on an alarm.
  Tick kstest_run_cap = 12000;
};

struct AttributionCell {
  std::string app;
  AttackKind attack = AttackKind::kNone;
  AttackKind attack2 = AttackKind::kNone;
  // True culprit VM ids (0 = none).
  OwnerId true_attacker = 0;
  OwnerId true_attacker2 = 0;
  // Scored from the forensic report:
  bool attributed = false;
  OwnerId prime_suspect = 0;
  double prime_score = 0.0;
  // 1-based rank of true_attacker among the suspects; 0 when absent or no
  // attack ran.
  int rank_of_true = 0;
  Tick evidence_lead_ticks = 0;
  // KStest cell only: the baseline's culprit and whether forensics agrees.
  OwnerId kstest_culprit = 0;
  bool kstest_agrees = false;
  // The full forensic report the fields above were scored from, kept so the
  // bench can stream WriteForensicReportJson lines for the inspect tools.
  detect::ForensicReport report;
};

struct AttributionSweepResult {
  std::vector<AttributionCell> cells;
  // Fraction of single-attacker cells whose rank_of_true == 1.
  double rank1_fraction = 0.0;
  // Attribution decisions over the whole grid: a true positive names a real
  // attacker; naming anyone on a quiet cell (or the wrong VM on an attacked
  // one) is a false positive; an unattributed attacked cell is a false
  // negative.
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;
  double precision = 1.0;
  double recall = 1.0;
  double mean_rank_of_true = 0.0;
  // FNV-1a over every cell's scored fields (doubles by bit pattern): the
  // determinism self-check compares this across repeated sweeps.
  std::uint64_t fingerprint = 0;
};

AttributionSweepResult RunAttributionSweep(const AttributionSweepConfig& config,
                                           std::ostream* log = nullptr);

// One JSON object with the config, per-cell rows and the summary metrics
// (the BENCH_attrib payload).
void WriteAttributionJson(std::ostream& os,
                          const AttributionSweepConfig& config,
                          const AttributionSweepResult& result);

}  // namespace sds::eval
