#include "eval/attribution_sweep.h"

#include <cstring>
#include <ostream>

#include "common/check.h"
#include "detect/kstest_detector.h"

namespace sds::eval {
namespace {

// FNV-1a, doubles hashed by bit pattern (any numeric drift changes it).
class Fingerprinter {
 public:
  void Bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void U64(std::uint64_t v) { Bytes(&v, sizeof v); }
  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  void Str(const std::string& s) { Bytes(s.data(), s.size()); }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

void ScoreCell(AttributionCell& cell, const detect::ForensicReport& report) {
  cell.report = report;
  cell.attributed = report.attributed;
  cell.prime_suspect = report.prime_suspect;
  cell.prime_score =
      report.suspects.empty() ? 0.0 : report.suspects.front().score;
  cell.evidence_lead_ticks = report.evidence_lead_ticks;
  cell.kstest_culprit = report.kstest_culprit;
  cell.kstest_agrees = report.kstest_agrees;
  if (cell.true_attacker != 0) {
    for (std::size_t i = 0; i < report.suspects.size(); ++i) {
      if (report.suspects[i].vm == cell.true_attacker) {
        cell.rank_of_true = static_cast<int>(i) + 1;
        break;
      }
    }
  }
}

ScenarioConfig CellScenario(const AttributionSweepConfig& config,
                            const AttributionCell& cell, std::uint64_t seed) {
  ScenarioConfig sc;
  sc.app = cell.app;
  sc.attack = cell.attack;
  sc.attack_start = config.warmup_ticks;
  sc.attack2 = cell.attack2;
  sc.attack2_start = config.warmup_ticks;
  sc.machine.attribution = true;
  sc.seed = seed;
  return sc;
}

// Forced-alarm cell: run warmup + attack window, then alarm at the end. The
// sweep scores WHO the evidence names, not when a detector would fire.
void RunForcedAlarmCell(const AttributionSweepConfig& config,
                        AttributionCell& cell, std::uint64_t seed) {
  Scenario s = BuildScenario(CellScenario(config, cell, seed));
  cell.true_attacker = s.attacker;
  cell.true_attacker2 = s.attacker2;
  detect::ForensicsEngine engine(*s.hypervisor, s.victim, config.forensics);
  for (Tick t = 0; t < config.warmup_ticks + config.attack_ticks; ++t) {
    s.hypervisor->RunTick();
    engine.OnTick();
  }
  ScoreCell(cell, engine.OnAlarm(s.hypervisor->now()));
}

// KStest cell: the full baseline (reference throttling, monitored KS tests,
// identification sweep) runs against the live scenario; the forensic report
// is built at the baseline's own alarm with the baseline's culprit, so the
// cell scores agreement between perturbation- and ledger-based attribution.
void RunKstestCell(const AttributionSweepConfig& config, AttributionCell& cell,
                   std::uint64_t seed) {
  ScenarioConfig sc = CellScenario(config, cell, seed);
  // Right after the immediate reference collection (which throttles
  // everything except the target, so it stays clean regardless): the first
  // monitored windows then see the attack and the alarm is attack-driven
  // rather than a workload-phase false positive.
  sc.attack_start = 200;
  Scenario s = BuildScenario(sc);
  cell.true_attacker = s.attacker;
  detect::KsTestParams kp;
  kp.initial_offset = kp.l_r - 1;  // first reference collection immediately
  detect::KsTestDetector detector(*s.hypervisor, s.victim, kp);
  detect::ForensicsEngine engine(*s.hypervisor, s.victim, config.forensics);
  for (Tick t = 0; t < config.kstest_run_cap; ++t) {
    s.hypervisor->RunTick();
    detector.OnTick();
    engine.OnTick();
    if (detector.alarm_events() > 0) break;
  }
  ScoreCell(cell, engine.OnAlarm(s.hypervisor->now(),
                                 detector.identified_attacker()));
}

}  // namespace

AttributionSweepResult RunAttributionSweep(const AttributionSweepConfig& config,
                                           std::ostream* log) {
  SDS_CHECK(!config.apps.empty(), "attribution sweep needs applications");
  AttributionSweepResult result;

  std::vector<AttributionCell> grid;
  for (const std::string& app : config.apps) {
    AttributionCell quiet;
    quiet.app = app;
    grid.push_back(quiet);
    for (AttackKind attack :
         {AttackKind::kBusLock, AttackKind::kLlcCleansing}) {
      AttributionCell cell;
      cell.app = app;
      cell.attack = attack;
      grid.push_back(cell);
    }
  }
  AttributionCell colluding;
  colluding.app = config.apps.front();
  colluding.attack = AttackKind::kBusLock;
  colluding.attack2 = AttackKind::kLlcCleansing;
  grid.push_back(colluding);

  std::uint64_t seed = config.base_seed;
  for (AttributionCell& cell : grid) {
    RunForcedAlarmCell(config, cell, seed++);
    if (log != nullptr) {
      *log << "  " << cell.app << " / " << AttackName(cell.attack)
           << (cell.attack2 != AttackKind::kNone ? " + colluder" : "")
           << ": prime=" << cell.prime_suspect
           << " rank_of_true=" << cell.rank_of_true << "\n";
    }
    result.cells.push_back(cell);
  }

  if (config.kstest_cell) {
    AttributionCell cell;
    cell.app = "bayes";
    cell.attack = AttackKind::kBusLock;
    RunKstestCell(config, cell, seed++);
    if (log != nullptr) {
      *log << "  " << cell.app << " / " << AttackName(cell.attack)
           << " [kstest]: prime=" << cell.prime_suspect << " kstest_culprit="
           << cell.kstest_culprit
           << (cell.kstest_agrees ? " (agrees)" : " (disagrees)") << "\n";
    }
    result.cells.push_back(cell);
  }

  int single_cells = 0;
  int rank1 = 0;
  int ranked_cells = 0;
  int rank_sum = 0;
  Fingerprinter fp;
  for (const AttributionCell& cell : result.cells) {
    const bool attacked = cell.true_attacker != 0;
    const bool single = attacked && cell.true_attacker2 == 0;
    if (single) {
      ++single_cells;
      if (cell.rank_of_true == 1) ++rank1;
    }
    if (attacked && cell.rank_of_true > 0) {
      ++ranked_cells;
      rank_sum += cell.rank_of_true;
    }
    if (attacked) {
      const bool correct = cell.attributed &&
                           (cell.prime_suspect == cell.true_attacker ||
                            cell.prime_suspect == cell.true_attacker2);
      if (correct) {
        ++result.true_positives;
      } else if (cell.attributed) {
        ++result.false_positives;
      } else {
        ++result.false_negatives;
      }
    } else if (cell.attributed) {
      ++result.false_positives;
    }
    fp.Str(cell.app);
    fp.U64(static_cast<std::uint64_t>(cell.attack));
    fp.U64(static_cast<std::uint64_t>(cell.attack2));
    fp.U64(cell.true_attacker);
    fp.U64(cell.true_attacker2);
    fp.U64(cell.attributed ? 1 : 0);
    fp.U64(cell.prime_suspect);
    fp.F64(cell.prime_score);
    fp.U64(static_cast<std::uint64_t>(cell.rank_of_true));
    fp.U64(static_cast<std::uint64_t>(cell.evidence_lead_ticks));
    fp.U64(cell.kstest_culprit);
    fp.U64(cell.kstest_agrees ? 1 : 0);
  }
  result.rank1_fraction =
      single_cells > 0 ? static_cast<double>(rank1) / single_cells : 0.0;
  const int named = result.true_positives + result.false_positives;
  result.precision =
      named > 0 ? static_cast<double>(result.true_positives) / named : 1.0;
  const int attacked_total = result.true_positives + result.false_negatives;
  result.recall = attacked_total > 0
                      ? static_cast<double>(result.true_positives) /
                            attacked_total
                      : 1.0;
  result.mean_rank_of_true =
      ranked_cells > 0 ? static_cast<double>(rank_sum) / ranked_cells : 0.0;
  result.fingerprint = fp.hash();
  return result;
}

void WriteAttributionJson(std::ostream& os,
                          const AttributionSweepConfig& config,
                          const AttributionSweepResult& result) {
  os << "{\"bench\":\"attrib\",\"warmup_ticks\":" << config.warmup_ticks
     << ",\"attack_ticks\":" << config.attack_ticks
     << ",\"base_seed\":" << config.base_seed
     << ",\"min_score\":" << config.forensics.min_score
     << ",\"rank1_fraction\":" << result.rank1_fraction
     << ",\"precision\":" << result.precision
     << ",\"recall\":" << result.recall
     << ",\"mean_rank_of_true\":" << result.mean_rank_of_true
     << ",\"true_positives\":" << result.true_positives
     << ",\"false_positives\":" << result.false_positives
     << ",\"false_negatives\":" << result.false_negatives
     << ",\"fingerprint\":\"" << result.fingerprint << "\",\"cells\":[";
  bool first = true;
  for (const AttributionCell& cell : result.cells) {
    if (!first) os << ',';
    first = false;
    os << "{\"app\":\"" << cell.app << "\",\"attack\":\""
       << AttackName(cell.attack) << "\",\"attack2\":\""
       << AttackName(cell.attack2) << "\",\"true_attacker\":"
       << cell.true_attacker << ",\"attributed\":"
       << (cell.attributed ? "true" : "false")
       << ",\"prime_suspect\":" << cell.prime_suspect
       << ",\"prime_score\":" << cell.prime_score
       << ",\"rank_of_true\":" << cell.rank_of_true
       << ",\"evidence_lead_ticks\":" << cell.evidence_lead_ticks
       << ",\"kstest_culprit\":" << cell.kstest_culprit
       << ",\"kstest_agrees\":" << (cell.kstest_agrees ? "true" : "false")
       << '}';
  }
  os << "]}";
}

}  // namespace sds::eval
