// Host-chaos protocol (DESIGN.md §17): host crash/degrade faults, VM
// evacuation convergence, and the warm-vs-cold detector handoff win.
//
// One victim runs under SDS detection on host 0 of a small cluster; a
// scheduled bus-locking attacker is co-resident on EVERY host, so the
// contention signature persists wherever the victim lands. Two cell
// families:
//
//   Migration cells ("attacker-induced mitigation" evasion): no host
//   faults; the victim is forcibly migrated every `migrate_every` ticks —
//   the attacker's cheapest evasion is to keep triggering mitigations,
//   because with COLD handoff every migration resets the analyzer windows
//   and the detector never accumulates h_c violations. Warm handoff closes
//   exactly that hole.
//
//   Chaos cells: hosts crash at a swept per-host-tick rate (plus one
//   scheduled crash of the victim's host, so every cell contains at least
//   one evacuation); the evacuation engine moves stranded VMs through the
//   Actuator and the handoff follows the victim.
//
// Each cell runs the SAME seeds warm and cold. The host-fault schedule is
// a pure function of the plan seed and the workload trajectory of the run
// seed, and the handoff only changes detector-internal state — so the two
// sides see bit-identical worlds and the blind-window / missed-alarm
// deltas are attributable to the handoff alone. The sweep's
// `warm_strictly_better` flag (warm below cold on both metrics in every
// cell) is the acceptance criterion bench_hostchaos enforces.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/evacuation.h"
#include "common/types.h"
#include "detect/params.h"
#include "fault/actuation_plan.h"
#include "fault/host_plan.h"
#include "obs/handoff.h"

namespace sds::eval {

struct HostChaosRunConfig {
  std::string app = "kmeans";
  int hosts = 3;
  int vm_capacity = 8;  // per host; must fit co-tenants plus evacuees
  int benign_vms = 1;   // per host
  // Warm detector-state handoff on every victim migration; false = the
  // pre-PR cold start (measured, not assumed — the baseline side of every
  // cell).
  bool warm_handoff = true;
  Tick attack_start = 1000;
  Tick horizon = 10000;  // total ticks
  // Forced periodic victim migration: first at attack_start +
  // migrate_every, then every migrate_every ticks. 0 disables.
  Tick migrate_every = 0;
  fault::HostFaultPlan host_plan;
  fault::ActuationFaultPlan actuation_plan;
  cluster::EvacuationConfig evacuation;
  detect::DetectorParams params;
};

// One victim migration with its handoff verdict and the blind window it
// opened (ticks from the migration until the detector re-reported the
// still-running attack; -1 while open / when censored by the horizon).
struct HandoffEvent {
  Tick tick = 0;
  cluster::VmRef from;
  cluster::VmRef to;
  bool forced = false;  // forced migration cell vs evacuation
  bool warm = false;
  std::string status;  // SnapshotStatusName, or "disabled" when cold
  Tick blind_ticks = -1;
};

struct HostChaosRunResult {
  int migrations = 0;
  obs::HandoffStats handoffs;
  // Sum/max of per-migration blind windows (censored windows count up to
  // the horizon).
  std::uint64_t blind_ticks = 0;
  Tick max_blind_ticks = 0;
  // Ticks after the first migration where the attack was running, the
  // victim's host was serving, and the detector did / did not report it.
  std::uint64_t attacked_serving_ticks = 0;
  std::uint64_t missed_ticks = 0;
  Tick first_alarm_tick = kInvalidTick;

  fault::HostFaultStats host_faults;
  cluster::EvacuationStats evacuation;
  std::vector<cluster::HostTransition> transitions;
  std::vector<cluster::EvacuationRecord> evacuation_records;
  std::vector<HandoffEvent> handoff_events;

  double missed_alarm_rate() const {
    return attacked_serving_ticks == 0
               ? 0.0
               : static_cast<double>(missed_ticks) /
                     static_cast<double>(attacked_serving_ticks);
  }
  double mean_blind_ticks() const {
    return migrations == 0 ? 0.0
                           : static_cast<double>(blind_ticks) /
                                 static_cast<double>(migrations);
  }
};

// One seeded chaos run. Fully deterministic for a fixed (config, seed).
HostChaosRunResult RunHostChaosRun(const HostChaosRunConfig& config,
                                   std::uint64_t seed);

struct HostChaosSweepConfig {
  HostChaosRunConfig run;
  // Evasion family: forced-migration periods (ticks).
  std::vector<Tick> migration_periods = {800, 1600, 3200};
  // Chaos family: per-host-tick crash rates.
  std::vector<double> crash_rates = {0.0003, 0.0006, 0.0012};
  // Every chaos cell also schedules one crash of the victim's host this
  // many ticks after the attack starts (duration scheduled_crash_down), so
  // evacuation + handoff happen at least once regardless of the rate.
  Tick scheduled_crash_after = 1500;
  Tick scheduled_crash_down = 2500;
  int runs_per_cell = 2;
  std::uint64_t base_seed = 9100;
  std::uint64_t fault_seed = 0x405c4a05ull;
};

// Aggregate of one cell's runs for one handoff mode.
struct HostChaosCellSide {
  int runs = 0;
  int migrations = 0;
  int warm_handoffs = 0;
  int cold_handoffs = 0;
  double mean_blind_ticks = 0.0;
  Tick max_blind_ticks = 0;
  double missed_alarm_rate = 0.0;  // pooled over runs
  // Evacuation convergence (chaos cells; zero in migration cells).
  std::uint64_t evac_started = 0;
  std::uint64_t evac_migrated = 0;
  std::uint64_t evac_throttled = 0;
  std::uint64_t evac_abandoned = 0;
  double mean_evacuation_ticks = -1.0;
  std::uint64_t down_ticks = 0;
};

struct HostChaosCell {
  bool chaos = false;        // false: migration/evasion cell
  Tick migrate_every = 0;    // migration cells
  double crash_rate = 0.0;   // chaos cells
  HostChaosCellSide warm;
  HostChaosCellSide cold;
};

struct HostChaosSweepResult {
  std::vector<HostChaosCell> migration_cells;
  std::vector<HostChaosCell> chaos_cells;
  // Acceptance criterion: in EVERY cell the warm side is strictly below
  // the cold side on mean blind-window ticks AND missed-alarm rate.
  bool warm_strictly_better = true;
};

HostChaosSweepResult RunHostChaosSweep(const HostChaosSweepConfig& config);

// Writes the whole sweep as one JSON object (the BENCH_hostchaos schema).
void WriteHostChaosJson(std::ostream& os, const HostChaosSweepConfig& config,
                        const HostChaosSweepResult& result);

// Writes one run's host up/down timeline, evacuations and handoffs as
// JSONL records for trace_inspect / fleet_inspect --hostchaos.
void WriteHostChaosTrace(std::ostream& os, const HostChaosRunConfig& config,
                         const HostChaosRunResult& result);

}  // namespace sds::eval
