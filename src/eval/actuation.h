// Actuation-plane chaos protocol.
//
// The robustness sweep (robustness.h) rots the detector's INPUT; this module
// rots the provider's RESPONSE. One victim and a bus-locking attacker share
// host 0 of a two-host cluster; at a fixed tick after the attack starts a
// synthetic alarm fires (no detector in the loop — the chaos harness
// isolates the actuation plane from detection delay variance) and the
// MitigationEngine drives its retry / escalation / fallback machinery
// through an Actuator whose ActuationFaultPlan loses, aborts or bounces the
// commands. The sweep grid (fault kind x rate) measures time-to-settled,
// escalation pressure, and the victim's residual degradation after the
// response — the curves behind the claim that the control plane converges
// under any per-command fault rate the chain can outlast.
//
// Determinism: the simulation trajectory is a pure function of the run seed
// and the fault schedule a pure function of the plan seed, so a faulted run
// and its fault-free baseline see the same workload and attack.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/mitigation.h"
#include "common/types.h"
#include "fault/actuation_plan.h"

namespace sds::eval {

// The sweep's standard response: migrate the victim to the spare host, with
// the full retry / escalation / throttle-fallback chain enabled.
inline cluster::MitigationConfig DefaultActuationMitigation() {
  cluster::MitigationConfig config;
  config.policy = cluster::MitigationPolicy::kMigrateVictim;
  config.spare_host = 1;
  return config;
}

struct ActuationRunConfig {
  cluster::MitigationConfig mitigation = DefaultActuationMitigation();
  fault::ActuationFaultPlan plan;
  // Pass the true attacker id with the alarm (models KStest-style
  // identification); false = unattributed.
  bool attribute = false;

  std::string app = "kmeans";
  int benign_vms = 2;
  Tick warmup_ticks = 100;     // settle the caches before measuring
  Tick clean_window = 400;     // clean-rate measurement
  Tick attack_lead = 300;      // attacked ticks before the alarm fires
  Tick settle_cap = 3000;      // ticks the engine gets to reach a terminal state
  Tick post_window = 400;      // post-response rate measurement
};

struct ActuationRunResult {
  bool settled = false;
  bool failed = false;
  cluster::MitigationState final_state = cluster::MitigationState::kIdle;
  cluster::MitigationPolicy applied = cluster::MitigationPolicy::kNone;
  Tick alarm_tick = kInvalidTick;
  // settled_tick - alarm_tick; -1 when the engine never settled.
  Tick time_to_settled = -1;

  double rate_clean = 0.0;     // victim LLC accesses / tick, clean window
  double rate_attacked = 0.0;  // same, during the attack lead
  double rate_post = 0.0;      // same, post window at the final placement
  // 1 - min(1, rate_post / rate_clean): 0 = full recovery, 1 = dead.
  double residual_degradation = 1.0;

  cluster::MitigationStats mitigation;
  fault::ActuationFaultStats actuation;
};

// One seeded chaos run. Fully deterministic for a fixed (config, seed).
ActuationRunResult RunActuationRun(const ActuationRunConfig& config,
                                   std::uint64_t seed);

struct ActuationSweepConfig {
  ActuationRunConfig run;
  std::vector<fault::ActuationFaultKind> kinds = {
      fault::ActuationFaultKind::kCommandLost,
      fault::ActuationFaultKind::kMigrationAbort,
      fault::ActuationFaultKind::kSpareHostDown,
      fault::ActuationFaultKind::kSpareAtCapacity,
      fault::ActuationFaultKind::kStopRejected,
  };
  std::vector<double> rates = {0.1, 0.25, 0.5};
  // Command latency of the faulted cells (the baseline stays at the plan's
  // synchronous 0..0 so it pins the pre-actuation-plane behavior).
  Tick faulted_latency_min = 2;
  Tick faulted_latency_max = 12;
  int runs_per_cell = 3;
  std::uint64_t base_seed = 7100;
  // Seed of the fault plans; varied per run so fault schedules differ
  // across repeat runs of a cell.
  std::uint64_t fault_seed = 0xac7f5eedull;
};

// One (kind, rate) grid cell, aggregated over runs_per_cell seeded runs.
struct ActuationCell {
  fault::ActuationFaultKind kind = fault::ActuationFaultKind::kCommandLost;
  double rate = 0.0;  // 0 = fault-free baseline cell
  int runs = 0;
  int settled_runs = 0;
  int failed_runs = 0;
  int escalated_runs = 0;  // runs that needed at least one escalation
  int throttle_runs = 0;   // runs that fell back to the hypervisor throttle
  // Over the settled runs; -1 when none settled.
  double mean_time_to_settled = -1.0;
  Tick max_time_to_settled = -1;
  double mean_residual_degradation = 0.0;

  std::uint64_t dispatches = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t escalations = 0;
  std::uint64_t injected = 0;
  std::uint64_t lost = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t conflicts = 0;

  double settle_ratio() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(settled_runs) /
                           static_cast<double>(runs);
  }
};

struct ActuationSweepResult {
  ActuationCell baseline;
  std::vector<ActuationCell> cells;  // kinds x rates, kind-major
};

ActuationSweepResult RunActuationSweep(const ActuationSweepConfig& config);

// Writes the whole sweep as one JSON object (the BENCH_actuation schema):
// policy, grid shape, the baseline cell and every grid cell with settle
// ratio, time-to-settled, escalation pressure and residual degradation.
void WriteActuationJson(std::ostream& os, const ActuationSweepConfig& config,
                        const ActuationSweepResult& result);

}  // namespace sds::eval
