#include "eval/hostchaos.h"

#include <algorithm>
#include <memory>
#include <ostream>
#include <utility>

#include "attacks/bus_lock_attacker.h"
#include "attacks/scheduled_workload.h"
#include "cluster/actuator.h"
#include "cluster/cluster.h"
#include "cluster/host_lifecycle.h"
#include "common/check.h"
#include "detect/profile.h"
#include "detect/sds_detector.h"
#include "eval/experiment.h"
#include "workloads/catalog.h"

namespace sds::eval {

HostChaosRunResult RunHostChaosRun(const HostChaosRunConfig& config,
                                   std::uint64_t seed) {
  SDS_CHECK(config.hosts >= 2, "chaos runs need a migration destination");
  SDS_CHECK(config.horizon > config.attack_start,
            "horizon must reach past the attack start");
  SDS_CHECK(config.migrate_every >= 0, "migration period must be >= 0");

  // Profile the victim clean in an equivalent single-host deployment, then
  // pin the same profile for every detector incarnation — the handoff
  // fingerprint must match across migrations by construction.
  detect::DetectorParams params = config.params;
  ScenarioConfig profile_base;
  profile_base.app = config.app;
  profile_base.benign_vms = config.benign_vms;
  const auto clean = CollectCleanSamples(profile_base, 4000, seed + 1);
  const detect::SdsProfile profile = detect::BuildSdsProfile(clean, params);

  cluster::HostConfig host;
  host.vm_capacity = config.vm_capacity;
  cluster::Cluster cl(config.hosts, host, seed);
  cluster::HostLifecycle lifecycle(config.hosts, config.host_plan);
  cl.AttachLifecycle(&lifecycle);
  cluster::Actuator actuator(cl, config.actuation_plan);
  cluster::EvacuationEngine evacuation(cl, lifecycle, actuator,
                                       config.evacuation);

  // One victim on host 0; a scheduled bus-locking attacker co-resident on
  // EVERY host so the contention signature follows the victim wherever it
  // lands; benign utility co-tenants everywhere.
  cluster::VmRef victim = cl.Deploy(
      0, "victim", [&config] { return workloads::MakeApp(config.app); });
  const Tick attack_start = config.attack_start;
  for (int h = 0; h < config.hosts; ++h) {
    cl.Deploy(h, "attacker", [attack_start] {
      return std::make_unique<attacks::ScheduledWorkload>(
          std::make_unique<attacks::BusLockAttacker>(attacks::BusLockConfig{}),
          attack_start, -1);
    });
    for (int i = 0; i < config.benign_vms; ++i) {
      cl.Deploy(h, "benign", [] { return workloads::MakeBenignUtility(); });
    }
  }

  auto make_detector = [&](const cluster::VmRef& vm) {
    return std::make_unique<detect::SdsDetector>(
        cl.hypervisor(vm.host), vm.id, profile, params,
        detect::SdsMode::kCombined);
  };
  std::unique_ptr<detect::SdsDetector> detector = make_detector(victim);

  HostChaosRunResult result;
  Tick blind_since = kInvalidTick;
  std::size_t open_event = 0;
  bool migrated_this_tick = false;

  const auto close_blind = [&](Tick now) {
    if (blind_since == kInvalidTick) return;
    const Tick blind = now - blind_since;
    result.blind_ticks += static_cast<std::uint64_t>(blind);
    result.max_blind_ticks = std::max(result.max_blind_ticks, blind);
    result.handoff_events[open_event].blind_ticks = blind;
    blind_since = kInvalidTick;
  };

  // Moves the detector with the victim: pack the outgoing detector at the
  // current tick boundary, construct the destination detector (its fresh
  // sampler re-baselines here — the sampler-phase contract in
  // obs/handoff.h), then apply the envelope. Never touches
  // SaveState/RestoreState directly; only the versioned obs wrappers.
  const auto migrate_detector = [&](const cluster::VmRef& from,
                                    const cluster::VmRef& to, bool forced) {
    const Tick now = cl.now();
    HandoffEvent event;
    event.tick = now;
    event.from = from;
    event.to = to;
    event.forced = forced;
    std::string blob;
    if (config.warm_handoff) blob = obs::PackSdsHandoff(*detector, now);
    std::unique_ptr<detect::SdsDetector> fresh = make_detector(to);
    if (config.warm_handoff) {
      const obs::HandoffResult handoff =
          obs::ApplySdsHandoff(blob, fresh.get());
      result.handoffs.Count(handoff);
      event.warm = handoff.warm;
      event.status = obs::SnapshotStatusName(handoff.status);
    } else {
      ++result.handoffs.attempts;
      ++result.handoffs.cold_other;
      event.status = "disabled";
    }
    detector = std::move(fresh);
    victim = to;
    ++result.migrations;
    migrated_this_tick = true;
    // A migration after attack start opens a blind window (closing any
    // window the previous migration left open: those unsighted ticks are
    // real and already elapsed).
    close_blind(now);
    result.handoff_events.push_back(event);
    if (now > config.attack_start) {
      blind_since = now;
      open_event = result.handoff_events.size() - 1;
    }
  };

  evacuation.set_on_migrated(
      [&](const cluster::VmRef& from, const cluster::VmRef& to) {
        if (from.host == victim.host && from.id == victim.id) {
          migrate_detector(from, to, /*forced=*/false);
        }
      });

  Tick next_forced = config.migrate_every > 0
                         ? config.attack_start + config.migrate_every
                         : kInvalidTick;
  cluster::CommandId forced_command = 0;

  for (Tick t = 0; t < config.horizon; ++t) {
    migrated_this_tick = false;
    cl.RunTick();
    actuator.OnTick();
    evacuation.OnTick();
    const Tick now = cl.now();

    // Forced periodic victim migration (the evasion cell). Commands may be
    // asynchronous under an actuation fault plan, so completions are
    // collected here; failures simply wait for the next period.
    if (forced_command != 0) {
      const cluster::CommandResult& forced = actuator.result(forced_command);
      if (forced.status == cluster::CommandStatus::kSucceeded) {
        migrate_detector(victim, forced.placement, /*forced=*/true);
        forced_command = 0;
      } else if (forced.status != cluster::CommandStatus::kInFlight) {
        forced_command = 0;
      }
    }
    if (next_forced != kInvalidTick && now >= next_forced &&
        forced_command == 0) {
      int dest = -1;
      for (int i = 1; i < config.hosts; ++i) {
        const int h = (victim.host + i) % config.hosts;
        if (cl.host_placeable(h) && actuator.host_usable(h) &&
            cl.HasCapacity(h)) {
          dest = h;
          break;
        }
      }
      if (dest >= 0 && cl.IsRunnable(victim)) {
        forced_command = actuator.SubmitMigrate(victim, dest);
        const cluster::CommandResult& forced = actuator.result(forced_command);
        if (forced.status == cluster::CommandStatus::kSucceeded) {
          migrate_detector(victim, forced.placement, /*forced=*/true);
          forced_command = 0;
        } else if (forced.status != cluster::CommandStatus::kInFlight) {
          forced_command = 0;
        }
      }
      next_forced += config.migrate_every;
    }

    // The detector only ticks when the victim's host served this tick: a
    // frozen host produces no new PCM interval, and on a migration tick the
    // destination detector baselined at this boundary and samples from the
    // next tick on (both handoff modes skip identically).
    if (!migrated_this_tick && cl.host_serving(victim.host)) {
      detector->OnTick();
      const bool attacked = now > config.attack_start;
      const bool active = detector->attack_active();
      if (attacked && active && result.first_alarm_tick == kInvalidTick) {
        result.first_alarm_tick = now;
      }
      if (attacked && active) close_blind(now);
      if (attacked && result.migrations > 0) {
        ++result.attacked_serving_ticks;
        if (!active) ++result.missed_ticks;
      }
    }
  }

  // Censor any still-open blind window at the horizon.
  close_blind(cl.now());

  result.host_faults = lifecycle.stats();
  result.evacuation = evacuation.stats();
  result.transitions = lifecycle.transitions();
  result.evacuation_records = evacuation.records();
  return result;
}

namespace {

// Folds one run into a cell side.
void Accumulate(HostChaosCellSide& side, const HostChaosRunResult& run,
                std::uint64_t& blind_sum, std::uint64_t& migration_sum,
                std::uint64_t& missed_sum, std::uint64_t& attacked_sum) {
  ++side.runs;
  side.migrations += run.migrations;
  side.warm_handoffs += static_cast<int>(run.handoffs.warm);
  side.cold_handoffs += static_cast<int>(run.handoffs.attempts -
                                         run.handoffs.warm);
  side.max_blind_ticks = std::max(side.max_blind_ticks, run.max_blind_ticks);
  blind_sum += run.blind_ticks;
  migration_sum += static_cast<std::uint64_t>(run.migrations);
  missed_sum += run.missed_ticks;
  attacked_sum += run.attacked_serving_ticks;
  side.evac_started += run.evacuation.started;
  side.evac_migrated += run.evacuation.migrated;
  side.evac_throttled += run.evacuation.throttled_in_place;
  side.evac_abandoned += run.evacuation.abandoned;
  side.down_ticks += run.host_faults.down_ticks;
}

// One cell = the SAME (run seed, fault seed) pairs executed warm and cold;
// the only difference between the sides is whether the detector state
// travels, so the metric gap is the handoff win.
HostChaosCell RunCellPair(const HostChaosSweepConfig& config,
                          const HostChaosRunConfig& cell_run,
                          std::uint64_t cell_tag) {
  HostChaosCell cell;
  cell.chaos = cell_run.host_plan.enabled();
  cell.migrate_every = cell_run.migrate_every;
  for (const bool warm : {true, false}) {
    HostChaosCellSide& side = warm ? cell.warm : cell.cold;
    std::uint64_t blind_sum = 0;
    std::uint64_t migration_sum = 0;
    std::uint64_t missed_sum = 0;
    std::uint64_t attacked_sum = 0;
    std::uint64_t evac_tick_sum = 0;
    for (int r = 0; r < config.runs_per_cell; ++r) {
      HostChaosRunConfig run = cell_run;
      run.warm_handoff = warm;
      // Fault schedules are a pure function of (fault_seed, cell, run
      // index) — and deliberately NOT of the handoff mode, so warm and
      // cold replay identical worlds.
      run.host_plan.seed =
          config.fault_seed +
          std::uint64_t{0x9e3779b97f4a7c15} *
              static_cast<std::uint64_t>(r + 1) +
          std::uint64_t{0x85ebca6b} * (cell_tag + 1);
      const HostChaosRunResult res = RunHostChaosRun(
          run, config.base_seed + static_cast<std::uint64_t>(r));
      Accumulate(side, res, blind_sum, migration_sum, missed_sum,
                 attacked_sum);
      evac_tick_sum += res.evacuation.evacuation_ticks;
    }
    if (migration_sum > 0) {
      side.mean_blind_ticks = static_cast<double>(blind_sum) /
                              static_cast<double>(migration_sum);
    }
    if (attacked_sum > 0) {
      side.missed_alarm_rate = static_cast<double>(missed_sum) /
                               static_cast<double>(attacked_sum);
    }
    if (side.evac_migrated > 0) {
      side.mean_evacuation_ticks = static_cast<double>(evac_tick_sum) /
                                   static_cast<double>(side.evac_migrated);
    }
  }
  return cell;
}

bool WarmBeatsCold(const HostChaosCell& cell) {
  return cell.warm.mean_blind_ticks < cell.cold.mean_blind_ticks &&
         cell.warm.missed_alarm_rate < cell.cold.missed_alarm_rate;
}

void WriteSideJson(std::ostream& os, const HostChaosCellSide& side) {
  os << "{\"runs\":" << side.runs << ",\"migrations\":" << side.migrations
     << ",\"warm_handoffs\":" << side.warm_handoffs
     << ",\"cold_handoffs\":" << side.cold_handoffs
     << ",\"mean_blind_ticks\":" << side.mean_blind_ticks
     << ",\"max_blind_ticks\":" << side.max_blind_ticks
     << ",\"missed_alarm_rate\":" << side.missed_alarm_rate
     << ",\"evac_started\":" << side.evac_started
     << ",\"evac_migrated\":" << side.evac_migrated
     << ",\"evac_throttled\":" << side.evac_throttled
     << ",\"evac_abandoned\":" << side.evac_abandoned
     << ",\"mean_evacuation_ticks\":" << side.mean_evacuation_ticks
     << ",\"down_ticks\":" << side.down_ticks << "}";
}

void WriteCellJson(std::ostream& os, const HostChaosCell& cell) {
  os << "{\"chaos\":" << (cell.chaos ? "true" : "false")
     << ",\"migrate_every\":" << cell.migrate_every
     << ",\"crash_rate\":" << cell.crash_rate << ",\"warm\":";
  WriteSideJson(os, cell.warm);
  os << ",\"cold\":";
  WriteSideJson(os, cell.cold);
  os << "}";
}

}  // namespace

HostChaosSweepResult RunHostChaosSweep(const HostChaosSweepConfig& config) {
  SDS_CHECK(config.runs_per_cell >= 1, "need at least one run per cell");
  SDS_CHECK(!config.migration_periods.empty() || !config.crash_rates.empty(),
            "empty sweep grid");
  HostChaosSweepResult result;

  std::uint64_t tag = 0;
  for (const Tick period : config.migration_periods) {
    SDS_CHECK(period > 0, "migration periods must be positive");
    HostChaosRunConfig run = config.run;
    run.migrate_every = period;
    run.host_plan = fault::HostFaultPlan{};  // pure evasion cell: no faults
    HostChaosCell cell = RunCellPair(config, run, ++tag);
    result.warm_strictly_better =
        result.warm_strictly_better && WarmBeatsCold(cell);
    result.migration_cells.push_back(std::move(cell));
  }

  for (const double rate : config.crash_rates) {
    SDS_CHECK(rate >= 0.0 && rate <= 1.0,
              "crash rates must be probabilities");
    HostChaosRunConfig run = config.run;
    run.migrate_every = 0;
    run.host_plan = fault::HostFaultPlan{};
    run.host_plan.set_rate(fault::HostFaultKind::kCrash, rate);
    // Guarantee at least one victim evacuation per run regardless of how
    // the random crashes land.
    fault::ScheduledHostFault crash;
    crash.tick = config.run.attack_start + config.scheduled_crash_after;
    crash.host = 0;
    crash.kind = fault::HostFaultKind::kCrash;
    crash.duration = config.scheduled_crash_down;
    run.host_plan.scheduled.push_back(crash);
    HostChaosCell cell = RunCellPair(config, run, ++tag);
    cell.crash_rate = rate;
    result.warm_strictly_better =
        result.warm_strictly_better && WarmBeatsCold(cell);
    result.chaos_cells.push_back(std::move(cell));
  }
  return result;
}

void WriteHostChaosJson(std::ostream& os, const HostChaosSweepConfig& config,
                        const HostChaosSweepResult& result) {
  os << "{\"bench\":\"hostchaos\",\"app\":\"" << config.run.app
     << "\",\"hosts\":" << config.run.hosts
     << ",\"benign_vms\":" << config.run.benign_vms
     << ",\"attack_start\":" << config.run.attack_start
     << ",\"horizon\":" << config.run.horizon
     << ",\"runs_per_cell\":" << config.runs_per_cell
     << ",\"scheduled_crash_after\":" << config.scheduled_crash_after
     << ",\"scheduled_crash_down\":" << config.scheduled_crash_down
     << ",\"migration_cells\":[";
  for (std::size_t i = 0; i < result.migration_cells.size(); ++i) {
    if (i > 0) os << ",";
    WriteCellJson(os, result.migration_cells[i]);
  }
  os << "],\"chaos_cells\":[";
  for (std::size_t i = 0; i < result.chaos_cells.size(); ++i) {
    if (i > 0) os << ",";
    WriteCellJson(os, result.chaos_cells[i]);
  }
  os << "],\"warm_strictly_better\":"
     << (result.warm_strictly_better ? "true" : "false") << "}";
}

void WriteHostChaosTrace(std::ostream& os, const HostChaosRunConfig& config,
                         const HostChaosRunResult& result) {
  os << "{\"type\":\"hostchaos_header\",\"app\":\"" << config.app
     << "\",\"hosts\":" << config.hosts
     << ",\"warm_handoff\":" << (config.warm_handoff ? "true" : "false")
     << ",\"attack_start\":" << config.attack_start
     << ",\"horizon\":" << config.horizon << "}\n";
  for (const cluster::HostTransition& tr : result.transitions) {
    os << "{\"type\":\"host_state\",\"tick\":" << tr.tick
       << ",\"host\":" << tr.host << ",\"from\":\""
       << cluster::HostStateName(tr.from) << "\",\"to\":\""
       << cluster::HostStateName(tr.to) << "\"}\n";
  }
  for (const cluster::EvacuationRecord& rec : result.evacuation_records) {
    os << "{\"type\":\"evacuation\",\"tick\":" << rec.started
       << ",\"finished\":" << rec.finished << ",\"from_host\":" << rec.from.host
       << ",\"vm\":" << rec.from.id << ",\"to_host\":" << rec.to.host
       << ",\"attempts\":" << rec.attempts << ",\"outcome\":\""
       << cluster::EvacuationOutcomeName(rec.outcome) << "\"}\n";
  }
  for (const HandoffEvent& event : result.handoff_events) {
    os << "{\"type\":\"handoff\",\"tick\":" << event.tick
       << ",\"from_host\":" << event.from.host
       << ",\"to_host\":" << event.to.host << ",\"vm\":" << event.to.id
       << ",\"forced\":" << (event.forced ? "true" : "false")
       << ",\"warm\":" << (event.warm ? "true" : "false") << ",\"status\":\""
       << event.status << "\",\"blind_ticks\":" << event.blind_ticks << "}\n";
  }
}

}  // namespace sds::eval
