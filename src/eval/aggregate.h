// Multi-run aggregation: the paper reports the median and 10th/90th
// percentiles over 20 runs for every accuracy/delay/overhead figure. Runs are
// deterministic per seed and independent, so they execute on a thread pool.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "eval/experiment.h"
#include "stats/descriptive.h"

namespace sds::eval {

struct AggregatedDetection {
  PercentileSummary recall;
  PercentileSummary specificity;
  // Detection delay in virtual seconds, over detected runs only.
  PercentileSummary delay_seconds;
  int runs = 0;
  int detected_runs = 0;
};

// Runs `runs` seeded repetitions of the detection experiment (seeds
// base_seed, base_seed+1, ...) on up to `threads` worker threads.
AggregatedDetection AggregateDetection(const DetectionRunConfig& config,
                                       int runs, std::uint64_t base_seed,
                                       int threads);

struct AggregatedOverhead {
  // Normalized execution time: scheme completion ticks / baseline (no
  // detection scheme) completion ticks, per seed.
  PercentileSummary normalized_time;
  int runs = 0;
};

AggregatedOverhead AggregateOverhead(const OverheadRunConfig& config,
                                     int runs, std::uint64_t base_seed,
                                     int threads);

// Simple index-parallel loop used by the aggregators and benches. `threads`
// <= 1 runs inline. fn must be safe to call concurrently for distinct i.
// An exception thrown by fn stops the loop (remaining indices are skipped,
// in-flight ones finish) and is rethrown on the calling thread after every
// worker joins; with multiple concurrent throwers one of them wins.
void ParallelFor(int n, int threads, const std::function<void(int)>& fn);

// Picks a sensible worker count from the hardware, capped by `max_threads`.
int DefaultThreads(int max_threads = 16);

}  // namespace sds::eval
