#include "eval/fleetobs.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <ostream>
#include <span>

#include "common/check.h"
#include "eval/aggregate.h"

namespace sds::eval {

namespace {

// The four health metrics every (host, tenant) pair emits each tick. Ids
// are fixed by registration order; DefaultFleetSloRules names must match.
constexpr const char* kMetricNames[] = {
    "detect.latency_ticks",
    "detect.false_alarm",
    "mitigation.converge_ticks",
    "sampler.delivery_ratio",
};
constexpr std::size_t kMetricCount = 4;

// SplitMix64 finalizer: stateless per-sample noise so every worker computes
// the same stream without sharing generator state.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Noise01(std::uint64_t seed, std::uint32_t host, std::uint32_t tenant,
               std::size_t metric, Tick tick) {
  std::uint64_t h = seed;
  h = Mix(h ^ host);
  h = Mix(h ^ (static_cast<std::uint64_t>(tenant) << 20));
  h = Mix(h ^ (static_cast<std::uint64_t>(metric) << 40));
  h = Mix(h ^ static_cast<std::uint64_t>(tick));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool PairAttacked(std::uint64_t seed, std::uint32_t host, std::uint32_t tenant,
                  double fraction) {
  const std::uint64_t h = Mix(Mix(seed ^ 0xa77acced) ^ host ^
                              (static_cast<std::uint64_t>(tenant) << 24));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < fraction;
}

struct StreamModel {
  std::uint64_t seed;
  Tick attack_start;
  Tick attack_end;
  double attacked_fraction;

  bool Attacking(std::uint32_t host, std::uint32_t tenant, Tick tick) const {
    return tick >= attack_start && tick < attack_end &&
           PairAttacked(seed, host, tenant, attacked_fraction);
  }

  double Value(std::uint32_t host, std::uint32_t tenant, std::size_t metric,
               Tick tick) const {
    const double n = Noise01(seed, host, tenant, metric, tick);
    const bool attacking = Attacking(host, tenant, tick);
    switch (metric) {
      case 0:  // detect.latency_ticks
        return attacking ? 700.0 + 200.0 * n : 200.0 + 100.0 * n;
      case 1:  // detect.false_alarm (rare spurious alarms off-attack)
        return !attacking && n < 0.002 ? 1.0 : 0.0;
      case 2:  // mitigation.converge_ticks
        return attacking ? 350.0 + 200.0 * n : 150.0 + 50.0 * n;
      case 3:  // sampler.delivery_ratio
        return attacking ? 0.60 + 0.20 * n : 0.97 + 0.03 * n;
    }
    return 0.0;
  }
};

bool RowsIdentical(const obs::RollupRow& a, const obs::RollupRow& b) {
  return a.window == b.window && a.key == b.key && a.count == b.count &&
         a.sum == b.sum && a.min == b.min && a.max == b.max &&
         a.p50 == b.p50 && a.p95 == b.p95 && a.p99 == b.p99;
}

// Ingests the full synthetic stream into `rollup`, fanning shards out over
// `threads` workers; each worker regenerates the stream and keeps only the
// keys its shard owns. Returns the per-worker total sample count (the whole
// fleet's, not just admitted).
std::uint64_t IngestFleet(const FleetObsConfig& config,
                          const StreamModel& model,
                          const obs::MetricId (&metric_ids)[kMetricCount],
                          obs::FleetRollup* rollup) {
  const auto shard_worker = [&](int shard_index) {
    obs::ShardWriter& shard =
        rollup->shard(static_cast<std::uint32_t>(shard_index));
    obs::ObsSample s;
    for (Tick tick = 0; tick < config.ticks; ++tick) {
      s.tick = tick;
      for (std::uint32_t host = 0; host < config.hosts; ++host) {
        s.key.host = host;
        for (std::uint32_t tenant = 0; tenant < config.tenants_per_host;
             ++tenant) {
          s.key.tenant = tenant;
          for (std::size_t m = 0; m < kMetricCount; ++m) {
            s.key.metric = metric_ids[m];
            if (obs::ShardOf(s.key, config.shards) !=
                static_cast<std::uint32_t>(shard_index)) {
              continue;
            }
            s.value = model.Value(host, tenant, m, tick);
            shard.Ingest(s);
          }
        }
      }
    }
  };
  ParallelFor(static_cast<int>(config.shards), config.threads, shard_worker);
  rollup->BarrierMerge(config.ticks + config.window_ticks);
  return static_cast<std::uint64_t>(config.ticks) * config.hosts *
         config.tenants_per_host * kMetricCount;
}

}  // namespace

FleetObsResult RunFleetObsSweep(const FleetObsConfig& config,
                                std::ostream* rollup_out) {
  SDS_CHECK(config.hosts > 0 && config.tenants_per_host > 0,
            "fleet must be non-empty");
  SDS_CHECK(config.ticks > 0 && config.window_ticks > 0, "bad tick geometry");
  SDS_CHECK(config.shards > 0, "need at least one shard");

  StreamModel model;
  model.seed = config.seed;
  model.attack_start = config.ticks / 3;
  model.attack_end = 2 * config.ticks / 3;
  model.attacked_fraction = config.attacked_fraction;

  obs::RollupConfig rollup_config;
  rollup_config.window_ticks = config.window_ticks;
  rollup_config.shards = config.shards;
  rollup_config.max_series_per_shard = config.max_series_per_shard;
  obs::FleetRollup rollup(rollup_config);
  obs::MetricId metric_ids[kMetricCount];
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    metric_ids[m] = rollup.RegisterMetric(kMetricNames[m]);
  }

  FleetObsResult result;
  const auto ingest_start = std::chrono::steady_clock::now();
  result.samples = IngestFleet(config, model, metric_ids, &rollup);
  const auto ingest_end = std::chrono::steady_clock::now();
  result.ingest_wall_seconds =
      std::chrono::duration<double>(ingest_end - ingest_start).count();
  result.ingest_rate_per_sec =
      result.ingest_wall_seconds > 0.0
          ? static_cast<double>(result.samples) / result.ingest_wall_seconds
          : 0.0;
  result.rows = rollup.completed().size();
  result.rollup_memory_bytes = rollup.ApproxMemoryBytes();
  result.live_series = rollup.live_series();
  result.dropped_late = rollup.dropped_late();
  result.dropped_series = rollup.dropped_series();
  result.dropped_samples = rollup.dropped_samples();
  for (std::uint32_t host = 0; host < config.hosts; ++host) {
    for (std::uint32_t tenant = 0; tenant < config.tenants_per_host;
         ++tenant) {
      if (PairAttacked(config.seed, host, tenant, config.attacked_fraction)) {
        ++result.attacked_pairs;
      }
    }
  }

  // The determinism pin at bench scale: the same stream through ONE shard
  // must merge to the byte-same rollup rows.
  if (config.verify_single_shard) {
    FleetObsConfig reference = config;
    reference.shards = 1;
    reference.threads = 1;
    obs::RollupConfig ref_config = rollup_config;
    ref_config.shards = 1;
    // One shard must admit what N shards admitted in aggregate.
    ref_config.max_series_per_shard =
        config.max_series_per_shard * config.shards;
    obs::FleetRollup ref_rollup(ref_config);
    obs::MetricId ref_ids[kMetricCount];
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      ref_ids[m] = ref_rollup.RegisterMetric(kMetricNames[m]);
    }
    IngestFleet(reference, model, ref_ids, &ref_rollup);
    result.verified_single_shard = true;
    result.sharded_matches_single_shard =
        rollup.completed().size() == ref_rollup.completed().size();
    if (result.sharded_matches_single_shard) {
      for (std::size_t i = 0; i < rollup.completed().size(); ++i) {
        if (!RowsIdentical(rollup.completed()[i], ref_rollup.completed()[i])) {
          result.sharded_matches_single_shard = false;
          break;
        }
      }
    }
  }

  // SLO evaluation over the merged stream, window by window (empty windows
  // still advance the burn estimate).
  obs::SloEngine engine(obs::DefaultFleetSloRules(), &rollup);
  const std::vector<obs::RollupRow>& rows = rollup.completed();
  const std::int64_t last_window = config.ticks / config.window_ticks;
  std::size_t cursor = 0;
  for (std::int64_t window = 0; window <= last_window; ++window) {
    const std::size_t begin = cursor;
    while (cursor < rows.size() && rows[cursor].window == window) ++cursor;
    engine.OnWindow(window, std::span<const obs::RollupRow>(
                                rows.data() + begin, cursor - begin));
  }
  result.slo_alerts = engine.alerts().size();
  for (const obs::SloAlert& a : engine.alerts()) {
    if (a.level == obs::SloLevel::kPage) ++result.slo_pages;
    if (a.level == obs::SloLevel::kWarn) ++result.slo_warns;
  }

  // Alert precision/recall vs the ground truth, per (window, host, tenant)
  // cell: a cell is FLAGGED when its latency p95 breaches the threshold,
  // POSITIVE when the pair attacks for the majority of the window.
  for (const double threshold : config.thresholds) {
    ThresholdPoint point;
    point.threshold = threshold;
    for (const obs::RollupRow& row : rows) {
      if (row.key.metric != metric_ids[0]) continue;
      const bool flagged = row.p95 > threshold;
      const Tick mid = row.window * config.window_ticks +
                       config.window_ticks / 2;
      const bool positive = model.Attacking(row.key.host, row.key.tenant, mid);
      if (flagged && positive) {
        ++point.true_positives;
      } else if (flagged) {
        ++point.false_positives;
      } else if (positive) {
        ++point.false_negatives;
      } else {
        ++point.true_negatives;
      }
    }
    const std::uint64_t flagged_total =
        point.true_positives + point.false_positives;
    const std::uint64_t positive_total =
        point.true_positives + point.false_negatives;
    point.precision = flagged_total == 0
                          ? 1.0
                          : static_cast<double>(point.true_positives) /
                                static_cast<double>(flagged_total);
    point.recall = positive_total == 0
                       ? 1.0
                       : static_cast<double>(point.true_positives) /
                             static_cast<double>(positive_total);
    result.curve.push_back(point);
  }

  if (rollup_out) {
    rollup.WriteJsonl(*rollup_out);
    engine.WriteJsonl(*rollup_out);
  }
  return result;
}

void WriteFleetObsJson(const FleetObsConfig& config,
                       const FleetObsResult& result, std::ostream& os) {
  os << "{\"bench\":\"fleetobs\",\"hosts\":" << config.hosts
     << ",\"tenants_per_host\":" << config.tenants_per_host
     << ",\"ticks\":" << config.ticks
     << ",\"window_ticks\":" << config.window_ticks
     << ",\"shards\":" << config.shards << ",\"threads\":" << config.threads
     << ",\"seed\":" << config.seed
     << ",\"attacked_pairs\":" << result.attacked_pairs
     << ",\"samples\":" << result.samples << ",\"rows\":" << result.rows
     << ",\"ingest_wall_seconds\":" << result.ingest_wall_seconds
     << ",\"ingest_rate_per_sec\":" << result.ingest_rate_per_sec
     << ",\"rollup_memory_bytes\":" << result.rollup_memory_bytes
     << ",\"live_series\":" << result.live_series
     << ",\"dropped_late\":" << result.dropped_late
     << ",\"dropped_series\":" << result.dropped_series
     << ",\"dropped_samples\":" << result.dropped_samples
     << ",\"slo_alerts\":" << result.slo_alerts
     << ",\"slo_pages\":" << result.slo_pages
     << ",\"slo_warns\":" << result.slo_warns
     << ",\"verified_single_shard\":"
     << (result.verified_single_shard ? "true" : "false")
     << ",\"sharded_matches_single_shard\":"
     << (result.sharded_matches_single_shard ? "true" : "false")
     << ",\"curve\":[";
  for (std::size_t i = 0; i < result.curve.size(); ++i) {
    const ThresholdPoint& p = result.curve[i];
    if (i) os << ",";
    os << "{\"threshold\":" << p.threshold << ",\"tp\":" << p.true_positives
       << ",\"fp\":" << p.false_positives << ",\"fn\":" << p.false_negatives
       << ",\"tn\":" << p.true_negatives << ",\"precision\":" << p.precision
       << ",\"recall\":" << p.recall << "}";
  }
  os << "]}";
}

}  // namespace sds::eval
