// Monitoring-plane robustness protocol.
//
// The accuracy protocol (experiment.h) assumes a perfect monitoring plane.
// This module re-runs the same three-stage experiment with a fault::FaultPlan
// injected between the PCM sampler and the detector, and sweeps fault kind x
// fault rate to produce recall / specificity / delay DEGRADATION CURVES: how
// fast does each detection scheme fall apart as its input stream rots, and
// how much of that is bought back by the degradation policies in
// detect/degrade.h?
//
// Faults only perturb the monitoring plane of stages 2 and 3 — the profile
// (stage 1) is built from a certified-clean window, matching the paper's
// assumption that profiling happens in a safe window right after VM start.
// The simulation seed derivation is IDENTICAL to RunDetectionRun, so a
// faulted run and its fault-free baseline observe the same workload and
// attack trajectory; the only difference is what the detector gets to see.
#pragma once

#include <iosfwd>
#include <vector>

#include "detect/degrade.h"
#include "eval/experiment.h"
#include "fault/fault_plan.h"

namespace sds::eval {

struct RobustnessRunConfig {
  fault::FaultPlan plan;
  detect::DegradeConfig degrade;
};

// What actually happened to the monitoring plane during one faulted run.
struct RobustnessCounters {
  fault::FaultStats fault;
  detect::DegradeStats degrade;
  // KStest only: collections that ran out of slack and were abandoned.
  std::uint64_t ks_abandoned_collections = 0;

  void Accumulate(const RobustnessCounters& other);
};

// RunDetectionRun with the monitoring plane of stages 2+3 routed through a
// FaultInjector(robust.plan) and the detector's DegradingSampleGate
// configured by robust.degrade. Same `seed` => same simulated trajectory as
// the fault-free RunDetectionRun. Fully deterministic for a fixed
// (config, seed, robust).
DetectionRunResult RunDetectionRunFaulted(const DetectionRunConfig& config,
                                          std::uint64_t seed,
                                          const RobustnessRunConfig& robust,
                                          RobustnessCounters* counters);

struct RobustnessSweepConfig {
  DetectionRunConfig run;
  // The sweep grid: every kind at every rate, plus one fault-free baseline
  // cell (rate 0) that still routes through the injector + gate.
  std::vector<fault::FaultKind> kinds = {
      fault::FaultKind::kDropSample,
      fault::FaultKind::kOutage,
      fault::FaultKind::kSamplerDeath,
      fault::FaultKind::kCounterReset,
      fault::FaultKind::kCorruption,
  };
  std::vector<double> rates = {0.01, 0.05, 0.2};
  detect::DegradeConfig degrade;
  int runs_per_cell = 3;
  std::uint64_t base_seed = 9000;
  // Seed of the fault plans; varied per run so fault schedules differ
  // across repeat runs of a cell.
  std::uint64_t fault_seed = 0xf5eedull;
};

// One (kind, rate) grid cell, aggregated over runs_per_cell seeded runs.
struct RobustnessCell {
  fault::FaultKind kind = fault::FaultKind::kDropSample;
  double rate = 0.0;  // 0 = fault-free baseline cell
  int runs = 0;
  int detected_runs = 0;
  // Mean detection delay over the detected runs; -1 when none detected.
  double mean_delay_ticks = -1.0;
  int true_negative_intervals = 0;
  int false_positive_intervals = 0;
  RobustnessCounters counters;

  double recall() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(detected_runs) /
                           static_cast<double>(runs);
  }
  double specificity() const {
    const int total = true_negative_intervals + false_positive_intervals;
    return total == 0 ? 1.0
                      : static_cast<double>(true_negative_intervals) /
                            static_cast<double>(total);
  }
};

struct RobustnessSweepResult {
  RobustnessCell baseline;
  std::vector<RobustnessCell> cells;  // kinds x rates, kind-major
};

RobustnessSweepResult RunRobustnessSweep(const RobustnessSweepConfig& config);

// Writes the whole sweep as one JSON object (the BENCH_robustness schema):
// scheme/app/attack, degradation policy, the baseline cell and every grid
// cell with recall, specificity, mean delay and the fault/degradation
// counters.
void WriteRobustnessJson(std::ostream& os, const RobustnessSweepConfig& config,
                         const RobustnessSweepResult& result);

}  // namespace sds::eval
