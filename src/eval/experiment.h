// Experiment protocols (paper Section 5.1):
//
//   Stage 1  profile the application clean (build SDS profiles);
//   Stage 2  run without attack (specificity ground truth);
//   Stage 3  run with the attack active (recall / delay ground truth).
//
// Plus the fixed-work overhead protocol of Figure 12 and the clean-run KStest
// false-alarm study of Figure 1 / Section 3.2.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "detect/kstest_detector.h"
#include "detect/params.h"
#include "detect/profile.h"
#include "eval/scenario.h"
#include "pcm/pcm_sampler.h"

namespace sds::eval {

enum class Scheme : std::uint8_t { kNone, kSdsB, kSdsP, kSds, kKsTest };

const char* SchemeName(Scheme scheme);

struct DetectionRunConfig {
  std::string app = "kmeans";
  AttackKind attack = AttackKind::kBusLock;
  Scheme scheme = Scheme::kSds;
  detect::DetectorParams params;
  detect::KsTestParams ks_params;

  // Stage durations in ticks. Defaults are scaled from the paper's
  // 300 s + 300 s to keep multi-run sweeps fast; benches expose flags to run
  // the full-length protocol. The profile window must be long enough to see
  // every execution phase of phase-switching applications (TeraSort's four
  // phases span ~80 s), or sigma_E underestimates the clean variability.
  Tick profile_ticks = 12000;
  Tick clean_ticks = 15000;
  Tick attack_ticks = 15000;

  // Specificity is computed over decision intervals of this length.
  Tick eval_interval = 1000;

  ScenarioConfig scenario;  // app/attack/seed fields are overwritten
};

struct DetectionRunResult {
  // Binary per-run detection success: did the scheme declare an attack at
  // any point of the attack stage?
  bool detected = false;
  // Ticks from attack start to the first alarm (unset when !detected).
  std::optional<Tick> detection_delay_ticks;
  // Clean-stage decision intervals without / with a false alarm.
  int true_negative_intervals = 0;
  int false_positive_intervals = 0;
  double specificity() const;
  double recall() const { return detected ? 1.0 : 0.0; }
  // Whether profiling classified the application as periodic.
  bool profile_periodic = false;
};

// Runs one full three-stage experiment for `seed`.
DetectionRunResult RunDetectionRun(const DetectionRunConfig& config,
                                   std::uint64_t seed);

// -- Profiling / measurement-study helpers -----------------------------------

// Runs the scenario's deployment WITHOUT the attack program active and
// collects `ticks` clean PCM samples of the victim (Stage 1; also the first
// 60 s of Figures 2-6).
std::vector<pcm::PcmSample> CollectCleanSamples(const ScenarioConfig& base,
                                                Tick ticks,
                                                std::uint64_t seed);

// Runs the Section 3.3 measurement study: `total_ticks` of victim samples
// with the attack active from `attack_start` on.
std::vector<pcm::PcmSample> RunMeasurementStudy(const std::string& app,
                                                AttackKind attack,
                                                Tick total_ticks,
                                                Tick attack_start,
                                                std::uint64_t seed);

// -- Overhead protocol (Figure 12) -------------------------------------------

struct OverheadRunConfig {
  std::string app = "kmeans";
  Scheme scheme = Scheme::kNone;
  detect::DetectorParams params;
  detect::KsTestParams ks_params;
  // The measured co-located VM finishes after this many work units.
  std::uint64_t work_target_units = 2000;
  // Safety cap on simulated ticks.
  Tick max_ticks = 200000;
  ScenarioConfig scenario;
};

struct OverheadRunResult {
  // Ticks the measured co-located application VM needed to finish its fixed
  // work with the scheme active.
  Tick completion_ticks = 0;
  bool completed = false;
  // Diagnostics: operations deferred by the monitoring-load model during the
  // measured window.
  std::uint64_t monitor_dropped_ops = 0;
};

// Runs the fixed-work protocol: a protected VM (same app) is monitored by
// `scheme` while a co-located VM runs the measured application to a fixed
// amount of work; no attack is launched. Normalizing by the Scheme::kNone
// completion time yields Figure 12's normalized execution time.
OverheadRunResult RunOverheadRun(const OverheadRunConfig& config,
                                 std::uint64_t seed);

// -- KStest false-alarm study (Figure 1, Section 3.2) ------------------------

struct KsFalseAlarmResult {
  // One KS 0/1 decision sequence per L_R interval.
  std::vector<std::vector<int>> interval_decisions;
  // Fraction of L_R intervals in which KStest would declare an attack
  // (>= 4 consecutive rejections) although none is present.
  double alarm_fraction = 0.0;
};

KsFalseAlarmResult RunKsFalseAlarmStudy(const std::string& app,
                                        const detect::KsTestParams& params,
                                        int lr_intervals, std::uint64_t seed);

}  // namespace sds::eval
