// Chaos-restart sweep for the streaming detection service (DESIGN.md §14,
// EXPERIMENTS.md).
//
// Builds one deterministic multi-tenant feed — clean tenants, attacked
// tenants that shift their counter statistics mid-run, a poison tenant
// spraying insane samples, malformed lines, duplicates, future timestamps,
// and ghost-tenant bursts that overflow the tenant table and the ingest
// queue — then:
//
//   1. REFERENCE: drives an uninterrupted service over the whole feed and
//      records its decision log, alarm sequence and accounting.
//   2. CHAOS: for every crash point in a deterministic fault plan grid
//      (mid-WAL-append at several torn byte fractions, mid-checkpoint,
//      clean-crash-after-append, at several operation ordinals), drives a
//      fresh service until the planned crash kills it, reincarnates the
//      store's surviving bytes into a recovered service, re-drives the SAME
//      feed from the beginning (at-least-once redelivery), and compares.
//
// The pin: every recovered run's decision log, alarm sequence and pinned
// accounting must be BIT-IDENTICAL to the reference. The sweep also emits
// the BENCH_svc curves: WAL records replayed and events redelivered-then-
// deduplicated per crash point (the recovery-cost curve) and the shed rate
// under burst pressure.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "fault/service_plan.h"
#include "svc/service.h"

namespace sds::eval {

// Service config tuned to the sweep's scale: small analyzer windows so
// alarms fire within a ~thousand-tick feed, and tight queue/table bounds so
// the coalesce, shed and eviction paths actually exercise.
svc::SvcConfig ChaosSvcConfig();

struct ServiceChaosConfig {
  svc::SvcConfig svc = ChaosSvcConfig();
  // Clean tenants 0..tenants-1; tenant id `tenants` is the poison tenant;
  // ghost tenants use ids 1000+.
  std::uint32_t tenants = 6;
  Tick ticks = 1200;
  std::uint64_t seed = 42;
  // Attacked tenants shift their access/miss statistics during
  // [attack_start, ticks).
  Tick attack_start = 600;
  double attacked_fraction = 0.34;
  // Poison-input rates, per clean-tenant sample (deterministic hash):
  double malformed_rate = 0.01;
  double duplicate_rate = 0.02;
  double future_rate = 0.004;
  // The poison tenant emits an insane sample every `insane_every` ticks.
  Tick insane_every = 7;
  // Ghost-tenant bursts: every `burst_every` ticks, `burst_tenants` extra
  // tenants emit for `burst_len` ticks (queue pressure + LRU pressure).
  Tick burst_every = 300;
  Tick burst_len = 40;
  std::uint32_t burst_tenants = 12;
  // Crash-point grid: each kind fires at these fractions of the reference
  // run's operation count, each torn kind at these surviving byte
  // fractions.
  std::vector<double> op_fractions = {0.15, 0.5, 0.85};
  std::vector<double> byte_fractions = {0.0, 0.5};
  int threads = 4;
};

struct ChaosPointResult {
  fault::ServiceFaultKind kind = fault::ServiceFaultKind::kCrashMidWalAppend;
  std::uint64_t op_index = 0;
  double byte_fraction = 0.0;
  // The planned crash actually killed the first incarnation.
  bool fired = false;
  Tick crash_tick = -1;
  // Recovery cost, from the second incarnation.
  bool recovered_from_checkpoint = false;
  std::uint64_t replayed_records = 0;
  std::uint64_t skipped_records = 0;
  std::uint64_t redelivered_deduped = 0;
  std::uint64_t recovery_wal_valid_bytes = 0;
  svc::WalScanStop wal_stop = svc::WalScanStop::kCleanEnd;
  // The headline pin.
  bool bit_identical = false;
  std::uint64_t alarms = 0;
  double shed_rate = 0.0;
};

struct ServiceChaosResult {
  // Reference (uninterrupted) run.
  std::uint64_t feed_events = 0;
  std::uint64_t ref_wal_appends = 0;
  std::uint64_t ref_checkpoints = 0;
  std::uint64_t ref_alarms = 0;
  std::uint64_t ref_decisions = 0;
  double ref_shed_rate = 0.0;
  svc::SvcAccounting ref_accounting;
  std::vector<ChaosPointResult> points;
  bool all_bit_identical = false;
  double wall_seconds = 0.0;
};

// Runs the sweep. When `accounting_out` is non-null, one svc_ref line plus
// one svc_recovery line per crash point are written as JSONL — the input of
// the --svc section in tools/trace_inspect and tools/fleet_inspect.
ServiceChaosResult RunServiceChaosSweep(const ServiceChaosConfig& config,
                                        std::ostream* accounting_out = nullptr);

// BENCH_svc JSON object (one line, no trailing newline).
void WriteServiceChaosJson(const ServiceChaosConfig& config,
                           const ServiceChaosResult& result, std::ostream& os);

}  // namespace sds::eval
