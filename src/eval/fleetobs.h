// Fleet-scale observability sweep (DESIGN.md §13, EXPERIMENTS.md).
//
// Drives the obs plane end to end at fleet scale: a synthetic deterministic
// stream of per-(host, tenant) detector health metrics — detection latency,
// false alarms, mitigation convergence, sampler delivery — with a known
// ground-truth set of attacked pairs and a fixed attack interval. The stream
// is ingested through the sharded FleetRollup (each worker regenerates the
// stream and filters to its shard — no cross-thread handoff, bit-identical
// at any worker count), barrier-merged, scored by the SLO engine, and
// compared against the ground truth to produce an alert precision/recall
// curve across detection thresholds.
//
// Three headline numbers feed BENCH_fleetobs.json: ingest rate
// (samples/sec across shards), rollup memory ceiling (bytes of live series
// state), and the precision/recall curve. The sweep also re-runs the same
// stream single-sharded and cross-checks the merged rollup is bit-identical
// — the determinism pin, exercised at bench scale on every CI run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/rollup.h"
#include "obs/slo.h"

namespace sds::eval {

struct FleetObsConfig {
  std::uint32_t hosts = 8;
  std::uint32_t tenants_per_host = 4;
  Tick ticks = 2000;
  Tick window_ticks = 100;
  std::uint32_t shards = 4;
  int threads = 4;
  std::size_t max_series_per_shard = 4096;
  std::uint64_t seed = 42;
  // Fraction of (host, tenant) pairs under attack during the attack
  // interval [ticks/3, 2*ticks/3).
  double attacked_fraction = 0.25;
  // Detection-latency thresholds (ticks) swept for the precision/recall
  // curve.
  std::vector<double> thresholds = {300, 400, 500, 600, 700, 800};
  // Skip the single-shard cross-check (it doubles the work).
  bool verify_single_shard = true;
};

struct ThresholdPoint {
  double threshold = 0.0;
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t false_negatives = 0;
  std::uint64_t true_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
};

struct FleetObsResult {
  std::uint64_t samples = 0;
  std::uint64_t rows = 0;
  double ingest_wall_seconds = 0.0;
  double ingest_rate_per_sec = 0.0;
  std::size_t rollup_memory_bytes = 0;
  std::size_t live_series = 0;
  std::uint64_t dropped_late = 0;
  std::uint64_t dropped_series = 0;
  std::uint64_t dropped_samples = 0;
  std::uint64_t attacked_pairs = 0;
  // SLO engine outcome on the merged stream.
  std::uint64_t slo_alerts = 0;
  std::uint64_t slo_pages = 0;
  std::uint64_t slo_warns = 0;
  std::vector<ThresholdPoint> curve;
  // Single-shard cross-check: true when the sharded merge reproduced the
  // reference stream bit-identically (always true when verification ran).
  bool verified_single_shard = false;
  bool sharded_matches_single_shard = false;
};

// Runs the sweep. When `rollup_out` is non-null, the merged rollup stream,
// rollup_stats accounting line, SLO alerts and rule status are written to it
// as JSONL — the input of tools/fleet_inspect.
FleetObsResult RunFleetObsSweep(const FleetObsConfig& config,
                                std::ostream* rollup_out = nullptr);

// BENCH_fleetobs JSON object (one line, no trailing newline).
void WriteFleetObsJson(const FleetObsConfig& config,
                       const FleetObsResult& result, std::ostream& os);

}  // namespace sds::eval
