#include "eval/scenario.h"

#include "attacks/scheduled_workload.h"
#include "common/check.h"
#include "workloads/catalog.h"

namespace sds::eval {

const char* AttackName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kNone:
      return "none";
    case AttackKind::kBusLock:
      return "bus-lock";
    case AttackKind::kLlcCleansing:
      return "llc-cleansing";
  }
  return "?";
}

Scenario BuildScenario(const ScenarioConfig& config) {
  SDS_CHECK(workloads::IsKnownApp(config.app), "unknown application");
  SDS_CHECK(config.benign_vms >= 0, "benign VM count must be non-negative");

  auto make_program = [&config](AttackKind kind) {
    std::unique_ptr<vm::Workload> program;
    if (kind == AttackKind::kBusLock) {
      program = std::make_unique<attacks::BusLockAttacker>(config.bus_lock);
    } else {
      attacks::LlcCleansingConfig cc = config.cleansing;
      cc.cache_sets = config.machine.cache.sets;
      cc.cache_ways = config.machine.cache.ways;
      program = std::make_unique<attacks::LlcCleansingAttacker>(cc);
    }
    return program;
  };

  Scenario s;
  s.machine = std::make_unique<sim::Machine>(config.machine);
  Rng root(config.seed);
  s.hypervisor = std::make_unique<vm::Hypervisor>(
      *s.machine, config.hypervisor, root.Fork());

  // Victim first (stable owner id 1 across scenarios).
  s.victim = s.hypervisor->CreateVm("victim-" + config.app,
                                    workloads::MakeApp(config.app));

  if (config.attack != AttackKind::kNone) {
    s.attacker = s.hypervisor->CreateVm(
        "attacker", std::make_unique<attacks::ScheduledWorkload>(
                        make_program(config.attack), config.attack_start,
                        config.attack_stop));
  }

  if (config.attack2 != AttackKind::kNone) {
    s.attacker2 = s.hypervisor->CreateVm(
        "attacker2", std::make_unique<attacks::ScheduledWorkload>(
                         make_program(config.attack2), config.attack2_start,
                         config.attack2_stop));
  }

  for (int i = 0; i < config.benign_vms; ++i) {
    s.hypervisor->CreateVm("benign-" + std::to_string(i),
                           workloads::MakeBenignUtility());
  }
  return s;
}

}  // namespace sds::eval
