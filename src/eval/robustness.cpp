#include "eval/robustness.h"

#include <ostream>

#include "common/check.h"

namespace sds::eval {

void RobustnessCounters::Accumulate(const RobustnessCounters& other) {
  for (std::size_t k = 0; k < fault::kFaultKindCount; ++k) {
    fault.injected[k] += other.fault.injected[k];
  }
  fault.missing_ticks += other.fault.missing_ticks;
  fault.tampered_samples += other.fault.tampered_samples;
  fault.restart_attempts += other.fault.restart_attempts;
  fault.restarts_denied += other.fault.restarts_denied;
  fault.restarts += other.fault.restarts;

  degrade.delivered += other.degrade.delivered;
  degrade.gap_ticks += other.degrade.gap_ticks;
  degrade.quarantined += other.degrade.quarantined;
  degrade.substituted += other.degrade.substituted;
  degrade.rewarms += other.degrade.rewarms;
  degrade.watchdog_attempts += other.degrade.watchdog_attempts;
  degrade.watchdog_restarts += other.degrade.watchdog_restarts;

  ks_abandoned_collections += other.ks_abandoned_collections;
}

namespace {

// Runs runs_per_cell seeded runs of one grid cell and aggregates them.
RobustnessCell RunCell(const RobustnessSweepConfig& config,
                       const fault::FaultPlan& plan, fault::FaultKind kind,
                       double rate) {
  RobustnessCell cell;
  cell.kind = kind;
  cell.rate = rate;
  double delay_sum = 0.0;
  for (int r = 0; r < config.runs_per_cell; ++r) {
    RobustnessRunConfig robust;
    robust.plan = plan;
    // Vary the fault schedule with the run while keeping it a pure function
    // of (fault_seed, kind, rate, run index).
    robust.plan.seed =
        config.fault_seed +
        std::uint64_t{0x9e3779b97f4a7c15} * static_cast<std::uint64_t>(r + 1);
    robust.degrade = config.degrade;
    RobustnessCounters counters;
    const DetectionRunResult res = RunDetectionRunFaulted(
        config.run, config.base_seed + static_cast<std::uint64_t>(r), robust,
        &counters);
    ++cell.runs;
    if (res.detected) {
      ++cell.detected_runs;
      delay_sum += static_cast<double>(res.detection_delay_ticks.value_or(0));
    }
    cell.true_negative_intervals += res.true_negative_intervals;
    cell.false_positive_intervals += res.false_positive_intervals;
    cell.counters.Accumulate(counters);
  }
  if (cell.detected_runs > 0) {
    cell.mean_delay_ticks = delay_sum / cell.detected_runs;
  }
  return cell;
}

void WriteCellJson(std::ostream& os, const RobustnessCell& cell,
                   const char* kind_name) {
  os << "{\"kind\":\"" << kind_name << "\",\"rate\":" << cell.rate
     << ",\"runs\":" << cell.runs
     << ",\"detected_runs\":" << cell.detected_runs
     << ",\"recall\":" << cell.recall()
     << ",\"specificity\":" << cell.specificity()
     << ",\"mean_delay_ticks\":" << cell.mean_delay_ticks
     << ",\"false_positive_intervals\":" << cell.false_positive_intervals
     << ",\"injected\":" << cell.counters.fault.injected_total()
     << ",\"missing_ticks\":" << cell.counters.fault.missing_ticks
     << ",\"gap_ticks\":" << cell.counters.degrade.gap_ticks
     << ",\"quarantined\":" << cell.counters.degrade.quarantined
     << ",\"substituted\":" << cell.counters.degrade.substituted
     << ",\"rewarms\":" << cell.counters.degrade.rewarms
     << ",\"watchdog_restarts\":" << cell.counters.degrade.watchdog_restarts
     << ",\"ks_abandoned\":" << cell.counters.ks_abandoned_collections << "}";
}

}  // namespace

RobustnessSweepResult RunRobustnessSweep(const RobustnessSweepConfig& config) {
  SDS_CHECK(config.runs_per_cell >= 1, "need at least one run per cell");
  SDS_CHECK(!config.kinds.empty() && !config.rates.empty(),
            "empty sweep grid");
  RobustnessSweepResult result;

  // Baseline: the full injector + gate machinery in the path, but a
  // zero-rate plan. Bit-transparent by the golden invariant, so this equals
  // the plain RunDetectionRun numbers while exercising the same code path
  // the faulted cells use.
  fault::FaultPlan baseline_plan;
  result.baseline =
      RunCell(config, baseline_plan, fault::FaultKind::kDropSample, 0.0);

  for (const fault::FaultKind kind : config.kinds) {
    for (const double rate : config.rates) {
      SDS_CHECK(rate > 0.0 && rate <= 1.0,
                "sweep rates must be probabilities > 0");
      result.cells.push_back(
          RunCell(config, fault::FaultPlan::Single(kind, rate, 0), kind,
                  rate));
    }
  }
  return result;
}

void WriteRobustnessJson(std::ostream& os, const RobustnessSweepConfig& config,
                         const RobustnessSweepResult& result) {
  os << "{\"bench\":\"robustness\",\"app\":\"" << config.run.app
     << "\",\"attack\":\"" << AttackName(config.run.attack)
     << "\",\"scheme\":\"" << SchemeName(config.run.scheme)
     << "\",\"gap_policy\":\""
     << detect::GapPolicyName(config.degrade.gap_policy)
     << "\",\"runs_per_cell\":" << config.runs_per_cell
     << ",\"clean_ticks\":" << config.run.clean_ticks
     << ",\"attack_ticks\":" << config.run.attack_ticks << ",\"baseline\":";
  WriteCellJson(os, result.baseline, "none");
  os << ",\"cells\":[";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    if (i > 0) os << ",";
    WriteCellJson(os, result.cells[i],
                  fault::FaultKindName(result.cells[i].kind));
  }
  os << "]}";
}

}  // namespace sds::eval
