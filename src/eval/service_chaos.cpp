#include "eval/service_chaos.h"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "eval/aggregate.h"
#include "svc/store.h"

namespace sds::eval {

namespace {

// SplitMix64 finalizer — stateless deterministic draws, same idiom as the
// fleetobs stream model.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Draw01(std::uint64_t seed, std::uint64_t tenant, Tick tick,
              std::uint64_t salt) {
  std::uint64_t h = Mix(seed ^ (salt << 48));
  h = Mix(h ^ (tenant << 24));
  h = Mix(h ^ static_cast<std::uint64_t>(tick));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool TenantAttacked(std::uint64_t seed, std::uint32_t tenant,
                    double fraction) {
  return Draw01(seed, tenant, 0, 0xa77ac) < fraction;
}

// One feed delivery: a parsed sample or a garbled line. `at_tick` is the
// service-clock tick the event arrives at.
struct FeedEvent {
  bool malformed = false;
  Tick at_tick = 0;
  svc::SvcSample sample;
};

// The full deterministic feed, offsets 1..N in arrival order. Identical for
// the reference run and every chaos re-drive.
std::vector<FeedEvent> BuildChaosFeed(const ServiceChaosConfig& c) {
  std::vector<FeedEvent> feed;
  std::uint64_t next_offset = 1;
  const std::uint32_t poison_tenant = c.tenants;

  const auto emit = [&](Tick at, bool malformed, std::uint32_t tenant,
                        Tick data_tick, std::uint64_t access,
                        std::uint64_t miss) {
    FeedEvent e;
    e.malformed = malformed;
    e.at_tick = at;
    e.sample.offset = next_offset++;
    e.sample.tenant = tenant;
    e.sample.tick = data_tick;
    e.sample.access_num = access;
    e.sample.miss_num = miss;
    feed.push_back(e);
  };

  const auto clean_values = [&](std::uint32_t tenant, Tick t,
                                std::uint64_t* access, std::uint64_t* miss) {
    const bool attacked =
        t >= c.attack_start &&
        TenantAttacked(c.seed, tenant, c.attacked_fraction);
    double a = 2200.0 + 600.0 * Draw01(c.seed, tenant, t, 1);
    if (attacked) a += 2600.0 + 400.0 * Draw01(c.seed, tenant, t, 2);
    const double ratio = 0.25 + 0.10 * Draw01(c.seed, tenant, t, 3);
    *access = static_cast<std::uint64_t>(a);
    *miss = static_cast<std::uint64_t>(a * ratio);
  };

  for (Tick t = 0; t < c.ticks; ++t) {
    for (std::uint32_t u = 0; u < c.tenants; ++u) {
      std::uint64_t access = 0;
      std::uint64_t miss = 0;
      clean_values(u, t, &access, &miss);
      if (Draw01(c.seed, u, t, 4) < c.malformed_rate) {
        // The line got garbled in transit: one malformed delivery instead
        // of the sample.
        emit(t, true, 0, 0, 0, 0);
      } else {
        emit(t, false, u, t, access, miss);
        if (t > 0 && Draw01(c.seed, u, t, 5) < c.duplicate_rate) {
          // The feed stutters: yesterday's reading again (stale rung).
          std::uint64_t pa = 0;
          std::uint64_t pm = 0;
          clean_values(u, t - 1, &pa, &pm);
          emit(t, false, u, t - 1, pa, pm);
        }
        if (Draw01(c.seed, u, t, 6) < c.future_rate) {
          // A clock-skewed duplicate from the future (future rung).
          emit(t, false, u, t + c.svc.admission.max_future_ticks + 10,
               access, miss);
        }
      }
    }
    // The poison tenant sprays physically impossible samples (miss >
    // access) on a fixed cadence: offense -> quarantine cycles.
    if (c.insane_every > 0 && t % c.insane_every == 0) {
      emit(t, false, poison_tenant, t, 1000, 2000);
    }
    // Ghost-tenant bursts: table pressure (LRU evictions) + queue pressure
    // (coalesce / shed tiers).
    if (c.burst_every > 0 && (t % c.burst_every) < c.burst_len) {
      // Alternate between two ghost cohorts: cohort A's stale entries are
      // what cohort B evicts, and when A returns two bursts later its
      // re-creations count as readmissions.
      const auto burst_index = static_cast<std::uint32_t>(t / c.burst_every);
      for (std::uint32_t g = 0; g < c.burst_tenants; ++g) {
        const std::uint32_t ghost = 1000 + (burst_index % 2) * 100 + g;
        emit(t, false, ghost, t,
             1500 + static_cast<std::uint64_t>(
                        300.0 * Draw01(c.seed, ghost, t, 7)),
             400);
      }
    }
  }
  return feed;
}

// Drives `service` over the whole feed, advancing the service clock from
// the events' arrival ticks and finishing with a quiescing drain. Safe to
// call again on a recovered service: tick advances and transport offsets
// the service already processed deduplicate to no-ops. Returns false when
// the service died mid-drive (planned crash).
bool DriveFeed(svc::DetectionService& service,
               const std::vector<FeedEvent>& feed, Tick feed_ticks) {
  for (const FeedEvent& e : feed) {
    if (!service.AdvanceTick(e.at_tick)) return false;
    if (e.malformed) {
      if (!service.OfferMalformed(e.sample.offset)) return false;
    } else {
      if (!service.Offer(e.sample)) return false;
    }
  }
  // Quiesce: keep ticking until the backlog drains (bounded — shed depth
  // caps the queue, drain_per_tick > 0 empties it).
  Tick t = feed_ticks;
  while (service.queue_depth() > 0) {
    if (!service.AdvanceTick(t++)) return false;
  }
  return true;
}

double ShedRate(const svc::SvcAccounting& acct) {
  return acct.offered == 0
             ? 0.0
             : static_cast<double>(acct.shed) /
                   static_cast<double>(acct.offered);
}

}  // namespace

svc::SvcConfig ChaosSvcConfig() {
  svc::SvcConfig c;
  c.pipeline.mode = svc::PipelineMode::kSds;
  c.pipeline.det.window = 40;
  c.pipeline.det.step = 10;
  c.pipeline.det.h_c = 4;
  c.pipeline.profile_len = 120;
  c.admission.max_future_ticks = 100;
  c.admission.quarantine_offense_threshold = 3;
  c.admission.quarantine_ticks = 150;
  c.admission.coalesce_depth = 10;
  c.admission.shed_depth = 16;
  c.max_tenants = 12;
  c.drain_per_tick = 2;
  c.checkpoint_every_ticks = 40;
  return c;
}

ServiceChaosResult RunServiceChaosSweep(const ServiceChaosConfig& config,
                                        std::ostream* accounting_out) {
  const auto wall_start = std::chrono::steady_clock::now();
  ServiceChaosResult result;
  const std::vector<FeedEvent> feed = BuildChaosFeed(config);
  result.feed_events = feed.size();

  // Reference: the never-crashed run.
  svc::MemStore ref_store;
  svc::DetectionService reference(config.svc, &ref_store);
  reference.Recover();
  DriveFeed(reference, feed, config.ticks);
  result.ref_wal_appends = reference.incarnation().wal_frames_appended;
  result.ref_checkpoints = reference.incarnation().checkpoints_written;
  result.ref_alarms = reference.alarm_log().size();
  result.ref_decisions = reference.decision_log().size();
  result.ref_accounting = reference.accounting();
  result.ref_shed_rate = ShedRate(reference.accounting());

  // Crash-point grid, scaled to the reference run's operation counts.
  std::vector<fault::ServiceCrashPoint> grid;
  for (const double f : config.op_fractions) {
    const auto wal_op = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               f * static_cast<double>(result.ref_wal_appends)));
    const auto ckpt_op = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               f * static_cast<double>(result.ref_checkpoints)));
    for (const double b : config.byte_fractions) {
      fault::ServiceCrashPoint p;
      p.kind = fault::ServiceFaultKind::kCrashMidWalAppend;
      p.op_index = wal_op;
      p.byte_fraction = b;
      grid.push_back(p);
      p.kind = fault::ServiceFaultKind::kCrashMidCheckpoint;
      p.op_index = ckpt_op;
      grid.push_back(p);
    }
    fault::ServiceCrashPoint p;
    p.kind = fault::ServiceFaultKind::kCrashAfterWalAppend;
    p.op_index = wal_op;
    p.byte_fraction = 1.0;
    grid.push_back(p);
  }

  result.points.resize(grid.size());
  const auto worker = [&](int index) {
    const fault::ServiceCrashPoint& point =
        grid[static_cast<std::size_t>(index)];
    ChaosPointResult& r = result.points[static_cast<std::size_t>(index)];
    r.kind = point.kind;
    r.op_index = point.op_index;
    r.byte_fraction = point.byte_fraction;

    fault::ServiceFaultPlan plan;
    plan.points.push_back(point);
    svc::MemStore doomed_store(plan);
    svc::DetectionService doomed(config.svc, &doomed_store);
    doomed.Recover();
    DriveFeed(doomed, feed, config.ticks);
    r.fired = doomed_store.crashed();
    r.crash_tick = doomed.current_tick();

    svc::MemStore recovered_store = doomed_store.Reincarnate();
    svc::DetectionService recovered(config.svc, &recovered_store);
    recovered.Recover();
    DriveFeed(recovered, feed, config.ticks);

    const svc::SvcIncarnation& inc = recovered.incarnation();
    r.recovered_from_checkpoint = inc.recovered_from_checkpoint;
    r.replayed_records = inc.recovery_replayed_records;
    r.skipped_records = inc.recovery_skipped_records;
    r.redelivered_deduped = inc.redelivered_deduped;
    r.recovery_wal_valid_bytes = inc.recovery_wal_valid_bytes;
    r.wal_stop = inc.recovery_wal_stop;
    r.alarms = recovered.alarm_log().size();
    r.shed_rate = ShedRate(recovered.accounting());
    r.bit_identical = recovered.decision_log() == reference.decision_log() &&
                      recovered.alarm_log() == reference.alarm_log() &&
                      recovered.accounting() == reference.accounting();
  };
  ParallelFor(static_cast<int>(grid.size()), config.threads, worker);

  result.all_bit_identical = true;
  for (const ChaosPointResult& r : result.points) {
    result.all_bit_identical = result.all_bit_identical && r.bit_identical;
  }

  if (accounting_out) {
    const svc::SvcAccounting& a = result.ref_accounting;
    *accounting_out
        << "{\"type\":\"svc_ref\",\"events\":" << result.feed_events
        << ",\"offered\":" << a.offered << ",\"admitted\":" << a.admitted
        << ",\"coalesced\":" << a.coalesced << ",\"shed\":" << a.shed
        << ",\"rejected_malformed\":" << a.rejected_malformed
        << ",\"rejected_insane\":" << a.rejected_insane
        << ",\"rejected_future\":" << a.rejected_future
        << ",\"rejected_stale\":" << a.rejected_stale
        << ",\"rejected_quarantined\":" << a.rejected_quarantined
        << ",\"quarantines\":" << a.quarantines_started
        << ",\"ticks\":" << a.ticks_processed
        << ",\"drained\":" << a.samples_drained
        << ",\"wal_appends\":" << result.ref_wal_appends
        << ",\"checkpoints\":" << result.ref_checkpoints
        << ",\"alarms\":" << result.ref_alarms
        << ",\"decisions\":" << result.ref_decisions
        << ",\"shed_rate\":" << result.ref_shed_rate << "}\n";
    for (const ChaosPointResult& r : result.points) {
      *accounting_out
          << "{\"type\":\"svc_recovery\",\"kind\":\""
          << fault::ServiceFaultKindName(r.kind)
          << "\",\"op_index\":" << r.op_index
          << ",\"byte_fraction\":" << r.byte_fraction
          << ",\"fired\":" << (r.fired ? 1 : 0)
          << ",\"crash_tick\":" << r.crash_tick
          << ",\"from_checkpoint\":" << (r.recovered_from_checkpoint ? 1 : 0)
          << ",\"replayed\":" << r.replayed_records
          << ",\"skipped\":" << r.skipped_records
          << ",\"deduped\":" << r.redelivered_deduped
          << ",\"wal_valid_bytes\":" << r.recovery_wal_valid_bytes
          << ",\"wal_stop\":\"" << svc::WalScanStopName(r.wal_stop)
          << "\",\"bit_identical\":" << (r.bit_identical ? 1 : 0)
          << ",\"alarms\":" << r.alarms << ",\"shed_rate\":" << r.shed_rate
          << "}\n";
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

void WriteServiceChaosJson(const ServiceChaosConfig& config,
                           const ServiceChaosResult& result,
                           std::ostream& os) {
  os << "{\"bench\":\"svc\",\"tenants\":" << config.tenants
     << ",\"ticks\":" << config.ticks << ",\"seed\":" << config.seed
     << ",\"threads\":" << config.threads
     << ",\"feed_events\":" << result.feed_events
     << ",\"ref_wal_appends\":" << result.ref_wal_appends
     << ",\"ref_checkpoints\":" << result.ref_checkpoints
     << ",\"ref_alarms\":" << result.ref_alarms
     << ",\"ref_decisions\":" << result.ref_decisions
     << ",\"ref_shed_rate\":" << result.ref_shed_rate
     << ",\"ref_admitted\":" << result.ref_accounting.admitted
     << ",\"ref_coalesced\":" << result.ref_accounting.coalesced
     << ",\"ref_quarantines\":" << result.ref_accounting.quarantines_started
     << ",\"crash_points\":" << result.points.size()
     << ",\"all_bit_identical\":"
     << (result.all_bit_identical ? "true" : "false")
     << ",\"wall_seconds\":" << result.wall_seconds << ",\"recovery_curve\":[";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const ChaosPointResult& p = result.points[i];
    if (i) os << ",";
    os << "{\"kind\":\"" << fault::ServiceFaultKindName(p.kind)
       << "\",\"op_index\":" << p.op_index
       << ",\"byte_fraction\":" << p.byte_fraction
       << ",\"fired\":" << (p.fired ? "true" : "false")
       << ",\"crash_tick\":" << p.crash_tick
       << ",\"replayed\":" << p.replayed_records
       << ",\"deduped\":" << p.redelivered_deduped
       << ",\"from_checkpoint\":"
       << (p.recovered_from_checkpoint ? "true" : "false")
       << ",\"bit_identical\":" << (p.bit_identical ? "true" : "false")
       << ",\"shed_rate\":" << p.shed_rate << "}";
  }
  os << "]}";
}

}  // namespace sds::eval
