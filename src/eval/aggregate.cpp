#include "eval/aggregate.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/annotations.h"
#include "common/check.h"
#include "common/types.h"

namespace sds::eval {
namespace {

// First exception thrown by any worker, carried back to the caller. Without
// this, an exception escaping a worker thread is std::terminate — a CHECK
// failure inside one seeded run used to kill the whole sweep process with no
// usable message.
class ErrorSlot {
 public:
  void Capture(std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_) first_ = error;
    }
    armed_.store(true, std::memory_order_relaxed);
  }

  bool armed() const {
    // Relaxed is enough: this is only a scheduling hint; Rethrow holds the
    // lock for the authoritative read.
    return armed_.load(std::memory_order_relaxed);
  }

  void Rethrow() {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_) std::rethrow_exception(first_);
  }

 private:
  std::mutex mu_;
  std::exception_ptr first_ SDS_GUARDED_BY(mu_);
  std::atomic<bool> armed_{false};
};

}  // namespace

void ParallelFor(int n, int threads, const std::function<void(int)>& fn) {
  SDS_CHECK(n >= 0, "negative iteration count");
  if (n == 0) return;
  const int workers = std::max(1, std::min(threads, n));
  if (workers == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  ErrorSlot error;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        if (error.armed()) return;  // stop claiming work after a failure
        try {
          fn(i);
        } catch (...) {
          error.Capture(std::current_exception());
          return;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  error.Rethrow();
}

int DefaultThreads(int max_threads) {
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, std::min(max_threads, hw > 0 ? hw : 4));
}

AggregatedDetection AggregateDetection(const DetectionRunConfig& config,
                                       int runs, std::uint64_t base_seed,
                                       int threads) {
  SDS_CHECK(runs >= 1, "need at least one run");
  std::vector<DetectionRunResult> results(static_cast<std::size_t>(runs));
  ParallelFor(runs, threads, [&](int i) {
    results[static_cast<std::size_t>(i)] =
        RunDetectionRun(config, base_seed + static_cast<std::uint64_t>(i));
  });

  std::vector<double> recalls;
  std::vector<double> specificities;
  std::vector<double> delays;
  AggregatedDetection agg;
  agg.runs = runs;
  for (const auto& r : results) {
    recalls.push_back(r.recall());
    specificities.push_back(r.specificity());
    if (r.detected) {
      ++agg.detected_runs;
      delays.push_back(static_cast<double>(*r.detection_delay_ticks) *
                       kDefaultTpcmSeconds);
    }
  }
  agg.recall = Summarize(recalls);
  agg.specificity = Summarize(specificities);
  if (!delays.empty()) agg.delay_seconds = Summarize(delays);
  return agg;
}

AggregatedOverhead AggregateOverhead(const OverheadRunConfig& config,
                                     int runs, std::uint64_t base_seed,
                                     int threads) {
  SDS_CHECK(runs >= 1, "need at least one run");
  std::vector<double> ratios(static_cast<std::size_t>(runs), 0.0);
  ParallelFor(runs, threads, [&](int i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    OverheadRunConfig baseline = config;
    baseline.scheme = Scheme::kNone;
    const OverheadRunResult base = RunOverheadRun(baseline, seed);
    const OverheadRunResult with = RunOverheadRun(config, seed);
    SDS_CHECK(base.completed && with.completed,
              "overhead run hit the tick cap; raise max_ticks");
    ratios[static_cast<std::size_t>(i)] =
        static_cast<double>(with.completion_ticks) /
        static_cast<double>(base.completion_ticks);
  });
  AggregatedOverhead agg;
  agg.runs = runs;
  agg.normalized_time = Summarize(ratios);
  return agg;
}

}  // namespace sds::eval
