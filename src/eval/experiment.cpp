#include "eval/experiment.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "common/check.h"
#include "detect/sds_detector.h"
#include "eval/robustness.h"
#include "fault/fault_injector.h"
#include "telemetry/telemetry.h"
#include "workloads/catalog.h"

namespace sds::eval {
namespace {

namespace tel = sds::telemetry;

// Ticks run before any sampling so cold-cache transients do not pollute
// profiles or ground truth.
constexpr Tick kWarmupTicks = 500;

// Emits eval-layer stage begin/end events carrying per-stage wall-clock time
// and simulated-tick throughput, so experiment time budgets are visible in
// the same stream as the simulator's own events, and opens a matching
// profiler span (span_name must be a string literal) so per-tick spans nest
// under their stage in the span tree. No-op without telemetry.
class StageSpan {
 public:
  StageSpan(tel::Telemetry* t, const char* stage, const char* span_name,
            Tick start_tick)
      : telemetry_(t), stage_(stage), start_tick_(start_tick) {
    if (!telemetry_) return;
    if (telemetry_->profiler().enabled()) {
      telemetry_->profiler().Enter(telemetry_->profiler().RegisterSpan(
          span_name));
      entered_ = true;
    }
    if (telemetry_->tracer().enabled(tel::Layer::kEval)) {
      telemetry_->tracer().Emit(
          tel::MakeEvent(start_tick_, tel::Layer::kEval, "stage_begin")
              .Str("stage", stage_));
    }
    start_ = std::chrono::steady_clock::now();
  }

  void Finish(Tick end_tick) {
    if (!telemetry_ || finished_) return;
    finished_ = true;
    if (entered_) telemetry_->profiler().Exit();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const double ticks = static_cast<double>(end_tick - start_tick_);
    if (telemetry_->tracer().enabled(tel::Layer::kEval)) {
      telemetry_->tracer().Emit(
          tel::MakeEvent(end_tick, tel::Layer::kEval, "stage_end")
              .Str("stage", stage_)
              .Num("ticks", ticks)
              .Num("wall_ms", wall_ms)
              .Num("ticks_per_sec",
                   wall_ms > 0.0 ? ticks / (wall_ms / 1000.0) : 0.0));
    }
    telemetry_->metrics()
        .GetGauge(std::string("eval.stage.") + stage_ + ".wall_ms")
        ->Set(wall_ms);
  }

  ~StageSpan() { Finish(start_tick_); }

 private:
  tel::Telemetry* telemetry_;
  const char* stage_;
  Tick start_tick_;
  bool finished_ = false;
  bool entered_ = false;  // profiler span open, to be closed by Finish
  std::chrono::steady_clock::time_point start_;
};

detect::SdsMode ModeFor(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSdsB:
      return detect::SdsMode::kBoundaryOnly;
    case Scheme::kSdsP:
      return detect::SdsMode::kPeriodOnly;
    default:
      return detect::SdsMode::kCombined;
  }
}

// If profiling failed to classify a known-periodic application (short or
// unlucky profile window), fall back to the catalog's nominal period so that
// SDS/P remains runnable; the run result records the classification miss.
void ApplyNominalPeriodFallback(const std::string& app,
                                const detect::DetectorParams& params,
                                detect::SdsProfile& profile) {
  const auto& info = workloads::AppInfoFor(app);
  if (!info.periodic || profile.periodic()) return;
  detect::PeriodProfile fallback;
  fallback.period = static_cast<double>(info.nominal_period_ticks) /
                    static_cast<double>(params.step);
  fallback.strength = 0.0;
  profile.access_period = fallback;
}

}  // namespace

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNone:
      return "none";
    case Scheme::kSdsB:
      return "SDS/B";
    case Scheme::kSdsP:
      return "SDS/P";
    case Scheme::kSds:
      return "SDS";
    case Scheme::kKsTest:
      return "KStest";
  }
  return "?";
}

double DetectionRunResult::specificity() const {
  const int total = true_negative_intervals + false_positive_intervals;
  if (total == 0) return 1.0;
  return static_cast<double>(true_negative_intervals) /
         static_cast<double>(total);
}

std::vector<pcm::PcmSample> CollectCleanSamples(const ScenarioConfig& base,
                                                Tick ticks,
                                                std::uint64_t seed) {
  ScenarioConfig config = base;
  config.attack = AttackKind::kNone;
  config.seed = seed;
  Scenario s = BuildScenario(config);
  s.RunTicks(kWarmupTicks);
  pcm::PcmSampler sampler(*s.hypervisor, s.victim);
  sampler.Start();
  return pcm::CollectSamples(*s.hypervisor, sampler, ticks);
}

std::vector<pcm::PcmSample> RunMeasurementStudy(const std::string& app,
                                                AttackKind attack,
                                                Tick total_ticks,
                                                Tick attack_start,
                                                std::uint64_t seed) {
  ScenarioConfig config;
  config.app = app;
  config.attack = attack;
  config.attack_start = kWarmupTicks + attack_start;
  config.seed = seed;
  Scenario s = BuildScenario(config);
  s.RunTicks(kWarmupTicks);
  pcm::PcmSampler sampler(*s.hypervisor, s.victim);
  sampler.Start();
  return pcm::CollectSamples(*s.hypervisor, sampler, total_ticks);
}

namespace {

// Shared body of RunDetectionRun and RunDetectionRunFaulted. With
// `robust == nullptr` this is the plain accuracy protocol (and the detector
// constructions below delegate to exactly the pre-seam behavior, pinned by
// the golden regression test); with a RobustnessRunConfig, stages 2+3 read
// the monitoring plane through a FaultInjector and the configured
// degradation policies.
DetectionRunResult RunDetectionRunImpl(const DetectionRunConfig& config,
                                       std::uint64_t seed,
                                       const RobustnessRunConfig* robust,
                                       RobustnessCounters* counters) {
  SDS_CHECK(config.attack != AttackKind::kNone,
            "detection runs need an attack in stage 3");
  Rng rng(seed);
  const std::uint64_t profile_seed = rng();
  const std::uint64_t main_seed = rng();
  tel::Telemetry* telemetry = config.scenario.machine.telemetry;

  DetectionRunResult result;

  // Stage 1: profile (SDS schemes only; KStest self-calibrates online).
  detect::SdsProfile profile;
  if (config.scheme != Scheme::kKsTest) {
    StageSpan span(telemetry, "profile", "eval.profile", 0);
    ScenarioConfig base = config.scenario;
    base.app = config.app;
    const auto clean =
        CollectCleanSamples(base, config.profile_ticks, profile_seed);
    profile = detect::BuildSdsProfile(clean, config.params);
    result.profile_periodic = profile.periodic();
    if (config.scheme == Scheme::kSdsP || config.scheme == Scheme::kSds) {
      ApplyNominalPeriodFallback(config.app, config.params, profile);
    }
    if (config.scheme == Scheme::kSdsP) {
      SDS_CHECK(profile.periodic(),
                "SDS/P requested for a non-periodic application");
    }
    span.Finish(config.profile_ticks);
  }

  // Stages 2 + 3: clean then attacked.
  ScenarioConfig main = config.scenario;
  main.app = config.app;
  main.attack = config.attack;
  main.seed = main_seed;
  const Tick attack_start = kWarmupTicks + config.clean_ticks;
  main.attack_start = attack_start;
  main.attack_stop = -1;
  Scenario s = BuildScenario(main);
  s.RunTicks(kWarmupTicks);

  std::unique_ptr<fault::FaultInjector> injector;
  if (robust) {
    injector = std::make_unique<fault::FaultInjector>(*s.hypervisor, s.victim,
                                                      robust->plan);
  }
  const detect::DegradeConfig degrade =
      robust ? robust->degrade : detect::DegradeConfig{};

  std::unique_ptr<detect::Detector> detector;
  detect::SdsDetector* sds = nullptr;
  detect::KsTestDetector* ks = nullptr;
  if (config.scheme == Scheme::kKsTest) {
    detect::KsTestParams kp = config.ks_params;
    kp.initial_offset = static_cast<Tick>(
        rng.UniformInt(static_cast<std::uint64_t>(kp.l_r)));
    auto d = std::make_unique<detect::KsTestDetector>(
        *s.hypervisor, s.victim, kp, detect::KsIdentificationParams{},
        injector.get(), degrade);
    ks = d.get();
    detector = std::move(d);
  } else {
    auto d = std::make_unique<detect::SdsDetector>(
        *s.hypervisor, s.victim, profile, config.params,
        ModeFor(config.scheme), injector.get(), degrade);
    sds = d.get();
    detector = std::move(d);
  }

  // Stage 2: clean. Specificity over fixed decision intervals.
  StageSpan clean_span(telemetry, "clean", "eval.clean", s.hypervisor->now());
  bool interval_false_positive = false;
  Tick interval_elapsed = 0;
  for (Tick t = 0; t < config.clean_ticks; ++t) {
    s.hypervisor->RunTick();
    detector->OnTick();
    interval_false_positive |= detector->attack_active();
    if (++interval_elapsed == config.eval_interval) {
      if (interval_false_positive) {
        ++result.false_positive_intervals;
      } else {
        ++result.true_negative_intervals;
      }
      interval_false_positive = false;
      interval_elapsed = 0;
    }
  }
  clean_span.Finish(s.hypervisor->now());

  // Stage 3: under attack. The first NEW alarm event gives the detection
  // delay; a false-positive alarm state latched across the attack start must
  // re-raise to count (it does, since the attack keeps the statistics
  // anomalous). As a fallback, a state that was already active at attack
  // start and never clears is credited as a zero-delay detection — the
  // detector is, after all, reporting an attack throughout.
  const std::uint64_t events_at_attack_start = detector->alarm_events();
  const bool active_at_attack_start = detector->attack_active();
  bool ever_inactive_during_attack = false;
  // Timeline marker: the incident reconstructor (telemetry/timeline.h)
  // anchors its delay decomposition on this event when the caller does not
  // pass the attack tick explicitly.
  if (telemetry && telemetry->tracer().enabled(tel::Layer::kEval)) {
    telemetry->tracer().Emit(tel::MakeEvent(attack_start, tel::Layer::kEval,
                                            "attack_phase_begin")
                                 .Str("scheme", SchemeName(config.scheme)));
  }
  StageSpan attack_span(telemetry, "attack", "eval.attack",
                        s.hypervisor->now());
  for (Tick t = 0; t < config.attack_ticks; ++t) {
    s.hypervisor->RunTick();
    detector->OnTick();
    ever_inactive_during_attack |= !detector->attack_active();
    if (!result.detected &&
        detector->alarm_events() > events_at_attack_start &&
        detector->last_alarm_trigger_tick() >= attack_start) {
      result.detected = true;
      result.detection_delay_ticks = s.hypervisor->now() - attack_start;
    }
  }
  attack_span.Finish(s.hypervisor->now());
  if (!result.detected && active_at_attack_start &&
      !ever_inactive_during_attack) {
    result.detected = true;
    result.detection_delay_ticks = 0;
  }
  if (telemetry && telemetry->tracer().enabled(tel::Layer::kEval)) {
    telemetry->tracer().Emit(
        tel::MakeEvent(s.hypervisor->now(), tel::Layer::kEval, "run_result")
            .Str("scheme", SchemeName(config.scheme))
            .Num("detected", result.detected ? 1.0 : 0.0)
            .Num("delay_ticks",
                 static_cast<double>(result.detection_delay_ticks.value_or(-1)))
            .Num("false_positive_intervals", result.false_positive_intervals)
            .Num("true_negative_intervals", result.true_negative_intervals));
  }
  if (counters) {
    if (injector) counters->fault = injector->stats();
    counters->degrade = sds ? sds->gate().stats() : ks->gate().stats();
    if (ks) counters->ks_abandoned_collections = ks->abandoned_collections();
  }
  return result;
}

}  // namespace

DetectionRunResult RunDetectionRun(const DetectionRunConfig& config,
                                   std::uint64_t seed) {
  return RunDetectionRunImpl(config, seed, nullptr, nullptr);
}

DetectionRunResult RunDetectionRunFaulted(const DetectionRunConfig& config,
                                          std::uint64_t seed,
                                          const RobustnessRunConfig& robust,
                                          RobustnessCounters* counters) {
  return RunDetectionRunImpl(config, seed, &robust, counters);
}

OverheadRunResult RunOverheadRun(const OverheadRunConfig& config,
                                 std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t profile_seed = rng();
  const std::uint64_t main_seed = rng();

  // Profile the protected application when the scheme needs one.
  detect::SdsProfile profile;
  if (config.scheme == Scheme::kSdsB || config.scheme == Scheme::kSdsP ||
      config.scheme == Scheme::kSds) {
    ScenarioConfig base = config.scenario;
    base.app = config.app;
    const auto clean = CollectCleanSamples(base, 6000, profile_seed);
    profile = detect::BuildSdsProfile(clean, config.params);
    if (config.scheme == Scheme::kSdsP || config.scheme == Scheme::kSds) {
      ApplyNominalPeriodFallback(config.app, config.params, profile);
    }
    if (config.scheme == Scheme::kSdsP && !profile.periodic()) {
      // SDS/P is undefined for this application; treat as boundary-only so
      // overhead sweeps over all apps stay runnable.
      profile.access_period.reset();
      profile.miss_period.reset();
    }
  }

  // Deployment: protected VM (id 1), measured co-located VM (id 2), an idle
  // attack VM, and the remaining benign tenants. No attack is launched.
  sim::Machine machine(config.scenario.machine);
  Rng root(main_seed);
  vm::Hypervisor hypervisor(machine, config.scenario.hypervisor, root.Fork());
  const OwnerId protected_vm =
      hypervisor.CreateVm("protected-" + config.app,
                          workloads::MakeApp(config.app));
  const OwnerId measured_vm =
      hypervisor.CreateVm("measured-" + config.app,
                          workloads::MakeApp(config.app));
  for (int i = 0; i < 6; ++i) {
    hypervisor.CreateVm("benign-" + std::to_string(i),
                        workloads::MakeBenignUtility());
  }

  for (Tick t = 0; t < kWarmupTicks; ++t) hypervisor.RunTick();
  const std::uint64_t work_base =
      hypervisor.vm(measured_vm).workload().work_completed();

  std::unique_ptr<detect::Detector> detector;
  if (config.scheme == Scheme::kKsTest) {
    detect::KsTestParams kp = config.ks_params;
    kp.initial_offset = static_cast<Tick>(
        rng.UniformInt(static_cast<std::uint64_t>(kp.l_r)));
    detector = std::make_unique<detect::KsTestDetector>(hypervisor,
                                                        protected_vm, kp);
  } else if (config.scheme != Scheme::kNone) {
    detect::SdsMode mode = ModeFor(config.scheme);
    if (config.scheme == Scheme::kSdsP && !profile.periodic()) {
      mode = detect::SdsMode::kBoundaryOnly;
    }
    detector = std::make_unique<detect::SdsDetector>(
        hypervisor, protected_vm, profile, config.params, mode);
  }

  OverheadRunResult result;
  for (Tick t = 0; t < config.max_ticks; ++t) {
    hypervisor.RunTick();
    if (detector) detector->OnTick();
    if (hypervisor.vm(measured_vm).workload().work_completed() - work_base >=
        config.work_target_units) {
      result.completed = true;
      result.completion_ticks = t + 1;
      break;
    }
  }
  result.monitor_dropped_ops = hypervisor.monitor_dropped_ops();
  return result;
}

KsFalseAlarmResult RunKsFalseAlarmStudy(const std::string& app,
                                        const detect::KsTestParams& params,
                                        int lr_intervals, std::uint64_t seed) {
  SDS_CHECK(lr_intervals >= 1, "need at least one interval");
  ScenarioConfig config;
  config.app = app;
  config.attack = AttackKind::kNone;
  config.seed = seed;
  Scenario s = BuildScenario(config);
  s.RunTicks(kWarmupTicks);

  detect::KsTestParams kp = params;
  // Trigger the first reference collection right away, and disable the
  // identification sweep: the study reproduces Figure 1's uninterrupted
  // per-interval 0/1 decision strips, and the alarm rule (>= 4 consecutive
  // rejections) is evaluated directly on the decisions below.
  kp.initial_offset = kp.l_r - 1;
  detect::KsIdentificationParams ident;
  ident.enabled = false;
  detect::KsTestDetector detector(*s.hypervisor, s.victim, kp, ident);

  const Tick study_start = s.hypervisor->now();
  const Tick total = static_cast<Tick>(lr_intervals) * kp.l_r + kp.w_r + 1;
  for (Tick t = 0; t < total; ++t) {
    s.hypervisor->RunTick();
    detector.OnTick();
  }

  KsFalseAlarmResult result;
  result.interval_decisions.assign(static_cast<std::size_t>(lr_intervals),
                                   {});
  for (const auto& d : detector.decisions()) {
    const Tick rel = d.tick - study_start;
    const auto idx = static_cast<std::size_t>(rel / kp.l_r);
    if (idx >= result.interval_decisions.size()) continue;
    result.interval_decisions[idx].push_back(d.rejected() ? 1 : 0);
  }

  int alarmed = 0;
  for (const auto& interval : result.interval_decisions) {
    int consecutive = 0;
    bool alarm = false;
    for (int v : interval) {
      consecutive = (v == 1) ? consecutive + 1 : 0;
      if (consecutive >= params.consecutive_rejections) alarm = true;
    }
    if (alarm) ++alarmed;
  }
  result.alarm_fraction =
      static_cast<double>(alarmed) / static_cast<double>(lr_intervals);
  return result;
}

}  // namespace sds::eval
