#include "attacks/scheduled_workload.h"

#include "common/check.h"

namespace sds::attacks {

ScheduledWorkload::ScheduledWorkload(std::unique_ptr<vm::Workload> inner,
                                     Tick start_tick, Tick stop_tick)
    : inner_(std::move(inner)), start_tick_(start_tick), stop_tick_(stop_tick) {
  SDS_CHECK(inner_ != nullptr, "scheduled workload needs an inner workload");
  SDS_CHECK(start_tick >= 0, "start tick must be non-negative");
  SDS_CHECK(stop_tick < 0 || stop_tick > start_tick,
            "stop must come after start");
}

void ScheduledWorkload::Bind(LineAddr base, Rng rng) {
  inner_->Bind(base, rng);
}

void ScheduledWorkload::BeginTick(Tick now) {
  active_ = now >= start_tick_ && (stop_tick_ < 0 || now < stop_tick_);
  if (active_) inner_->BeginTick(now);
}

bool ScheduledWorkload::NextOp(sim::MemOp& op) {
  return active_ && inner_->NextOp(op);
}

void ScheduledWorkload::OnOutcome(const sim::MemOp& op,
                                  sim::AccessOutcome outcome) {
  if (active_) inner_->OnOutcome(op, outcome);
}

std::uint64_t ScheduledWorkload::work_completed() const {
  return inner_->work_completed();
}

}  // namespace sds::attacks
