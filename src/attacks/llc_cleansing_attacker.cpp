#include "attacks/llc_cleansing_attacker.h"

#include <numeric>

#include "common/check.h"

namespace sds::attacks {

LlcCleansingAttacker::LlcCleansingAttacker(const LlcCleansingConfig& config)
    : config_(config) {
  SDS_CHECK(config.cache_sets > 0 &&
                (config.cache_sets & (config.cache_sets - 1)) == 0,
            "cache_sets must be a power of two");
  SDS_CHECK(config.cache_ways > 0, "cache_ways must be positive");
  SDS_CHECK(config.ops_per_tick > 0, "attack rate must be positive");
  SDS_CHECK(config.reprobe_interval_ticks > 0,
            "reprobe interval must be positive");
  probe_misses_.assign(config.cache_sets, 0);
}

void LlcCleansingAttacker::Bind(LineAddr base, Rng /*rng*/) {
  SDS_CHECK(base % config_.cache_sets == 0,
            "attack buffer must be set-aligned");
  base_ = base;
}

LineAddr LlcCleansingAttacker::LineFor(std::uint32_t set,
                                       std::uint32_t way) const {
  // base_ is a multiple of cache_sets, so this address maps to `set` and the
  // per-way stride keeps the tags distinct.
  return base_ + static_cast<LineAddr>(way) * config_.cache_sets + set;
}

void LlcCleansingAttacker::BeginTick(Tick /*now*/) {
  ops_left_this_tick_ = config_.ops_per_tick;
  if (mode_ == Mode::kCleanse &&
      ++ticks_since_recon_ >= config_.reprobe_interval_ticks) {
    mode_ = Mode::kReconPrime;
    recon_set_ = 0;
    recon_way_ = 0;
    probe_misses_.assign(config_.cache_sets, 0);
  }
}

void LlcCleansingAttacker::FinishReconRound() {
  ++recon_rounds_;
  contended_sets_.clear();
  for (std::uint32_t set = 0; set < config_.cache_sets; ++set) {
    if (probe_misses_[set] >= config_.contention_threshold) {
      contended_sets_.push_back(set);
    }
  }
  if (contended_sets_.empty()) {
    // Nothing identified (e.g. idle co-tenants): cleanse everything.
    contended_sets_.resize(config_.cache_sets);
    std::iota(contended_sets_.begin(), contended_sets_.end(), 0u);
  }
  cleanse_index_ = 0;
  cleanse_way_ = 0;
  ticks_since_recon_ = 0;
  recon_set_ = 0;
  recon_way_ = 0;
  mode_ = Mode::kCleanse;
}

bool LlcCleansingAttacker::NextOp(sim::MemOp& op) {
  if (ops_left_this_tick_ == 0) return false;
  --ops_left_this_tick_;
  op.atomic = false;
  pending_probe_ = false;

  if (mode_ == Mode::kReconPrime || mode_ == Mode::kReconProbe) {
    op.addr = LineFor(recon_set_, recon_way_);
    if (mode_ == Mode::kReconProbe) {
      pending_probe_ = true;
      pending_probe_set_ = recon_set_;
      last_probe_of_round_ = (recon_set_ + 1 == config_.cache_sets &&
                              recon_way_ + 1 == config_.cache_ways);
    }
    if (++recon_way_ >= config_.cache_ways) {
      recon_way_ = 0;
      if (++recon_set_ >= config_.cache_sets) {
        recon_set_ = 0;
        // Prime pass done -> start the probe pass; the probe pass finishes
        // from OnOutcome so the final probe's outcome is counted.
        if (mode_ == Mode::kReconPrime) mode_ = Mode::kReconProbe;
      }
    }
    return true;
  }

  // Cleanse mode.
  const std::uint32_t set = contended_sets_[cleanse_index_];
  op.addr = LineFor(set, cleanse_way_);
  if (++cleanse_way_ >= config_.cache_ways) {
    cleanse_way_ = 0;
    if (++cleanse_index_ >= contended_sets_.size()) cleanse_index_ = 0;
  }
  return true;
}

void LlcCleansingAttacker::OnOutcome(const sim::MemOp& /*op*/,
                                     sim::AccessOutcome outcome) {
  if (outcome != sim::AccessOutcome::kStalled) {
    if (pending_probe_ && outcome == sim::AccessOutcome::kMiss) {
      // Our line was displaced between the prime and the probe pass: another
      // VM is actively using this set.
      if (probe_misses_[pending_probe_set_] < 0xffff) {
        ++probe_misses_[pending_probe_set_];
      }
    }
    if (mode_ == Mode::kCleanse) ++cleanse_ops_;
  }
  pending_probe_ = false;
  if (last_probe_of_round_) {
    last_probe_of_round_ = false;
    FinishReconRound();
  }
}

}  // namespace sds::attacks
