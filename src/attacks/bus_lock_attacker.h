// Atomic bus locking attack (paper Section 2.2).
//
// Modern processors serialize exotic atomic operations by locking every
// internal memory bus in the socket. The attack program simply issues such
// operations in a tight loop; each one reserves an exclusive lock window on
// the shared bus, starving co-located VMs of bus bandwidth and causing the
// victim's AccessNum to collapse (Observation 1, bus-lock half).
#pragma once

#include <cstdint>

#include "vm/workload.h"

namespace sds::attacks {

struct BusLockConfig {
  // Atomic locked operations attempted per tick. At 40 bus slots per lock
  // (sim::BusConfig::atomic_lock_slots) a few hundred per tick saturate the
  // default 9000-slot bus.
  std::uint32_t atomics_per_tick = 400;
  // The attack loop's working buffer (the atomics' memory targets), in
  // lines. Tiny and cache-resident, as in the real attack.
  std::uint32_t buffer_lines = 64;
};

class BusLockAttacker final : public vm::Workload {
 public:
  explicit BusLockAttacker(const BusLockConfig& config);

  void Bind(LineAddr base, Rng rng) override;
  void BeginTick(Tick now) override;
  bool NextOp(sim::MemOp& op) override;
  void OnOutcome(const sim::MemOp& op, sim::AccessOutcome outcome) override;
  std::uint64_t work_completed() const override { return locks_issued_; }
  std::string_view name() const override { return "bus-lock-attack"; }

  std::uint64_t locks_issued() const { return locks_issued_; }

 private:
  BusLockConfig config_;
  LineAddr base_ = 0;
  std::uint32_t cursor_ = 0;
  std::uint32_t ops_left_this_tick_ = 0;
  std::uint64_t locks_issued_ = 0;
};

}  // namespace sds::attacks
