#include "attacks/pulsing_workload.h"

#include "common/check.h"

namespace sds::attacks {

PulsingWorkload::PulsingWorkload(std::unique_ptr<vm::Workload> inner,
                                 Tick on_ticks, Tick off_ticks, Tick phase)
    : inner_(std::move(inner)),
      on_ticks_(on_ticks),
      off_ticks_(off_ticks),
      phase_(phase) {
  SDS_CHECK(inner_ != nullptr, "pulsing workload needs an inner workload");
  SDS_CHECK(on_ticks > 0, "on window must be positive");
  SDS_CHECK(off_ticks >= 0, "off window must be non-negative");
}

void PulsingWorkload::Bind(LineAddr base, Rng rng) { inner_->Bind(base, rng); }

void PulsingWorkload::BeginTick(Tick now) {
  const Tick cycle = on_ticks_ + off_ticks_;
  const Tick position = ((now - phase_) % cycle + cycle) % cycle;
  active_ = position < on_ticks_;
  if (active_) inner_->BeginTick(now);
}

bool PulsingWorkload::NextOp(sim::MemOp& op) {
  return active_ && inner_->NextOp(op);
}

void PulsingWorkload::OnOutcome(const sim::MemOp& op,
                                sim::AccessOutcome outcome) {
  if (active_) inner_->OnOutcome(op, outcome);
}

std::uint64_t PulsingWorkload::work_completed() const {
  return inner_->work_completed();
}

}  // namespace sds::attacks
