// Wraps a workload so it only executes inside a [start, stop) tick window —
// how the evaluation harness launches an attack at the 300-second mark of a
// 600-second run (paper Section 5.1) while the attack VM sits idle before.
#pragma once

#include <memory>

#include "vm/workload.h"

namespace sds::attacks {

class ScheduledWorkload final : public vm::Workload {
 public:
  // stop < 0 means "never stops once started".
  ScheduledWorkload(std::unique_ptr<vm::Workload> inner, Tick start_tick,
                    Tick stop_tick);

  void Bind(LineAddr base, Rng rng) override;
  void BeginTick(Tick now) override;
  bool NextOp(sim::MemOp& op) override;
  void OnOutcome(const sim::MemOp& op, sim::AccessOutcome outcome) override;
  std::uint64_t work_completed() const override;
  std::string_view name() const override { return inner_->name(); }

  bool active() const { return active_; }
  vm::Workload& inner() { return *inner_; }

 private:
  std::unique_ptr<vm::Workload> inner_;
  Tick start_tick_;
  Tick stop_tick_;
  bool active_ = false;
};

}  // namespace sds::attacks
