// LLC cleansing attack (paper Section 2.2).
//
// The attack runs the paper's two-phase algorithm against the real simulated
// cache, using only what a real attacker has: its own address space and the
// hit/miss timing of its own accesses.
//
//   RECON    The attacker owns a buffer covering the entire LLC (one line per
//            set/way slot). It first PRIMES the whole cache — loading all of
//            its lines, set by set — and then PROBES it with a second full
//            pass, counting per set how many of its lines miss. A probe miss
//            means a co-located VM displaced the attacker's line since the
//            prime pass: the set is actively used by other tenants. (This is
//            the paper's "figure out the maximum number of cache lines which
//            can be accessed without causing cache conflicts": a set where
//            fewer than `ways` lines survive is frequently occupied.)
//   CLEANSE  The attacker sweeps the contended sets, loading all `ways` of
//            its own lines in each — evicting every co-located line in those
//            sets and driving the victim's MissNum up (Observation 1,
//            cleansing half).
//
// Recon repeats every `reprobe_interval_ticks` to track shifting victim
// working sets.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cache.h"
#include "vm/workload.h"

namespace sds::attacks {

struct LlcCleansingConfig {
  // Geometry of the target LLC (the attacker learns this from CPUID in the
  // real attack; here it is injected).
  std::uint32_t cache_sets = 2048;
  std::uint32_t cache_ways = 16;
  // Memory operations attempted per tick (the attack is a memory hog).
  std::uint32_t ops_per_tick = 3000;
  // Probe-pass misses required to consider a set contended.
  std::uint32_t contention_threshold = 1;
  // Ticks between recon rounds.
  Tick reprobe_interval_ticks = 500;
};

class LlcCleansingAttacker final : public vm::Workload {
 public:
  explicit LlcCleansingAttacker(const LlcCleansingConfig& config);

  void Bind(LineAddr base, Rng rng) override;
  void BeginTick(Tick now) override;
  bool NextOp(sim::MemOp& op) override;
  void OnOutcome(const sim::MemOp& op, sim::AccessOutcome outcome) override;
  std::uint64_t work_completed() const override { return cleanse_ops_; }
  std::string_view name() const override { return "llc-cleansing-attack"; }

  // Introspection for tests.
  bool in_recon() const { return mode_ != Mode::kCleanse; }
  const std::vector<std::uint32_t>& contended_sets() const {
    return contended_sets_;
  }
  std::uint64_t cleanse_ops() const { return cleanse_ops_; }
  std::uint64_t recon_rounds() const { return recon_rounds_; }

 private:
  enum class Mode : std::uint8_t { kReconPrime, kReconProbe, kCleanse };

  LineAddr LineFor(std::uint32_t set, std::uint32_t way) const;
  void FinishReconRound();

  LlcCleansingConfig config_;
  LineAddr base_ = 0;
  Mode mode_ = Mode::kReconPrime;
  std::uint32_t ops_left_this_tick_ = 0;

  // Recon cursors: current set and way of the ongoing full-cache pass.
  std::uint32_t recon_set_ = 0;
  std::uint32_t recon_way_ = 0;
  // Per-set probe-miss counters for the current recon round.
  std::vector<std::uint16_t> probe_misses_;
  // Set of the probe op most recently produced (for OnOutcome attribution);
  // cache_sets means "none pending".
  std::uint32_t pending_probe_set_ = 0;
  bool pending_probe_ = false;
  bool last_probe_of_round_ = false;

  // Cleanse cursor.
  std::vector<std::uint32_t> contended_sets_;
  std::size_t cleanse_index_ = 0;
  std::uint32_t cleanse_way_ = 0;

  Tick ticks_since_recon_ = 0;
  std::uint64_t cleanse_ops_ = 0;
  std::uint64_t recon_rounds_ = 0;
};

}  // namespace sds::attacks
