#include "attacks/bus_lock_attacker.h"

#include "common/check.h"

namespace sds::attacks {

BusLockAttacker::BusLockAttacker(const BusLockConfig& config)
    : config_(config) {
  SDS_CHECK(config.atomics_per_tick > 0, "attack rate must be positive");
  SDS_CHECK(config.buffer_lines > 0, "attack buffer must be non-empty");
}

void BusLockAttacker::Bind(LineAddr base, Rng /*rng*/) { base_ = base; }

void BusLockAttacker::BeginTick(Tick /*now*/) {
  ops_left_this_tick_ = config_.atomics_per_tick;
}

bool BusLockAttacker::NextOp(sim::MemOp& op) {
  if (ops_left_this_tick_ == 0) return false;
  --ops_left_this_tick_;
  op.atomic = true;
  op.addr = base_ + cursor_;
  cursor_ = (cursor_ + 1) % config_.buffer_lines;
  return true;
}

void BusLockAttacker::OnOutcome(const sim::MemOp& /*op*/,
                                sim::AccessOutcome outcome) {
  if (outcome != sim::AccessOutcome::kStalled) ++locks_issued_;
}

}  // namespace sds::attacks
