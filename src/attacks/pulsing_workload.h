// Intermittent ("pulsing") attack execution — an evasion strategy the paper
// leaves to future work: instead of attacking continuously, the attacker
// alternates on/off bursts, hoping to stay under SDS/B's consecutive-
// violation threshold (an off-phase shorter than one EWMA step still
// degrades the victim, but bursts shorter than H_C EWMA steps reset the
// counter). The evasion ablation bench sweeps the duty cycle and measures
// both the detection probability and the damage the attacker still inflicts.
#pragma once

#include <memory>

#include "vm/workload.h"

namespace sds::attacks {

class PulsingWorkload final : public vm::Workload {
 public:
  // The inner program executes during the first `on_ticks` of every
  // `on_ticks + off_ticks` cycle, starting at tick `phase`.
  PulsingWorkload(std::unique_ptr<vm::Workload> inner, Tick on_ticks,
                  Tick off_ticks, Tick phase = 0);

  void Bind(LineAddr base, Rng rng) override;
  void BeginTick(Tick now) override;
  bool NextOp(sim::MemOp& op) override;
  void OnOutcome(const sim::MemOp& op, sim::AccessOutcome outcome) override;
  std::uint64_t work_completed() const override;
  std::string_view name() const override { return inner_->name(); }

  bool active() const { return active_; }
  double duty_cycle() const {
    return static_cast<double>(on_ticks_) /
           static_cast<double>(on_ticks_ + off_ticks_);
  }

 private:
  std::unique_ptr<vm::Workload> inner_;
  Tick on_ticks_;
  Tick off_ticks_;
  Tick phase_;
  bool active_ = false;
};

}  // namespace sds::attacks
