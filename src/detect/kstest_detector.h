// The KStest baseline detector (Zhang et al. [49], restated in Section 3.2).
//
// Every L_R ticks the detector throttles every VM except the protected one
// and collects W_R ticks of PCM samples as the REFERENCE (clean-by-
// construction, since nothing else runs). Afterwards, every L_M ticks it
// collects W_M ticks of MONITORED samples and runs a two-sample
// Kolmogorov-Smirnov test per channel against the reference; four
// consecutive rejections on a channel raise a SUSPICION, and a passing test
// clears the decision.
//
// Attacker identification. The baseline system in [49] does not stop at
// suspicion: it must identify which co-located VM causes the contention (the
// provider's response — migration or termination — needs a culprit). On
// suspicion the detector sweeps the co-located VMs, throttling them ONE AT A
// TIME and re-collecting monitored samples: the candidate whose pause makes
// the statistics match the reference again is the attacker. The sweep always
// examines every candidate (several VMs could collude), after which the
// alarm is raised — attributed when a culprit emerged, unattributed when
// the anomaly persisted throughout (the provider still must act). This
// sweep, layered on top of the deliberately infrequent throttled reference
// collection, is what makes the baseline's detection delay 20-50 s and its
// overhead 3-8% in the paper; both effects emerge mechanically here.
//
// One further modelling note, called out in DESIGN.md: the consecutive-
// rejection counters reset when the reference is refreshed — decisions made
// against different references are not comparable.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include <memory>

#include "detect/degrade.h"
#include "detect/detector.h"
#include "detect/params.h"
#include "pcm/pcm_sampler.h"
#include "pcm/sample_source.h"
#include "vm/hypervisor.h"

namespace sds::detect {

// One KS decision (both channels), logged for the Figure 1 reproduction.
struct KsDecision {
  Tick tick = 0;
  bool rejected_access = false;
  bool rejected_miss = false;
  double statistic_access = 0.0;
  double statistic_miss = 0.0;
  bool rejected() const { return rejected_access || rejected_miss; }
};

// Extended baseline parameters beyond KsTestParams: the identification sweep.
struct KsIdentificationParams {
  // Run the identification sweep on suspicion (the full [49] pipeline).
  // Disabled, suspicion raises the alarm directly.
  bool enabled = true;
  // Ticks to let the machine settle after throttling a candidate before
  // sampling it.
  Tick settle = 100;
  // Ticks of samples collected per candidate (the candidate stays throttled
  // for settle + window).
  Tick window = 100;
};

class KsTestDetector final : public Detector {
 public:
  // Owns a perfect PcmSampler; bit-identical to the pre-seam detector
  // (pinned by tests/integration/golden_regression_test).
  KsTestDetector(vm::Hypervisor& hypervisor, OwnerId target,
                 const KsTestParams& params,
                 const KsIdentificationParams& ident = {});

  // Monitoring-plane seam: reads `source` (nullptr = own a PcmSampler)
  // through a DegradingSampleGate. Collections tolerate gaps by extending —
  // with their throttles re-armed so the collection conditions hold — up to
  // kCollectSlackFactor times their window, after which they are abandoned
  // (reference: keep the old one; monitored: test if at least half the
  // window arrived, else skip; identification candidate: scored
  // inconclusive-worst, since an unmeasurable candidate cannot be
  // exonerated).
  KsTestDetector(vm::Hypervisor& hypervisor, OwnerId target,
                 const KsTestParams& params,
                 const KsIdentificationParams& ident,
                 pcm::SampleSource* source, const DegradeConfig& degrade);

  void OnTick() override;
  bool attack_active() const override { return attack_active_; }
  std::uint64_t alarm_events() const override { return alarm_events_; }
  Tick last_alarm_trigger_tick() const override { return last_trigger_; }
  std::string_view name() const override { return "KStest"; }

  const std::vector<KsDecision>& decisions() const { return decisions_; }
  bool has_reference() const { return reference_ready_; }
  int consecutive_rejections_access() const { return consecutive_access_; }
  int consecutive_rejections_miss() const { return consecutive_miss_; }
  // The culprit of the most recent identified alarm (0 = unattributed).
  OwnerId identified_attacker() const { return identified_attacker_; }
  std::uint64_t identification_sweeps() const { return sweeps_; }

  // Degradation introspection.
  const DegradingSampleGate& gate() const { return gate_; }
  // Collections that ran out of slack and were abandoned (reference /
  // monitored / identification candidates, respectively).
  std::uint64_t abandoned_collections() const {
    return abandoned_references_ + abandoned_monitored_ +
           abandoned_candidates_;
  }
  std::uint64_t abandoned_references() const { return abandoned_references_; }
  std::uint64_t abandoned_monitored() const { return abandoned_monitored_; }
  std::uint64_t abandoned_candidates() const { return abandoned_candidates_; }

  // A gapped collection may extend to this multiple of its window before it
  // is abandoned.
  static constexpr Tick kCollectSlackFactor = 2;

  // Snapshot/restore at a tick boundary (DESIGN.md §13). Serialized: the
  // full collection state machine (including mid-collection staging and the
  // identification sweep), reference windows, consecutive counters, alarm
  // state and the gate/watchdog. NOT serialized: the PCM sampler (restore
  // Start()s the replacement source when the saved state needs one running,
  // re-baselining its cumulative counters at the same tick boundary) and
  // the decisions_ introspection log (a restored detector logs from empty
  // but decides bit-identically). Restore must target the SAME still-running
  // hypervisor world: throttles the old detector armed persist there and are
  // deliberately not re-issued. ConfigFingerprint() refuses a snapshot from
  // different params.
  std::uint64_t ConfigFingerprint() const;
  void SaveState(SnapshotWriter& w) const;
  bool RestoreState(SnapshotReader& r);

 private:
  enum class State : std::uint8_t {
    kIdle,
    kCollectingReference,
    kCollectingMonitored,
    kIdentifySettling,
    kIdentifyCollecting,
  };

  // Decision auditing (no-ops when the hypervisor has no telemetry handle).
  void AuditKsDecision(const char* channel, double p_value, double statistic,
                       int consecutive);
  void TraceDetect(const char* name, std::int64_t owner, const char* key,
                   double value);

  void StartReference();
  void StartMonitored();
  void FinishReference();
  void FinishMonitored();
  void StartIdentification();
  void StartNextCandidate();
  void FinishCandidate();
  void FinishIdentification();

  // One collecting-state tick: reads the gate, handles gaps (throttle
  // re-arm, slack deadline) and finishes the collection when full.
  void CollectTick();
  // The current collection ran out of slack; dispose of it per state.
  void AbandonCollection();

  vm::Hypervisor& hypervisor_;
  std::unique_ptr<pcm::PcmSampler> owned_sampler_;
  pcm::SampleSource& source_;
  // "detect.kstest.tick" profiler span around OnTick (collection + KS
  // decisions + scheduling). Span id is a raw integer (telemetry::SpanId).
  telemetry::SpanProfiler* prof_ = nullptr;
  std::uint32_t span_tick_ = 0;
  KsTestParams params_;
  KsIdentificationParams ident_;
  DegradingSampleGate gate_;

  State state_ = State::kIdle;
  Tick local_tick_ = 0;  // ticks since detector start, plus grid offset
  Tick collected_ = 0;
  // Ticks spent in the current collection, including gap ticks.
  Tick collect_elapsed_ = 0;
  Tick settle_left_ = 0;
  std::uint64_t abandoned_references_ = 0;
  std::uint64_t abandoned_monitored_ = 0;
  std::uint64_t abandoned_candidates_ = 0;

  std::vector<double> ref_access_;
  std::vector<double> ref_miss_;
  std::vector<double> staging_access_;
  std::vector<double> staging_miss_;
  bool reference_ready_ = false;

  int consecutive_access_ = 0;
  int consecutive_miss_ = 0;
  bool attack_active_ = false;
  bool identified_alarm_ = false;

  // Identification sweep state.
  std::vector<OwnerId> candidates_;
  std::size_t candidate_index_ = 0;
  // Channel(s) whose suspicion triggered the sweep.
  bool sweep_on_access_ = false;
  bool sweep_on_miss_ = false;
  // Per-candidate outcome of the sweep: the worst p-value / KS statistic
  // over the triggered channels while that candidate was paused.
  struct CandidateResult {
    OwnerId vm = 0;
    double p_value = 0.0;
    double statistic = 1.0;
  };
  std::vector<CandidateResult> candidate_results_;
  OwnerId identified_attacker_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t alarm_events_ = 0;
  Tick suspicion_tick_ = kInvalidTick;
  Tick last_trigger_ = kInvalidTick;

  std::vector<KsDecision> decisions_;
};

}  // namespace sds::detect
