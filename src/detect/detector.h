// Common interface for online attack detectors driven by the experiment
// harness: after every hypervisor tick the harness calls OnTick(), and the
// detector exposes a continuous "attack in progress" decision. Detectors own
// their PCM samplers (and any hypervisor control they need, e.g. the KStest
// baseline's execution throttling), so their measurement overhead is part of
// the simulation rather than an accounting fiction.
#pragma once

#include <string_view>

#include "common/types.h"

namespace sds::detect {

class Detector {
 public:
  virtual ~Detector() = default;

  // Called once after every hypervisor tick.
  virtual void OnTick() = 0;

  // The detector's current decision: is an attack in progress?
  virtual bool attack_active() const = 0;

  // Number of discrete alarm events raised so far (rising edges of the
  // decision, plus explicit re-declarations for detectors that have them).
  // The harness measures detection delay from attack start to the first NEW
  // alarm event, so a false-positive state latched across the attack start
  // does not masquerade as an instant detection.
  virtual std::uint64_t alarm_events() const = 0;

  // The tick at which the most recent alarm event was TRIGGERED — for SDS
  // the H_C-th consecutive violation, for the KStest baseline the suspicion
  // that launched the identification sweep (the sweep's completion is when
  // the event fires). The harness uses this to discard alarm events whose
  // cause predates the attack.
  virtual Tick last_alarm_trigger_tick() const = 0;

  // Retractions: falling edges of the decision (the detector withdrew an
  // alarm it previously raised). The mitigation engine's rollback path keys
  // off these — a retraction after a response means the alarm was (or has
  // become) false and the action may be undone. Detectors without a notion
  // of retraction keep the defaults.
  virtual std::uint64_t retraction_events() const { return 0; }
  virtual Tick last_retraction_tick() const { return kInvalidTick; }

  virtual std::string_view name() const = 0;
};

}  // namespace sds::detect
