#include "detect/forensics.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace sds::detect {

namespace tel = sds::telemetry;

ForensicsEngine::ForensicsEngine(vm::Hypervisor& hypervisor, OwnerId target,
                                 const ForensicsConfig& config)
    : hypervisor_(hypervisor),
      target_(target),
      config_(config),
      sampler_(hypervisor, target),
      window_(config.window_spans) {
  SDS_CHECK(config.window_spans > 0, "forensics window must be non-empty");
  SDS_CHECK(config.eviction_weight >= 0.0 && config.bus_delay_weight >= 0.0 &&
                config.occupancy_weight >= 0.0,
            "forensics weights must be non-negative");
}

void ForensicsEngine::OnTick() { window_.Push(sampler_.Sample()); }

const ForensicReport& ForensicsEngine::OnAlarm(Tick alarm_tick,
                                               OwnerId kstest_culprit) {
  ForensicReport report;
  report.alarm_tick = alarm_tick;
  report.target = target_;
  report.kstest_culprit = kstest_culprit;
  if (!window_.empty()) {
    report.window_start = window_.oldest().tick - (window_.oldest().span - 1);
    report.window_end = window_.newest().tick;
  }

  // Window sums per candidate (everyone but the target and the owner-0
  // hypervisor sentinel).
  const OwnerId max_owners =
      hypervisor_.machine().attribution()->max_owners();
  std::vector<SuspectEvidence> sums(max_owners);
  for (OwnerId o = 0; o < max_owners; ++o) sums[o].vm = o;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const pcm::AttributionSpan& span = window_[i];
    for (const pcm::AttributionSlice& slice : span.slices) {
      SuspectEvidence& s = sums[slice.owner];
      s.evictions += slice.evictions_on_target;
      s.bus_delay += slice.bus_delay_on_target;
      s.occupancy += slice.occupancy_slots;
    }
  }

  std::uint64_t total_evictions = 0;
  std::uint64_t total_bus_delay = 0;
  std::uint64_t total_occupancy = 0;
  for (OwnerId o = 1; o < max_owners; ++o) {
    if (o == target_) continue;
    total_evictions += sums[o].evictions;
    total_bus_delay += sums[o].bus_delay;
    total_occupancy += sums[o].occupancy;
  }

  // Blend shares over the resources that produced evidence at all; a silent
  // resource neither convicts nor dilutes.
  double weight_total = 0.0;
  if (total_evictions > 0) weight_total += config_.eviction_weight;
  if (total_bus_delay > 0) weight_total += config_.bus_delay_weight;
  if (total_occupancy > 0) weight_total += config_.occupancy_weight;
  for (OwnerId o = 1; o < max_owners; ++o) {
    if (o == target_) continue;
    SuspectEvidence& s = sums[o];
    if (s.evictions == 0 && s.bus_delay == 0 && s.occupancy == 0) continue;
    if (total_evictions > 0) {
      s.eviction_share = static_cast<double>(s.evictions) /
                         static_cast<double>(total_evictions);
    }
    if (total_bus_delay > 0) {
      s.bus_delay_share = static_cast<double>(s.bus_delay) /
                          static_cast<double>(total_bus_delay);
    }
    if (total_occupancy > 0) {
      s.occupancy_share = static_cast<double>(s.occupancy) /
                          static_cast<double>(total_occupancy);
    }
    if (weight_total > 0.0) {
      s.score = (config_.eviction_weight * s.eviction_share +
                 config_.bus_delay_weight * s.bus_delay_share +
                 config_.occupancy_weight * s.occupancy_share) /
                weight_total;
    }
    report.suspects.push_back(s);
  }
  std::sort(report.suspects.begin(), report.suspects.end(),
            [](const SuspectEvidence& a, const SuspectEvidence& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.vm < b.vm;
            });

  if (!report.suspects.empty() &&
      report.suspects.front().score >= config_.min_score) {
    report.attributed = true;
    report.prime_suspect = report.suspects.front().vm;
    // Walk the window oldest-first for the suspect's first direct harm.
    for (std::size_t i = 0; i < window_.size(); ++i) {
      const pcm::AttributionSlice& slice =
          window_[i].slices[report.prime_suspect];
      if (slice.evictions_on_target > 0 || slice.bus_delay_on_target > 0) {
        report.first_evidence_tick =
            window_[i].tick - (window_[i].span - 1);
        break;
      }
    }
    if (report.first_evidence_tick != kInvalidTick &&
        alarm_tick >= report.first_evidence_tick) {
      report.evidence_lead_ticks = alarm_tick - report.first_evidence_tick;
    }
    report.kstest_agrees =
        kstest_culprit != 0 && kstest_culprit == report.prime_suspect;
  }

  if (tel::Telemetry* t = hypervisor_.telemetry()) {
    const double prime_score =
        report.suspects.empty() ? 0.0 : report.suspects.front().score;
    tel::AuditRecord r;
    r.tick = alarm_tick;
    r.detector = "Forensics";
    r.check = "forensics";
    r.channel = "AttributionLedger";
    r.value = prime_score;
    r.lower = config_.min_score;
    r.upper = 1.0;
    r.margin = prime_score - config_.min_score;
    r.violation = report.attributed;
    r.consecutive = static_cast<int>(report.suspects.size());
    r.alarm = report.attributed;
    t->audit().Append(r);
    if (t->tracer().enabled(tel::Layer::kDetect)) {
      t->tracer().Emit(
          tel::MakeEvent(alarm_tick, tel::Layer::kDetect, "forensic_report",
                         target_)
              .Num("prime_suspect", report.prime_suspect)
              .Num("score", prime_score)
              .Num("suspects", static_cast<double>(report.suspects.size()))
              .Num("kstest_culprit", kstest_culprit)
              .Num("kstest_agrees", report.kstest_agrees ? 1.0 : 0.0));
    }
  }

  reports_.push_back(std::move(report));
  return reports_.back();
}

void WriteForensicReportJson(std::ostream& os, const ForensicReport& r) {
  os << "{\"type\":\"forensic_report\",\"alarm_tick\":" << r.alarm_tick
     << ",\"target\":" << r.target
     << ",\"attributed\":" << (r.attributed ? "true" : "false")
     << ",\"prime_suspect\":" << r.prime_suspect
     << ",\"kstest_culprit\":" << r.kstest_culprit
     << ",\"kstest_agrees\":" << (r.kstest_agrees ? "true" : "false")
     << ",\"window_start\":" << r.window_start
     << ",\"window_end\":" << r.window_end << ",\"first_evidence_tick\":";
  if (r.first_evidence_tick == kInvalidTick) {
    os << "null";
  } else {
    os << r.first_evidence_tick;
  }
  os << ",\"evidence_lead_ticks\":" << r.evidence_lead_ticks
     << ",\"suspects\":[";
  for (std::size_t i = 0; i < r.suspects.size(); ++i) {
    const SuspectEvidence& s = r.suspects[i];
    if (i > 0) os << ',';
    os << "{\"vm\":" << s.vm << ",\"score\":" << s.score
       << ",\"evictions\":" << s.evictions << ",\"bus_delay\":" << s.bus_delay
       << ",\"occupancy\":" << s.occupancy << '}';
  }
  os << "]}";
}

void WriteForensicReportText(std::ostream& os, const ForensicReport& r) {
  os << "forensic report @ tick " << r.alarm_tick << " (target VM "
     << r.target << ", evidence ticks " << r.window_start << ".."
     << r.window_end << ")\n";
  if (r.attributed) {
    os << "  prime suspect: VM " << r.prime_suspect << " (score "
       << r.suspects.front().score << ", evidence since tick "
       << r.first_evidence_tick << ", lead " << r.evidence_lead_ticks
       << " ticks)\n";
  } else {
    os << "  prime suspect: unattributed (no candidate cleared min_score)\n";
  }
  if (r.kstest_culprit != 0) {
    os << "  kstest culprit: VM " << r.kstest_culprit << " ("
       << (r.kstest_agrees ? "agrees" : "disagrees") << ")\n";
  }
  for (const SuspectEvidence& s : r.suspects) {
    os << "  VM " << s.vm << ": score " << s.score << "  evictions "
       << s.evictions << " (share " << s.eviction_share << ")  bus_delay "
       << s.bus_delay << " (share " << s.bus_delay_share << ")  occupancy "
       << s.occupancy << " (share " << s.occupancy_share << ")\n";
  }
}

}  // namespace sds::detect
