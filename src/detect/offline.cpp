#include "detect/offline.h"

#include <memory>

namespace sds::detect {

OfflineResult ReplaySds(std::span<const pcm::PcmSample> profile_trace,
                        std::span<const pcm::PcmSample> trace,
                        const DetectorParams& params) {
  const SdsProfile profile = BuildSdsProfile(profile_trace, params);

  BoundaryAnalyzer b_access(profile.access_boundary, params);
  BoundaryAnalyzer b_miss(profile.miss_boundary, params);
  std::unique_ptr<PeriodAnalyzer> p_access;
  std::unique_ptr<PeriodAnalyzer> p_miss;
  if (profile.access_period) {
    p_access = std::make_unique<PeriodAnalyzer>(*profile.access_period, params);
  }
  if (profile.miss_period) {
    p_miss = std::make_unique<PeriodAnalyzer>(*profile.miss_period, params);
  }

  OfflineResult result;
  result.profile_periodic = profile.periodic();

  bool was_active = false;
  std::size_t active_ticks = 0;
  for (const auto& s : trace) {
    const auto access = static_cast<double>(s.access_num);
    const auto miss = static_cast<double>(s.miss_num);
    b_access.Observe(access);
    b_miss.Observe(miss);
    if (p_access) p_access->Observe(access);
    if (p_miss) p_miss->Observe(miss);

    const bool boundary = b_access.attack_active() || b_miss.attack_active();
    const bool period = (p_access && p_access->attack_active()) ||
                        (p_miss && p_miss->attack_active());
    const bool active =
        result.profile_periodic ? (boundary && period) : boundary;
    if (active) ++active_ticks;
    if (active && !was_active) result.alarm_ticks.push_back(s.tick);
    was_active = active;
  }
  if (!trace.empty()) {
    result.active_fraction =
        static_cast<double>(active_ticks) / static_cast<double>(trace.size());
  }
  return result;
}

}  // namespace sds::detect
