// Detection-scheme parameters (paper Table 1 and Section 3.2).
#pragma once

#include <cstddef>

#include "common/types.h"

namespace sds::detect {

// Parameters of SDS/B and SDS/P. Defaults are exactly Table 1.
struct DetectorParams {
  // -- preprocessing (Section 4.1) --
  // Sliding window size W over raw PCM samples.
  std::size_t window = 200;
  // Sliding step dW: a new MA value every dW raw samples.
  std::size_t step = 50;
  // EWMA smoothing factor alpha.
  double alpha = 0.2;

  // -- SDS/B (Section 4.2.1) --
  // Boundary factor k: normal range is [mu - k sigma, mu + k sigma].
  double boundary_k = 1.125;
  // Consecutive out-of-range EWMA values required to raise the alarm.
  int h_c = 30;

  // -- SDS/P (Section 4.2.2) --
  // Period window W_P = wp_multiplier * p (paper: 2p).
  double wp_multiplier = 2.0;
  // A period check every delta_wp new MA values.
  std::size_t delta_wp = 10;
  // Consecutive abnormal periods required to raise the alarm.
  int h_p = 5;
  // Relative deviation from the profiled period considered abnormal (20%).
  double period_tolerance = 0.20;
};

// Parameters of the KStest baseline [49], as restated in Section 3.2:
// T_PCM = 0.01 s, W_R = W_M = 1 s, L_M = 2 s, L_R = 30 s. Expressed in ticks
// (one tick = one T_PCM interval).
struct KsTestParams {
  // Reference refresh interval L_R.
  Tick l_r = 3000;
  // Reference window W_R (collected under execution throttling).
  Tick w_r = 100;
  // Monitored test interval L_M.
  Tick l_m = 200;
  // Monitored window W_M.
  Tick w_m = 100;
  // KS test significance level.
  double alpha = 0.05;
  // Consecutive rejections that declare an attack ("four consecutive times").
  int consecutive_rejections = 4;
  // Phase offset of the L_R/L_M grid relative to detector start. Real
  // deployments start the detector at an arbitrary time relative to any
  // attack; the harness randomizes this per run.
  Tick initial_offset = 0;
};

}  // namespace sds::detect
