#include "detect/period.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace sds::detect {
namespace {

// Minimum MA values for a meaningful DFT-ACF estimate.
constexpr std::size_t kMinSeries = 16;

// Minimum ACF strength each half of the profile window must show for the
// application to classify as periodic. Batch applications (PCA, FaceNet)
// show 0.8+ on their MissNum channel; iterative apps with drifting cycle
// lengths (k-means, join, TeraSort) stay below ~0.5.
constexpr double kMinHalfStrength = 0.55;

}  // namespace

std::optional<PeriodProfile> ClassifyPeriodicity(std::span<const double> raw,
                                                 const DetectorParams& params) {
  const std::vector<double> ma = MovingAverageSeries(
      std::vector<double>(raw.begin(), raw.end()), params.window, params.step);
  if (ma.size() < 2 * kMinSeries) return std::nullopt;

  // Both halves must independently show a consistent period: a one-off
  // transient (e.g. application startup) must not classify as periodic.
  const std::size_t half = ma.size() / 2;
  const auto first = DetectPeriod(std::span(ma).subspan(0, half));
  const auto second = DetectPeriod(std::span(ma).subspan(half));
  if (!first || !second) return std::nullopt;
  if (first->strength < kMinHalfStrength ||
      second->strength < kMinHalfStrength) {
    return std::nullopt;
  }

  const double rel_diff = std::abs(first->period - second->period) /
                          std::max(first->period, second->period);
  if (rel_diff > 0.25) return std::nullopt;

  // Refine on the full series (more cycles, better resolution); fall back to
  // the halves' average if the full-series estimate disagrees.
  const auto full = DetectPeriod(std::span(ma));
  PeriodProfile profile;
  if (full && std::abs(full->period - first->period) / first->period < 0.3) {
    profile.period = full->period;
    profile.strength = full->strength;
  } else {
    profile.period = 0.5 * (first->period + second->period);
    profile.strength = std::min(first->strength, second->strength);
  }
  return profile;
}

PeriodAnalyzer::PeriodAnalyzer(const PeriodProfile& profile,
                               const DetectorParams& params)
    : profile_(profile),
      params_(params),
      window_size_(std::max<std::size_t>(
          kMinSeries, static_cast<std::size_t>(
                          params.wp_multiplier * profile.period + 0.5))),
      ma_values_(window_size_),
      ma_(params.window, params.step) {
  SDS_CHECK(profile.period > 0.0, "period profile must be positive");
  SDS_CHECK(params.h_p >= 1, "H_P must be at least 1");
  SDS_CHECK(params.delta_wp >= 1, "delta_wp must be at least 1");
  SDS_CHECK(params.period_tolerance > 0.0, "tolerance must be positive");
}

void PeriodAnalyzer::SaveState(SnapshotWriter& w) const {
  w.F64(profile_.period);
  w.F64(profile_.strength);
  w.U64(window_size_);
  w.VecF64(ma_values_.ToVector());
  ma_.SaveState(w);
  w.U64(ma_since_check_);
  w.U64(ma_count_);
  w.I64(consecutive_);
}

bool PeriodAnalyzer::RestoreState(SnapshotReader& r) {
  const double period = r.F64();
  const double strength = r.F64();
  const std::uint64_t window_size = r.U64();
  if (!r.ok() || period != profile_.period || strength != profile_.strength ||
      window_size != window_size_) {
    return false;
  }
  const std::vector<double> ma_values = r.VecF64();
  if (!r.ok() || ma_values.size() > window_size_) return false;
  if (!ma_.RestoreState(r)) return false;
  const std::uint64_t ma_since_check = r.U64();
  const std::uint64_t ma_count = r.U64();
  const std::int64_t consecutive = r.I64();
  if (!r.ok() || consecutive < 0) return false;
  ma_values_.Clear();
  for (double v : ma_values) ma_values_.Push(v);
  ma_since_check_ = ma_since_check;
  ma_count_ = ma_count;
  consecutive_ = static_cast<int>(consecutive);
  return true;
}

std::optional<PeriodCheck> PeriodAnalyzer::Observe(double raw) {
  const auto m = ma_.Push(raw);
  if (!m) return std::nullopt;
  ma_values_.Push(*m);
  ++ma_count_;
  if (!ma_values_.full()) return std::nullopt;
  if (++ma_since_check_ < params_.delta_wp) return std::nullopt;
  ma_since_check_ = 0;

  PeriodCheck check;
  check.ma_index = ma_count_ - 1;
  const std::vector<double> window = ma_values_.ToVector();
  const auto est = DetectPeriod(window);
  if (est) check.period = est->period;

  // Abnormal when the period is gone (the attack destroyed the pattern or
  // stretched it beyond the window) or deviates from the profile by more
  // than the tolerance.
  if (!est) {
    check.abnormal = true;
  } else {
    const double deviation =
        std::abs(est->period - profile_.period) / profile_.period;
    check.abnormal = deviation > params_.period_tolerance;
  }

  consecutive_ = check.abnormal ? consecutive_ + 1 : 0;
  checks_.push_back(check);
  return check;
}

}  // namespace sds::detect
