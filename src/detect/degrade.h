// Graceful degradation of the detection pipeline under an imperfect
// monitoring plane.
//
// The paper's detectors assume one clean PCM sample per tick. Production
// monitoring does not deliver that: reads drop, intervals coalesce, counters
// reset, the sampler dies. This module gives detectors a disciplined way to
// keep operating — and keep their statistics honest — when that happens:
//
//   * SampleSanityGate    rejects physically-impossible samples (quarantine)
//                         before they can poison sigma_E boundaries or the
//                         KS reference CDF;
//   * SamplerWatchdog     detects a dead SampleSource and restarts it with
//                         bounded exponential backoff;
//   * DegradingSampleGate composes source + sanity + watchdog + gap policy
//                         into the single per-tick read detectors consume.
//
// Gap policies (what to feed the analyzers when a tick has no usable
// sample):
//   kHoldLast    substitute the last good sample — the EWMA effectively
//                holds its value and decision cadence is preserved;
//   kSkipFreeze  feed nothing — analyzer windows and consecutive-violation
//                counters freeze until real data resumes;
//   kRewarm      like kSkipFreeze, and a gap of >= rewarm_gap ticks resets
//                the preprocessing pipeline so a stale half-filled MA window
//                never mixes pre- and post-gap data (a fresh warm-up, as
//                after a VM migration).
//
// TRANSPARENCY INVARIANT: with a fault-free source, every policy is
// bit-transparent — the gate returns exactly the source's samples, the
// sanity gate accepts every sample the simulator can physically produce,
// and the watchdog never fires. tests/integration/golden_regression_test
// pins this.
#pragma once

#include <cstdint>
#include <optional>

#include "common/snapshot.h"
#include "common/types.h"
#include "pcm/pcm_sampler.h"
#include "pcm/sample_source.h"
#include "vm/hypervisor.h"

namespace sds::detect {

enum class GapPolicy : std::uint8_t {
  kHoldLast,
  kSkipFreeze,
  kRewarm,
};

const char* GapPolicyName(GapPolicy policy);

struct SanityParams {
  bool enabled = true;
  // Hard ceiling on a physically possible per-interval delta for either
  // channel. The simulated machine's bus serves well under 10k operations
  // per tick; the default leaves two orders of magnitude of headroom so no
  // legitimate sample is ever quarantined.
  std::uint64_t max_delta_per_tick = 1'000'000;
  // LLC misses are a subset of LLC accesses; a sample violating that is
  // corrupt by construction.
  bool check_miss_le_access = true;
};

struct WatchdogParams {
  bool enabled = true;
  // Consecutive missing samples before the watchdog probes an unhealthy
  // source (a healthy-but-lossy source is left alone).
  int dead_after_misses = 5;
  // Bounded exponential backoff between restart attempts, in ticks.
  Tick backoff_initial = 1;
  Tick backoff_max = 64;
};

struct DegradeConfig {
  GapPolicy gap_policy = GapPolicy::kHoldLast;
  // kRewarm: gap length (in ticks) that triggers a pipeline re-warm.
  Tick rewarm_gap = 50;
  SanityParams sanity;
  WatchdogParams watchdog;
};

// Stateless sample validation. `span_ticks` is the number of PCM intervals
// the sample's delta covers (1 + the missed ticks it coalesced), which
// scales the ceiling so a legitimate post-gap sample is not quarantined.
bool SampleIsSane(const pcm::PcmSample& sample, const SanityParams& params,
                  Tick span_ticks);

class SamplerWatchdog {
 public:
  SamplerWatchdog(pcm::SampleSource& source, const WatchdogParams& params,
                  vm::Hypervisor& hypervisor);

  // Report one tick with no sample. May attempt a restart (rate-limited by
  // the backoff); returns true when a restart SUCCEEDED this tick — the
  // source was re-baselined and the consumer should re-warm.
  bool OnMissing(Tick now);
  // Report a delivered sample: resets the miss streak and the backoff.
  void OnDelivered();

  std::uint64_t attempts() const { return attempts_; }
  std::uint64_t restarts() const { return restarts_; }
  int miss_streak() const { return miss_streak_; }

  // Snapshot/restore of the miss streak, backoff schedule and lifetime
  // counters (the source/hypervisor references are construction inputs).
  void SaveState(SnapshotWriter& w) const;
  bool RestoreState(SnapshotReader& r);

 private:
  pcm::SampleSource& source_;
  WatchdogParams params_;
  vm::Hypervisor& hypervisor_;
  int miss_streak_ = 0;
  Tick next_attempt_ = 0;
  Tick backoff_ = 0;
  std::uint64_t attempts_ = 0;
  std::uint64_t restarts_ = 0;
};

// Aggregate degradation activity, for run reports and the robustness bench.
struct DegradeStats {
  std::uint64_t delivered = 0;
  std::uint64_t gap_ticks = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t substituted = 0;
  std::uint64_t rewarms = 0;
  std::uint64_t watchdog_attempts = 0;
  std::uint64_t watchdog_restarts = 0;
};

class DegradingSampleGate {
 public:
  // `consumer` names the detector in telemetry events and audit records;
  // must be a string literal (or outlive the gate).
  DegradingSampleGate(vm::Hypervisor& hypervisor, pcm::SampleSource& source,
                      const DegradeConfig& config, const char* consumer);

  struct Outcome {
    // The sample to feed the analyzers. nullopt = feed nothing this tick
    // (gap under kSkipFreeze/kRewarm, or nothing to substitute yet).
    std::optional<pcm::PcmSample> sample;
    // A raw sample arrived from the source (sample may still be empty if it
    // was quarantined).
    bool delivered = false;
    bool quarantined = false;
    // True when sample is a hold-last substitute, not fresh data.
    bool substituted = false;
    // The consumer must reset its preprocessing pipeline: a long gap under
    // kRewarm, or a successful watchdog restart under kSkipFreeze/kRewarm
    // (kHoldLast keeps analyzer state — its substitute stream stayed
    // continuous across the gap).
    bool rewarm = false;
  };

  // Call exactly once per hypervisor tick while the source is started.
  Outcome OnTick();

  // Forget the gap run and hold-last sample (call when a new monitoring
  // session starts: the previous session's last sample is stale context).
  void OnSessionStart();

  const DegradeStats& stats() const { return stats_; }
  const SamplerWatchdog& watchdog() const { return watchdog_; }
  const DegradeConfig& config() const { return config_; }

  // Snapshot/restore: hold-last sample, gap run, pending rewarm, lifetime
  // stats, and the embedded watchdog. The config is a construction input;
  // restore validates the saved gap policy matches and refuses otherwise.
  void SaveState(SnapshotWriter& w) const;
  bool RestoreState(SnapshotReader& r);

 private:
  void EmitDegrade(Tick tick, const char* action, double value, double bound,
                   bool violation);

  vm::Hypervisor& hypervisor_;
  pcm::SampleSource& source_;
  DegradeConfig config_;
  const char* consumer_;
  SamplerWatchdog watchdog_;
  std::optional<pcm::PcmSample> last_good_;
  // Consecutive ticks without a usable sample, so far.
  Tick gap_run_ = 0;
  bool rewarm_pending_ = false;
  DegradeStats stats_;
};

}  // namespace sds::detect
