// The SDS detection system (Section 5.1): SDS/B alone, SDS/P alone, or the
// combined SDS, wired to a live hypervisor through one always-on PCM sampler.
//
// Channel policy: both statistic channels are monitored simultaneously —
// AccessNum catches the bus locking attack, MissNum the LLC cleansing attack
// — and a scheme is active when EITHER channel's analyzer is active. The
// combined SDS follows the paper exactly: for non-periodic applications only
// SDS/B decides; for periodic applications BOTH SDS/B and SDS/P must agree
// before the alarm is raised (this conjunction removes residual false
// positives, Figure 10).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "detect/boundary.h"
#include "detect/degrade.h"
#include "detect/detector.h"
#include "detect/period.h"
#include "detect/profile.h"
#include "pcm/pcm_sampler.h"
#include "pcm/sample_source.h"
#include "vm/hypervisor.h"

namespace sds::detect {

enum class SdsMode : std::uint8_t {
  kBoundaryOnly,  // SDS/B
  kPeriodOnly,    // SDS/P (valid only for periodic applications)
  kCombined,      // SDS
};

const char* SdsModeName(SdsMode mode);

class SdsDetector final : public Detector {
 public:
  // The profile must come from a clean window of the same application
  // (BuildSdsProfile). For kPeriodOnly the profile must be periodic.
  //
  // This overload owns a perfect PcmSampler and default degradation config;
  // it behaves bit-identically to the pre-seam detector (pinned by
  // tests/integration/golden_regression_test).
  SdsDetector(vm::Hypervisor& hypervisor, OwnerId target,
              const SdsProfile& profile, const DetectorParams& params,
              SdsMode mode);

  // Monitoring-plane seam: reads `source` (nullptr = own a PcmSampler)
  // through a DegradingSampleGate configured by `degrade`, so the detector
  // survives dropped samples, outages, corrupt reads and sampler death. An
  // external `source` must outlive the detector; the detector starts it.
  SdsDetector(vm::Hypervisor& hypervisor, OwnerId target,
              const SdsProfile& profile, const DetectorParams& params,
              SdsMode mode, pcm::SampleSource* source,
              const DegradeConfig& degrade);

  void OnTick() override;
  bool attack_active() const override;
  std::uint64_t alarm_events() const override { return alarm_events_; }
  Tick last_alarm_trigger_tick() const override { return last_trigger_; }
  std::uint64_t retraction_events() const override {
    return retraction_events_;
  }
  Tick last_retraction_tick() const override { return last_retraction_; }
  std::string_view name() const override { return name_; }

  // Introspection for the example binaries and the Figure 7/8 benches.
  const BoundaryAnalyzer& access_boundary() const { return *b_access_; }
  const BoundaryAnalyzer& miss_boundary() const { return *b_miss_; }
  const PeriodAnalyzer* access_period() const { return p_access_.get(); }
  const PeriodAnalyzer* miss_period() const { return p_miss_.get(); }
  bool boundary_active() const;
  bool period_active() const;
  SdsMode mode() const { return mode_; }

  // Degradation activity of this detector's sample gate.
  const DegradingSampleGate& gate() const { return gate_; }

  // Snapshot/restore at a tick boundary (DESIGN.md §13) so a monitoring
  // service restarts without re-warming its analyzer windows. Serialized:
  // analyzer pipelines (both channels), gate + watchdog state, and alarm
  // edge tracking. NOT serialized: the PCM sampler (restore assumes the
  // replacement source Start()s at the same tick boundary, which
  // re-baselines its cumulative counters to exactly where the old sampler
  // left off) and telemetry handles. ConfigFingerprint() hashes the
  // profile/params/mode so a snapshot cannot restore into a detector built
  // with a different configuration.
  std::uint64_t ConfigFingerprint() const;
  void SaveState(SnapshotWriter& w) const;
  bool RestoreState(SnapshotReader& r);

 private:
  // Resets the preprocessing pipeline (EWMA/MA windows, consecutive
  // counters) after a gap or sampler restart severed the sample stream; the
  // clean profile itself stays valid.
  void Rewarm();
  // Decision auditing (no-ops when the hypervisor has no telemetry handle).
  void AuditBoundary(Tick tick, const char* channel,
                     const BoundaryAnalyzer& analyzer, double ewma,
                     bool alarm);
  void AuditPeriod(Tick tick, const char* channel,
                   const PeriodAnalyzer& analyzer, const PeriodCheck& check,
                   bool alarm);

  vm::Hypervisor& hypervisor_;
  // Set when the detector owns its (perfect) sampler; source_ then refers
  // to it. With an external SampleSource, owned_sampler_ stays null.
  std::unique_ptr<pcm::PcmSampler> owned_sampler_;
  pcm::SampleSource& source_;
  // Kept so Rewarm() can rebuild the analyzers from scratch.
  SdsProfile profile_;
  DetectorParams params_;
  SdsMode mode_;
  std::string name_;
  DegradingSampleGate gate_;
  std::unique_ptr<BoundaryAnalyzer> b_access_;
  std::unique_ptr<BoundaryAnalyzer> b_miss_;
  std::unique_ptr<PeriodAnalyzer> p_access_;
  std::unique_ptr<PeriodAnalyzer> p_miss_;
  bool profile_periodic_;
  // "detect.sds.tick" profiler span around OnTick (gate read + analyzers +
  // auditing). Span id is a raw integer (telemetry::SpanId).
  telemetry::SpanProfiler* prof_ = nullptr;
  std::uint32_t span_tick_ = 0;
  bool was_active_ = false;
  std::uint64_t alarm_events_ = 0;
  Tick last_trigger_ = kInvalidTick;
  std::uint64_t retraction_events_ = 0;
  Tick last_retraction_ = kInvalidTick;
};

}  // namespace sds::detect
