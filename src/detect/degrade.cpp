#include "detect/degrade.h"

#include <algorithm>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace sds::detect {

namespace tel = sds::telemetry;

const char* GapPolicyName(GapPolicy policy) {
  switch (policy) {
    case GapPolicy::kHoldLast:
      return "hold_last";
    case GapPolicy::kSkipFreeze:
      return "skip_freeze";
    case GapPolicy::kRewarm:
      return "rewarm";
  }
  return "?";
}

bool SampleIsSane(const pcm::PcmSample& sample, const SanityParams& params,
                  Tick span_ticks) {
  if (!params.enabled) return true;
  const auto span =
      static_cast<std::uint64_t>(std::max<Tick>(span_ticks, 1));
  // max_delta_per_tick (1e6 default) * any plausible span stays far from
  // 64-bit overflow; a tampered span cannot reach here (spans come from the
  // sampler's own tick arithmetic).
  const std::uint64_t ceiling = params.max_delta_per_tick * span;
  if (sample.access_num > ceiling || sample.miss_num > ceiling) return false;
  if (params.check_miss_le_access && sample.miss_num > sample.access_num) {
    return false;
  }
  return true;
}

SamplerWatchdog::SamplerWatchdog(pcm::SampleSource& source,
                                 const WatchdogParams& params,
                                 vm::Hypervisor& hypervisor)
    : source_(source), params_(params), hypervisor_(hypervisor) {
  SDS_CHECK(params_.dead_after_misses > 0, "dead_after_misses must be >= 1");
  SDS_CHECK(params_.backoff_initial > 0 &&
                params_.backoff_max >= params_.backoff_initial,
            "bad watchdog backoff range");
}

bool SamplerWatchdog::OnMissing(Tick now) {
  if (!params_.enabled) return false;
  ++miss_streak_;
  // A healthy-but-lossy source is left alone until the streak says the
  // stream is effectively dead; an unhealthy source is probed immediately.
  const bool presumed_dead =
      !source_.healthy() || miss_streak_ >= params_.dead_after_misses;
  if (!presumed_dead) return false;
  if (backoff_ == 0) {
    // First probe of this incident: no waiting.
    backoff_ = params_.backoff_initial;
    next_attempt_ = now;
  }
  if (now < next_attempt_) return false;

  ++attempts_;
  tel::Telemetry* t = hypervisor_.telemetry();
  const bool restarted = source_.TryRestart();
  if (t && t->tracer().enabled(tel::Layer::kFault)) {
    t->tracer().Emit(tel::MakeEvent(now, tel::Layer::kFault,
                                    restarted ? "watchdog_restart"
                                              : "watchdog_attempt",
                                    source_.target())
                         .Num("miss_streak", static_cast<double>(miss_streak_))
                         .Num("backoff", static_cast<double>(backoff_)));
  }
  // The backoff grows across ALL attempts of the incident — including
  // "successful" restarts after which the stream stays silent; only a
  // delivered sample (OnDelivered) ends the incident and resets it.
  // Otherwise a source that accepts restarts without resuming delivery
  // would be restarted (and the consumer re-warmed) every few ticks.
  next_attempt_ = now + backoff_;
  backoff_ = std::min(backoff_ * 2, params_.backoff_max);
  if (restarted) {
    ++restarts_;
    miss_streak_ = 0;
    return true;
  }
  return false;
}

void SamplerWatchdog::OnDelivered() {
  miss_streak_ = 0;
  backoff_ = 0;
}

void SamplerWatchdog::SaveState(SnapshotWriter& w) const {
  w.I64(miss_streak_);
  w.I64(next_attempt_);
  w.I64(backoff_);
  w.U64(attempts_);
  w.U64(restarts_);
}

bool SamplerWatchdog::RestoreState(SnapshotReader& r) {
  const std::int64_t miss_streak = r.I64();
  const std::int64_t next_attempt = r.I64();
  const std::int64_t backoff = r.I64();
  const std::uint64_t attempts = r.U64();
  const std::uint64_t restarts = r.U64();
  if (!r.ok() || miss_streak < 0 || backoff < 0) return false;
  miss_streak_ = static_cast<int>(miss_streak);
  next_attempt_ = static_cast<Tick>(next_attempt);
  backoff_ = static_cast<Tick>(backoff);
  attempts_ = attempts;
  restarts_ = restarts;
  return true;
}

DegradingSampleGate::DegradingSampleGate(vm::Hypervisor& hypervisor,
                                         pcm::SampleSource& source,
                                         const DegradeConfig& config,
                                         const char* consumer)
    : hypervisor_(hypervisor),
      source_(source),
      config_(config),
      consumer_(consumer),
      watchdog_(source, config.watchdog, hypervisor) {
  SDS_CHECK(config_.rewarm_gap > 0, "rewarm_gap must be >= 1");
}

void DegradingSampleGate::EmitDegrade(Tick tick, const char* action,
                                      double value, double bound,
                                      bool violation) {
  tel::Telemetry* t = hypervisor_.telemetry();
  if (!t) return;
  if (t->tracer().enabled(tel::Layer::kFault)) {
    t->tracer().Emit(tel::MakeEvent(tick, tel::Layer::kFault, action,
                                    source_.target())
                         .Str("consumer", consumer_)
                         .Num("value", value)
                         .Num("bound", bound));
  }
  // Degradation actions ride the same audit stream as detector decisions so
  // a recall/delay shift under faults can be explained record by record.
  tel::AuditRecord r;
  r.tick = tick;
  r.detector = consumer_;
  r.check = "degrade";
  r.channel = action;
  r.value = value;
  r.upper = bound;
  r.violation = violation;
  r.consecutive = static_cast<int>(std::min<Tick>(gap_run_, 1'000'000));
  t->audit().Append(r);
}

DegradingSampleGate::Outcome DegradingSampleGate::OnTick() {
  Outcome out;
  const Tick now = hypervisor_.now();
  std::optional<pcm::PcmSample> raw = source_.Next();

  bool usable = false;
  pcm::PcmSample s;
  if (raw.has_value()) {
    out.delivered = true;
    const Tick span = std::max<Tick>(source_.last_span(), 1);
    if (!SampleIsSane(*raw, config_.sanity, span)) {
      // Quarantine: the sample is corrupt by construction; treat the tick
      // as a gap so the gap policy decides what the analyzers see.
      ++stats_.quarantined;
      out.quarantined = true;
      EmitDegrade(now, "quarantine",
                  static_cast<double>(
                      std::max(raw->access_num, raw->miss_num)),
                  static_cast<double>(config_.sanity.max_delta_per_tick) *
                      static_cast<double>(span),
                  true);
    } else {
      s = *raw;
      if (span > 1) {
        // The delta coalesced `span` intervals; feed the per-interval
        // average so one wide sample does not read as a burst.
        s.access_num /= static_cast<std::uint64_t>(span);
        s.miss_num /= static_cast<std::uint64_t>(span);
      }
      usable = true;
    }
  }

  if (!usable) {
    ++gap_run_;
    ++stats_.gap_ticks;
    if (watchdog_.OnMissing(now)) {
      // Successful restart re-baselined the source. Under kHoldLast the
      // substitute stream stayed continuous (per-interval values on both
      // sides of the gap are the same units), so the analyzers keep their
      // state; the other policies left a real discontinuity in the
      // analyzer windows and get a fresh warm-up.
      if (config_.gap_policy != GapPolicy::kHoldLast) {
        out.rewarm = true;
        rewarm_pending_ = false;
        ++stats_.rewarms;
        EmitDegrade(now, "rewarm", static_cast<double>(gap_run_),
                    static_cast<double>(config_.rewarm_gap), false);
      }
    } else if (config_.gap_policy == GapPolicy::kRewarm && !rewarm_pending_ &&
               gap_run_ >= config_.rewarm_gap) {
      // Long gap: schedule one re-warm; it fires now so the consumer can
      // discard its half-filled windows, and is not repeated while the same
      // gap keeps running.
      out.rewarm = true;
      rewarm_pending_ = true;
      ++stats_.rewarms;
      EmitDegrade(now, "rewarm", static_cast<double>(gap_run_),
                  static_cast<double>(config_.rewarm_gap), false);
    }
    if (config_.gap_policy == GapPolicy::kHoldLast && last_good_.has_value()) {
      pcm::PcmSample held = *last_good_;
      held.tick = now;
      out.sample = held;
      out.substituted = true;
      ++stats_.substituted;
    }
    stats_.watchdog_attempts = watchdog_.attempts();
    stats_.watchdog_restarts = watchdog_.restarts();
    return out;
  }

  ++stats_.delivered;
  gap_run_ = 0;
  rewarm_pending_ = false;
  watchdog_.OnDelivered();
  last_good_ = s;
  out.sample = s;
  stats_.watchdog_attempts = watchdog_.attempts();
  stats_.watchdog_restarts = watchdog_.restarts();
  return out;
}

void DegradingSampleGate::SaveState(SnapshotWriter& w) const {
  w.U32(static_cast<std::uint32_t>(config_.gap_policy));
  watchdog_.SaveState(w);
  w.Bool(last_good_.has_value());
  if (last_good_.has_value()) {
    w.I64(last_good_->tick);
    w.U64(last_good_->access_num);
    w.U64(last_good_->miss_num);
  }
  w.I64(gap_run_);
  w.Bool(rewarm_pending_);
  w.U64(stats_.delivered);
  w.U64(stats_.gap_ticks);
  w.U64(stats_.quarantined);
  w.U64(stats_.substituted);
  w.U64(stats_.rewarms);
  w.U64(stats_.watchdog_attempts);
  w.U64(stats_.watchdog_restarts);
}

bool DegradingSampleGate::RestoreState(SnapshotReader& r) {
  const std::uint32_t policy = r.U32();
  if (!r.ok() || policy != static_cast<std::uint32_t>(config_.gap_policy)) {
    return false;
  }
  if (!watchdog_.RestoreState(r)) return false;
  std::optional<pcm::PcmSample> last_good;
  if (r.Bool()) {
    pcm::PcmSample s;
    s.tick = static_cast<Tick>(r.I64());
    s.access_num = r.U64();
    s.miss_num = r.U64();
    last_good = s;
  }
  const std::int64_t gap_run = r.I64();
  const bool rewarm_pending = r.Bool();
  DegradeStats stats;
  stats.delivered = r.U64();
  stats.gap_ticks = r.U64();
  stats.quarantined = r.U64();
  stats.substituted = r.U64();
  stats.rewarms = r.U64();
  stats.watchdog_attempts = r.U64();
  stats.watchdog_restarts = r.U64();
  if (!r.ok() || gap_run < 0) return false;
  last_good_ = last_good;
  gap_run_ = static_cast<Tick>(gap_run);
  rewarm_pending_ = rewarm_pending;
  stats_ = stats;
  return true;
}

void DegradingSampleGate::OnSessionStart() {
  last_good_.reset();
  gap_run_ = 0;
  rewarm_pending_ = false;
}

}  // namespace sds::detect
