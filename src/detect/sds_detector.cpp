#include "detect/sds_detector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace sds::detect {

namespace tel = sds::telemetry;

const char* SdsModeName(SdsMode mode) {
  switch (mode) {
    case SdsMode::kBoundaryOnly:
      return "SDS/B";
    case SdsMode::kPeriodOnly:
      return "SDS/P";
    case SdsMode::kCombined:
      return "SDS";
  }
  return "?";
}

SdsDetector::SdsDetector(vm::Hypervisor& hypervisor, OwnerId target,
                         const SdsProfile& profile,
                         const DetectorParams& params, SdsMode mode)
    : SdsDetector(hypervisor, target, profile, params, mode, nullptr,
                  DegradeConfig{}) {}

SdsDetector::SdsDetector(vm::Hypervisor& hypervisor, OwnerId target,
                         const SdsProfile& profile,
                         const DetectorParams& params, SdsMode mode,
                         pcm::SampleSource* source,
                         const DegradeConfig& degrade)
    : hypervisor_(hypervisor),
      owned_sampler_(source ? nullptr
                            : std::make_unique<pcm::PcmSampler>(hypervisor,
                                                                target)),
      source_(source ? *source : *owned_sampler_),
      profile_(profile),
      params_(params),
      mode_(mode),
      name_(SdsModeName(mode)),
      gate_(hypervisor, source_, degrade, SdsModeName(mode)),
      profile_periodic_(profile.periodic()) {
  SDS_CHECK(source_.target() == target,
            "SampleSource monitors a different VM than the detector");
  if (tel::Telemetry* t = hypervisor_.telemetry()) {
    prof_ = &t->profiler();
    span_tick_ = prof_->RegisterSpan("detect.sds.tick");
  }
  Rewarm();
  SDS_CHECK(mode != SdsMode::kPeriodOnly || profile_periodic_,
            "SDS/P requires a periodic profile");
  if (!source_.started()) source_.Start();
  gate_.OnSessionStart();
}

void SdsDetector::Rewarm() {
  b_access_ =
      std::make_unique<BoundaryAnalyzer>(profile_.access_boundary, params_);
  b_miss_ =
      std::make_unique<BoundaryAnalyzer>(profile_.miss_boundary, params_);
  p_access_.reset();
  p_miss_.reset();
  if (profile_.access_period) {
    p_access_ =
        std::make_unique<PeriodAnalyzer>(*profile_.access_period, params_);
  }
  if (profile_.miss_period) {
    p_miss_ = std::make_unique<PeriodAnalyzer>(*profile_.miss_period, params_);
  }
}

void SdsDetector::AuditBoundary(Tick tick, const char* channel,
                                const BoundaryAnalyzer& analyzer, double ewma,
                                bool alarm) {
  tel::Telemetry* t = hypervisor_.telemetry();
  if (!t) return;
  tel::AuditRecord r;
  r.tick = tick;
  r.detector = SdsModeName(mode_);
  r.check = "boundary";
  r.channel = channel;
  r.value = ewma;
  r.lower = analyzer.lower_bound();
  r.upper = analyzer.upper_bound();
  r.violation = ewma < r.lower || ewma > r.upper;
  // Margin in clean-profile sigma units: how far beyond the Chebyshev bound
  // the EWMA value sits (negative = inside, with that much headroom).
  const double sigma = std::max(analyzer.profile().stddev, 1e-12);
  const double outside = std::max(r.lower - ewma, ewma - r.upper);
  r.margin = outside / sigma;
  r.consecutive = analyzer.consecutive_violations();
  r.alarm = alarm;
  t->audit().Append(r);
  if (t->tracer().enabled(tel::Layer::kDetect)) {
    t->tracer().Emit(tel::MakeEvent(tick, tel::Layer::kDetect,
                                    "boundary_check")
                         .Str("channel", channel)
                         .Num("ewma", ewma)
                         .Num("violation", r.violation ? 1.0 : 0.0)
                         .Num("consecutive", r.consecutive));
  }
}

void SdsDetector::AuditPeriod(Tick tick, const char* channel,
                              const PeriodAnalyzer& analyzer,
                              const PeriodCheck& check, bool alarm) {
  tel::Telemetry* t = hypervisor_.telemetry();
  if (!t) return;
  const double nominal = analyzer.profile().period;
  tel::AuditRecord r;
  r.tick = tick;
  r.detector = SdsModeName(mode_);
  r.check = "period";
  r.channel = channel;
  r.value = check.period.value_or(0.0);
  r.lower = nominal * (1.0 - analyzer.tolerance());
  r.upper = nominal * (1.0 + analyzer.tolerance());
  r.violation = check.abnormal;
  // Margin as relative period deviation beyond the tolerance band; an
  // undetectable period is maximally abnormal.
  if (check.period.has_value() && nominal > 0.0) {
    r.margin =
        std::fabs(*check.period - nominal) / nominal - analyzer.tolerance();
  } else {
    r.margin = 1.0;
  }
  r.consecutive = analyzer.consecutive_abnormal();
  r.alarm = alarm;
  t->audit().Append(r);
  if (t->tracer().enabled(tel::Layer::kDetect)) {
    t->tracer().Emit(tel::MakeEvent(tick, tel::Layer::kDetect, "period_check")
                         .Str("channel", channel)
                         .Num("period", r.value)
                         .Num("abnormal", r.violation ? 1.0 : 0.0)
                         .Num("consecutive", r.consecutive));
  }
}

void SdsDetector::OnTick() {
  SDS_PROFILE_SPAN(prof_, span_tick_);
  const DegradingSampleGate::Outcome out = gate_.OnTick();
  if (out.rewarm) Rewarm();
  // No usable sample and nothing to substitute: analyzers freeze this tick.
  if (!out.sample) return;
  const pcm::PcmSample s = *out.sample;
  const auto access = static_cast<double>(s.access_num);
  const auto miss = static_cast<double>(s.miss_num);
  const auto ewma_access = b_access_->Observe(access);
  const auto ewma_miss = b_miss_->Observe(miss);
  std::optional<PeriodCheck> check_access, check_miss;
  if (p_access_) check_access = p_access_->Observe(access);
  if (p_miss_) check_miss = p_miss_->Observe(miss);

  const bool active = attack_active();

  // Audit every decision made this tick. EWMA windows on both channels
  // complete together (same W/dW), so this is one audit pair per decision
  // interval.
  if (ewma_access) AuditBoundary(s.tick, "AccessNum", *b_access_,
                                 *ewma_access, active);
  if (ewma_miss) AuditBoundary(s.tick, "MissNum", *b_miss_, *ewma_miss,
                               active);
  if (check_access) AuditPeriod(s.tick, "AccessNum", *p_access_,
                                *check_access, active);
  if (check_miss) AuditPeriod(s.tick, "MissNum", *p_miss_, *check_miss,
                              active);

  if (active && !was_active_) {
    ++alarm_events_;
    last_trigger_ = s.tick;
    tel::Telemetry* t = hypervisor_.telemetry();
    if (t && t->tracer().enabled(tel::Layer::kDetect)) {
      t->tracer().Emit(tel::MakeEvent(s.tick, tel::Layer::kDetect,
                                      "alarm_raised")
                           .Str("detector", SdsModeName(mode_))
                           .Num("boundary_active", boundary_active() ? 1 : 0)
                           .Num("period_active", period_active() ? 1 : 0));
    }
  } else if (!active && was_active_) {
    ++retraction_events_;
    last_retraction_ = s.tick;
    tel::Telemetry* t = hypervisor_.telemetry();
    if (t && t->tracer().enabled(tel::Layer::kDetect)) {
      t->tracer().Emit(tel::MakeEvent(s.tick, tel::Layer::kDetect,
                                      "alarm_cleared")
                           .Str("detector", SdsModeName(mode_)));
    }
  }
  was_active_ = active;
}

std::uint64_t SdsDetector::ConfigFingerprint() const {
  SnapshotWriter w;
  w.U32(static_cast<std::uint32_t>(mode_));
  w.F64(profile_.access_boundary.mean);
  w.F64(profile_.access_boundary.stddev);
  w.F64(profile_.miss_boundary.mean);
  w.F64(profile_.miss_boundary.stddev);
  w.Bool(profile_.access_period.has_value());
  if (profile_.access_period) {
    w.F64(profile_.access_period->period);
    w.F64(profile_.access_period->strength);
  }
  w.Bool(profile_.miss_period.has_value());
  if (profile_.miss_period) {
    w.F64(profile_.miss_period->period);
    w.F64(profile_.miss_period->strength);
  }
  w.U64(params_.window);
  w.U64(params_.step);
  w.F64(params_.alpha);
  w.F64(params_.boundary_k);
  w.I64(params_.h_c);
  w.F64(params_.wp_multiplier);
  w.U64(params_.delta_wp);
  w.I64(params_.h_p);
  w.F64(params_.period_tolerance);
  return Fnv1a(w.data());
}

void SdsDetector::SaveState(SnapshotWriter& w) const {
  gate_.SaveState(w);
  b_access_->SaveState(w);
  b_miss_->SaveState(w);
  w.Bool(p_access_ != nullptr);
  if (p_access_) p_access_->SaveState(w);
  w.Bool(p_miss_ != nullptr);
  if (p_miss_) p_miss_->SaveState(w);
  w.Bool(was_active_);
  w.U64(alarm_events_);
  w.I64(last_trigger_);
  w.U64(retraction_events_);
  w.I64(last_retraction_);
}

bool SdsDetector::RestoreState(SnapshotReader& r) {
  if (!gate_.RestoreState(r)) return false;
  if (!b_access_->RestoreState(r)) return false;
  if (!b_miss_->RestoreState(r)) return false;
  const bool has_p_access = r.Bool();
  if (!r.ok() || has_p_access != (p_access_ != nullptr)) return false;
  if (p_access_ && !p_access_->RestoreState(r)) return false;
  const bool has_p_miss = r.Bool();
  if (!r.ok() || has_p_miss != (p_miss_ != nullptr)) return false;
  if (p_miss_ && !p_miss_->RestoreState(r)) return false;
  const bool was_active = r.Bool();
  const std::uint64_t alarm_events = r.U64();
  const std::int64_t last_trigger = r.I64();
  const std::uint64_t retraction_events = r.U64();
  const std::int64_t last_retraction = r.I64();
  if (!r.ok()) return false;
  was_active_ = was_active;
  alarm_events_ = alarm_events;
  last_trigger_ = static_cast<Tick>(last_trigger);
  retraction_events_ = retraction_events;
  last_retraction_ = static_cast<Tick>(last_retraction);
  return true;
}

bool SdsDetector::boundary_active() const {
  return b_access_->attack_active() || b_miss_->attack_active();
}

bool SdsDetector::period_active() const {
  return (p_access_ && p_access_->attack_active()) ||
         (p_miss_ && p_miss_->attack_active());
}

bool SdsDetector::attack_active() const {
  switch (mode_) {
    case SdsMode::kBoundaryOnly:
      return boundary_active();
    case SdsMode::kPeriodOnly:
      return period_active();
    case SdsMode::kCombined:
      // Periodic applications need both schemes to agree; non-periodic
      // applications are decided by SDS/B alone.
      return profile_periodic_ ? (boundary_active() && period_active())
                               : boundary_active();
  }
  return false;
}

}  // namespace sds::detect
