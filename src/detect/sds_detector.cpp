#include "detect/sds_detector.h"

#include "common/check.h"

namespace sds::detect {

const char* SdsModeName(SdsMode mode) {
  switch (mode) {
    case SdsMode::kBoundaryOnly:
      return "SDS/B";
    case SdsMode::kPeriodOnly:
      return "SDS/P";
    case SdsMode::kCombined:
      return "SDS";
  }
  return "?";
}

SdsDetector::SdsDetector(vm::Hypervisor& hypervisor, OwnerId target,
                         const SdsProfile& profile,
                         const DetectorParams& params, SdsMode mode)
    : sampler_(hypervisor, target),
      mode_(mode),
      name_(SdsModeName(mode)),
      profile_periodic_(profile.periodic()) {
  b_access_ =
      std::make_unique<BoundaryAnalyzer>(profile.access_boundary, params);
  b_miss_ = std::make_unique<BoundaryAnalyzer>(profile.miss_boundary, params);
  if (profile.access_period) {
    p_access_ =
        std::make_unique<PeriodAnalyzer>(*profile.access_period, params);
  }
  if (profile.miss_period) {
    p_miss_ = std::make_unique<PeriodAnalyzer>(*profile.miss_period, params);
  }
  SDS_CHECK(mode != SdsMode::kPeriodOnly || profile_periodic_,
            "SDS/P requires a periodic profile");
  sampler_.Start();
}

void SdsDetector::OnTick() {
  const pcm::PcmSample s = sampler_.Sample();
  const auto access = static_cast<double>(s.access_num);
  const auto miss = static_cast<double>(s.miss_num);
  b_access_->Observe(access);
  b_miss_->Observe(miss);
  if (p_access_) p_access_->Observe(access);
  if (p_miss_) p_miss_->Observe(miss);

  const bool active = attack_active();
  if (active && !was_active_) {
    ++alarm_events_;
    last_trigger_ = s.tick;
  }
  was_active_ = active;
}

bool SdsDetector::boundary_active() const {
  return b_access_->attack_active() || b_miss_->attack_active();
}

bool SdsDetector::period_active() const {
  return (p_access_ && p_access_->attack_active()) ||
         (p_miss_ && p_miss_->attack_active());
}

bool SdsDetector::attack_active() const {
  switch (mode_) {
    case SdsMode::kBoundaryOnly:
      return boundary_active();
    case SdsMode::kPeriodOnly:
      return period_active();
    case SdsMode::kCombined:
      // Periodic applications need both schemes to agree; non-periodic
      // applications are decided by SDS/B alone.
      return profile_periodic_ ? (boundary_active() && period_active())
                               : boundary_active();
  }
  return false;
}

}  // namespace sds::detect
