// Offline detection over recorded PCM traces.
//
// Re-runs the SDS analyzers over an archived trace — the tuning/forensics
// path: record once in production, then sweep parameters offline without
// touching the machines. Only the pure stream analyzers run here (the
// KStest baseline needs live throttling, which a trace cannot provide).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "detect/boundary.h"
#include "detect/params.h"
#include "detect/period.h"
#include "detect/profile.h"
#include "pcm/pcm_sampler.h"

namespace sds::detect {

struct OfflineResult {
  // Ticks (trace timestamps) at which the combined SDS decision rose.
  std::vector<Tick> alarm_ticks;
  // Fraction of the trace during which the decision was active.
  double active_fraction = 0.0;
  bool profile_periodic = false;
};

// Replays `trace` through a combined SDS detector whose profile is built
// from `profile_trace` (a clean prefix recorded at deployment time).
OfflineResult ReplaySds(std::span<const pcm::PcmSample> profile_trace,
                        std::span<const pcm::PcmSample> trace,
                        const DetectorParams& params);

}  // namespace sds::detect
