// Incident forensics engine: from alarm to ranked suspects.
//
// The paper's detectors (and the KStest baseline's throttling sweep) say
// THAT the monitored VM is under attack and, at best, guess one culprit by
// perturbation. The forensics engine answers the same question from direct
// hardware evidence: it keeps a sliding window of AttributionSampler spans
// (who evicted the target's lines, who imposed bus stall delay on it, who
// occupied the bus) and, on every detector alarm, collapses the window into
// a deterministic ForensicReport — per-VM evidence scores, a prime suspect
// (or an explicit "unattributed"), the tick the evidence trail started, and
// agreement/disagreement with the KStest-identified culprit. The report
// aligns with the incident timeline decomposition (telemetry/timeline.h):
// first_evidence_tick bounds first_contention from below, and
// evidence_lead_ticks is how long the ledger had the culprit before the
// statistics crossed the boundary.
//
// Scoring is share-based and integer-fed: per resource the window sums are
// exact ledger deltas, each candidate's share is its fraction of the
// non-target total, and the score is the weight-normalized blend over the
// resources that produced any evidence at all. Equal scores break toward the
// smaller VM id, so reports are bit-stable across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/ring_buffer.h"
#include "common/types.h"
#include "pcm/attribution_sampler.h"
#include "vm/hypervisor.h"

namespace sds::detect {

struct ForensicsConfig {
  // Attribution spans retained in the evidence window.
  std::size_t window_spans = 512;
  // Per-resource blend weights. Evictions and imposed stall delay are direct
  // harm to the target; raw occupancy is circumstantial (a loud neighbor is
  // not necessarily the attacker) and weighs half by default.
  double eviction_weight = 1.0;
  double bus_delay_weight = 1.0;
  double occupancy_weight = 0.5;
  // A prime suspect must score at least this, else the report stays
  // unattributed (prime_suspect 0) and mitigation falls through to its
  // victim-side ladder. 0.35 sits between the skew benign co-tenants reach
  // on a quiet machine (<~0.31 across seeds) and the share a real attacker
  // holds even when splitting evidence with a colluder (>~0.45).
  double min_score = 0.35;
};

// Window-summed evidence one candidate VM accumulated against the target.
struct SuspectEvidence {
  OwnerId vm = 0;
  // Weight-normalized blend of the shares below, in [0, 1].
  double score = 0.0;
  std::uint64_t evictions = 0;
  std::uint64_t bus_delay = 0;
  std::uint64_t occupancy = 0;
  double eviction_share = 0.0;
  double bus_delay_share = 0.0;
  double occupancy_share = 0.0;
};

struct ForensicReport {
  Tick alarm_tick = 0;
  OwnerId target = 0;
  // Evidence window the scores were computed over (inclusive ticks).
  Tick window_start = 0;
  Tick window_end = 0;
  // Candidates with any nonzero evidence, score descending (ties toward the
  // smaller VM id). The target itself is never a candidate; owner 0 is the
  // hypervisor/unattributed sentinel and never a candidate either.
  std::vector<SuspectEvidence> suspects;
  // prime_suspect is suspects[0].vm when its score clears min_score;
  // otherwise 0 and attributed is false.
  bool attributed = false;
  OwnerId prime_suspect = 0;
  // First tick in the window where the prime suspect inflicted direct harm
  // (an eviction or a stall charge) on the target; kInvalidTick when
  // unattributed. evidence_lead_ticks = alarm_tick - first_evidence_tick.
  Tick first_evidence_tick = kInvalidTick;
  Tick evidence_lead_ticks = 0;
  // The culprit the KStest identification sweep named (0 = none/inconclusive)
  // and whether the hardware evidence agrees.
  OwnerId kstest_culprit = 0;
  bool kstest_agrees = false;
};

class ForensicsEngine {
 public:
  // Collects evidence for VM `target` on `hypervisor`'s machine, which must
  // have MachineConfig::attribution enabled.
  ForensicsEngine(vm::Hypervisor& hypervisor, OwnerId target,
                  const ForensicsConfig& config = {});

  ForensicsEngine(const ForensicsEngine&) = delete;
  ForensicsEngine& operator=(const ForensicsEngine&) = delete;

  // Samples one attribution span into the evidence window. Call once per
  // tick, alongside the detector's OnTick.
  void OnTick();

  // Builds the forensic report for an alarm raised at `alarm_tick`. Pass the
  // KStest sweep's identified attacker when one exists (0 otherwise). Emits
  // a "forensic_report" trace event and a detector="Forensics" audit record
  // when telemetry is attached, and appends the report to reports().
  const ForensicReport& OnAlarm(Tick alarm_tick, OwnerId kstest_culprit = 0);

  const ForensicsConfig& config() const { return config_; }
  std::size_t window_size() const { return window_.size(); }
  // Every report built, in alarm order.
  const std::vector<ForensicReport>& reports() const { return reports_; }

 private:
  vm::Hypervisor& hypervisor_;
  OwnerId target_;
  ForensicsConfig config_;
  pcm::AttributionSampler sampler_;
  RingBuffer<pcm::AttributionSpan> window_;
  std::vector<ForensicReport> reports_;
};

// Deterministic renderings for tools and the eval sweep: a compact JSON
// object and the human-readable section trace_inspect/fleet_inspect print
// under --forensics.
void WriteForensicReportJson(std::ostream& os, const ForensicReport& report);
void WriteForensicReportText(std::ostream& os, const ForensicReport& report);

}  // namespace sds::detect
