// SDS/P: the Period-based Statistical Detection Scheme (Section 4.2.2).
//
// For applications whose cache statistics repeat periodically (PCA, FaceNet),
// SDS/P tracks the period of the MOVING-AVERAGE series (not the EWMA, whose
// smoothing can erase the pattern). A profile captures the clean period p;
// online, the analyzer keeps the latest W_P = 2p MA values and, every
// delta_wp new MA values, re-estimates the period with DFT-ACF. A computed
// period deviating from p by more than 20% — or no period being detectable
// at all — is abnormal; H_P consecutive abnormal checks raise the alarm.
//
// Why this works: a batch application performs a fixed amount of WORK per
// batch, so when an attack slows its progress each batch takes longer and
// the wall-clock period stretches (Observation 2).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/ring_buffer.h"
#include "detect/params.h"
#include "signal/moving_average.h"
#include "signal/period_detect.h"

namespace sds::detect {

struct PeriodProfile {
  // Clean period of the MA series, in MA steps.
  double period = 0.0;
  // ACF strength of the profiled period (diagnostic).
  double strength = 0.0;
};

// Decides whether an application is periodic from clean raw samples, as the
// provider would right after the VM starts: the MA series is split into
// halves and both must yield consistent DFT-ACF periods. Returns the profile
// when periodic, nullopt otherwise.
std::optional<PeriodProfile> ClassifyPeriodicity(std::span<const double> raw,
                                                 const DetectorParams& params);

// One period re-estimation performed by the analyzer.
struct PeriodCheck {
  // Index of the newest MA value at the time of the check.
  std::size_t ma_index = 0;
  // The computed period, if DFT-ACF found one.
  std::optional<double> period;
  bool abnormal = false;
};

// Streaming SDS/P analyzer for one statistic channel.
class PeriodAnalyzer {
 public:
  PeriodAnalyzer(const PeriodProfile& profile, const DetectorParams& params);

  // Feeds one raw sample; returns the period check if one ran at this
  // sample, nullopt otherwise.
  std::optional<PeriodCheck> Observe(double raw);

  bool attack_active() const { return consecutive_ >= params_.h_p; }
  int consecutive_abnormal() const { return consecutive_; }
  const PeriodProfile& profile() const { return profile_; }
  std::size_t window_size() const { return window_size_; }
  // Relative deviation from the profiled period considered abnormal.
  double tolerance() const { return params_.period_tolerance; }

  // Full log of the checks performed (Figure 8(b) is exactly this series).
  const std::vector<PeriodCheck>& checks() const { return checks_; }

  // Snapshot/restore of the streaming state. The checks_ introspection log
  // is NOT serialized: it grows without bound and only feeds offline plots,
  // so a restored analyzer starts with an empty log but makes bit-identical
  // decisions. Restore validates profile and window geometry.
  void SaveState(SnapshotWriter& w) const;
  bool RestoreState(SnapshotReader& r);

 private:
  PeriodProfile profile_;
  DetectorParams params_;
  std::size_t window_size_;
  RingBuffer<double> ma_values_;
  SlidingWindowAverage ma_;
  std::size_t ma_since_check_ = 0;
  std::size_t ma_count_ = 0;
  int consecutive_ = 0;
  std::vector<PeriodCheck> checks_;
};

}  // namespace sds::detect
