#include "detect/boundary.h"

#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "stats/descriptive.h"

namespace sds::detect {

BoundaryProfile BuildBoundaryProfile(std::span<const double> raw,
                                     const DetectorParams& params) {
  SlidingWindowAverage ma(params.window, params.step);
  Ewma ewma(params.alpha);
  RunningStats stats;
  for (double v : raw) {
    if (const auto m = ma.Push(v)) stats.Add(ewma.Push(*m));
  }
  SDS_CHECK(stats.count() >= 2,
            "profile window too short: need at least two EWMA values");
  BoundaryProfile profile;
  profile.mean = stats.mean();
  profile.stddev = stats.stddev();
  // A NaN/inf profile would silently disable detection (every comparison
  // against the bounds is false); corrupt clean samples must fail loudly.
  SDS_CHECK(std::isfinite(profile.mean) && std::isfinite(profile.stddev),
            "profile statistics must be finite");
  return profile;
}

BoundaryAnalyzer::BoundaryAnalyzer(const BoundaryProfile& profile,
                                   const DetectorParams& params)
    : profile_(profile),
      params_(params),
      ma_(params.window, params.step),
      ewma_(params.alpha) {
  SDS_CHECK(params.boundary_k > 0.0, "boundary factor must be positive");
  SDS_CHECK(params.h_c >= 1, "H_C must be at least 1");
  SDS_CHECK(profile.stddev >= 0.0, "profile stddev must be non-negative");
  lower_ = profile.mean - params.boundary_k * profile.stddev;
  upper_ = profile.mean + params.boundary_k * profile.stddev;
}

void BoundaryAnalyzer::SaveState(SnapshotWriter& w) const {
  w.F64(profile_.mean);
  w.F64(profile_.stddev);
  ma_.SaveState(w);
  ewma_.SaveState(w);
  w.I64(consecutive_);
}

bool BoundaryAnalyzer::RestoreState(SnapshotReader& r) {
  const double mean = r.F64();
  const double stddev = r.F64();
  if (!r.ok() || mean != profile_.mean || stddev != profile_.stddev) {
    return false;
  }
  if (!ma_.RestoreState(r) || !ewma_.RestoreState(r)) return false;
  const std::int64_t consecutive = r.I64();
  if (!r.ok() || consecutive < 0) return false;
  consecutive_ = static_cast<int>(consecutive);
  return true;
}

std::optional<double> BoundaryAnalyzer::Observe(double raw) {
  const auto m = ma_.Push(raw);
  if (!m) return std::nullopt;
  const double s = ewma_.Push(*m);
  // Condition C_n of Equation (3): strictly outside the normal range.
  const bool violation = s < lower_ || s > upper_;
  consecutive_ = violation ? consecutive_ + 1 : 0;
  return s;
}

}  // namespace sds::detect
