#include "detect/kstest_detector.h"

#include <algorithm>

#include "common/check.h"
#include "stats/ks_test.h"
#include "telemetry/telemetry.h"

namespace sds::detect {

namespace tel = sds::telemetry;

void KsTestDetector::TraceDetect(const char* name, std::int64_t owner,
                                 const char* key, double value) {
  tel::Telemetry* t = hypervisor_.telemetry();
  if (!t || !t->tracer().enabled(tel::Layer::kDetect)) return;
  tel::TraceEvent e =
      tel::MakeEvent(hypervisor_.now(), tel::Layer::kDetect, name, owner);
  e.Str("detector", "KStest");
  if (key) e.Num(key, value);
  t->tracer().Emit(e);
}

void KsTestDetector::AuditKsDecision(const char* channel, double p_value,
                                     double statistic, int consecutive) {
  tel::Telemetry* t = hypervisor_.telemetry();
  if (!t) return;
  tel::AuditRecord r;
  r.tick = hypervisor_.now();
  r.detector = "KStest";
  r.check = "kstest";
  r.channel = channel;
  r.value = p_value;
  // The test passes while the p-value stays in [alpha, 1]. Margin is the
  // rejection depth relative to the significance level.
  r.lower = params_.alpha;
  r.upper = 1.0;
  r.violation = p_value < params_.alpha;
  r.margin = (params_.alpha - p_value) / params_.alpha;
  r.consecutive = consecutive;
  r.alarm = attack_active_;
  t->audit().Append(r);
  if (t->tracer().enabled(tel::Layer::kDetect)) {
    t->tracer().Emit(tel::MakeEvent(r.tick, tel::Layer::kDetect,
                                    "ks_decision")
                         .Str("channel", channel)
                         .Num("p_value", p_value)
                         .Num("statistic", statistic)
                         .Num("rejected", r.violation ? 1.0 : 0.0)
                         .Num("consecutive", consecutive));
  }
}

KsTestDetector::KsTestDetector(vm::Hypervisor& hypervisor, OwnerId target,
                               const KsTestParams& params,
                               const KsIdentificationParams& ident)
    : KsTestDetector(hypervisor, target, params, ident, nullptr,
                     DegradeConfig{}) {}

KsTestDetector::KsTestDetector(vm::Hypervisor& hypervisor, OwnerId target,
                               const KsTestParams& params,
                               const KsIdentificationParams& ident,
                               pcm::SampleSource* source,
                               const DegradeConfig& degrade)
    : hypervisor_(hypervisor),
      owned_sampler_(source ? nullptr
                            : std::make_unique<pcm::PcmSampler>(hypervisor,
                                                                target)),
      source_(source ? *source : *owned_sampler_),
      params_(params),
      ident_(ident),
      gate_(hypervisor, source_, degrade, "KStest") {
  SDS_CHECK(source_.target() == target,
            "SampleSource monitors a different VM than the detector");
  if (tel::Telemetry* t = hypervisor_.telemetry()) {
    prof_ = &t->profiler();
    span_tick_ = prof_->RegisterSpan("detect.kstest.tick");
  }
  SDS_CHECK(params.w_r > 0 && params.w_m > 0, "windows must be positive");
  SDS_CHECK(params.l_r >= params.w_r, "L_R must cover W_R");
  SDS_CHECK(params.l_m >= params.w_m, "L_M must cover W_M");
  SDS_CHECK(params.alpha > 0.0 && params.alpha < 1.0,
            "significance level must be in (0,1)");
  SDS_CHECK(params.consecutive_rejections >= 1,
            "need at least one rejection");
  SDS_CHECK(params.initial_offset >= 0 && params.initial_offset < params.l_r,
            "grid offset must be within one L_R interval");
  SDS_CHECK(!ident.enabled || (ident.settle >= 0 && ident.window > 0),
            "bad identification window");
  local_tick_ = params.initial_offset;
}

void KsTestDetector::StartReference() {
  if (source_.started()) source_.Stop();  // abort a monitored collection
  state_ = State::kCollectingReference;
  collected_ = 0;
  collect_elapsed_ = 0;
  staging_access_.clear();
  staging_miss_.clear();
  hypervisor_.ThrottleAllExcept(source_.target(), params_.w_r);
  source_.Start();
  gate_.OnSessionStart();
  TraceDetect("reference_start", source_.target(), "window",
              static_cast<double>(params_.w_r));
}

void KsTestDetector::StartMonitored() {
  state_ = State::kCollectingMonitored;
  collected_ = 0;
  collect_elapsed_ = 0;
  staging_access_.clear();
  staging_miss_.clear();
  source_.Start();
  gate_.OnSessionStart();
}

void KsTestDetector::FinishReference() {
  source_.Stop();
  state_ = State::kIdle;
  ref_access_ = staging_access_;
  ref_miss_ = staging_miss_;
  reference_ready_ = true;
  // Decisions against the previous reference are not comparable with
  // decisions against the new one: restart the consecutive counts.
  consecutive_access_ = 0;
  consecutive_miss_ = 0;
  TraceDetect("reference_ready", source_.target(), "samples",
              static_cast<double>(ref_access_.size()));
}

void KsTestDetector::FinishMonitored() {
  source_.Stop();
  state_ = State::kIdle;

  KsDecision d;
  d.tick = hypervisor_.now();
  const auto res_access = TwoSampleKsTest(ref_access_, staging_access_);
  const auto res_miss = TwoSampleKsTest(ref_miss_, staging_miss_);
  d.statistic_access = res_access.statistic;
  d.rejected_access = res_access.p_value < params_.alpha;
  d.statistic_miss = res_miss.statistic;
  d.rejected_miss = res_miss.p_value < params_.alpha;
  decisions_.push_back(d);

  consecutive_access_ = d.rejected_access ? consecutive_access_ + 1 : 0;
  consecutive_miss_ = d.rejected_miss ? consecutive_miss_ + 1 : 0;
  const int audit_consecutive_access = consecutive_access_;
  const int audit_consecutive_miss = consecutive_miss_;

  // A fully passing test clears any standing alarm: the statistics are back
  // to the reference distribution.
  if (!d.rejected_access && !d.rejected_miss) identified_alarm_ = false;

  const bool suspicion_access =
      consecutive_access_ >= params_.consecutive_rejections;
  const bool suspicion_miss =
      consecutive_miss_ >= params_.consecutive_rejections;
  if (suspicion_access || suspicion_miss) {
    suspicion_tick_ = hypervisor_.now();
    if (ident_.enabled) {
      sweep_on_access_ = suspicion_access;
      sweep_on_miss_ = suspicion_miss;
      StartIdentification();
    } else {
      identified_alarm_ = true;
      ++alarm_events_;
      last_trigger_ = suspicion_tick_;
    }
    consecutive_access_ = 0;
    consecutive_miss_ = 0;
  }

  attack_active_ = identified_alarm_;

  // Audit both channels once the decision (and any resulting alarm state
  // short of a pending identification sweep) is settled.
  AuditKsDecision("AccessNum", res_access.p_value, res_access.statistic,
                  audit_consecutive_access);
  AuditKsDecision("MissNum", res_miss.p_value, res_miss.statistic,
                  audit_consecutive_miss);
}

void KsTestDetector::StartIdentification() {
  ++sweeps_;
  TraceDetect("identification_start", source_.target(), "sweep",
              static_cast<double>(sweeps_));
  candidates_.clear();
  for (OwnerId id = 1; id <= hypervisor_.vm_count(); ++id) {
    if (id != source_.target()) candidates_.push_back(id);
  }
  candidate_index_ = 0;
  candidate_results_.clear();
  if (candidates_.empty()) {
    // Nothing co-located: the anomaly cannot be another tenant, but the
    // statistics are persistently wrong — raise the (unattributed) alarm.
    FinishIdentification();
    return;
  }
  StartNextCandidate();
}

void KsTestDetector::StartNextCandidate() {
  const OwnerId candidate = candidates_[candidate_index_];
  hypervisor_.ThrottleVm(candidate, ident_.settle + ident_.window);
  settle_left_ = ident_.settle;
  staging_access_.clear();
  staging_miss_.clear();
  collected_ = 0;
  collect_elapsed_ = 0;
  state_ = settle_left_ > 0 ? State::kIdentifySettling
                            : State::kIdentifyCollecting;
  if (state_ == State::kIdentifyCollecting) {
    source_.Start();
    gate_.OnSessionStart();
  }
}

void KsTestDetector::FinishCandidate() {
  source_.Stop();
  // Does pausing this candidate restore the reference distribution on the
  // channel(s) that raised the suspicion?
  CandidateResult result;
  result.vm = candidates_[candidate_index_];
  result.p_value = 2.0;   // min() below picks the worst channel
  result.statistic = 0.0; // max() below picks the worst channel
  if (sweep_on_access_) {
    const auto r = TwoSampleKsTest(ref_access_, staging_access_);
    result.p_value = std::min(result.p_value, r.p_value);
    result.statistic = std::max(result.statistic, r.statistic);
  }
  if (sweep_on_miss_) {
    const auto r = TwoSampleKsTest(ref_miss_, staging_miss_);
    result.p_value = std::min(result.p_value, r.p_value);
    result.statistic = std::max(result.statistic, r.statistic);
  }
  candidate_results_.push_back(result);
  TraceDetect("candidate_result", result.vm, "p_value", result.p_value);
  if (++candidate_index_ >= candidates_.size()) {
    FinishIdentification();
  } else {
    StartNextCandidate();
  }
}

void KsTestDetector::FinishIdentification() {
  state_ = State::kIdle;
  // Attributed when some candidate's pause restored normality. Two rules:
  //   * absolute — the throttled-candidate window passes the KS test
  //     against the reference; or
  //   * relative — its KS statistic is clearly smaller than every other
  //     candidate's (the stale reference may have drifted, but pausing the
  //     real attacker makes that window a clear outlier among the sweeps).
  // The alarm is raised either way — the contention is real even if no
  // single culprit emerged (e.g. colluding VMs).
  identified_attacker_ = 0;
  if (!candidate_results_.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidate_results_.size(); ++i) {
      if (candidate_results_[i].statistic <
          candidate_results_[best].statistic) {
        best = i;
      }
    }
    double second = 1.0;
    for (std::size_t i = 0; i < candidate_results_.size(); ++i) {
      if (i != best) second = std::min(second, candidate_results_[i].statistic);
    }
    const auto& winner = candidate_results_[best];
    if (winner.p_value >= params_.alpha ||
        winner.statistic < 0.6 * second) {
      identified_attacker_ = winner.vm;
    }
  }
  identified_alarm_ = true;
  attack_active_ = true;
  ++alarm_events_;
  last_trigger_ = suspicion_tick_;
  TraceDetect("alarm_raised",
              identified_attacker_ == 0
                  ? -1
                  : static_cast<std::int64_t>(identified_attacker_),
              "suspicion_tick", static_cast<double>(suspicion_tick_));
}

void KsTestDetector::CollectTick() {
  ++collect_elapsed_;
  const DegradingSampleGate::Outcome out = gate_.OnTick();
  if (out.rewarm) {
    // The source was re-baselined (or a long gap severed the stream):
    // pre-gap staging no longer connects to what follows.
    staging_access_.clear();
    staging_miss_.clear();
    collected_ = 0;
  }
  if (out.sample) {
    staging_access_.push_back(static_cast<double>(out.sample->access_num));
    staging_miss_.push_back(static_cast<double>(out.sample->miss_num));
    ++collected_;
  } else {
    // Gap tick: the collection extends past its nominal window, so re-arm
    // the throttle that defines its measurement conditions.
    if (state_ == State::kCollectingReference) {
      hypervisor_.ThrottleAllExcept(source_.target(),
                                    params_.w_r - collected_ + 1);
    } else if (state_ == State::kIdentifyCollecting) {
      hypervisor_.ThrottleVm(candidates_[candidate_index_],
                             ident_.window - collected_ + 1);
    }
  }

  const Tick window = state_ == State::kCollectingReference ? params_.w_r
                      : state_ == State::kCollectingMonitored
                          ? params_.w_m
                          : ident_.window;
  if (collected_ >= window) {
    if (state_ == State::kCollectingReference) {
      FinishReference();
    } else if (state_ == State::kCollectingMonitored) {
      FinishMonitored();
    } else {
      FinishCandidate();
    }
  } else if (collect_elapsed_ >= kCollectSlackFactor * window) {
    // Out of slack. A monitored/candidate window that is at least half full
    // still supports a (weaker) KS decision; anything less — and any
    // partial reference, which must be a full clean window — is abandoned.
    if (state_ != State::kCollectingReference && collected_ >= (window + 1) / 2) {
      if (state_ == State::kCollectingMonitored) {
        FinishMonitored();
      } else {
        FinishCandidate();
      }
    } else {
      AbandonCollection();
    }
  }
}

void KsTestDetector::AbandonCollection() {
  if (source_.started()) source_.Stop();
  const auto collected = static_cast<double>(collected_);
  switch (state_) {
    case State::kCollectingReference:
      // Keep the previous reference (stale beats absent); the next L_R tick
      // retries.
      ++abandoned_references_;
      TraceDetect("reference_abandoned", source_.target(), "collected",
                  collected);
      state_ = State::kIdle;
      break;
    case State::kCollectingMonitored:
      // No decision this round: consecutive counters are left untouched.
      ++abandoned_monitored_;
      TraceDetect("monitored_abandoned", source_.target(), "collected",
                  collected);
      state_ = State::kIdle;
      break;
    case State::kIdentifyCollecting: {
      // An unmeasurable candidate cannot be exonerated: score it
      // inconclusive-worst so attribution never lands on it by default.
      ++abandoned_candidates_;
      CandidateResult result;
      result.vm = candidates_[candidate_index_];
      result.p_value = 0.0;
      result.statistic = 1.0;
      candidate_results_.push_back(result);
      TraceDetect("candidate_abandoned", result.vm, "collected", collected);
      if (++candidate_index_ >= candidates_.size()) {
        FinishIdentification();
      } else {
        StartNextCandidate();
      }
      break;
    }
    default:
      break;
  }
}

void KsTestDetector::OnTick() {
  SDS_PROFILE_SPAN(prof_, span_tick_);
  switch (state_) {
    case State::kCollectingReference:
    case State::kCollectingMonitored:
    case State::kIdentifyCollecting:
      CollectTick();
      break;
    case State::kIdentifySettling: {
      if (--settle_left_ <= 0) {
        state_ = State::kIdentifyCollecting;
        collect_elapsed_ = 0;
        source_.Start();
        gate_.OnSessionStart();
      }
      break;
    }
    case State::kIdle:
      break;
  }

  ++local_tick_;

  // Schedule the next collection. The reference refresh takes priority over
  // monitored tests but never interrupts itself or an identification sweep.
  const bool busy = state_ == State::kCollectingReference ||
                    state_ == State::kIdentifySettling ||
                    state_ == State::kIdentifyCollecting;
  if (!busy && local_tick_ % params_.l_r == 0) {
    StartReference();
  } else if (state_ == State::kIdle && reference_ready_ &&
             local_tick_ % params_.l_m == 0) {
    StartMonitored();
  }
}
}  // namespace sds::detect
