#include "detect/kstest_detector.h"

#include <algorithm>

#include "common/check.h"
#include "stats/ks_test.h"
#include "telemetry/telemetry.h"

namespace sds::detect {

namespace tel = sds::telemetry;

void KsTestDetector::TraceDetect(const char* name, std::int64_t owner,
                                 const char* key, double value) {
  tel::Telemetry* t = hypervisor_.telemetry();
  if (!t || !t->tracer().enabled(tel::Layer::kDetect)) return;
  tel::TraceEvent e =
      tel::MakeEvent(hypervisor_.now(), tel::Layer::kDetect, name, owner);
  e.Str("detector", "KStest");
  if (key) e.Num(key, value);
  t->tracer().Emit(e);
}

void KsTestDetector::AuditKsDecision(const char* channel, double p_value,
                                     double statistic, int consecutive) {
  tel::Telemetry* t = hypervisor_.telemetry();
  if (!t) return;
  tel::AuditRecord r;
  r.tick = hypervisor_.now();
  r.detector = "KStest";
  r.check = "kstest";
  r.channel = channel;
  r.value = p_value;
  // The test passes while the p-value stays in [alpha, 1]. Margin is the
  // rejection depth relative to the significance level.
  r.lower = params_.alpha;
  r.upper = 1.0;
  r.violation = p_value < params_.alpha;
  r.margin = (params_.alpha - p_value) / params_.alpha;
  r.consecutive = consecutive;
  r.alarm = attack_active_;
  t->audit().Append(r);
  if (t->tracer().enabled(tel::Layer::kDetect)) {
    t->tracer().Emit(tel::MakeEvent(r.tick, tel::Layer::kDetect,
                                    "ks_decision")
                         .Str("channel", channel)
                         .Num("p_value", p_value)
                         .Num("statistic", statistic)
                         .Num("rejected", r.violation ? 1.0 : 0.0)
                         .Num("consecutive", consecutive));
  }
}

KsTestDetector::KsTestDetector(vm::Hypervisor& hypervisor, OwnerId target,
                               const KsTestParams& params,
                               const KsIdentificationParams& ident)
    : KsTestDetector(hypervisor, target, params, ident, nullptr,
                     DegradeConfig{}) {}

KsTestDetector::KsTestDetector(vm::Hypervisor& hypervisor, OwnerId target,
                               const KsTestParams& params,
                               const KsIdentificationParams& ident,
                               pcm::SampleSource* source,
                               const DegradeConfig& degrade)
    : hypervisor_(hypervisor),
      owned_sampler_(source ? nullptr
                            : std::make_unique<pcm::PcmSampler>(hypervisor,
                                                                target)),
      source_(source ? *source : *owned_sampler_),
      params_(params),
      ident_(ident),
      gate_(hypervisor, source_, degrade, "KStest") {
  SDS_CHECK(source_.target() == target,
            "SampleSource monitors a different VM than the detector");
  if (tel::Telemetry* t = hypervisor_.telemetry()) {
    prof_ = &t->profiler();
    span_tick_ = prof_->RegisterSpan("detect.kstest.tick");
  }
  SDS_CHECK(params.w_r > 0 && params.w_m > 0, "windows must be positive");
  SDS_CHECK(params.l_r >= params.w_r, "L_R must cover W_R");
  SDS_CHECK(params.l_m >= params.w_m, "L_M must cover W_M");
  SDS_CHECK(params.alpha > 0.0 && params.alpha < 1.0,
            "significance level must be in (0,1)");
  SDS_CHECK(params.consecutive_rejections >= 1,
            "need at least one rejection");
  SDS_CHECK(params.initial_offset >= 0 && params.initial_offset < params.l_r,
            "grid offset must be within one L_R interval");
  SDS_CHECK(!ident.enabled || (ident.settle >= 0 && ident.window > 0),
            "bad identification window");
  local_tick_ = params.initial_offset;
}

void KsTestDetector::StartReference() {
  if (source_.started()) source_.Stop();  // abort a monitored collection
  state_ = State::kCollectingReference;
  collected_ = 0;
  collect_elapsed_ = 0;
  staging_access_.clear();
  staging_miss_.clear();
  hypervisor_.ThrottleAllExcept(source_.target(), params_.w_r);
  source_.Start();
  gate_.OnSessionStart();
  TraceDetect("reference_start", source_.target(), "window",
              static_cast<double>(params_.w_r));
}

void KsTestDetector::StartMonitored() {
  state_ = State::kCollectingMonitored;
  collected_ = 0;
  collect_elapsed_ = 0;
  staging_access_.clear();
  staging_miss_.clear();
  source_.Start();
  gate_.OnSessionStart();
}

void KsTestDetector::FinishReference() {
  source_.Stop();
  state_ = State::kIdle;
  ref_access_ = staging_access_;
  ref_miss_ = staging_miss_;
  reference_ready_ = true;
  // Decisions against the previous reference are not comparable with
  // decisions against the new one: restart the consecutive counts.
  consecutive_access_ = 0;
  consecutive_miss_ = 0;
  TraceDetect("reference_ready", source_.target(), "samples",
              static_cast<double>(ref_access_.size()));
}

void KsTestDetector::FinishMonitored() {
  source_.Stop();
  state_ = State::kIdle;

  KsDecision d;
  d.tick = hypervisor_.now();
  const auto res_access = TwoSampleKsTest(ref_access_, staging_access_);
  const auto res_miss = TwoSampleKsTest(ref_miss_, staging_miss_);
  d.statistic_access = res_access.statistic;
  d.rejected_access = res_access.p_value < params_.alpha;
  d.statistic_miss = res_miss.statistic;
  d.rejected_miss = res_miss.p_value < params_.alpha;
  decisions_.push_back(d);

  consecutive_access_ = d.rejected_access ? consecutive_access_ + 1 : 0;
  consecutive_miss_ = d.rejected_miss ? consecutive_miss_ + 1 : 0;
  const int audit_consecutive_access = consecutive_access_;
  const int audit_consecutive_miss = consecutive_miss_;

  // A fully passing test clears any standing alarm: the statistics are back
  // to the reference distribution.
  if (!d.rejected_access && !d.rejected_miss) identified_alarm_ = false;

  const bool suspicion_access =
      consecutive_access_ >= params_.consecutive_rejections;
  const bool suspicion_miss =
      consecutive_miss_ >= params_.consecutive_rejections;
  if (suspicion_access || suspicion_miss) {
    suspicion_tick_ = hypervisor_.now();
    if (ident_.enabled) {
      sweep_on_access_ = suspicion_access;
      sweep_on_miss_ = suspicion_miss;
      StartIdentification();
    } else {
      identified_alarm_ = true;
      ++alarm_events_;
      last_trigger_ = suspicion_tick_;
    }
    consecutive_access_ = 0;
    consecutive_miss_ = 0;
  }

  attack_active_ = identified_alarm_;

  // Audit both channels once the decision (and any resulting alarm state
  // short of a pending identification sweep) is settled.
  AuditKsDecision("AccessNum", res_access.p_value, res_access.statistic,
                  audit_consecutive_access);
  AuditKsDecision("MissNum", res_miss.p_value, res_miss.statistic,
                  audit_consecutive_miss);
}

void KsTestDetector::StartIdentification() {
  ++sweeps_;
  TraceDetect("identification_start", source_.target(), "sweep",
              static_cast<double>(sweeps_));
  candidates_.clear();
  for (OwnerId id = 1; id <= hypervisor_.vm_count(); ++id) {
    if (id != source_.target()) candidates_.push_back(id);
  }
  candidate_index_ = 0;
  candidate_results_.clear();
  if (candidates_.empty()) {
    // Nothing co-located: the anomaly cannot be another tenant, but the
    // statistics are persistently wrong — raise the (unattributed) alarm.
    FinishIdentification();
    return;
  }
  StartNextCandidate();
}

void KsTestDetector::StartNextCandidate() {
  const OwnerId candidate = candidates_[candidate_index_];
  hypervisor_.ThrottleVm(candidate, ident_.settle + ident_.window);
  settle_left_ = ident_.settle;
  staging_access_.clear();
  staging_miss_.clear();
  collected_ = 0;
  collect_elapsed_ = 0;
  state_ = settle_left_ > 0 ? State::kIdentifySettling
                            : State::kIdentifyCollecting;
  if (state_ == State::kIdentifyCollecting) {
    source_.Start();
    gate_.OnSessionStart();
  }
}

void KsTestDetector::FinishCandidate() {
  source_.Stop();
  // Does pausing this candidate restore the reference distribution on the
  // channel(s) that raised the suspicion?
  CandidateResult result;
  result.vm = candidates_[candidate_index_];
  result.p_value = 2.0;   // min() below picks the worst channel
  result.statistic = 0.0; // max() below picks the worst channel
  if (sweep_on_access_) {
    const auto r = TwoSampleKsTest(ref_access_, staging_access_);
    result.p_value = std::min(result.p_value, r.p_value);
    result.statistic = std::max(result.statistic, r.statistic);
  }
  if (sweep_on_miss_) {
    const auto r = TwoSampleKsTest(ref_miss_, staging_miss_);
    result.p_value = std::min(result.p_value, r.p_value);
    result.statistic = std::max(result.statistic, r.statistic);
  }
  candidate_results_.push_back(result);
  TraceDetect("candidate_result", result.vm, "p_value", result.p_value);
  if (++candidate_index_ >= candidates_.size()) {
    FinishIdentification();
  } else {
    StartNextCandidate();
  }
}

void KsTestDetector::FinishIdentification() {
  state_ = State::kIdle;
  // Attributed when some candidate's pause restored normality. Two rules:
  //   * absolute — the throttled-candidate window passes the KS test
  //     against the reference; or
  //   * relative — its KS statistic is clearly smaller than every other
  //     candidate's (the stale reference may have drifted, but pausing the
  //     real attacker makes that window a clear outlier among the sweeps).
  // The alarm is raised either way — the contention is real even if no
  // single culprit emerged (e.g. colluding VMs).
  identified_attacker_ = 0;
  if (!candidate_results_.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidate_results_.size(); ++i) {
      if (candidate_results_[i].statistic <
          candidate_results_[best].statistic) {
        best = i;
      }
    }
    double second = 1.0;
    for (std::size_t i = 0; i < candidate_results_.size(); ++i) {
      if (i != best) second = std::min(second, candidate_results_[i].statistic);
    }
    const auto& winner = candidate_results_[best];
    if (winner.p_value >= params_.alpha ||
        winner.statistic < 0.6 * second) {
      identified_attacker_ = winner.vm;
    }
  }
  identified_alarm_ = true;
  attack_active_ = true;
  ++alarm_events_;
  last_trigger_ = suspicion_tick_;
  TraceDetect("alarm_raised",
              identified_attacker_ == 0
                  ? -1
                  : static_cast<std::int64_t>(identified_attacker_),
              "suspicion_tick", static_cast<double>(suspicion_tick_));
}

void KsTestDetector::CollectTick() {
  ++collect_elapsed_;
  const DegradingSampleGate::Outcome out = gate_.OnTick();
  if (out.rewarm) {
    // The source was re-baselined (or a long gap severed the stream):
    // pre-gap staging no longer connects to what follows.
    staging_access_.clear();
    staging_miss_.clear();
    collected_ = 0;
  }
  if (out.sample) {
    staging_access_.push_back(static_cast<double>(out.sample->access_num));
    staging_miss_.push_back(static_cast<double>(out.sample->miss_num));
    ++collected_;
  } else {
    // Gap tick: the collection extends past its nominal window, so re-arm
    // the throttle that defines its measurement conditions.
    if (state_ == State::kCollectingReference) {
      hypervisor_.ThrottleAllExcept(source_.target(),
                                    params_.w_r - collected_ + 1);
    } else if (state_ == State::kIdentifyCollecting) {
      hypervisor_.ThrottleVm(candidates_[candidate_index_],
                             ident_.window - collected_ + 1);
    }
  }

  const Tick window = state_ == State::kCollectingReference ? params_.w_r
                      : state_ == State::kCollectingMonitored
                          ? params_.w_m
                          : ident_.window;
  if (collected_ >= window) {
    if (state_ == State::kCollectingReference) {
      FinishReference();
    } else if (state_ == State::kCollectingMonitored) {
      FinishMonitored();
    } else {
      FinishCandidate();
    }
  } else if (collect_elapsed_ >= kCollectSlackFactor * window) {
    // Out of slack. A monitored/candidate window that is at least half full
    // still supports a (weaker) KS decision; anything less — and any
    // partial reference, which must be a full clean window — is abandoned.
    if (state_ != State::kCollectingReference && collected_ >= (window + 1) / 2) {
      if (state_ == State::kCollectingMonitored) {
        FinishMonitored();
      } else {
        FinishCandidate();
      }
    } else {
      AbandonCollection();
    }
  }
}

void KsTestDetector::AbandonCollection() {
  if (source_.started()) source_.Stop();
  const auto collected = static_cast<double>(collected_);
  switch (state_) {
    case State::kCollectingReference:
      // Keep the previous reference (stale beats absent); the next L_R tick
      // retries.
      ++abandoned_references_;
      TraceDetect("reference_abandoned", source_.target(), "collected",
                  collected);
      state_ = State::kIdle;
      break;
    case State::kCollectingMonitored:
      // No decision this round: consecutive counters are left untouched.
      ++abandoned_monitored_;
      TraceDetect("monitored_abandoned", source_.target(), "collected",
                  collected);
      state_ = State::kIdle;
      break;
    case State::kIdentifyCollecting: {
      // An unmeasurable candidate cannot be exonerated: score it
      // inconclusive-worst so attribution never lands on it by default.
      ++abandoned_candidates_;
      CandidateResult result;
      result.vm = candidates_[candidate_index_];
      result.p_value = 0.0;
      result.statistic = 1.0;
      candidate_results_.push_back(result);
      TraceDetect("candidate_abandoned", result.vm, "collected", collected);
      if (++candidate_index_ >= candidates_.size()) {
        FinishIdentification();
      } else {
        StartNextCandidate();
      }
      break;
    }
    default:
      break;
  }
}

std::uint64_t KsTestDetector::ConfigFingerprint() const {
  SnapshotWriter w;
  w.I64(params_.l_r);
  w.I64(params_.w_r);
  w.I64(params_.l_m);
  w.I64(params_.w_m);
  w.F64(params_.alpha);
  w.I64(params_.consecutive_rejections);
  w.I64(params_.initial_offset);
  w.Bool(ident_.enabled);
  w.I64(ident_.settle);
  w.I64(ident_.window);
  return Fnv1a(w.data());
}

void KsTestDetector::SaveState(SnapshotWriter& w) const {
  gate_.SaveState(w);
  w.U32(static_cast<std::uint32_t>(state_));
  w.I64(local_tick_);
  w.I64(collected_);
  w.I64(collect_elapsed_);
  w.I64(settle_left_);
  w.U64(abandoned_references_);
  w.U64(abandoned_monitored_);
  w.U64(abandoned_candidates_);
  w.VecF64(ref_access_);
  w.VecF64(ref_miss_);
  w.VecF64(staging_access_);
  w.VecF64(staging_miss_);
  w.Bool(reference_ready_);
  w.I64(consecutive_access_);
  w.I64(consecutive_miss_);
  w.Bool(attack_active_);
  w.Bool(identified_alarm_);
  w.U64(candidates_.size());
  for (OwnerId id : candidates_) w.U32(id);
  w.U64(candidate_index_);
  w.Bool(sweep_on_access_);
  w.Bool(sweep_on_miss_);
  w.U64(candidate_results_.size());
  for (const CandidateResult& cr : candidate_results_) {
    w.U32(cr.vm);
    w.F64(cr.p_value);
    w.F64(cr.statistic);
  }
  w.U32(identified_attacker_);
  w.U64(sweeps_);
  w.U64(alarm_events_);
  w.I64(suspicion_tick_);
  w.I64(last_trigger_);
}

bool KsTestDetector::RestoreState(SnapshotReader& r) {
  if (!gate_.RestoreState(r)) return false;
  const std::uint32_t state = r.U32();
  if (!r.ok() ||
      state > static_cast<std::uint32_t>(State::kIdentifyCollecting)) {
    return false;
  }
  const Tick local_tick = r.I64();
  const Tick collected = r.I64();
  const Tick collect_elapsed = r.I64();
  const Tick settle_left = r.I64();
  const std::uint64_t abandoned_references = r.U64();
  const std::uint64_t abandoned_monitored = r.U64();
  const std::uint64_t abandoned_candidates = r.U64();
  std::vector<double> ref_access = r.VecF64();
  std::vector<double> ref_miss = r.VecF64();
  std::vector<double> staging_access = r.VecF64();
  std::vector<double> staging_miss = r.VecF64();
  const bool reference_ready = r.Bool();
  const std::int64_t consecutive_access = r.I64();
  const std::int64_t consecutive_miss = r.I64();
  const bool attack_active = r.Bool();
  const bool identified_alarm = r.Bool();
  const std::uint64_t n_candidates = r.U64();
  if (!r.ok() || n_candidates > 1'000'000) return false;
  std::vector<OwnerId> candidates;
  candidates.reserve(n_candidates);
  for (std::uint64_t i = 0; i < n_candidates; ++i) {
    candidates.push_back(r.U32());
  }
  const std::uint64_t candidate_index = r.U64();
  const bool sweep_on_access = r.Bool();
  const bool sweep_on_miss = r.Bool();
  const std::uint64_t n_results = r.U64();
  if (!r.ok() || n_results > 1'000'000) return false;
  std::vector<CandidateResult> candidate_results;
  candidate_results.reserve(n_results);
  for (std::uint64_t i = 0; i < n_results; ++i) {
    CandidateResult cr;
    cr.vm = r.U32();
    cr.p_value = r.F64();
    cr.statistic = r.F64();
    candidate_results.push_back(cr);
  }
  const OwnerId identified_attacker = r.U32();
  const std::uint64_t sweeps = r.U64();
  const std::uint64_t alarm_events = r.U64();
  const Tick suspicion_tick = r.I64();
  const Tick last_trigger = r.I64();
  if (!r.ok() || consecutive_access < 0 || consecutive_miss < 0 ||
      collected < 0 || collect_elapsed < 0) {
    return false;
  }
  // A collecting state must index a live candidate when sweeping.
  const auto restored_state = static_cast<State>(state);
  if ((restored_state == State::kIdentifySettling ||
       restored_state == State::kIdentifyCollecting) &&
      candidate_index >= candidates.size()) {
    return false;
  }

  state_ = restored_state;
  local_tick_ = local_tick;
  collected_ = collected;
  collect_elapsed_ = collect_elapsed;
  settle_left_ = settle_left;
  abandoned_references_ = abandoned_references;
  abandoned_monitored_ = abandoned_monitored;
  abandoned_candidates_ = abandoned_candidates;
  ref_access_ = std::move(ref_access);
  ref_miss_ = std::move(ref_miss);
  staging_access_ = std::move(staging_access);
  staging_miss_ = std::move(staging_miss);
  reference_ready_ = reference_ready;
  consecutive_access_ = static_cast<int>(consecutive_access);
  consecutive_miss_ = static_cast<int>(consecutive_miss);
  attack_active_ = attack_active;
  identified_alarm_ = identified_alarm;
  candidates_ = std::move(candidates);
  candidate_index_ = candidate_index;
  sweep_on_access_ = sweep_on_access;
  sweep_on_miss_ = sweep_on_miss;
  candidate_results_ = std::move(candidate_results);
  identified_attacker_ = identified_attacker;
  sweeps_ = sweeps;
  alarm_events_ = alarm_events;
  suspicion_tick_ = suspicion_tick;
  last_trigger_ = last_trigger;

  // Re-establish the source session the restored state expects. Start()
  // re-baselines cumulative counters at this tick boundary, so the next
  // delta equals what the pre-restart sampler would have read. The gate
  // deliberately does NOT get OnSessionStart(): its restored state IS the
  // in-progress session.
  const bool need_started = state_ == State::kCollectingReference ||
                            state_ == State::kCollectingMonitored ||
                            state_ == State::kIdentifyCollecting;
  if (need_started && !source_.started()) {
    source_.Start();
  } else if (!need_started && source_.started()) {
    source_.Stop();
  }
  return true;
}

void KsTestDetector::OnTick() {
  SDS_PROFILE_SPAN(prof_, span_tick_);
  switch (state_) {
    case State::kCollectingReference:
    case State::kCollectingMonitored:
    case State::kIdentifyCollecting:
      CollectTick();
      break;
    case State::kIdentifySettling: {
      if (--settle_left_ <= 0) {
        state_ = State::kIdentifyCollecting;
        collect_elapsed_ = 0;
        source_.Start();
        gate_.OnSessionStart();
      }
      break;
    }
    case State::kIdle:
      break;
  }

  ++local_tick_;

  // Schedule the next collection. The reference refresh takes priority over
  // monitored tests but never interrupts itself or an identification sweep.
  const bool busy = state_ == State::kCollectingReference ||
                    state_ == State::kIdentifySettling ||
                    state_ == State::kIdentifyCollecting;
  if (!busy && local_tick_ % params_.l_r == 0) {
    StartReference();
  } else if (state_ == State::kIdle && reference_ready_ &&
             local_tick_ % params_.l_m == 0) {
    StartMonitored();
  }
}
}  // namespace sds::detect
