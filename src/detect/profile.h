// Application profiling (Stage 1 of the paper's evaluation protocol).
//
// A benign VM is in a safe state right after it starts or migrates — the
// malicious tenant would first have to re-co-locate. The provider uses that
// window to collect clean PCM samples and build:
//   * boundary profiles (mu_E, sigma_E) of both statistic channels, and
//   * period profiles of both channels when the application is periodic.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "detect/boundary.h"
#include "detect/params.h"
#include "detect/period.h"
#include "pcm/pcm_sampler.h"

namespace sds::detect {

struct SdsProfile {
  BoundaryProfile access_boundary;
  BoundaryProfile miss_boundary;
  std::optional<PeriodProfile> access_period;
  std::optional<PeriodProfile> miss_period;

  // An application is handled as periodic when either channel shows a
  // stable period.
  bool periodic() const {
    return access_period.has_value() || miss_period.has_value();
  }
};

// Builds the full profile from clean samples.
SdsProfile BuildSdsProfile(std::span<const pcm::PcmSample> clean,
                           const DetectorParams& params);

// Extracts one channel of a sample series as doubles.
std::vector<double> ChannelSeries(std::span<const pcm::PcmSample> samples,
                                  pcm::Channel channel);

}  // namespace sds::detect
