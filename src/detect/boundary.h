// SDS/B: the Boundary-based Statistical Detection Scheme (Section 4.2.1).
//
// Offline, a profile captures the mean mu_E and standard deviation sigma_E of
// the EWMA-preprocessed statistic while the VM is known clean (right after it
// starts or migrates). Online, each raw PCM sample flows through the
// MA -> EWMA pipeline; whenever a new EWMA value S_n falls outside
// [mu_E - k sigma_E, mu_E + k sigma_E] a consecutive-violation counter
// advances, and H_C consecutive violations raise the alarm. Chebyshev's
// inequality bounds the false-alarm probability at (1/k^2)^{H_C} for ANY
// statistic distribution, which is how (k, H_C) are chosen.
#pragma once

#include <optional>
#include <span>

#include "detect/params.h"
#include "signal/moving_average.h"

namespace sds::detect {

struct BoundaryProfile {
  // Mean and standard deviation of the clean EWMA series.
  double mean = 0.0;
  double stddev = 0.0;
};

// Profiles one statistic channel from raw clean samples by running the same
// MA -> EWMA pipeline the analyzer uses online. Requires enough raw samples
// for at least two EWMA values.
BoundaryProfile BuildBoundaryProfile(std::span<const double> raw,
                                     const DetectorParams& params);

// Streaming SDS/B analyzer for one statistic channel. Pure stream logic —
// hypervisor/PCM wiring lives in SdsDetector.
class BoundaryAnalyzer {
 public:
  BoundaryAnalyzer(const BoundaryProfile& profile,
                   const DetectorParams& params);

  // Feeds one raw sample. Returns the new EWMA value when a window
  // completed, nullopt otherwise.
  std::optional<double> Observe(double raw);

  // True while the consecutive-violation count is at least H_C.
  bool attack_active() const { return consecutive_ >= params_.h_c; }

  int consecutive_violations() const { return consecutive_; }
  double lower_bound() const { return lower_; }
  double upper_bound() const { return upper_; }
  const BoundaryProfile& profile() const { return profile_; }

  // Snapshot/restore of the streaming state (MA window, EWMA, consecutive
  // count). The profile/params themselves are construction inputs; restore
  // validates the saved profile matches bit-exactly and refuses otherwise.
  void SaveState(SnapshotWriter& w) const;
  bool RestoreState(SnapshotReader& r);

 private:
  BoundaryProfile profile_;
  DetectorParams params_;
  double lower_ = 0.0;
  double upper_ = 0.0;
  SlidingWindowAverage ma_;
  Ewma ewma_;
  int consecutive_ = 0;
};

}  // namespace sds::detect
