#include "detect/profile.h"

namespace sds::detect {

std::vector<double> ChannelSeries(std::span<const pcm::PcmSample> samples,
                                  pcm::Channel channel) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(pcm::SampleValue(s, channel));
  return out;
}

SdsProfile BuildSdsProfile(std::span<const pcm::PcmSample> clean,
                           const DetectorParams& params) {
  const auto access = ChannelSeries(clean, pcm::Channel::kAccessNum);
  const auto miss = ChannelSeries(clean, pcm::Channel::kMissNum);

  SdsProfile profile;
  profile.access_boundary = BuildBoundaryProfile(access, params);
  profile.miss_boundary = BuildBoundaryProfile(miss, params);
  profile.access_period = ClassifyPeriodicity(access, params);
  profile.miss_period = ClassifyPeriodicity(miss, params);
  return profile;
}

}  // namespace sds::detect
