// The monitoring-plane seam between the PCM sampler and its consumers.
//
// On a real cloud host the detector never reads MSRs itself: a monitoring
// agent does, and that agent can drop reads, coalesce intervals, return
// garbage after a counter reset, or die outright. SampleSource abstracts
// "whatever produces the per-interval PcmSample stream" so that detectors
// are written against an imperfect source from the start:
//
//   * PcmSampler implements it directly (the perfect source — one sample per
//     tick, always);
//   * fault::FaultInjector wraps a PcmSampler and perturbs the stream
//     according to a deterministic FaultPlan;
//   * detect::* consumers handle the imperfections via degradation policies
//     (detect/degrade.h).
//
// Next() replaces the bare Sample() call: nullopt means the monitoring plane
// produced NOTHING this tick (a dropped read or an outage) — it does not
// mean zero activity, which is a valid sample with zero deltas. A source
// that returns nullopt may also report !healthy(), which tells the
// SamplerWatchdog the source is dead and needs a restart rather than merely
// lossy.
#pragma once

#include <optional>

#include "common/types.h"

namespace sds::pcm {

struct PcmSample;

class SampleSource {
 public:
  virtual ~SampleSource() = default;

  // Session control, mirroring PcmSampler. Start()/Stop() pairs delimit a
  // monitoring session; deltas never span a stopped gap.
  virtual void Start() = 0;
  virtual void Stop() = 0;
  virtual bool started() const = 0;

  // The VM whose counters this source reports.
  virtual OwnerId target() const = 0;

  // Reads this tick's sample. Call at most once per hypervisor tick while
  // started. nullopt = the monitoring plane delivered nothing this tick.
  virtual std::optional<PcmSample> Next() = 0;

  // Number of T_PCM intervals the most recent delivered sample's delta
  // covered: 1 for a normal read, 1 + the skipped ticks when the read
  // coalesced a gap. Consumers use it to scale sanity bounds and normalize
  // the delta back to a per-interval estimate.
  virtual Tick last_span() const { return 1; }

  // False while the source is dead (an outage that will not clear on its
  // own). A watchdog should call TryRestart() until it succeeds.
  virtual bool healthy() const { return true; }

  // Attempts to revive a dead source (stop + start the underlying sampler).
  // Returns true on success; the delta baseline is reset, so the first
  // sample after a successful restart starts a fresh interval.
  virtual bool TryRestart() { return true; }
};

}  // namespace sds::pcm
