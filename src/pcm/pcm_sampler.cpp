#include "pcm/pcm_sampler.h"

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace sds::pcm {

namespace tel = sds::telemetry;

const char* ChannelName(Channel c) {
  return c == Channel::kAccessNum ? "AccessNum" : "MissNum";
}

PcmSampler::PcmSampler(vm::Hypervisor& hypervisor, OwnerId target)
    : hypervisor_(hypervisor), target_(target) {
  if (tel::Telemetry* t = hypervisor_.telemetry()) {
    prof_ = &t->profiler();
    span_sample_ = prof_->RegisterSpan("pcm.sample");
    t_samples_ = t->metrics().GetCounter("pcm.samples");
    t_sessions_ = t->metrics().GetCounter("pcm.monitor_sessions");
    t_missed_ticks_ = t->metrics().GetCounter("pcm.missed_ticks");
  }
}

PcmSampler::~PcmSampler() {
  if (started_) Stop();
}

void PcmSampler::TracePcm(const char* name) {
  tel::Telemetry* t = hypervisor_.telemetry();
  if (!t || !t->tracer().enabled(tel::Layer::kPcm)) return;
  t->tracer().Emit(tel::MakeEvent(hypervisor_.now(), tel::Layer::kPcm, name,
                                  target_));
}

void PcmSampler::Start() {
  SDS_CHECK(!started_, "sampler already started");
  started_ = true;
  hypervisor_.AttachMonitor();
  if (t_sessions_) t_sessions_->Add();
  TracePcm("sampler_start");
  // Align deltas with the start of monitoring.
  const sim::OwnerCounters& c = hypervisor_.machine().counters(target_);
  last_accesses_ = c.llc_accesses;
  last_misses_ = c.llc_misses;
  last_read_tick_ = hypervisor_.now();
  last_span_ = 1;
}

void PcmSampler::Stop() {
  SDS_CHECK(started_, "sampler not started");
  started_ = false;
  hypervisor_.DetachMonitor();
  TracePcm("sampler_stop");
}

PcmSample PcmSampler::Sample() {
  SDS_PROFILE_SPAN(prof_, span_sample_);
  SDS_CHECK(started_, "sampler not started");
  const Tick now = hypervisor_.now();
  SDS_CHECK(now != last_read_tick_,
            "PcmSampler::Sample() called twice in one tick: the second delta "
            "would be zero and skew every downstream statistic");
  if (now > last_read_tick_ + 1) {
    // Missed tick(s): tolerated — the delta below spans the gap. Surface the
    // coalescing so detectors and trace readers can account for it.
    const auto skipped = static_cast<std::uint64_t>(now - last_read_tick_ - 1);
    missed_ticks_ += skipped;
    if (t_missed_ticks_) {
      t_missed_ticks_->Add(skipped);
      tel::Telemetry* t = hypervisor_.telemetry();
      if (t->tracer().enabled(tel::Layer::kPcm)) {
        t->tracer().Emit(tel::MakeEvent(now, tel::Layer::kPcm, "missed_ticks",
                                        target_)
                             .Num("skipped", static_cast<double>(skipped)));
      }
    }
  }
  last_span_ = now - last_read_tick_;
  last_read_tick_ = now;
  const sim::OwnerCounters& c = hypervisor_.machine().counters(target_);
  PcmSample s;
  s.tick = now;
  s.access_num = c.llc_accesses - last_accesses_;
  s.miss_num = c.llc_misses - last_misses_;
  last_accesses_ = c.llc_accesses;
  last_misses_ = c.llc_misses;
  if (t_samples_) {
    t_samples_->Add();
    tel::Telemetry* t = hypervisor_.telemetry();
    if (t->tracer().enabled(tel::Layer::kPcm)) {
      t->tracer().Emit(tel::MakeEvent(s.tick, tel::Layer::kPcm, "sample",
                                      target_)
                           .Num("access_num", static_cast<double>(s.access_num))
                           .Num("miss_num", static_cast<double>(s.miss_num)));
    }
  }
  return s;
}

std::vector<PcmSample> CollectSamples(vm::Hypervisor& hypervisor,
                                      PcmSampler& sampler, Tick ticks) {
  SDS_CHECK(ticks >= 0, "tick count must be non-negative");
  std::vector<PcmSample> samples;
  samples.reserve(static_cast<std::size_t>(ticks));
  for (Tick t = 0; t < ticks; ++t) {
    hypervisor.RunTick();
    samples.push_back(sampler.Sample());
  }
  return samples;
}

}  // namespace sds::pcm
