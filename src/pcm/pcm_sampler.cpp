#include "pcm/pcm_sampler.h"

#include "common/check.h"

namespace sds::pcm {

const char* ChannelName(Channel c) {
  return c == Channel::kAccessNum ? "AccessNum" : "MissNum";
}

PcmSampler::PcmSampler(vm::Hypervisor& hypervisor, OwnerId target)
    : hypervisor_(hypervisor), target_(target) {}

PcmSampler::~PcmSampler() {
  if (started_) Stop();
}

void PcmSampler::Start() {
  SDS_CHECK(!started_, "sampler already started");
  started_ = true;
  hypervisor_.AttachMonitor();
  // Align deltas with the start of monitoring.
  const sim::OwnerCounters& c = hypervisor_.machine().counters(target_);
  last_accesses_ = c.llc_accesses;
  last_misses_ = c.llc_misses;
}

void PcmSampler::Stop() {
  SDS_CHECK(started_, "sampler not started");
  started_ = false;
  hypervisor_.DetachMonitor();
}

PcmSample PcmSampler::Sample() {
  SDS_CHECK(started_, "sampler not started");
  const sim::OwnerCounters& c = hypervisor_.machine().counters(target_);
  PcmSample s;
  s.tick = hypervisor_.now();
  s.access_num = c.llc_accesses - last_accesses_;
  s.miss_num = c.llc_misses - last_misses_;
  last_accesses_ = c.llc_accesses;
  last_misses_ = c.llc_misses;
  return s;
}

std::vector<PcmSample> CollectSamples(vm::Hypervisor& hypervisor,
                                      PcmSampler& sampler, Tick ticks) {
  SDS_CHECK(ticks >= 0, "tick count must be non-negative");
  std::vector<PcmSample> samples;
  samples.reserve(static_cast<std::size_t>(ticks));
  for (Tick t = 0; t < ticks; ++t) {
    hypervisor.RunTick();
    samples.push_back(sampler.Sample());
  }
  return samples;
}

}  // namespace sds::pcm
