#include "pcm/trace.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string_view>

namespace sds::pcm {
namespace {

constexpr std::string_view kHeader = "tick,access_num,miss_num";

bool ParseField(std::string_view field, std::uint64_t& out) {
  const auto* begin = field.data();
  const auto* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

bool WriteTrace(std::ostream& os, std::span<const PcmSample> samples) {
  os << kHeader << '\n';
  for (const auto& s : samples) {
    os << s.tick << ',' << s.access_num << ',' << s.miss_num << '\n';
  }
  return static_cast<bool>(os);
}

bool WriteTraceFile(const std::string& path,
                    std::span<const PcmSample> samples) {
  std::ofstream out(path);
  if (!out) return false;
  return WriteTrace(out, samples);
}

std::optional<std::vector<PcmSample>> ReadTrace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) return std::nullopt;

  std::vector<PcmSample> samples;
  Tick last_tick = kInvalidTick;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto c1 = line.find(',');
    const auto c2 = line.find(',', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      return std::nullopt;
    }
    std::uint64_t tick = 0;
    PcmSample s;
    if (!ParseField(std::string_view(line).substr(0, c1), tick) ||
        !ParseField(std::string_view(line).substr(c1 + 1, c2 - c1 - 1),
                    s.access_num) ||
        !ParseField(std::string_view(line).substr(c2 + 1), s.miss_num)) {
      return std::nullopt;
    }
    s.tick = static_cast<Tick>(tick);
    if (last_tick != kInvalidTick && s.tick <= last_tick) return std::nullopt;
    last_tick = s.tick;
    samples.push_back(s);
  }
  return samples;
}

std::optional<std::vector<PcmSample>> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadTrace(in);
}

namespace {

// Extracts the unsigned integer following `"key":` in a flat JSON line.
bool JsonField(std::string_view line, std::string_view key,
               std::uint64_t& out) {
  std::string needle = "\"";
  needle.append(key);
  needle.append("\":");
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return false;
  auto rest = line.substr(pos + needle.size());
  std::size_t end = 0;
  while (end < rest.size() && rest[end] >= '0' && rest[end] <= '9') ++end;
  return end > 0 && ParseField(rest.substr(0, end), out);
}

bool IsPcmSampleLine(std::string_view line) {
  return line.find("\"layer\":\"pcm\"") != std::string_view::npos &&
         line.find("\"event\":\"sample\"") != std::string_view::npos;
}

}  // namespace

bool WriteTraceJsonl(std::ostream& os, std::span<const PcmSample> samples) {
  for (const auto& s : samples) {
    os << "{\"type\":\"event\",\"tick\":" << s.tick
       << ",\"layer\":\"pcm\",\"event\":\"sample\",\"access_num\":"
       << s.access_num << ",\"miss_num\":" << s.miss_num << "}\n";
  }
  return static_cast<bool>(os);
}

bool WriteTraceJsonlFile(const std::string& path,
                         std::span<const PcmSample> samples) {
  std::ofstream out(path);
  if (!out) return false;
  return WriteTraceJsonl(out, samples);
}

std::optional<std::vector<PcmSample>> ReadTraceJsonl(std::istream& is) {
  std::vector<PcmSample> samples;
  Tick last_tick = kInvalidTick;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || !IsPcmSampleLine(line)) continue;
    std::uint64_t tick = 0;
    PcmSample s;
    if (!JsonField(line, "tick", tick) ||
        !JsonField(line, "access_num", s.access_num) ||
        !JsonField(line, "miss_num", s.miss_num)) {
      return std::nullopt;
    }
    s.tick = static_cast<Tick>(tick);
    if (last_tick != kInvalidTick && s.tick <= last_tick) return std::nullopt;
    last_tick = s.tick;
    samples.push_back(s);
  }
  return samples;
}

std::optional<std::vector<PcmSample>> ReadTraceJsonlFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadTraceJsonl(in);
}

}  // namespace sds::pcm
