// Delta sampler over the interference attribution ledger.
//
// PcmSampler reads what the monitored VM experienced each T_PCM interval;
// this sampler reads, from sim::AttributionLedger, who caused it: for one
// target VM it emits the per-interval delta of every co-tenant's evictions
// inflicted on the target, stall delay imposed on the target, and raw bus
// occupancy. The forensics engine (detect/forensics.h) keeps a window of
// these spans and collapses it into ranked suspects when a detector alarms.
//
// Unlike PcmSampler this sampler does NOT attach to the hypervisor's
// monitoring-load model: reading the ledger piggybacks on the same per-tick
// sampling pass that already reads the PCM counters, so it must not perturb
// the machine a second time (doing so would shift every detector timing the
// transparency golden pins).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "vm/hypervisor.h"

namespace sds::pcm {

// Per-interval attribution slice for one candidate culprit against the
// sampler's target VM.
struct AttributionSlice {
  OwnerId owner = 0;
  // Valid lines of the target this owner evicted in the interval.
  std::uint64_t evictions_on_target = 0;
  // Stall-charge slots this owner imposed on the target in the interval.
  std::uint64_t bus_delay_on_target = 0;
  // Bus slots this owner consumed in the interval (all victims).
  std::uint64_t occupancy_slots = 0;
};

struct AttributionSpan {
  Tick tick = 0;
  // Intervals the deltas cover (1 unless ticks were skipped).
  Tick span = 1;
  // One slice per owner id in [0, max_owners); slices[target] reports the
  // target's own occupancy and self-interference baseline.
  std::vector<AttributionSlice> slices;
};

class AttributionSampler {
 public:
  // Samples attribution evidence against VM `target`. The hypervisor's
  // machine must have been built with MachineConfig::attribution set.
  AttributionSampler(vm::Hypervisor& hypervisor, OwnerId target);

  AttributionSampler(const AttributionSampler&) = delete;
  AttributionSampler& operator=(const AttributionSampler&) = delete;

  // Re-baselines so the next Sample() delta starts at the current tick.
  void Start();

  // Returns the per-owner attribution deltas since the previous Sample()
  // (or Start()). Same once-per-tick contract as PcmSampler::Sample():
  // double reads in one tick abort, skipped ticks widen the delta.
  AttributionSpan Sample();

  OwnerId target() const { return target_; }

 private:
  vm::Hypervisor& hypervisor_;
  OwnerId target_;
  // Cumulative baselines per owner, updated on every read.
  std::vector<std::uint64_t> base_evictions_;
  std::vector<std::uint64_t> base_bus_delay_;
  std::vector<std::uint64_t> base_occupancy_;
  Tick last_read_tick_ = kInvalidTick;
};

}  // namespace sds::pcm
