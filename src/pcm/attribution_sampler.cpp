#include "pcm/attribution_sampler.h"

#include "common/check.h"
#include "sim/attribution.h"

namespace sds::pcm {

AttributionSampler::AttributionSampler(vm::Hypervisor& hypervisor,
                                       OwnerId target)
    : hypervisor_(hypervisor), target_(target) {
  SDS_CHECK(hypervisor_.machine().attribution() != nullptr,
            "AttributionSampler needs MachineConfig::attribution enabled");
  const sim::AttributionLedger& ledger = *hypervisor_.machine().attribution();
  SDS_CHECK(target < ledger.max_owners(), "target owner out of range");
  base_evictions_.assign(ledger.max_owners(), 0);
  base_bus_delay_.assign(ledger.max_owners(), 0);
  base_occupancy_.assign(ledger.max_owners(), 0);
  Start();
}

void AttributionSampler::Start() {
  const sim::AttributionLedger& ledger = *hypervisor_.machine().attribution();
  for (OwnerId o = 0; o < ledger.max_owners(); ++o) {
    base_evictions_[o] = ledger.evictions_inflicted(o, target_);
    base_bus_delay_[o] = ledger.bus_delay_imposed(o, target_);
    base_occupancy_[o] = ledger.occupancy_slots(o);
  }
  last_read_tick_ = hypervisor_.now();
}

AttributionSpan AttributionSampler::Sample() {
  const Tick now = hypervisor_.now();
  SDS_CHECK(now != last_read_tick_,
            "AttributionSampler::Sample() called twice in one tick");
  const sim::AttributionLedger& ledger = *hypervisor_.machine().attribution();
  AttributionSpan span;
  span.tick = now;
  span.span = now - last_read_tick_;
  last_read_tick_ = now;
  span.slices.resize(ledger.max_owners());
  for (OwnerId o = 0; o < ledger.max_owners(); ++o) {
    AttributionSlice& s = span.slices[o];
    s.owner = o;
    const std::uint64_t ev = ledger.evictions_inflicted(o, target_);
    const std::uint64_t bd = ledger.bus_delay_imposed(o, target_);
    const std::uint64_t oc = ledger.occupancy_slots(o);
    s.evictions_on_target = ev - base_evictions_[o];
    s.bus_delay_on_target = bd - base_bus_delay_[o];
    s.occupancy_slots = oc - base_occupancy_[o];
    base_evictions_[o] = ev;
    base_bus_delay_[o] = bd;
    base_occupancy_[o] = oc;
  }
  return span;
}

}  // namespace sds::pcm
