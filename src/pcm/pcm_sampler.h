// Processor Counter Monitor (PCM) model.
//
// The real Intel PCM tool runs on the hypervisor and reads per-core/uncore
// performance counters every T_PCM seconds; the paper's detectors consume
// the resulting per-interval LLC access count (AccessNum) and LLC miss count
// (MissNum) of the monitored VM. Here one simulator tick IS one T_PCM
// interval, so the sampler reads the machine's cumulative per-owner counter
// registers once per tick and emits the deltas.
//
// Monitoring is not free: while started, the sampler registers itself with
// the hypervisor's monitoring-load model (reading MSRs across all logical
// cores costs real CPU time), which is the source of SDS's small but nonzero
// performance overhead in Figure 12.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/machine.h"
#include "vm/hypervisor.h"

namespace sds::pcm {

struct PcmSample {
  Tick tick = 0;
  // LLC accesses of the monitored VM in this T_PCM interval.
  std::uint64_t access_num = 0;
  // LLC misses of the monitored VM in this T_PCM interval.
  std::uint64_t miss_num = 0;
};

// Which statistic a detector consumes: AccessNum reacts to the bus locking
// attack, MissNum to the LLC cleansing attack (paper Section 3.1).
enum class Channel : std::uint8_t { kAccessNum, kMissNum };

inline double SampleValue(const PcmSample& s, Channel c) {
  return c == Channel::kAccessNum ? static_cast<double>(s.access_num)
                                  : static_cast<double>(s.miss_num);
}

const char* ChannelName(Channel c);

class PcmSampler {
 public:
  // Monitors VM `target` on `hypervisor`'s machine. The sampler starts
  // stopped; call Start() to begin monitoring (and paying its overhead).
  PcmSampler(vm::Hypervisor& hypervisor, OwnerId target);
  ~PcmSampler();

  PcmSampler(const PcmSampler&) = delete;
  PcmSampler& operator=(const PcmSampler&) = delete;

  void Start();
  void Stop();
  bool started() const { return started_; }

  // Reads the target's counters and returns the delta since the previous
  // Sample() call. Call exactly once per hypervisor tick while started.
  PcmSample Sample();

  OwnerId target() const { return target_; }

 private:
  void TracePcm(const char* name);

  vm::Hypervisor& hypervisor_;
  OwnerId target_;
  bool started_ = false;
  std::uint64_t last_accesses_ = 0;
  std::uint64_t last_misses_ = 0;
  // Telemetry instrument slots (resolved from the hypervisor's handle).
  telemetry::Counter* t_samples_ = nullptr;
  telemetry::Counter* t_sessions_ = nullptr;
};

// Convenience: runs the hypervisor for `ticks` ticks with the sampler
// started, collecting one sample per tick.
std::vector<PcmSample> CollectSamples(vm::Hypervisor& hypervisor,
                                      PcmSampler& sampler, Tick ticks);

}  // namespace sds::pcm
