// Processor Counter Monitor (PCM) model.
//
// The real Intel PCM tool runs on the hypervisor and reads per-core/uncore
// performance counters every T_PCM seconds; the paper's detectors consume
// the resulting per-interval LLC access count (AccessNum) and LLC miss count
// (MissNum) of the monitored VM. Here one simulator tick IS one T_PCM
// interval, so the sampler reads the machine's cumulative per-owner counter
// registers once per tick and emits the deltas.
//
// Monitoring is not free: while started, the sampler registers itself with
// the hypervisor's monitoring-load model (reading MSRs across all logical
// cores costs real CPU time), which is the source of SDS's small but nonzero
// performance overhead in Figure 12.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "pcm/sample_source.h"
#include "sim/machine.h"
#include "vm/hypervisor.h"

namespace sds::pcm {

struct PcmSample {
  Tick tick = 0;
  // LLC accesses of the monitored VM in this T_PCM interval.
  std::uint64_t access_num = 0;
  // LLC misses of the monitored VM in this T_PCM interval.
  std::uint64_t miss_num = 0;
};

// Which statistic a detector consumes: AccessNum reacts to the bus locking
// attack, MissNum to the LLC cleansing attack (paper Section 3.1).
enum class Channel : std::uint8_t { kAccessNum, kMissNum };

inline double SampleValue(const PcmSample& s, Channel c) {
  return c == Channel::kAccessNum ? static_cast<double>(s.access_num)
                                  : static_cast<double>(s.miss_num);
}

const char* ChannelName(Channel c);

class PcmSampler final : public SampleSource {
 public:
  // Monitors VM `target` on `hypervisor`'s machine. The sampler starts
  // stopped; call Start() to begin monitoring (and paying its overhead).
  PcmSampler(vm::Hypervisor& hypervisor, OwnerId target);
  ~PcmSampler() override;

  PcmSampler(const PcmSampler&) = delete;
  PcmSampler& operator=(const PcmSampler&) = delete;

  void Start() override;
  void Stop() override;
  bool started() const override { return started_; }

  // Reads the target's counters and returns the delta since the previous
  // Sample() call.
  //
  // Once-per-tick contract: calling Sample() twice within the same
  // hypervisor tick is a caller bug — the second delta would always be zero
  // and silently bias every downstream statistic — and aborts with an
  // SDS_CHECK. Skipped ticks are TOLERATED: the returned delta then spans
  // the whole gap (cumulative counters lose nothing), which is exactly what
  // real PCM reports after a missed read; the sampler counts the skipped
  // ticks in the `pcm.missed_ticks` metric and emits a `missed_ticks` trace
  // event so the gap is visible in telemetry.
  PcmSample Sample();

  // SampleSource: the perfect monitoring plane — one sample per tick,
  // always delivered.
  std::optional<PcmSample> Next() override { return Sample(); }

  OwnerId target() const override { return target_; }

  // Intervals covered by the last Sample() delta (1 unless ticks were
  // skipped before that read).
  Tick last_span() const override { return last_span_; }

  // A healthy sampler "restarts" by re-baselining: Stop() + Start(), so the
  // next delta never spans whatever gap prompted the restart.
  bool TryRestart() override {
    if (started_) {
      Stop();
      Start();
    }
    return true;
  }

  // Ticks whose samples were absorbed into a later, wider delta because the
  // caller skipped them (see Sample()).
  std::uint64_t missed_ticks() const { return missed_ticks_; }

 private:
  void TracePcm(const char* name);

  vm::Hypervisor& hypervisor_;
  OwnerId target_;
  bool started_ = false;
  std::uint64_t last_accesses_ = 0;
  std::uint64_t last_misses_ = 0;
  // Tick of the previous Sample() (or Start()) — enforces the contract.
  Tick last_read_tick_ = kInvalidTick;
  Tick last_span_ = 1;
  std::uint64_t missed_ticks_ = 0;
  // Telemetry instrument slots (resolved from the hypervisor's handle).
  // "pcm.sample" wraps each counter read; nests under the caller's span
  // (e.g. a detector's tick span) when one is open.
  telemetry::SpanProfiler* prof_ = nullptr;
  std::uint32_t span_sample_ = 0;
  telemetry::Counter* t_samples_ = nullptr;
  telemetry::Counter* t_sessions_ = nullptr;
  telemetry::Counter* t_missed_ticks_ = nullptr;
};

// Convenience: runs the hypervisor for `ticks` ticks with the sampler
// started, collecting one sample per tick.
std::vector<PcmSample> CollectSamples(vm::Hypervisor& hypervisor,
                                      PcmSampler& sampler, Tick ticks);

}  // namespace sds::pcm
