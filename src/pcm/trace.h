// PCM trace recording and replay.
//
// Real deployments of a detection scheme want to (a) archive the counter
// series that led to an alarm for forensics, and (b) re-run detectors
// offline over recorded traces when tuning parameters — without re-running
// the cloud. Traces are CSV (tick,access_num,miss_num) so they round-trip
// through ordinary tooling; the offline runner feeds a recorded trace into
// any pure stream analyzer.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pcm/pcm_sampler.h"

namespace sds::pcm {

// Writes samples as CSV with a header row. Returns false on I/O failure.
bool WriteTrace(std::ostream& os, std::span<const PcmSample> samples);
bool WriteTraceFile(const std::string& path,
                    std::span<const PcmSample> samples);

// Parses a trace written by WriteTrace. Returns nullopt on malformed input
// (wrong header, non-numeric fields, negative values, or ticks that are not
// strictly increasing).
std::optional<std::vector<PcmSample>> ReadTrace(std::istream& is);
std::optional<std::vector<PcmSample>> ReadTraceFile(const std::string& path);

// JSONL export: one telemetry-format event line per sample,
//   {"type":"event","tick":N,"layer":"pcm","event":"sample",
//    "access_num":A,"miss_num":M}
// so recorded traces and live telemetry streams share one tooling format
// (tools/trace_inspect reads both). Returns false on I/O failure.
bool WriteTraceJsonl(std::ostream& os, std::span<const PcmSample> samples);
bool WriteTraceJsonlFile(const std::string& path,
                         std::span<const PcmSample> samples);

// Parses the pcm "sample" event lines out of a JSONL stream — either a file
// written by WriteTraceJsonl or a full Telemetry::WriteJsonl stream (other
// line types are skipped). Returns nullopt on a malformed sample line or
// non-increasing ticks.
std::optional<std::vector<PcmSample>> ReadTraceJsonl(std::istream& is);
std::optional<std::vector<PcmSample>> ReadTraceJsonlFile(
    const std::string& path);

}  // namespace sds::pcm
