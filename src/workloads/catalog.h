// The application catalog: the ten cloud applications of the paper's
// measurement study (Section 3.1) plus the benign Linux-utility VMs used as
// background tenants in the evaluation (Section 5.1).
//
// Each entry maps a real application to a SyntheticSpec whose LLC time-series
// shape matches the paper's observations: which apps are periodic (PCA,
// FaceNet), which switch phases hard enough to break KStest (TeraSort), and
// roughly how much LLC pressure each exerts.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "vm/workload.h"
#include "workloads/synthetic.h"

namespace sds::workloads {

struct AppInfo {
  std::string name;
  std::string category;  // "machine-learning", "database", ...
  bool periodic = false;
  // Nominal period of the MA series in ticks (0 for non-periodic apps);
  // documentation only — detectors measure the period themselves.
  Tick nominal_period_ticks = 0;
};

// All ten applications, in the paper's presentation order.
const std::vector<AppInfo>& AppCatalog();

// Looks up catalog info; aborts on unknown name.
const AppInfo& AppInfoFor(std::string_view name);

// True when `name` names a catalog application.
bool IsKnownApp(std::string_view name);

// Instantiates the application model. Aborts on unknown name.
std::unique_ptr<vm::Workload> MakeApp(std::string_view name);

// The spec behind an application (exposed for tests and calibration).
SyntheticSpec SpecForApp(std::string_view name);

// A background tenant running light Linux utilities (sysstat/dstat).
std::unique_ptr<vm::Workload> MakeBenignUtility();

}  // namespace sds::workloads
