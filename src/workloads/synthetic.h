// Phase-structured synthetic application models.
//
// The paper's measurement study (Section 3) spans ten real applications
// (HiBench ML jobs, Hive queries, TeraSort, PageRank, FaceNet). What the
// detection schemes actually consume is each application's LLC access/miss
// time series, whose statistical shape falls into three families:
//
//   * stationary with correlated noise (Bayes, SVM, Aggregation, Scan,
//     PageRank, ...): intensity wanders slowly around a mean;
//   * phase-switching (TeraSort, Join, k-means): distinct execution phases
//     with different intensities and locality, switching at work-dependent
//     boundaries — the family on which KStest generates false positives;
//   * batch-periodic (PCA, FaceNet): a fixed cycle of phases repeats every
//     batch, so the series is periodic IN COMPLETED WORK — which is why the
//     period measured in wall time stretches under attack (Observation 2).
//
// A SyntheticWorkload is a sequence of PhaseSpecs advanced by COMPLETED
// operations (never by ticks), with a two-level noise model: an
// Ornstein-Uhlenbeck process modulating intensity on a seconds timescale
// (survives the W=200 moving average, so SDS/B profiles see realistic
// variance) plus iid per-tick jitter.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "vm/workload.h"

namespace sds::workloads {

struct PhaseSpec {
  std::string name;
  // Target completed operations per tick (the app's nominal LLC pressure).
  double intensity = 400.0;
  // Fraction of operations that go to the phase's hot working set (these hit
  // once the set is resident, so 1 - hot_fraction approximates the miss
  // ratio in steady state without an attack).
  double hot_fraction = 0.75;
  // Hot working-set size in cache lines.
  std::uint64_t hot_lines = 2000;
  // Streaming region size in lines (sequential, wrapping; always misses once
  // the region exceeds the LLC).
  std::uint64_t stream_lines = 200000;
  // Completed operations spent in this phase before advancing; 0 = forever.
  std::uint64_t work = 0;
  // Fractional randomization of `work` each time the phase is entered.
  double work_jitter = 0.0;
};

struct SyntheticSpec {
  std::string name;
  std::vector<PhaseSpec> phases;
  // true: phases repeat in a cycle (batch-periodic or iterative apps);
  // false: the final phase runs forever once reached.
  bool cycle = true;
  // Ornstein-Uhlenbeck log-intensity modulation: correlation time in ticks
  // and stationary standard deviation. tau <= 0 disables.
  double ou_tau_ticks = 300.0;
  double ou_sigma = 0.10;
  // Standard deviation of iid multiplicative per-tick jitter.
  double tick_jitter = 0.05;
  // Completed operations per reported work unit (for fixed-work runs).
  std::uint64_t work_unit = 1000;
  // Extra issue-budget units consumed by an LLC miss: the core stalls on
  // DRAM instead of issuing further work. This is the mechanism that slows
  // a cleansed application down — and hence stretches the period of batch
  // applications (Observation 2) — rather than merely raising its miss
  // count. Kept moderate (1.0): memory-level parallelism hides part of the
  // DRAM latency on real cores, and a larger value suppresses issued
  // operations so strongly under cleansing that the MissNum increase the
  // paper observes would wash out.
  double miss_stall_cost = 1.0;
  // > 0: hot-set accesses are Zipf-distributed with this exponent
  // (PageRank's hyperlink popularity); 0: uniform over the hot set.
  double zipf_exponent = 0.0;
};

class SyntheticWorkload final : public vm::Workload {
 public:
  explicit SyntheticWorkload(SyntheticSpec spec);

  void Bind(LineAddr base, Rng rng) override;
  void BeginTick(Tick now) override;
  bool NextOp(sim::MemOp& op) override;
  void OnOutcome(const sim::MemOp& op, sim::AccessOutcome outcome) override;
  std::uint64_t work_completed() const override;
  std::string_view name() const override { return spec_.name; }

  // Introspection for tests and the measurement-study bench.
  std::size_t current_phase() const { return phase_index_; }
  std::uint64_t batches_completed() const { return batches_completed_; }
  const SyntheticSpec& spec() const { return spec_; }

 private:
  void EnterPhase(std::size_t index);
  const PhaseSpec& phase() const { return spec_.phases[phase_index_]; }

  SyntheticSpec spec_;
  Rng rng_{0};
  LineAddr base_ = 0;
  bool bound_ = false;

  // Per-phase hot-region offsets (disjoint so phase changes shift locality).
  std::vector<LineAddr> hot_offsets_;
  LineAddr stream_offset_ = 0;
  std::uint64_t stream_cursor_ = 0;
  std::vector<std::unique_ptr<ZipfSampler>> zipf_;

  std::size_t phase_index_ = 0;
  std::uint64_t phase_work_done_ = 0;
  std::uint64_t phase_work_target_ = 0;
  std::uint64_t batches_completed_ = 0;

  double ou_state_ = 0.0;
  std::uint64_t ops_left_this_tick_ = 0;
  std::uint64_t completed_ops_ = 0;
};

}  // namespace sds::workloads
