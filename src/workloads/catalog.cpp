#include "workloads/catalog.h"

#include <algorithm>

#include "common/check.h"

namespace sds::workloads {
namespace {

PhaseSpec Phase(std::string name, double intensity, double hot_fraction,
                std::uint64_t hot_lines, std::uint64_t work,
                double work_jitter = 0.0) {
  PhaseSpec p;
  p.name = std::move(name);
  p.intensity = intensity;
  p.hot_fraction = hot_fraction;
  p.hot_lines = hot_lines;
  p.stream_lines = 200000;  // far larger than the LLC: streaming misses
  p.work = work;
  p.work_jitter = work_jitter;
  return p;
}

// ---- Machine-learning applications (HiBench) -------------------------------

SyntheticSpec BayesSpec() {
  SyntheticSpec s;
  s.name = "bayes";
  // Naive Bayes training: a stable scan-and-count loop over feature vectors.
  s.phases = {Phase("count", 630.0, 0.75, 3000, 0)};
  s.ou_tau_ticks = 300.0;
  s.ou_sigma = 0.03;
  s.tick_jitter = 0.13;
  return s;
}

SyntheticSpec SvmSpec() {
  SyntheticSpec s;
  s.name = "svm";
  // SGD-style updates: burstier than Bayes, slightly lower mean pressure.
  s.phases = {Phase("sgd", 570.0, 0.70, 2500, 0)};
  s.ou_tau_ticks = 200.0;
  s.ou_sigma = 0.045;
  s.tick_jitter = 0.17;
  return s;
}

SyntheticSpec KMeansSpec() {
  SyntheticSpec s;
  s.name = "kmeans";
  // Lloyd iterations: an assignment sweep (stream-heavy) then a centroid
  // update (hot-set heavy). Iteration lengths drift, so the alternation is
  // too irregular for the period detector — the paper treats k-means as
  // non-periodic.
  s.phases = {
      Phase("assign", 620.0, 0.745, 2600, 300000, 0.50),
      Phase("update", 590.0, 0.755, 2200, 180000, 0.50),
  };
  s.cycle = true;
  s.ou_tau_ticks = 300.0;
  s.ou_sigma = 0.035;
  s.tick_jitter = 0.16;
  return s;
}

SyntheticSpec PcaSpec() {
  SyntheticSpec s;
  s.name = "pca";
  // Covariance accumulation over fixed-size data batches: the same
  // load / compute / write cycle repeats every batch, giving the periodic
  // AccessNum pattern of Figure 2(g). Nominal period ~600 ticks (6 s).
  s.phases = {
      Phase("load", 975.0, 0.35, 2000, 118000, 0.02),
      Phase("compute", 450.0, 0.90, 2400, 102000, 0.02),
      Phase("write", 750.0, 0.55, 1800, 78000, 0.02),
  };
  s.cycle = true;
  s.ou_tau_ticks = 250.0;
  s.ou_sigma = 0.04;
  s.tick_jitter = 0.08;
  return s;
}

// ---- Database applications (Hive OLAP queries) -----------------------------

SyntheticSpec AggregationSpec() {
  SyntheticSpec s;
  s.name = "aggregation";
  // GROUP BY over a fact table: stream the table, hit the accumulator map.
  s.phases = {Phase("groupby", 750.0, 0.80, 3500, 0)};
  s.ou_tau_ticks = 280.0;
  s.ou_sigma = 0.04;
  s.tick_jitter = 0.14;
  return s;
}

SyntheticSpec JoinSpec() {
  SyntheticSpec s;
  s.name = "join";
  // Hash join: build the hash table (hot writes), then probe it while
  // streaming the outer relation. Irregular build/probe durations.
  s.phases = {
      Phase("build", 640.0, 0.76, 3200, 200000, 0.50),
      Phase("probe", 680.0, 0.72, 3200, 350000, 0.50),
  };
  s.cycle = true;
  s.ou_tau_ticks = 260.0;
  s.ou_sigma = 0.035;
  s.tick_jitter = 0.15;
  return s;
}

SyntheticSpec ScanSpec() {
  SyntheticSpec s;
  s.name = "scan";
  // SELECT * WHERE ...: stream-dominated (highest baseline miss rate), with
  // hot index pages and row buffers providing the reusable working set.
  s.phases = {Phase("scan", 1100.0, 0.45, 2600, 0)};
  s.ou_tau_ticks = 320.0;
  s.ou_sigma = 0.03;
  s.tick_jitter = 0.12;
  return s;
}

// ---- Data-intensive application --------------------------------------------

SyntheticSpec TeraSortSpec() {
  SyntheticSpec s;
  s.name = "terasort";
  // Hadoop TeraSort: map, shuffle, sort and reduce phases with sharply
  // different LLC behaviour and long, strongly jittered dwell times. The
  // cache statistics do NOT follow one distribution over time — this is the
  // application on which Figure 1 shows KStest raising false alarms.
  // Phase dwell times (~8-10 s) are kept below H_C * dW * T_PCM = 15 s so a
  // single extreme phase cannot sustain 30 consecutive EWMA violations.
  s.phases = {
      Phase("map", 825.0, 0.50, 2800, 350000, 0.40),
      Phase("shuffle", 1140.0, 0.30, 1800, 450000, 0.40),
      Phase("sort", 510.0, 0.86, 3600, 380000, 0.40),
      Phase("reduce", 750.0, 0.62, 2600, 400000, 0.40),
  };
  s.cycle = true;
  s.ou_tau_ticks = 260.0;
  s.ou_sigma = 0.05;
  s.tick_jitter = 0.10;
  return s;
}

// ---- Web search application -------------------------------------------------

SyntheticSpec PageRankSpec() {
  SyntheticSpec s;
  s.name = "pagerank";
  // Power iteration over a web graph whose in-link popularity is Zipfian
  // (Section 3.1): most rank mass hits a few hub pages.
  s.phases = {Phase("iterate", 780.0, 0.80, 12000, 0)};
  s.zipf_exponent = 0.9;
  s.ou_tau_ticks = 300.0;
  s.ou_sigma = 0.03;
  s.tick_jitter = 0.13;
  return s;
}

// ---- Deep learning application ----------------------------------------------

SyntheticSpec FaceNetSpec() {
  SyntheticSpec s;
  s.name = "facenet";
  // Mini-batch training: load a batch, forward pass, backward pass — the
  // same computation on every batch, Figure 6's periodic pattern. Nominal
  // period ~850 ticks = 17 moving-average steps, matching Figure 8's
  // computed period of ~17.
  s.phases = {
      Phase("load", 1050.0, 0.30, 1600, 158000, 0.02),
      Phase("forward", 525.0, 0.88, 2600, 159000, 0.02),
      Phase("backward", 675.0, 0.85, 2600, 150000, 0.02),
  };
  s.cycle = true;
  s.ou_tau_ticks = 250.0;
  s.ou_sigma = 0.04;
  s.tick_jitter = 0.08;
  return s;
}

SyntheticSpec BenignUtilitySpec() {
  SyntheticSpec s;
  s.name = "utility";
  // sysstat/dstat-style housekeeping: negligible, slightly noisy pressure.
  s.phases = {Phase("idle", 25.0, 0.90, 300, 0)};
  s.ou_tau_ticks = 150.0;
  s.ou_sigma = 0.05;
  s.tick_jitter = 0.20;
  return s;
}

struct CatalogEntry {
  AppInfo info;
  SyntheticSpec (*spec)();
};

const std::vector<CatalogEntry>& Entries() {
  static const std::vector<CatalogEntry> kEntries = {
      {{"bayes", "machine-learning", false, 0}, &BayesSpec},
      {{"svm", "machine-learning", false, 0}, &SvmSpec},
      {{"kmeans", "machine-learning", false, 0}, &KMeansSpec},
      {{"pca", "machine-learning", true, 600}, &PcaSpec},
      {{"aggregation", "database", false, 0}, &AggregationSpec},
      {{"join", "database", false, 0}, &JoinSpec},
      {{"scan", "database", false, 0}, &ScanSpec},
      {{"terasort", "data-intensive", false, 0}, &TeraSortSpec},
      {{"pagerank", "web-search", false, 0}, &PageRankSpec},
      {{"facenet", "deep-learning", true, 850}, &FaceNetSpec},
  };
  return kEntries;
}

const CatalogEntry* FindEntry(std::string_view name) {
  const auto& entries = Entries();
  const auto it =
      std::find_if(entries.begin(), entries.end(),
                   [&](const CatalogEntry& e) { return e.info.name == name; });
  return it == entries.end() ? nullptr : &*it;
}

}  // namespace

const std::vector<AppInfo>& AppCatalog() {
  static const std::vector<AppInfo> kInfos = [] {
    std::vector<AppInfo> infos;
    for (const auto& e : Entries()) infos.push_back(e.info);
    return infos;
  }();
  return kInfos;
}

const AppInfo& AppInfoFor(std::string_view name) {
  const CatalogEntry* e = FindEntry(name);
  SDS_CHECK(e != nullptr, "unknown application");
  return e->info;
}

bool IsKnownApp(std::string_view name) { return FindEntry(name) != nullptr; }

std::unique_ptr<vm::Workload> MakeApp(std::string_view name) {
  const CatalogEntry* e = FindEntry(name);
  SDS_CHECK(e != nullptr, "unknown application");
  return std::make_unique<SyntheticWorkload>(e->spec());
}

SyntheticSpec SpecForApp(std::string_view name) {
  const CatalogEntry* e = FindEntry(name);
  SDS_CHECK(e != nullptr, "unknown application");
  return e->spec();
}

std::unique_ptr<vm::Workload> MakeBenignUtility() {
  return std::make_unique<SyntheticWorkload>(BenignUtilitySpec());
}

}  // namespace sds::workloads
