#include "workloads/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sds::workloads {

SyntheticWorkload::SyntheticWorkload(SyntheticSpec spec)
    : spec_(std::move(spec)) {
  SDS_CHECK(!spec_.phases.empty(), "workload needs at least one phase");
  for (const PhaseSpec& p : spec_.phases) {
    SDS_CHECK(p.intensity >= 0.0, "phase intensity must be non-negative");
    SDS_CHECK(p.hot_fraction >= 0.0 && p.hot_fraction <= 1.0,
              "hot_fraction must be in [0, 1]");
    SDS_CHECK(p.hot_lines > 0, "phase needs a non-empty hot set");
    SDS_CHECK(p.stream_lines > 0, "phase needs a non-empty stream region");
  }
  SDS_CHECK(spec_.work_unit > 0, "work_unit must be positive");
}

void SyntheticWorkload::Bind(LineAddr base, Rng rng) {
  SDS_CHECK(!bound_, "workload already bound to a VM");
  bound_ = true;
  base_ = base;
  rng_ = rng;

  // Lay out disjoint hot regions for each phase, then the stream region.
  LineAddr offset = 0;
  hot_offsets_.reserve(spec_.phases.size());
  for (const PhaseSpec& p : spec_.phases) {
    hot_offsets_.push_back(offset);
    offset += p.hot_lines;
  }
  stream_offset_ = offset;

  if (spec_.zipf_exponent > 0.0) {
    for (const PhaseSpec& p : spec_.phases) {
      zipf_.push_back(std::make_unique<ZipfSampler>(
          static_cast<std::size_t>(p.hot_lines), spec_.zipf_exponent));
    }
  }

  EnterPhase(0);
}

void SyntheticWorkload::EnterPhase(std::size_t index) {
  phase_index_ = index;
  phase_work_done_ = 0;
  const PhaseSpec& p = phase();
  double target = static_cast<double>(p.work);
  if (p.work_jitter > 0.0 && p.work > 0) {
    target *= 1.0 + rng_.UniformDouble(-p.work_jitter, p.work_jitter);
  }
  phase_work_target_ = static_cast<std::uint64_t>(std::max(0.0, target));
}

void SyntheticWorkload::BeginTick(Tick /*now*/) {
  SDS_CHECK(bound_, "workload not bound");
  // Advance the OU log-intensity process by one tick.
  if (spec_.ou_tau_ticks > 0.0 && spec_.ou_sigma > 0.0) {
    const double theta = 1.0 / spec_.ou_tau_ticks;
    const double noise_sd = spec_.ou_sigma * std::sqrt(2.0 * theta);
    ou_state_ += -theta * ou_state_ + noise_sd * rng_.Normal();
  }

  double budget = phase().intensity * std::exp(ou_state_);
  if (spec_.tick_jitter > 0.0) {
    budget *= std::max(0.0, 1.0 + spec_.tick_jitter * rng_.Normal());
  }
  ops_left_this_tick_ =
      static_cast<std::uint64_t>(std::max(0.0, budget) + 0.5);
}

bool SyntheticWorkload::NextOp(sim::MemOp& op) {
  if (ops_left_this_tick_ == 0) return false;
  --ops_left_this_tick_;

  const PhaseSpec& p = phase();
  op.atomic = false;
  if (rng_.UniformDouble() < p.hot_fraction) {
    const std::uint64_t idx =
        zipf_.empty() ? rng_.UniformInt(p.hot_lines)
                      : static_cast<std::uint64_t>(
                            zipf_[phase_index_]->Sample(rng_));
    op.addr = base_ + hot_offsets_[phase_index_] + idx;
  } else {
    op.addr = base_ + stream_offset_ + (stream_cursor_ % p.stream_lines);
    ++stream_cursor_;
  }
  return true;
}

void SyntheticWorkload::OnOutcome(const sim::MemOp& /*op*/,
                                  sim::AccessOutcome outcome) {
  if (outcome == sim::AccessOutcome::kStalled) return;
  if (outcome == sim::AccessOutcome::kMiss && spec_.miss_stall_cost > 0.0) {
    // The DRAM stall eats issue budget the core would otherwise spend on
    // further accesses this tick.
    const auto stall = static_cast<std::uint64_t>(spec_.miss_stall_cost);
    ops_left_this_tick_ -= std::min(ops_left_this_tick_, stall);
  }
  ++completed_ops_;
  if (phase_work_target_ == 0) return;  // infinite phase

  if (++phase_work_done_ >= phase_work_target_) {
    std::size_t next = phase_index_ + 1;
    if (next >= spec_.phases.size()) {
      ++batches_completed_;
      if (!spec_.cycle) {
        // Stay in the final phase forever.
        EnterPhase(phase_index_);
        phase_work_target_ = 0;
        return;
      }
      next = 0;
    }
    EnterPhase(next);
  }
}

std::uint64_t SyntheticWorkload::work_completed() const {
  return completed_ops_ / spec_.work_unit;
}

}  // namespace sds::workloads
