#include "obs/snapshot.h"

#include <fstream>
#include <sstream>

#include "common/snapshot.h"

namespace sds::obs {

namespace {

constexpr std::string_view kMagic{"SDSSNAP\0", 8};
constexpr std::string_view kKindSds = "sds_detector";
constexpr std::string_view kKindKsTest = "kstest_detector";

template <typename Detector>
std::string SealDetector(std::string_view kind, const Detector& detector) {
  SnapshotWriter payload;
  detector.SaveState(payload);
  return SealSnapshot(kind, detector.ConfigFingerprint(), payload.data());
}

template <typename Detector>
SnapshotStatus RestoreDetector(std::string_view blob, std::string_view kind,
                               Detector* detector) {
  std::string payload;
  const SnapshotStatus status =
      OpenSnapshot(blob, kind, detector->ConfigFingerprint(), &payload);
  if (status != SnapshotStatus::kOk) return status;
  SnapshotReader reader(payload);
  if (!detector->RestoreState(reader) || !reader.exhausted()) {
    return SnapshotStatus::kCorrupt;
  }
  return SnapshotStatus::kOk;
}

}  // namespace

const char* SnapshotStatusName(SnapshotStatus status) {
  switch (status) {
    case SnapshotStatus::kOk:
      return "ok";
    case SnapshotStatus::kBadMagic:
      return "bad_magic";
    case SnapshotStatus::kBadVersion:
      return "bad_version";
    case SnapshotStatus::kBadKind:
      return "bad_kind";
    case SnapshotStatus::kBadFingerprint:
      return "bad_fingerprint";
    case SnapshotStatus::kBadLength:
      return "bad_length";
    case SnapshotStatus::kBadChecksum:
      return "bad_checksum";
    case SnapshotStatus::kCorrupt:
      return "corrupt";
  }
  return "?";
}

std::string SealSnapshot(std::string_view kind,
                         std::uint64_t config_fingerprint,
                         std::string_view payload) {
  std::string blob(kMagic);
  SnapshotWriter header;
  header.U32(kSnapshotVersion);
  header.Str(kind);
  header.U64(config_fingerprint);
  header.U64(Fnv1a(payload));
  header.U64(payload.size());
  blob += header.data();
  blob += payload;
  return blob;
}

SnapshotStatus OpenSnapshot(std::string_view blob, std::string_view kind,
                            std::uint64_t config_fingerprint,
                            std::string* payload) {
  if (blob.size() < kMagic.size() || blob.substr(0, kMagic.size()) != kMagic) {
    return SnapshotStatus::kBadMagic;
  }
  SnapshotReader header(blob.substr(kMagic.size()));
  const std::uint32_t version = header.U32();
  if (!header.ok()) return SnapshotStatus::kBadMagic;
  if (version != kSnapshotVersion) return SnapshotStatus::kBadVersion;
  const std::string saved_kind = header.Str();
  if (!header.ok()) return SnapshotStatus::kBadMagic;
  if (saved_kind != kind) return SnapshotStatus::kBadKind;
  const std::uint64_t fingerprint = header.U64();
  const std::uint64_t checksum = header.U64();
  const std::uint64_t length = header.U64();
  if (!header.ok()) return SnapshotStatus::kBadMagic;
  if (fingerprint != config_fingerprint) {
    return SnapshotStatus::kBadFingerprint;
  }
  // The payload is exactly what follows the header. The declared length must
  // match it byte-for-byte — an over- or under-declared length would let a
  // forged header choose which bytes the checksum covers (e.g. re-summing a
  // slice of itself), and a zero-length payload cannot be a field stream at
  // all. Both are rejected BEFORE any checksum math.
  const std::string_view body =
      blob.substr(kMagic.size() + header.consumed());
  if (length == 0 || length != body.size()) {
    return SnapshotStatus::kBadLength;
  }
  if (Fnv1a(body) != checksum) return SnapshotStatus::kBadChecksum;
  *payload = std::string(body);
  return SnapshotStatus::kOk;
}

std::string SnapshotSdsDetector(const detect::SdsDetector& detector) {
  return SealDetector(kKindSds, detector);
}

SnapshotStatus RestoreSdsDetector(std::string_view blob,
                                  detect::SdsDetector* detector) {
  return RestoreDetector(blob, kKindSds, detector);
}

std::string SnapshotKsTestDetector(const detect::KsTestDetector& detector) {
  return SealDetector(kKindKsTest, detector);
}

SnapshotStatus RestoreKsTestDetector(std::string_view blob,
                                     detect::KsTestDetector* detector) {
  return RestoreDetector(blob, kKindKsTest, detector);
}

bool WriteSnapshotFile(const std::string& path, std::string_view blob) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  return static_cast<bool>(out);
}

std::optional<std::string> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return buffer.str();
}

}  // namespace sds::obs
