// SLO rule engine with error-budget burn-rate alerting (DESIGN.md §13).
//
// Rules are declared in a one-line grammar evaluated against each completed
// rollup window:
//
//   rule      := name ':' agg '(' metric ')' op value [clause...]
//   agg       := mean | p50 | p95 | p99 | min | max | count | sum
//   op        := '<' | '<=' | '>' | '>='
//   clause    := 'budget' FLOAT      allowed violating-window fraction
//              | 'window' INT        trailing windows in the burn estimate
//              | 'warn' FLOAT        burn-rate warning threshold
//              | 'page' FLOAT        burn-rate paging threshold
//
// e.g.  "detect-latency: p95(detect.latency_ticks) <= 600 budget 0.05
//        window 12 warn 1 page 2"
//
// Semantics: a window VIOLATES a rule when any series of the rule's metric
// breaches the threshold in that window (worst-case across the fleet). The
// burn rate is the violating fraction of the trailing `window` windows
// divided by the budget — burn 1.0 means the budget is being consumed
// exactly as fast as it accrues; sustained burn > 1 exhausts it. Level
// transitions (ok -> warn -> page and back) are emitted as SloAlert events.
//
// The engine is deterministic: rollup rows arrive in the rollup's canonical
// (window, key) order and every update is pure arithmetic on them.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/rollup.h"

namespace sds::obs {

enum class SloAgg : std::uint8_t {
  kMean,
  kP50,
  kP95,
  kP99,
  kMin,
  kMax,
  kCount,
  kSum,
};

enum class SloOp : std::uint8_t { kLt, kLe, kGt, kGe };

const char* SloAggName(SloAgg agg);
const char* SloOpName(SloOp op);

struct SloRule {
  std::string name;
  std::string metric;
  SloAgg agg = SloAgg::kMean;
  SloOp op = SloOp::kLe;
  double threshold = 0.0;
  // Allowed violating-window fraction (the error budget).
  double budget = 0.01;
  // Trailing windows the burn estimate covers.
  std::int64_t burn_window = 12;
  double warn_burn = 1.0;
  double page_burn = 2.0;
};

// Parses one rule line; returns nullopt and fills *error on bad syntax.
std::optional<SloRule> ParseSloRule(std::string_view text, std::string* error);

enum class SloLevel : std::uint8_t { kOk, kWarn, kPage };

const char* SloLevelName(SloLevel level);

// One level transition of one rule.
struct SloAlert {
  std::int64_t window = 0;
  std::string rule;
  SloLevel level = SloLevel::kOk;
  double burn = 0.0;
  // Worst offending series of the transition window (0/0 when none).
  std::uint32_t host = 0;
  std::uint32_t tenant = 0;
  double observed = 0.0;
};

class SloEngine {
 public:
  // `rollup` supplies the metric-name interning; must outlive the engine.
  SloEngine(std::vector<SloRule> rules, const FleetRollup* rollup);

  // Feeds the rows of ONE completed window (all rows must share `window`).
  // Call with consecutive window indices; windows with no rows still count
  // toward the burn denominator (pass an empty span).
  void OnWindow(std::int64_t window, std::span<const RollupRow> rows);

  const std::vector<SloAlert>& alerts() const { return alerts_; }
  const std::vector<SloRule>& rules() const { return rules_; }

  struct RuleStatus {
    SloLevel level = SloLevel::kOk;
    double burn = 0.0;
    std::uint64_t windows_seen = 0;
    std::uint64_t windows_violating = 0;
  };
  const RuleStatus& status(std::size_t rule_index) const {
    return status_[rule_index];
  }

  // Rules currently at kWarn or worse.
  std::size_t burning_rules() const;

  // One JSONL line per alert (type "slo_alert") and per rule summary
  // (type "slo_status"); appended to the rollup stream for fleet_inspect.
  void WriteJsonl(std::ostream& os) const;

 private:
  struct RuleState {
    std::optional<MetricId> metric;  // resolved lazily against the rollup
    std::deque<bool> trailing;       // violation bits, newest last
    std::int64_t trailing_violations = 0;
    RuleStatus status;
  };

  std::vector<SloRule> rules_;
  const FleetRollup* rollup_;
  std::vector<RuleState> state_;
  std::vector<RuleStatus> status_;
  std::vector<SloAlert> alerts_;
};

// Aggregate value of one rollup row under a rule's aggregation.
double SloAggregate(const RollupRow& row, SloAgg agg);

// The default fleet SLO pack: detection latency, false-alarm budget,
// mitigation convergence and sampler health, phrased in the rule grammar.
// These names match the metrics eval::RunFleetObsSweep emits.
std::vector<SloRule> DefaultFleetSloRules();

}  // namespace sds::obs
