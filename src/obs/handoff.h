// Warm detector-state handoff across hosts (DESIGN.md §17): the migration
// counterpart of the restart snapshots in obs/snapshot.h.
//
// When a VM migrates (mitigation or evacuation), its per-host detector
// state — MA/EWMA windows, consecutive-violation counters, alarm edges —
// would otherwise stay behind and the destination detector would re-warm
// from scratch, opening a blind window of roughly W + h_c * dW ticks that
// an attacker can exploit by deliberately triggering mitigations. A
// handoff packs the source detector's SaveState into the PR-6 versioned
// envelope (nested inside an outer envelope carrying the source tick) and
// applies it to the destination detector.
//
// Loud cold-start contract: Apply NEVER partially restores. On any
// envelope rejection — version skew, config-fingerprint mismatch, corrupt
// payload — the destination detector is left exactly as constructed (cold)
// and the result says so, with the failing layer, so callers count and
// report every cold start instead of silently eating the blind window.
//
// Sampler interval phase: one simulator tick is one T_PCM interval, so the
// handoff carries `source_tick` and the contract is that the destination
// detector is CONSTRUCTED (its fresh sampler Start()s and re-baselines) at
// that same tick boundary — the sample cadence then continues seamlessly,
// deltas intact, exactly like the snapshot-restore contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.h"
#include "detect/kstest_detector.h"
#include "detect/sds_detector.h"
#include "obs/snapshot.h"

namespace sds::obs {

// Envelope kind strings of the outer handoff blob.
inline constexpr char kSdsHandoffKind[] = "sds-handoff";
inline constexpr char kKsHandoffKind[] = "kstest-handoff";

struct HandoffResult {
  // True only when every envelope layer verified and the destination
  // detector fully restored the source state.
  bool warm = false;
  // kOk when warm; otherwise the layer that failed (kBadFingerprint =
  // destination configured differently than the source, the expected
  // reject; anything else = corruption or version skew).
  SnapshotStatus status = SnapshotStatus::kOk;
  // Tick boundary the source detector was packed at.
  Tick source_tick = 0;
};

// Warm/cold accounting across many handoffs (the eval harness aggregates
// one of these per run).
struct HandoffStats {
  std::uint64_t attempts = 0;
  std::uint64_t warm = 0;
  std::uint64_t cold_fingerprint = 0;  // config mismatch (expected reject)
  std::uint64_t cold_other = 0;        // corruption / version skew / etc.

  void Count(const HandoffResult& r) {
    ++attempts;
    if (r.warm) {
      ++warm;
    } else if (r.status == SnapshotStatus::kBadFingerprint) {
      ++cold_fingerprint;
    } else {
      ++cold_other;
    }
  }
};

// Packs the source detector's state for a migration leaving at
// `source_tick` (pass Cluster::now() at the tick boundary the VM moves).
std::string PackSdsHandoff(const detect::SdsDetector& detector,
                           Tick source_tick);
std::string PackKsHandoff(const detect::KsTestDetector& detector,
                          Tick source_tick);

// Applies a handoff blob to the freshly-constructed destination detector.
// On any failure the detector is untouched (cold start) and the result
// names the failing layer.
HandoffResult ApplySdsHandoff(std::string_view blob,
                              detect::SdsDetector* detector);
HandoffResult ApplyKsHandoff(std::string_view blob,
                             detect::KsTestDetector* detector);

}  // namespace sds::obs
