#include "obs/handoff.h"

#include "common/snapshot.h"

namespace sds::obs {

// Both handoff envelope layers are sealed by SealSnapshot and carry the
// version pin; keep the reference here so a kSnapshotVersion bump forces a
// look at the handoff payload layout too.
static_assert(kSnapshotVersion >= 1);

namespace {

// Outer envelope payload: u64 source tick, then the inner (itself sealed)
// detector snapshot — so the config fingerprint is validated at both
// layers and the inner blob remains a plain obs/snapshot.h snapshot. Both
// envelopes carry kSnapshotVersion; a release skew rejects at the outer
// layer already.
template <typename Detector, typename PackFn>
std::string Pack(std::string_view kind, const Detector& detector,
                 Tick source_tick, PackFn pack_inner) {
  SnapshotWriter payload;
  payload.U64(static_cast<std::uint64_t>(source_tick));
  payload.Str(pack_inner(detector));
  return SealSnapshot(kind, detector.ConfigFingerprint(), payload.data());
}

template <typename Detector, typename RestoreFn>
HandoffResult Apply(std::string_view kind, std::string_view blob,
                    Detector* detector, RestoreFn restore_inner) {
  HandoffResult result;
  std::string payload;
  result.status =
      OpenSnapshot(blob, kind, detector->ConfigFingerprint(), &payload);
  if (result.status != SnapshotStatus::kOk) return result;
  SnapshotReader reader(payload);
  const auto source_tick = static_cast<Tick>(reader.U64());
  const std::string inner = reader.Str();
  if (!reader.ok() || !reader.exhausted()) {
    result.status = SnapshotStatus::kCorrupt;
    return result;
  }
  result.source_tick = source_tick;
  result.status = restore_inner(inner, detector);
  result.warm = result.status == SnapshotStatus::kOk;
  return result;
}

}  // namespace

std::string PackSdsHandoff(const detect::SdsDetector& detector,
                           Tick source_tick) {
  return Pack(kSdsHandoffKind, detector, source_tick,
              [](const detect::SdsDetector& d) {
                return SnapshotSdsDetector(d);
              });
}

std::string PackKsHandoff(const detect::KsTestDetector& detector,
                          Tick source_tick) {
  return Pack(kKsHandoffKind, detector, source_tick,
              [](const detect::KsTestDetector& d) {
                return SnapshotKsTestDetector(d);
              });
}

HandoffResult ApplySdsHandoff(std::string_view blob,
                              detect::SdsDetector* detector) {
  return Apply(kSdsHandoffKind, blob, detector,
               [](std::string_view inner, detect::SdsDetector* d) {
                 return RestoreSdsDetector(inner, d);
               });
}

HandoffResult ApplyKsHandoff(std::string_view blob,
                             detect::KsTestDetector* detector) {
  return Apply(kKsHandoffKind, blob, detector,
               [](std::string_view inner, detect::KsTestDetector* d) {
                 return RestoreKsTestDetector(inner, d);
               });
}

}  // namespace sds::obs
