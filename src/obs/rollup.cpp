#include "obs/rollup.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "telemetry/tracer.h"

namespace sds::obs {

void WindowStats::Add(double v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  sum += v;
  ++count;
  sketch.Add(v);
}

std::uint32_t ShardOf(const SeriesKey& key, std::uint32_t shard_count) {
  // FNV-1a over the three key fields; any deterministic hash works, the
  // only requirement is that every sample of one key agrees.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  };
  mix(key.host);
  mix(key.tenant);
  mix(key.metric);
  return static_cast<std::uint32_t>(h % shard_count);
}

ShardWriter::ShardWriter(const RollupConfig& config, std::uint32_t shard_index)
    : config_(config), shard_index_(shard_index) {
  SDS_CHECK(config.window_ticks > 0, "rollup window must be positive");
  SDS_CHECK(config.max_series_per_shard > 0, "series ceiling must be positive");
}

void ShardWriter::Seal(const SeriesKey& key, const SeriesState& state) {
  if (state.stats.count == 0) return;
  RollupRow row;
  row.window = state.window;
  row.key = key;
  row.count = state.stats.count;
  row.sum = state.stats.sum;
  row.min = state.stats.min;
  row.max = state.stats.max;
  row.p50 = state.stats.sketch.Quantile(0.50);
  row.p95 = state.stats.sketch.Quantile(0.95);
  row.p99 = state.stats.sketch.Quantile(0.99);
  pending_.push_back(row);
}

void ShardWriter::Ingest(const ObsSample& sample) {
  ++ingested_;
  const std::int64_t window = sample.tick / config_.window_ticks;
  if (window < sealed_before_) {
    // The barrier already merged this window; admitting the sample would
    // silently change history.
    ++dropped_late_;
    return;
  }
  auto it = series_.find(sample.key);
  if (it == series_.end()) {
    if (series_.size() >= config_.max_series_per_shard) {
      // Fixed-memory ceiling: never grow past it. The drop is accounted so
      // truncation is loud (rollup_stats line, fleet_inspect, SLO rules).
      // dropped_series_ counts DISTINCT locked-out keys; the tracking set
      // is itself capped at the ceiling, after which only the per-sample
      // counter keeps growing.
      ++dropped_samples_;
      if (rejected_keys_.size() < config_.max_series_per_shard &&
          rejected_keys_.insert(sample.key).second) {
        ++dropped_series_;
      }
      return;
    }
    it = series_.emplace(sample.key, SeriesState{}).first;
    it->second.window = window;
  }
  SeriesState& state = it->second;
  if (window != state.window) {
    if (window < state.window) {
      // Out-of-order within one series: the window already rolled past.
      ++dropped_late_;
      return;
    }
    // Roll-over: seal the completed window in place so no sample is ever
    // lost between barriers, then reuse the slot (and its sketch's fixed
    // memory) for the new window.
    Seal(it->first, state);
    state.window = window;
    state.stats = WindowStats{};
  }
  state.stats.Add(sample.value);
}

void ShardWriter::Drain(std::int64_t window, std::vector<RollupRow>* out) {
  // Seal live windows strictly before the barrier.
  for (auto& [key, state] : series_) {
    if (state.window < window) {
      Seal(key, state);
      state.window = window;
      state.stats = WindowStats{};
    }
  }
  // Emit sealed rows before the barrier; rows a roll-over sealed AHEAD of
  // the barrier stay pending until their window closes.
  std::vector<RollupRow> later;
  for (RollupRow& row : pending_) {
    if (row.window < window) {
      out->push_back(row);
    } else {
      later.push_back(row);
    }
  }
  pending_ = std::move(later);
  sealed_before_ = std::max(sealed_before_, window);
}

std::size_t ShardWriter::ApproxMemoryBytes() const {
  return series_.size() * (sizeof(SeriesKey) + sizeof(SeriesState)) +
         rejected_keys_.size() * sizeof(SeriesKey) +
         pending_.size() * sizeof(RollupRow);
}

FleetRollup::FleetRollup(const RollupConfig& config) : config_(config) {
  SDS_CHECK(config.shards > 0, "need at least one shard");
  shards_.reserve(config.shards);
  for (std::uint32_t i = 0; i < config.shards; ++i) {
    shards_.emplace_back(config, i);
  }
}

MetricId FleetRollup::RegisterMetric(const std::string& name) {
  const auto it = metric_index_.find(name);
  if (it != metric_index_.end()) return it->second;
  const auto id = static_cast<MetricId>(metric_names_.size());
  metric_names_.push_back(name);
  metric_index_.emplace(name, id);
  return id;
}

void FleetRollup::Ingest(const ObsSample& sample) {
  shards_[ShardOf(sample.key, config_.shards)].Ingest(sample);
}

std::size_t FleetRollup::BarrierMerge(Tick up_to_tick) {
  const std::int64_t window = up_to_tick / config_.window_ticks;
  std::vector<RollupRow> sealed;
  for (ShardWriter& shard : shards_) shard.Drain(window, &sealed);
  // Shards own disjoint key sets, so ordering by (window, key) produces the
  // same stream at any shard count (the bit-identical pin).
  std::sort(sealed.begin(), sealed.end(),
            [](const RollupRow& a, const RollupRow& b) {
              if (a.window != b.window) return a.window < b.window;
              return a.key < b.key;
            });
  completed_.insert(completed_.end(), sealed.begin(), sealed.end());
  return sealed.size();
}

std::uint64_t FleetRollup::ingested() const {
  std::uint64_t total = 0;
  for (const ShardWriter& s : shards_) total += s.ingested();
  return total;
}

std::uint64_t FleetRollup::dropped_late() const {
  std::uint64_t total = 0;
  for (const ShardWriter& s : shards_) total += s.dropped_late();
  return total;
}

std::uint64_t FleetRollup::dropped_series() const {
  std::uint64_t total = 0;
  for (const ShardWriter& s : shards_) total += s.dropped_series();
  return total;
}

std::uint64_t FleetRollup::dropped_samples() const {
  std::uint64_t total = 0;
  for (const ShardWriter& s : shards_) total += s.dropped_samples();
  return total;
}

std::size_t FleetRollup::live_series() const {
  std::size_t total = 0;
  for (const ShardWriter& s : shards_) total += s.live_series();
  return total;
}

std::size_t FleetRollup::ApproxMemoryBytes() const {
  std::size_t total = 0;
  for (const ShardWriter& s : shards_) total += s.ApproxMemoryBytes();
  return total;
}

void FleetRollup::WriteJsonl(std::ostream& os) const {
  for (const RollupRow& r : completed_) {
    os << "{\"type\":\"rollup\",\"window\":" << r.window
       << ",\"host\":" << r.key.host << ",\"tenant\":" << r.key.tenant
       << ",\"metric\":\"" << metric_names_[r.key.metric] << "\""
       << ",\"count\":" << r.count << ",\"sum\":" << r.sum
       << ",\"min\":" << r.min << ",\"max\":" << r.max << ",\"p50\":" << r.p50
       << ",\"p95\":" << r.p95 << ",\"p99\":" << r.p99 << "}\n";
  }
  os << "{\"type\":\"rollup_stats\",\"shards\":" << config_.shards
     << ",\"window_ticks\":" << config_.window_ticks
     << ",\"ingested\":" << ingested() << ",\"rows\":" << completed_.size()
     << ",\"live_series\":" << live_series()
     << ",\"dropped_late\":" << dropped_late()
     << ",\"dropped_series\":" << dropped_series()
     << ",\"dropped_samples\":" << dropped_samples()
     << ",\"memory_bytes\":" << ApproxMemoryBytes() << "}\n";
}

void IngestTracerStats(const telemetry::EventTracer& tracer, Tick tick,
                       std::uint32_t host, std::uint32_t tenant,
                       FleetRollup* rollup) {
  ObsSample s;
  s.tick = tick;
  s.key.host = host;
  s.key.tenant = tenant;
  s.key.metric = rollup->RegisterMetric("tracer.emitted");
  s.value = static_cast<double>(tracer.emitted());
  rollup->Ingest(s);
  s.key.metric = rollup->RegisterMetric("tracer.dropped");
  s.value = static_cast<double>(tracer.dropped());
  rollup->Ingest(s);
}

}  // namespace sds::obs
