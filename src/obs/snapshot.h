// Versioned detector-state snapshots (DESIGN.md §13): the envelope layer
// over the common/snapshot.h field stream.
//
// A sealed snapshot is:
//
//   magic "SDSSNAP\0" | u32 kSnapshotVersion | kind string | u64 config
//   fingerprint | u64 FNV-1a payload checksum | u64 payload length | payload
//
// OpenSnapshot verifies each layer in order and reports WHICH failed, so a
// monitoring service restart can distinguish "snapshot from an old release"
// (re-warm from scratch, expected) from "snapshot corrupt on disk" (alert).
// The config fingerprint binds a snapshot to the exact detector
// configuration that produced it — restoring analyzer windows into a
// detector with different W/dW/alpha/thresholds would silently produce
// garbage decisions, so it is refused up front.
//
// CONTRACT: snapshots are taken and restored at tick boundaries, into the
// SAME still-running simulated world. The PCM sampler is never serialized —
// the restored detector re-baselines a fresh sampler whose cumulative
// counters yield identical deltas from that boundary on. The round-trip
// guarantee (identical alarm sequence vs an un-restarted run) is pinned by
// tests/obs/snapshot_test.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "detect/kstest_detector.h"
#include "detect/sds_detector.h"

namespace sds::obs {

// Bump when the envelope or any SaveState field layout changes; OpenSnapshot
// rejects every other version (no migration — a stale snapshot re-warms).
inline constexpr std::uint32_t kSnapshotVersion = 1;

enum class SnapshotStatus : std::uint8_t {
  kOk,
  kBadMagic,        // not a snapshot at all
  kBadVersion,      // sealed by a different release
  kBadKind,         // snapshot of a different detector type
  kBadFingerprint,  // detector configured differently than at save time
  kBadLength,       // declared payload length is zero or does not match the
                    // bytes actually present (checked BEFORE the checksum: a
                    // forged length must never choose which bytes get summed)
  kBadChecksum,     // payload bytes corrupted
  kCorrupt,         // field stream inconsistent with the detector's state
};

const char* SnapshotStatusName(SnapshotStatus status);

// Seals a payload produced by a detector's SaveState.
std::string SealSnapshot(std::string_view kind,
                         std::uint64_t config_fingerprint,
                         std::string_view payload);

// Opens an envelope: on kOk, *payload holds the field stream.
SnapshotStatus OpenSnapshot(std::string_view blob, std::string_view kind,
                            std::uint64_t config_fingerprint,
                            std::string* payload);

// Detector wrappers.
std::string SnapshotSdsDetector(const detect::SdsDetector& detector);
SnapshotStatus RestoreSdsDetector(std::string_view blob,
                                  detect::SdsDetector* detector);
std::string SnapshotKsTestDetector(const detect::KsTestDetector& detector);
SnapshotStatus RestoreKsTestDetector(std::string_view blob,
                                     detect::KsTestDetector* detector);

// File round trip (binary, whole-blob).
bool WriteSnapshotFile(const std::string& path, std::string_view blob);
std::optional<std::string> ReadSnapshotFile(const std::string& path);

}  // namespace sds::obs
