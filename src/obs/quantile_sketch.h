// Deterministic streaming quantile sketch for fleet rollups (DESIGN.md §13).
//
// A DDSketch-style fixed layout: bucket i >= 1 counts values in
// [gamma^(i-1), gamma^i) with gamma = 1.08, bucket 0 counts values in
// [0, 1) (fleet metrics are non-negative; negatives and NaN clamp to
// bucket 0). Counts are integers, so Add and Merge are commutative and
// associative — two sketches fed the same multiset of values in ANY order,
// across ANY shard split, hold bit-identical state. That property is the
// foundation of the sharded-merge pin in tests/obs/rollup_test.
//
// Accuracy: reporting the geometric midpoint of the owning bucket bounds
// the relative error of any quantile of values >= 1 by sqrt(gamma) - 1
// (about 3.9%); kRelativeErrorBound below is the tested guarantee.
//
// Memory is fixed at construction: kBucketCount 64-bit counters (~3 KB),
// independent of how many values stream through — the per-series memory
// ceiling measured by bench_fleetobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sds::obs {

class QuantileSketch {
 public:
  // Relative bucket width. gamma^(kBucketCount-1) ~ 2e12 covers every
  // statistic the fleet emits (tick counts, latencies in ns, cache deltas).
  static constexpr double kGamma = 1.08;
  static constexpr std::size_t kBucketCount = 369;  // bucket 0 + 368 log buckets
  // Guaranteed bound on |estimate - exact| / exact for values >= 1.
  static constexpr double kRelativeErrorBound = 0.04;

  void Add(double v);
  void Merge(const QuantileSketch& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Quantile estimate for q in [0, 1]; 0 when empty. q = 0 / 1 report the
  // representative of the lowest / highest non-empty bucket.
  double Quantile(double q) const;

  // Fixed memory footprint of one sketch, for the rollup memory ceiling.
  static constexpr std::size_t MemoryBytes() {
    return kBucketCount * sizeof(std::uint64_t) + sizeof(std::uint64_t);
  }

  // Bit-identical state comparison (used by the determinism tests).
  bool IdenticalTo(const QuantileSketch& other) const;

 private:
  static std::size_t BucketOf(double v);
  static double Representative(std::size_t bucket);

  std::uint64_t counts_[kBucketCount] = {};
  std::uint64_t count_ = 0;
};

}  // namespace sds::obs
