// Sharded fleet time-series aggregator with deterministic barrier merges
// (DESIGN.md §13).
//
// Samples are keyed by (host, tenant, metric). The stream is split across
// shards BY KEY — ShardOf hashes the key, so every sample of one series
// lands on the same shard regardless of shard count. Each shard accumulates
// fixed-memory window statistics (count/sum/min/max plus a QuantileSketch)
// per live series; at a window barrier the shards' sealed windows are merged
// into one stream ordered by (window, key).
//
// DETERMINISM: because shards own disjoint key sets and per-key samples
// arrive in stream order, the floating-point accumulation order of every
// series is identical at ANY shard count. The merged rollup stream is pinned
// bit-identical to a single-shard reference by tests/obs/rollup_test — this
// is what lets bench_fleetobs scale ingest across threads without changing a
// single reported number.
//
// MEMORY CEILING: each shard tracks at most max_series_per_shard live
// series; a sample for a new key beyond the ceiling is dropped and counted
// (dropped_samples / dropped_series). When the ceiling binds, which keys are
// admitted depends on the shard split — the bit-identity guarantee holds for
// fleets within the ceiling, and the accounting makes any truncation loud.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"
#include "obs/quantile_sketch.h"

namespace sds::telemetry {
class EventTracer;
}  // namespace sds::telemetry

namespace sds::obs {

// Interned metric name; assigned by FleetRollup::RegisterMetric.
using MetricId = std::uint32_t;

struct SeriesKey {
  std::uint32_t host = 0;
  std::uint32_t tenant = 0;
  MetricId metric = 0;

  friend bool operator==(const SeriesKey&, const SeriesKey&) = default;
  friend auto operator<=>(const SeriesKey&, const SeriesKey&) = default;
};

struct ObsSample {
  Tick tick = 0;
  SeriesKey key;
  double value = 0.0;
};

// Fixed-memory statistics of one series over one window.
struct WindowStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  QuantileSketch sketch;

  void Add(double v);
  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

// One sealed (window, series) cell of the rollup stream. Quantiles are
// evaluated at seal time so completed windows are compact PODs; the sketch
// memory stays bounded by LIVE series only.
struct RollupRow {
  std::int64_t window = 0;  // window index: [window*W, (window+1)*W) ticks
  SeriesKey key;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

struct RollupConfig {
  // Window width in ticks. Samples with tick t belong to window t / W.
  Tick window_ticks = 100;
  std::uint32_t shards = 1;
  // Live-series ceiling per shard (fixed-memory guarantee).
  std::size_t max_series_per_shard = 4096;
};

// Per-shard writer. NOT thread-safe internally; safe to use from one thread
// per shard while other shards ingest concurrently (no shared state).
class ShardWriter {
 public:
  ShardWriter(const RollupConfig& config, std::uint32_t shard_index);

  // Ingests one sample whose key this shard owns. Samples older than the
  // last sealed window are dropped as late (the window already merged).
  void Ingest(const ObsSample& sample);

  // Seals every live window strictly before `window` and appends the rows
  // to `out` (unordered across shards; FleetRollup sorts at the barrier).
  void Drain(std::int64_t window, std::vector<RollupRow>* out);

  std::uint64_t ingested() const { return ingested_; }
  std::uint64_t dropped_late() const { return dropped_late_; }
  // Distinct keys locked out by the ceiling (exact up to max_series_per_shard
  // distinct rejected keys, a lower bound beyond — the tracking set is
  // bounded too).
  std::uint64_t dropped_series() const { return dropped_series_; }
  std::uint64_t dropped_samples() const { return dropped_samples_; }
  std::size_t live_series() const { return series_.size(); }
  std::size_t ApproxMemoryBytes() const;

 private:
  struct SeriesState {
    std::int64_t window = 0;
    WindowStats stats;
  };

  void Seal(const SeriesKey& key, const SeriesState& state);

  // The whole writer is shard-owned: BarrierMerge workers each drive exactly
  // one ShardWriter, so no field here may ever need a lock — sdslint's
  // conc-shard-owned rule rejects any future method that acquires one.
  RollupConfig config_ SDS_SHARD_OWNED;
  std::uint32_t shard_index_ SDS_SHARD_OWNED;
  // Ordered so Drain emits deterministically regardless of arrival order.
  std::map<SeriesKey, SeriesState> series_ SDS_SHARD_OWNED;
  // Distinct keys rejected at the ceiling, capped at the ceiling itself.
  std::set<SeriesKey> rejected_keys_ SDS_SHARD_OWNED;
  // Rows sealed by in-place roll-over, awaiting the next barrier.
  std::vector<RollupRow> pending_ SDS_SHARD_OWNED;
  std::int64_t sealed_before_ SDS_SHARD_OWNED = 0;
  std::uint64_t ingested_ SDS_SHARD_OWNED = 0;
  std::uint64_t dropped_late_ SDS_SHARD_OWNED = 0;
  std::uint64_t dropped_series_ SDS_SHARD_OWNED = 0;
  std::uint64_t dropped_samples_ SDS_SHARD_OWNED = 0;
};

// Shard assignment: pure function of the key, independent of shard count
// only in the sense that all samples of one key agree — splitting the same
// stream across more shards re-partitions keys but never splits a series.
std::uint32_t ShardOf(const SeriesKey& key, std::uint32_t shard_count);

class FleetRollup {
 public:
  explicit FleetRollup(const RollupConfig& config);

  // Interns a metric name (idempotent). Registration order defines the
  // MetricId order, so callers must register deterministically.
  MetricId RegisterMetric(const std::string& name);
  const std::vector<std::string>& metric_names() const {
    return metric_names_;
  }

  std::uint32_t shard_count() const { return config_.shards; }
  ShardWriter& shard(std::uint32_t index) { return shards_[index]; }
  const RollupConfig& config() const { return config_; }

  // Convenience single-threaded ingest: routes to the owning shard.
  void Ingest(const ObsSample& sample);

  // Barrier: seals every window strictly before tick / window_ticks across
  // all shards, merges the sealed rows ordered by (window, key), appends
  // them to completed() and returns the number of rows sealed.
  std::size_t BarrierMerge(Tick up_to_tick);

  const std::vector<RollupRow>& completed() const { return completed_; }

  // Fleet-wide accounting (sums over shards).
  std::uint64_t ingested() const;
  std::uint64_t dropped_late() const;
  std::uint64_t dropped_series() const;
  std::uint64_t dropped_samples() const;
  std::size_t live_series() const;
  std::size_t ApproxMemoryBytes() const;

  // One JSONL line per completed rollup row (type "rollup"), plus a trailing
  // accounting line (type "rollup_stats"); the stream fleet_inspect reads.
  void WriteJsonl(std::ostream& os) const;

 private:
  RollupConfig config_;
  std::vector<ShardWriter> shards_;
  std::vector<std::string> metric_names_;
  std::map<std::string, MetricId> metric_index_;
  std::vector<RollupRow> completed_;
};

// Tracer-ingest adapter: feeds the telemetry ring's saturation accounting
// (emitted / dropped totals) into the rollup as per-host samples, so ring
// overflow shows up in fleet rollups and SLO rules, not only in
// trace_inspect. Registers metrics "tracer.emitted" and "tracer.dropped".
void IngestTracerStats(const telemetry::EventTracer& tracer, Tick tick,
                       std::uint32_t host, std::uint32_t tenant,
                       FleetRollup* rollup);

}  // namespace sds::obs
