#include "obs/quantile_sketch.h"

#include <cmath>
#include <cstring>

namespace sds::obs {

namespace {

// ln(kGamma), the log-bucket width. Evaluated once; every index computation
// uses the same constant so bucket assignment is a pure function of the
// value.
const double kLogGamma = std::log(QuantileSketch::kGamma);

}  // namespace

std::size_t QuantileSketch::BucketOf(double v) {
  if (!(v >= 1.0)) return 0;  // [0,1), negatives and NaN
  const auto i =
      static_cast<std::size_t>(std::floor(std::log(v) / kLogGamma)) + 1;
  return i < kBucketCount ? i : kBucketCount - 1;
}

double QuantileSketch::Representative(std::size_t bucket) {
  if (bucket == 0) return 0.5;
  // Geometric midpoint of [gamma^(b-1), gamma^b).
  return std::pow(kGamma, static_cast<double>(bucket) - 0.5);
}

void QuantileSketch::Add(double v) {
  ++counts_[BucketOf(v)];
  ++count_;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile in the sorted multiset (nearest-rank with the
  // standard q*(n-1) convention, computed in integers for determinism).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[i];
    if (cumulative > rank) return Representative(i);
  }
  // Unreachable while count_ equals the bucket sum; defensive fallback.
  return Representative(kBucketCount - 1);
}

bool QuantileSketch::IdenticalTo(const QuantileSketch& other) const {
  return count_ == other.count_ &&
         std::memcmp(counts_, other.counts_, sizeof(counts_)) == 0;
}

}  // namespace sds::obs
