#include "obs/slo.h"

#include <charconv>
#include <ostream>

#include "common/check.h"

namespace sds::obs {

namespace {

std::vector<std::string_view> SplitTokens(std::string_view text) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) tokens.push_back(text.substr(start, i - start));
  }
  return tokens;
}

bool ParseDouble(std::string_view token, double* out) {
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return res.ec == std::errc() && res.ptr == token.data() + token.size();
}

bool ParseInt(std::string_view token, std::int64_t* out) {
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return res.ec == std::errc() && res.ptr == token.data() + token.size();
}

bool Compare(double value, SloOp op, double threshold) {
  switch (op) {
    case SloOp::kLt:
      return value < threshold;
    case SloOp::kLe:
      return value <= threshold;
    case SloOp::kGt:
      return value > threshold;
    case SloOp::kGe:
      return value >= threshold;
  }
  return false;
}

}  // namespace

const char* SloAggName(SloAgg agg) {
  switch (agg) {
    case SloAgg::kMean:
      return "mean";
    case SloAgg::kP50:
      return "p50";
    case SloAgg::kP95:
      return "p95";
    case SloAgg::kP99:
      return "p99";
    case SloAgg::kMin:
      return "min";
    case SloAgg::kMax:
      return "max";
    case SloAgg::kCount:
      return "count";
    case SloAgg::kSum:
      return "sum";
  }
  return "?";
}

const char* SloOpName(SloOp op) {
  switch (op) {
    case SloOp::kLt:
      return "<";
    case SloOp::kLe:
      return "<=";
    case SloOp::kGt:
      return ">";
    case SloOp::kGe:
      return ">=";
  }
  return "?";
}

const char* SloLevelName(SloLevel level) {
  switch (level) {
    case SloLevel::kOk:
      return "ok";
    case SloLevel::kWarn:
      return "warn";
    case SloLevel::kPage:
      return "page";
  }
  return "?";
}

double SloAggregate(const RollupRow& row, SloAgg agg) {
  switch (agg) {
    case SloAgg::kMean:
      return row.mean();
    case SloAgg::kP50:
      return row.p50;
    case SloAgg::kP95:
      return row.p95;
    case SloAgg::kP99:
      return row.p99;
    case SloAgg::kMin:
      return row.min;
    case SloAgg::kMax:
      return row.max;
    case SloAgg::kCount:
      return static_cast<double>(row.count);
    case SloAgg::kSum:
      return row.sum;
  }
  return 0.0;
}

std::optional<SloRule> ParseSloRule(std::string_view text, std::string* error) {
  const auto fail = [error](const char* msg) {
    if (error) *error = msg;
    return std::optional<SloRule>();
  };
  const std::vector<std::string_view> tokens = SplitTokens(text);
  if (tokens.size() < 4) return fail("rule needs: name: agg(metric) op value");

  SloRule rule;
  std::string_view name = tokens[0];
  if (name.empty() || name.back() != ':') return fail("name must end with ':'");
  name.remove_suffix(1);
  if (name.empty()) return fail("empty rule name");
  rule.name = std::string(name);

  std::string_view call = tokens[1];
  const std::size_t open = call.find('(');
  if (open == std::string_view::npos || call.back() != ')') {
    return fail("expected agg(metric)");
  }
  const std::string_view agg = call.substr(0, open);
  const std::string_view metric = call.substr(open + 1, call.size() - open - 2);
  if (metric.empty()) return fail("empty metric name");
  rule.metric = std::string(metric);
  if (agg == "mean") {
    rule.agg = SloAgg::kMean;
  } else if (agg == "p50") {
    rule.agg = SloAgg::kP50;
  } else if (agg == "p95") {
    rule.agg = SloAgg::kP95;
  } else if (agg == "p99") {
    rule.agg = SloAgg::kP99;
  } else if (agg == "min") {
    rule.agg = SloAgg::kMin;
  } else if (agg == "max") {
    rule.agg = SloAgg::kMax;
  } else if (agg == "count") {
    rule.agg = SloAgg::kCount;
  } else if (agg == "sum") {
    rule.agg = SloAgg::kSum;
  } else {
    return fail("unknown aggregation");
  }

  const std::string_view op = tokens[2];
  if (op == "<") {
    rule.op = SloOp::kLt;
  } else if (op == "<=") {
    rule.op = SloOp::kLe;
  } else if (op == ">") {
    rule.op = SloOp::kGt;
  } else if (op == ">=") {
    rule.op = SloOp::kGe;
  } else {
    return fail("unknown comparison operator");
  }
  if (!ParseDouble(tokens[3], &rule.threshold)) return fail("bad threshold");

  std::size_t i = 4;
  while (i < tokens.size()) {
    if (i + 1 >= tokens.size()) return fail("clause missing its value");
    const std::string_view clause = tokens[i];
    const std::string_view value = tokens[i + 1];
    if (clause == "budget") {
      if (!ParseDouble(value, &rule.budget) || rule.budget <= 0.0 ||
          rule.budget > 1.0) {
        return fail("budget must be in (0, 1]");
      }
    } else if (clause == "window") {
      if (!ParseInt(value, &rule.burn_window) || rule.burn_window < 1) {
        return fail("window must be a positive integer");
      }
    } else if (clause == "warn") {
      if (!ParseDouble(value, &rule.warn_burn) || rule.warn_burn <= 0.0) {
        return fail("warn burn must be positive");
      }
    } else if (clause == "page") {
      if (!ParseDouble(value, &rule.page_burn) || rule.page_burn <= 0.0) {
        return fail("page burn must be positive");
      }
    } else {
      return fail("unknown clause");
    }
    i += 2;
  }
  if (rule.page_burn < rule.warn_burn) {
    return fail("page burn must be >= warn burn");
  }
  return rule;
}

SloEngine::SloEngine(std::vector<SloRule> rules, const FleetRollup* rollup)
    : rules_(std::move(rules)), rollup_(rollup) {
  SDS_CHECK(rollup != nullptr, "SloEngine needs a rollup for metric names");
  state_.resize(rules_.size());
  status_.resize(rules_.size());
}

void SloEngine::OnWindow(std::int64_t window,
                         std::span<const RollupRow> rows) {
  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    const SloRule& rule = rules_[ri];
    RuleState& st = state_[ri];
    if (!st.metric.has_value()) {
      const std::vector<std::string>& names = rollup_->metric_names();
      for (std::size_t m = 0; m < names.size(); ++m) {
        if (names[m] == rule.metric) {
          st.metric = static_cast<MetricId>(m);
          break;
        }
      }
    }

    bool violated = false;
    std::uint32_t worst_host = 0;
    std::uint32_t worst_tenant = 0;
    double worst_value = 0.0;
    if (st.metric.has_value()) {
      for (const RollupRow& row : rows) {
        if (row.key.metric != *st.metric) continue;
        const double v = SloAggregate(row, rule.agg);
        if (Compare(v, rule.op, rule.threshold)) continue;  // within SLO
        // Breach. The "worst" offender is the one furthest past the
        // threshold in the failing direction.
        const bool upper_bound =
            rule.op == SloOp::kLt || rule.op == SloOp::kLe;
        const bool worse =
            !violated || (upper_bound ? v > worst_value : v < worst_value);
        if (worse) {
          worst_host = row.key.host;
          worst_tenant = row.key.tenant;
          worst_value = v;
        }
        violated = true;
      }
    }

    st.trailing.push_back(violated);
    if (violated) ++st.trailing_violations;
    while (static_cast<std::int64_t>(st.trailing.size()) > rule.burn_window) {
      if (st.trailing.front()) --st.trailing_violations;
      st.trailing.pop_front();
    }
    ++st.status.windows_seen;
    if (violated) ++st.status.windows_violating;
    const double rate = static_cast<double>(st.trailing_violations) /
                        static_cast<double>(st.trailing.size());
    st.status.burn = rate / rule.budget;

    SloLevel level = SloLevel::kOk;
    if (st.status.burn >= rule.page_burn) {
      level = SloLevel::kPage;
    } else if (st.status.burn >= rule.warn_burn) {
      level = SloLevel::kWarn;
    }
    if (level != st.status.level) {
      SloAlert alert;
      alert.window = window;
      alert.rule = rule.name;
      alert.level = level;
      alert.burn = st.status.burn;
      alert.host = worst_host;
      alert.tenant = worst_tenant;
      alert.observed = worst_value;
      alerts_.push_back(alert);
      st.status.level = level;
    }
    status_[ri] = st.status;
  }
}

std::size_t SloEngine::burning_rules() const {
  std::size_t n = 0;
  for (const RuleStatus& s : status_) {
    if (s.level != SloLevel::kOk) ++n;
  }
  return n;
}

void SloEngine::WriteJsonl(std::ostream& os) const {
  for (const SloAlert& a : alerts_) {
    os << "{\"type\":\"slo_alert\",\"window\":" << a.window << ",\"rule\":\""
       << a.rule << "\",\"level\":\"" << SloLevelName(a.level)
       << "\",\"burn\":" << a.burn << ",\"host\":" << a.host
       << ",\"tenant\":" << a.tenant << ",\"observed\":" << a.observed
       << "}\n";
  }
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    const RuleStatus& st = status_[i];
    os << "{\"type\":\"slo_status\",\"rule\":\"" << rule.name
       << "\",\"expr\":\"" << SloAggName(rule.agg) << "(" << rule.metric
       << ") " << SloOpName(rule.op) << " " << rule.threshold
       << "\",\"level\":\"" << SloLevelName(st.level)
       << "\",\"burn\":" << st.burn << ",\"windows\":" << st.windows_seen
       << ",\"violating\":" << st.windows_violating << "}\n";
  }
}

std::vector<SloRule> DefaultFleetSloRules() {
  const char* kRules[] = {
      // Detection latency: alarms must trigger within 600 ticks (6 s of
      // virtual time) at the 95th percentile.
      "detect-latency: p95(detect.latency_ticks) <= 600 budget 0.05 "
      "window 12 warn 1 page 2",
      // False-alarm budget: any clean-window alarm consumes budget.
      "false-alarm-budget: max(detect.false_alarm) <= 0 budget 0.02 "
      "window 24 warn 1 page 3",
      // Mitigation convergence: throttle escalation settles within 400
      // ticks at the tail.
      "mitigation-convergence: p99(mitigation.converge_ticks) <= 400 "
      "budget 0.05 window 12 warn 1 page 2",
      // Sampler health: at least 90% of ticks deliver a usable sample.
      "sampler-health: mean(sampler.delivery_ratio) >= 0.9 budget 0.1 "
      "window 12 warn 1 page 2",
  };
  std::vector<SloRule> rules;
  for (const char* text : kRules) {
    std::string error;
    const auto rule = ParseSloRule(text, &error);
    SDS_CHECK(rule.has_value(), "default SLO rule failed to parse");
    rules.push_back(*rule);
  }
  return rules;
}

}  // namespace sds::obs
