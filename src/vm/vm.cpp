#include "vm/vm.h"

#include "common/check.h"

namespace sds::vm {

VirtualMachine::VirtualMachine(OwnerId id, std::string name,
                               std::unique_ptr<Workload> workload, Rng rng)
    : id_(id),
      name_(std::move(name)),
      workload_(std::move(workload)),
      address_base_(static_cast<LineAddr>(id) << 36) {
  SDS_CHECK(workload_ != nullptr, "VM needs a workload");
  SDS_CHECK(id != kHypervisorOwner, "owner 0 is reserved for the hypervisor");
  workload_->Bind(address_base_, rng);
}

}  // namespace sds::vm
