#include "vm/hypervisor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace sds::vm {

namespace tel = sds::telemetry;

Hypervisor::Hypervisor(sim::Machine& machine, const HypervisorConfig& config,
                       Rng rng)
    : machine_(machine), config_(config), rng_(rng) {
  SDS_CHECK(config.schedule_chunk > 0, "schedule chunk must be positive");
  SDS_CHECK(config.monitor_load_fraction >= 0.0 &&
                config.monitor_load_fraction < 1.0,
            "monitor load fraction must be in [0, 1)");
  if (tel::Telemetry* t = machine_.telemetry()) {
    prof_ = &t->profiler();
    span_tick_ = prof_->RegisterSpan("vm.tick");
    span_schedule_ = prof_->RegisterSpan("vm.schedule");
    tel::MetricsRegistry& m = t->metrics();
    t_scheduled_ops_ = m.GetCounter("vm.scheduled_ops");
    t_monitor_dropped_ = m.GetCounter("vm.monitor_dropped_ops");
    t_throttle_windows_ = m.GetCounter("vm.throttle_windows");
    t_runnable_vms_ = m.GetGauge("vm.runnable_vms");
  }
}

void Hypervisor::TraceEventVm(const char* name, std::int64_t owner,
                              const char* key, double value) {
  tel::Telemetry* t = machine_.telemetry();
  if (!t || !t->tracer().enabled(tel::Layer::kVm)) return;
  tel::TraceEvent e =
      tel::MakeEvent(machine_.now(), tel::Layer::kVm, name, owner);
  if (key) e.Num(key, value);
  t->tracer().Emit(e);
}

OwnerId Hypervisor::CreateVm(std::string name,
                             std::unique_ptr<Workload> workload) {
  const auto id = static_cast<OwnerId>(vms_.size() + 1);
  SDS_CHECK(id < machine_.config().max_owners,
            "machine counter file has no room for another VM");
  vms_.push_back(std::make_unique<VirtualMachine>(
      id, std::move(name), std::move(workload), rng_.Fork()));
  vm_throttle_remaining_.push_back(0);
  TraceEventVm("vm_created", id, nullptr, 0.0);
  return id;
}

void Hypervisor::ThrottleVm(OwnerId id, Tick duration) {
  SDS_CHECK(id >= 1 && id <= vms_.size(), "no such VM");
  SDS_CHECK(duration > 0, "throttle duration must be positive");
  vm_throttle_remaining_[id - 1] = duration;
  if (t_throttle_windows_) t_throttle_windows_->Add();
  TraceEventVm("throttle_vm", id, "duration", static_cast<double>(duration));
}

bool Hypervisor::vm_throttled(OwnerId id) const {
  SDS_CHECK(id >= 1 && id <= vms_.size(), "no such VM");
  return vm_throttle_remaining_[id - 1] > 0;
}

VirtualMachine& Hypervisor::vm(OwnerId id) {
  SDS_CHECK(id >= 1 && id <= vms_.size(), "no such VM");
  return *vms_[id - 1];
}

const VirtualMachine& Hypervisor::vm(OwnerId id) const {
  SDS_CHECK(id >= 1 && id <= vms_.size(), "no such VM");
  return *vms_[id - 1];
}

void Hypervisor::ThrottleAllExcept(OwnerId protected_vm, Tick duration) {
  SDS_CHECK(duration > 0, "throttle duration must be positive");
  throttle_protected_ = protected_vm;
  throttle_remaining_ = duration;
  if (t_throttle_windows_) t_throttle_windows_->Add();
  TraceEventVm("throttle_all_except", protected_vm, "duration",
               static_cast<double>(duration));
}

void Hypervisor::AttachMonitor() {
  ++active_monitors_;
  TraceEventVm("monitor_attach", -1, "active",
               static_cast<double>(active_monitors_));
}

void Hypervisor::DetachMonitor() {
  SDS_CHECK(active_monitors_ > 0, "no monitor attached");
  --active_monitors_;
  TraceEventVm("monitor_detach", -1, "active",
               static_cast<double>(active_monitors_));
}

void Hypervisor::RunTick() {
  SDS_PROFILE_SPAN(prof_, span_tick_);
  machine_.BeginTick();

  const bool throttling = throttle_remaining_ > 0;
  if (throttling) --throttle_remaining_;

  const double drop_probability =
      1.0 - std::pow(1.0 - config_.monitor_load_fraction,
                     static_cast<double>(active_monitors_));

  // Collect the VMs that may execute this tick.
  struct Slot {
    VirtualMachine* vm;
    bool exhausted = false;  // no more ops this tick (or stalled on the bus)
  };
  std::vector<Slot> slots;
  slots.reserve(vms_.size());
  for (const auto& v : vms_) {
    Tick& per_vm = vm_throttle_remaining_[v->id() - 1];
    const bool vm_throttled_now = per_vm > 0;
    if (vm_throttled_now) --per_vm;
    if (!v->runnable()) continue;
    if (throttling && v->id() != throttle_protected_) continue;
    if (vm_throttled_now) continue;
    v->workload().BeginTick(machine_.now());
    slots.push_back(Slot{v.get()});
  }
  if (t_runnable_vms_) {
    t_runnable_vms_->Set(static_cast<double>(slots.size()));
  }
  if (slots.empty()) return;

  std::uint64_t ops_this_tick = 0;
  std::uint64_t dropped_this_tick = 0;

  // Round-robin service in chunks, starting from a rotating offset.
  SDS_PROFILE_SPAN(prof_, span_schedule_);
  const std::size_t start =
      static_cast<std::size_t>(machine_.now()) % slots.size();
  std::size_t remaining = slots.size();
  while (remaining > 0) {
    remaining = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[(start + i) % slots.size()];
      if (slot.exhausted) continue;
      Workload& w = slot.vm->workload();
      const OwnerId owner = slot.vm->id();
      for (std::uint32_t c = 0; c < config_.schedule_chunk; ++c) {
        sim::MemOp op;
        if (!w.NextOp(op)) {
          slot.exhausted = true;
          break;
        }
        ++ops_this_tick;
        if (drop_probability > 0.0 && rng_.Bernoulli(drop_probability)) {
          // Cycles stolen by the monitoring agent: the op is deferred and
          // does not execute this tick.
          ++monitor_dropped_ops_;
          ++dropped_this_tick;
          w.OnOutcome(op, sim::AccessOutcome::kStalled);
          continue;
        }
        const sim::AccessOutcome outcome =
            op.atomic ? machine_.AtomicAccess(owner, op.addr)
                      : machine_.Access(owner, op.addr);
        w.OnOutcome(op, outcome);
        if (outcome == sim::AccessOutcome::kStalled) {
          slot.exhausted = true;
          break;
        }
      }
      if (!slot.exhausted) ++remaining;
    }
  }

  if (t_scheduled_ops_) {
    t_scheduled_ops_->Add(ops_this_tick);
    t_monitor_dropped_->Add(dropped_this_tick);
  }
}

}  // namespace sds::vm
