// A virtual machine: an owner id, a private line-address range, a scheduling
// state and the workload program it runs.
#pragma once

#include <memory>
#include <string>

#include "common/types.h"
#include "vm/workload.h"

namespace sds::vm {

enum class VmState : std::uint8_t {
  kRunning,
  // Execution throttling: the hypervisor pauses the VM (used by the KStest
  // baseline while collecting reference samples of the protected VM).
  kThrottled,
  kStopped,
};

class VirtualMachine {
 public:
  // Each VM owns a disjoint 2^36-line address range derived from its id, so
  // distinct VMs can never share cache lines (hypervisors isolate memory
  // pages; only the cache SETS are contended, as in the paper's threat model).
  VirtualMachine(OwnerId id, std::string name,
                 std::unique_ptr<Workload> workload, Rng rng);

  OwnerId id() const { return id_; }
  const std::string& name() const { return name_; }
  VmState state() const { return state_; }
  void set_state(VmState s) { state_ = s; }
  bool runnable() const { return state_ == VmState::kRunning; }

  Workload& workload() { return *workload_; }
  const Workload& workload() const { return *workload_; }

  LineAddr address_base() const { return address_base_; }

 private:
  OwnerId id_;
  std::string name_;
  std::unique_ptr<Workload> workload_;
  LineAddr address_base_;
  VmState state_ = VmState::kRunning;
};

}  // namespace sds::vm
