// The interface between the hypervisor's scheduler and whatever program runs
// inside a VM — an application model, a benign utility, or an attack program.
//
// Execution model: each tick the hypervisor asks every runnable VM's workload
// to plan its operations (pull-style, one op at a time) and services them
// through the shared machine, interleaving VMs round-robin. Completed and
// stalled outcomes are reported back so the workload can track its own
// progress — this is how prolonged periods and stretched execution times
// emerge for contended applications.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/rng.h"
#include "common/types.h"
#include "sim/machine.h"
#include "sim/mem_op.h"

namespace sds::vm {

class Workload {
 public:
  virtual ~Workload() = default;

  // Called once when the workload is attached to a VM; `base` is the start
  // of the VM's private line-address range and `rng` its private stream.
  virtual void Bind(LineAddr base, Rng rng) = 0;

  // Called at the start of every tick the VM is runnable.
  virtual void BeginTick(Tick now) = 0;

  // Produces the next desired memory operation for this tick. Returns false
  // when the workload has no more work this tick.
  virtual bool NextOp(sim::MemOp& op) = 0;

  // Reports the outcome of the most recently produced op. kStalled means the
  // op did NOT execute (bus exhausted); the workload must not count it as
  // progress.
  virtual void OnOutcome(const sim::MemOp& op, sim::AccessOutcome outcome) = 0;

  // Total work units completed since Bind (used by fixed-work overhead
  // experiments; for batch applications this advances once per batch item).
  virtual std::uint64_t work_completed() const = 0;

  virtual std::string_view name() const = 0;
};

}  // namespace sds::vm
