// The hypervisor: creates VMs on a machine, schedules their memory operations
// each tick, and provides the two control facilities the detection systems
// rely on:
//
//   * execution throttling — pausing every VM except a protected one, which
//     is how the KStest baseline [49] collects its reference samples;
//   * a monitoring-load model — while a PCM-style monitor is attached, a
//     small fraction of every VM's operations is deferred, modelling the CPU
//     time the monitoring agent steals (reading MSRs across 28 logical cores
//     costs on the order of 100 us of every 10 ms sampling interval).
//
// Scheduling: each tick, runnable VMs are served round-robin in chunks of a
// few operations, starting from a rotating offset for long-run fairness. A VM
// whose operation stalls on the exhausted bus is done for the tick. This
// interleaving is what converts attacker bus pressure into victim AccessNum
// drops, and attacker evictions into victim MissNum spikes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/machine.h"
#include "vm/vm.h"

namespace sds::telemetry {
class Counter;
class Gauge;
class SpanProfiler;
}  // namespace sds::telemetry

namespace sds::vm {

struct HypervisorConfig {
  // Operations served per VM per round-robin round.
  std::uint32_t schedule_chunk = 4;
  // Fraction of each VM's operations deferred per active monitoring agent
  // (see the monitoring-load model above).
  double monitor_load_fraction = 0.012;
};

class Hypervisor {
 public:
  Hypervisor(sim::Machine& machine, const HypervisorConfig& config, Rng rng);

  // Creates a VM running `workload`; returns its owner id. Owner ids are
  // assigned sequentially starting at 1 (0 is the hypervisor itself).
  OwnerId CreateVm(std::string name, std::unique_ptr<Workload> workload);

  VirtualMachine& vm(OwnerId id);
  const VirtualMachine& vm(OwnerId id) const;
  std::size_t vm_count() const { return vms_.size(); }

  // Advances the machine by one tick and services all runnable VMs.
  void RunTick();

  Tick now() const { return machine_.now(); }
  sim::Machine& machine() { return machine_; }
  const sim::Machine& machine() const { return machine_; }

  // -- Execution throttling (KStest baseline support) ----------------------
  // Pauses every VM except `protected_vm` for `duration` ticks, measured
  // from the next tick. Re-arming extends the window.
  void ThrottleAllExcept(OwnerId protected_vm, Tick duration);
  bool throttling_active() const { return throttle_remaining_ > 0; }

  // Pauses a single VM for `duration` ticks (used by the KStest baseline's
  // attacker-identification sweep). Independent of ThrottleAllExcept.
  void ThrottleVm(OwnerId id, Tick duration);
  bool vm_throttled(OwnerId id) const;

  // -- Monitoring-load model ------------------------------------------------
  // Monitors register/deregister themselves; load stacks if several run.
  void AttachMonitor();
  void DetachMonitor();
  int active_monitors() const { return active_monitors_; }
  // Total operations deferred by the monitoring-load model.
  std::uint64_t monitor_dropped_ops() const { return monitor_dropped_ops_; }

  // The machine's observability handle (nullptr when detached), so samplers
  // and detectors constructed on this hypervisor find it without extra
  // plumbing.
  telemetry::Telemetry* telemetry() const { return machine_.telemetry(); }

 private:
  void TraceEventVm(const char* name, std::int64_t owner, const char* key,
                    double value);

  sim::Machine& machine_;
  HypervisorConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<VirtualMachine>> vms_;

  Tick throttle_remaining_ = 0;
  OwnerId throttle_protected_ = 0;
  std::vector<Tick> vm_throttle_remaining_;
  int active_monitors_ = 0;
  std::uint64_t monitor_dropped_ops_ = 0;

  // Telemetry instrument slots (see sim::Machine for the wiring pattern).
  // "vm.tick" wraps the whole of RunTick; "vm.schedule" wraps the round-robin
  // service loop, so vm.tick self-time is slot collection + throttling
  // bookkeeping. Span ids are raw integers (telemetry::SpanId).
  telemetry::SpanProfiler* prof_ = nullptr;
  std::uint32_t span_tick_ = 0;
  std::uint32_t span_schedule_ = 0;
  telemetry::Counter* t_scheduled_ops_ = nullptr;
  telemetry::Counter* t_monitor_dropped_ = nullptr;
  telemetry::Counter* t_throttle_windows_ = nullptr;
  telemetry::Gauge* t_runnable_vms_ = nullptr;
};

}  // namespace sds::vm
