// Descriptive statistics: streaming mean/variance (Welford), batch summaries
// and percentiles. These are the primitives SDS/B profiles are built from
// (mu_E, sigma_E of the EWMA series) and that the evaluation harness uses to
// report median / 10th / 90th percentiles over 20 runs, as in the paper.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sds {

// Numerically stable streaming mean/variance accumulator (Welford's method).
class RunningStats {
 public:
  void Add(double x);

  // Merges another accumulator (parallel-combinable form of Welford).
  void Merge(const RunningStats& other);

  std::int64_t count() const { return count_; }
  double mean() const;
  // Sample variance (divides by n-1); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  void Reset();

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile with linear interpolation between order statistics (the
// "linear"/type-7 definition). q is in [0, 1]. The input need not be sorted.
double Percentile(std::span<const double> values, double q);

// Convenience: median / p10 / p90 triple, matching the paper's error bars.
struct PercentileSummary {
  double p10 = 0.0;
  double median = 0.0;
  double p90 = 0.0;
};

PercentileSummary Summarize(std::span<const double> values);

double Mean(std::span<const double> values);
// Sample standard deviation (n-1 denominator); 0 for fewer than two values.
double StdDev(std::span<const double> values);

}  // namespace sds
