// Chebyshev-inequality helpers for SDS/B parameter selection.
//
// The paper (Section 4.2.1) picks the boundary factor k and the consecutive
// violation threshold H_C so that, for ANY distribution of EWMA values,
// the probability of a false alarm is bounded:
//
//   Pr(|X - mu| >= k sigma) <= 1/k^2                    (Chebyshev)
//   Pr(H_C consecutive violations) <= (1/k^2)^{H_C}
//
// Given a desired confidence level (e.g. 99.9%), these helpers derive the
// matching (k, H_C) pairs, including the paper's examples (k=2, H_C=6) and
// (k=1.125, H_C=30).
#pragma once

namespace sds {

// Upper bound on Pr(|X - mu| >= k * sigma) for any distribution: min(1, 1/k^2).
double ChebyshevTailBound(double k);

// Upper bound on the probability of h consecutive out-of-range windows under
// no attack: (1/k^2)^h, capped at 1.
double ConsecutiveViolationBound(double k, int h);

// Smallest integer H_C such that (1/k^2)^{H_C} <= 1 - confidence.
// Requires k > 1 (otherwise the Chebyshev bound is vacuous and no finite H_C
// exists); returns the smallest H >= 1 satisfying the bound.
int RequiredConsecutiveViolations(double k, double confidence);

// Smallest k such that (1/k^2)^h <= 1 - confidence for a fixed h.
double RequiredBoundaryFactor(int h, double confidence);

}  // namespace sds
