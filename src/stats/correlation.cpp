#include "stats/correlation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/descriptive.h"

namespace sds {

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  SDS_CHECK(x.size() == y.size(), "series must have equal length");
  SDS_CHECK(x.size() >= 2, "need at least two points");
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> CrossCorrelation(std::span<const double> x,
                                     std::span<const double> y, int max_lag) {
  SDS_CHECK(x.size() == y.size(), "series must have equal length");
  SDS_CHECK(max_lag >= 0, "max_lag must be non-negative");
  const auto n = static_cast<int>(x.size());
  SDS_CHECK(max_lag < n, "max_lag must be smaller than the series length");

  const double mx = Mean(x);
  const double my = Mean(y);
  double sxx = 0.0;
  double syy = 0.0;
  for (int i = 0; i < n; ++i) {
    sxx += (x[static_cast<std::size_t>(i)] - mx) *
           (x[static_cast<std::size_t>(i)] - mx);
    syy += (y[static_cast<std::size_t>(i)] - my) *
           (y[static_cast<std::size_t>(i)] - my);
  }
  const double denom = std::sqrt(sxx * syy);

  std::vector<double> out(static_cast<std::size_t>(2 * max_lag + 1), 0.0);
  if (denom == 0.0) return out;
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    double s = 0.0;
    for (int t = 0; t < n; ++t) {
      const int u = t + lag;
      if (u < 0 || u >= n) continue;
      s += (x[static_cast<std::size_t>(t)] - mx) *
           (y[static_cast<std::size_t>(u)] - my);
    }
    out[static_cast<std::size_t>(lag + max_lag)] = s / denom;
  }
  return out;
}

double MaxAbsCrossCorrelation(std::span<const double> x,
                              std::span<const double> y, int max_lag) {
  const auto cc = CrossCorrelation(x, y, max_lag);
  double best = 0.0;
  for (double v : cc) best = std::max(best, std::abs(v));
  return best;
}

}  // namespace sds
