#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sds {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return count_ > 0 ? mean_ : 0.0; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ > 0 ? min_ : 0.0; }
double RunningStats::max() const { return count_ > 0 ? max_ : 0.0; }

void RunningStats::Reset() { *this = RunningStats{}; }

double Percentile(std::span<const double> values, double q) {
  SDS_CHECK(!values.empty(), "Percentile of empty range");
  SDS_CHECK(q >= 0.0 && q <= 1.0, "Percentile q must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

PercentileSummary Summarize(std::span<const double> values) {
  PercentileSummary s;
  s.p10 = Percentile(values, 0.10);
  s.median = Percentile(values, 0.50);
  s.p90 = Percentile(values, 0.90);
  return s;
}

double Mean(std::span<const double> values) {
  RunningStats rs;
  for (double v : values) rs.Add(v);
  return rs.mean();
}

double StdDev(std::span<const double> values) {
  RunningStats rs;
  for (double v : values) rs.Add(v);
  return rs.stddev();
}

}  // namespace sds
