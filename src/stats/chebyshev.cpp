#include "stats/chebyshev.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sds {

double ChebyshevTailBound(double k) {
  SDS_CHECK(k > 0.0, "boundary factor must be positive");
  return std::min(1.0, 1.0 / (k * k));
}

double ConsecutiveViolationBound(double k, int h) {
  SDS_CHECK(h >= 1, "need at least one violation");
  const double per = ChebyshevTailBound(k);
  return std::pow(per, h);
}

int RequiredConsecutiveViolations(double k, double confidence) {
  SDS_CHECK(k > 1.0, "Chebyshev bound is vacuous for k <= 1");
  SDS_CHECK(confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1)");
  const double target = 1.0 - confidence;
  const double per = ChebyshevTailBound(k);
  // per < 1 because k > 1, so the bound shrinks geometrically.
  const double h = std::log(target) / std::log(per);
  return std::max(1, static_cast<int>(std::ceil(h - 1e-12)));
}

double RequiredBoundaryFactor(int h, double confidence) {
  SDS_CHECK(h >= 1, "need at least one violation");
  SDS_CHECK(confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1)");
  const double target = 1.0 - confidence;
  // (1/k^2)^h <= target  <=>  k >= target^{-1/(2h)}.
  return std::pow(target, -1.0 / (2.0 * h));
}

}  // namespace sds
