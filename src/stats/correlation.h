// Correlation measures used in the paper's Section 3.4 exploration, where the
// authors tried Pearson correlation and cross-correlation (and spectral
// coherence, implemented in signal/coherence.h on top of the FFT) before
// concluding that correlation does not separate attack from no-attack.
#pragma once

#include <span>
#include <vector>

namespace sds {

// Pearson product-moment correlation coefficient of two equal-length series.
// Returns 0 when either series has zero variance.
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

// Normalized cross-correlation of two equal-length series at integer lags in
// [-max_lag, +max_lag]. Element [max_lag + lag] of the result corresponds to
// corr(x[t], y[t + lag]); values are in [-1, 1].
std::vector<double> CrossCorrelation(std::span<const double> x,
                                     std::span<const double> y, int max_lag);

// Maximum absolute normalized cross-correlation over the lag range.
double MaxAbsCrossCorrelation(std::span<const double> x,
                              std::span<const double> y, int max_lag);

}  // namespace sds
