#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace sds {

double KolmogorovSurvival(double lambda) {
  if (lambda <= 0.0) return 1.0;
  // The series converges very fast for lambda >~ 0.3; below that the result
  // is numerically 1 anyway.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term =
        sign * std::exp(-2.0 * j * j * lambda * lambda);
    sum += term;
    sign = -sign;
    if (std::abs(term) < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsTestResult TwoSampleKsTest(std::span<const double> a,
                             std::span<const double> b) {
  SDS_CHECK(!a.empty() && !b.empty(), "KS test requires non-empty samples");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  const auto na = static_cast<double>(sa.size());
  const auto nb = static_cast<double>(sb.size());

  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / na;
    const double fb = static_cast<double>(ib) / nb;
    d = std::max(d, std::abs(fa - fb));
  }

  KsTestResult result;
  result.statistic = d;
  const double en = std::sqrt(na * nb / (na + nb));
  // Stephens' small-sample correction improves the asymptotic approximation.
  const double lambda = (en + 0.12 + 0.11 / en) * d;
  result.p_value = KolmogorovSurvival(lambda);
  return result;
}

bool KsRejectsSameDistribution(std::span<const double> a,
                               std::span<const double> b, double alpha) {
  return TwoSampleKsTest(a, b).p_value < alpha;
}

}  // namespace sds
