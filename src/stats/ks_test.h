// Two-sample Kolmogorov-Smirnov test.
//
// This is the statistical core of the KStest baseline detector from Zhang et
// al. [49], which SDS is evaluated against: the baseline declares the
// monitored samples anomalous when the KS test rejects the hypothesis that
// they follow the same distribution as the throttled reference samples.
#pragma once

#include <span>

namespace sds {

struct KsTestResult {
  // Supremum distance between the two empirical CDFs, in [0, 1].
  double statistic = 0.0;
  // Asymptotic two-sided p-value (Kolmogorov distribution with the
  // effective-sample-size correction).
  double p_value = 1.0;
};

// Computes the two-sample KS statistic and its asymptotic p-value. Both
// samples must be non-empty; they are copied and sorted internally.
KsTestResult TwoSampleKsTest(std::span<const double> a,
                             std::span<const double> b);

// True when the test rejects "same distribution" at significance alpha,
// i.e. p_value < alpha. alpha = 0.05 reproduces the baseline's setting.
bool KsRejectsSameDistribution(std::span<const double> a,
                               std::span<const double> b, double alpha);

// Survival function of the Kolmogorov distribution,
// Q(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
// Exposed for direct testing against published table values.
double KolmogorovSurvival(double lambda);

}  // namespace sds
