#include "signal/moving_average.h"

#include "common/check.h"

namespace sds {

SlidingWindowAverage::SlidingWindowAverage(std::size_t window, std::size_t step)
    : window_(window), step_(step), buf_(window) {
  SDS_CHECK(window > 0, "window must be positive");
  SDS_CHECK(step > 0, "step must be positive");
  SDS_CHECK(step <= window, "step must not exceed window");
}

std::optional<double> SlidingWindowAverage::Push(double raw) {
  if (buf_.full()) window_sum_ -= buf_.oldest();
  buf_.Push(raw);
  window_sum_ += raw;

  if (!first_window_done_) {
    if (buf_.size() == window_) {
      first_window_done_ = true;
      ++windows_emitted_;
      return window_sum_ / static_cast<double>(window_);
    }
    return std::nullopt;
  }

  if (++since_last_emit_ == step_) {
    since_last_emit_ = 0;
    ++windows_emitted_;
    return window_sum_ / static_cast<double>(window_);
  }
  return std::nullopt;
}

void SlidingWindowAverage::Reset() {
  buf_.Clear();
  window_sum_ = 0.0;
  since_last_emit_ = 0;
  first_window_done_ = false;
  windows_emitted_ = 0;
}

void SlidingWindowAverage::SaveState(SnapshotWriter& w) const {
  w.U64(window_);
  w.U64(step_);
  w.VecF64(buf_.ToVector());
  w.F64(window_sum_);
  w.U64(since_last_emit_);
  w.Bool(first_window_done_);
  w.U64(windows_emitted_);
}

bool SlidingWindowAverage::RestoreState(SnapshotReader& r) {
  const std::uint64_t window = r.U64();
  const std::uint64_t step = r.U64();
  const std::vector<double> buf = r.VecF64();
  const double window_sum = r.F64();
  const std::uint64_t since_last_emit = r.U64();
  const bool first_window_done = r.Bool();
  const std::uint64_t windows_emitted = r.U64();
  if (!r.ok() || window != window_ || step != step_ ||
      buf.size() > window_) {
    return false;
  }
  buf_.Clear();
  for (double v : buf) buf_.Push(v);
  window_sum_ = window_sum;
  since_last_emit_ = since_last_emit;
  first_window_done_ = first_window_done;
  windows_emitted_ = windows_emitted;
  return true;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  SDS_CHECK(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
}

double Ewma::Push(double m) {
  if (!has_value_) {
    value_ = m;  // S_0 = M_0
    has_value_ = true;
  } else {
    value_ = (1.0 - alpha_) * value_ + alpha_ * m;
  }
  return value_;
}

void Ewma::Reset() {
  value_ = 0.0;
  has_value_ = false;
}

void Ewma::SaveState(SnapshotWriter& w) const {
  w.F64(alpha_);
  w.F64(value_);
  w.Bool(has_value_);
}

bool Ewma::RestoreState(SnapshotReader& r) {
  const double alpha = r.F64();
  const double value = r.F64();
  const bool has_value = r.Bool();
  if (!r.ok() || alpha != alpha_) return false;
  value_ = value;
  has_value_ = has_value;
  return true;
}

std::vector<double> MovingAverageSeries(const std::vector<double>& raw,
                                        std::size_t window, std::size_t step) {
  SlidingWindowAverage ma(window, step);
  std::vector<double> out;
  for (double v : raw) {
    if (const auto m = ma.Push(v)) out.push_back(*m);
  }
  return out;
}

std::vector<double> EwmaSeries(const std::vector<double>& m, double alpha) {
  Ewma ewma(alpha);
  std::vector<double> out;
  out.reserve(m.size());
  for (double v : m) out.push_back(ewma.Push(v));
  return out;
}

}  // namespace sds
