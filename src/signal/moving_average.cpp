#include "signal/moving_average.h"

#include "common/check.h"

namespace sds {

SlidingWindowAverage::SlidingWindowAverage(std::size_t window, std::size_t step)
    : window_(window), step_(step), buf_(window) {
  SDS_CHECK(window > 0, "window must be positive");
  SDS_CHECK(step > 0, "step must be positive");
  SDS_CHECK(step <= window, "step must not exceed window");
}

std::optional<double> SlidingWindowAverage::Push(double raw) {
  if (buf_.full()) window_sum_ -= buf_.oldest();
  buf_.Push(raw);
  window_sum_ += raw;

  if (!first_window_done_) {
    if (buf_.size() == window_) {
      first_window_done_ = true;
      ++windows_emitted_;
      return window_sum_ / static_cast<double>(window_);
    }
    return std::nullopt;
  }

  if (++since_last_emit_ == step_) {
    since_last_emit_ = 0;
    ++windows_emitted_;
    return window_sum_ / static_cast<double>(window_);
  }
  return std::nullopt;
}

void SlidingWindowAverage::Reset() {
  buf_.Clear();
  window_sum_ = 0.0;
  since_last_emit_ = 0;
  first_window_done_ = false;
  windows_emitted_ = 0;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  SDS_CHECK(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
}

double Ewma::Push(double m) {
  if (!has_value_) {
    value_ = m;  // S_0 = M_0
    has_value_ = true;
  } else {
    value_ = (1.0 - alpha_) * value_ + alpha_ * m;
  }
  return value_;
}

void Ewma::Reset() {
  value_ = 0.0;
  has_value_ = false;
}

std::vector<double> MovingAverageSeries(const std::vector<double>& raw,
                                        std::size_t window, std::size_t step) {
  SlidingWindowAverage ma(window, step);
  std::vector<double> out;
  for (double v : raw) {
    if (const auto m = ma.Push(v)) out.push_back(*m);
  }
  return out;
}

std::vector<double> EwmaSeries(const std::vector<double>& m, double alpha) {
  Ewma ewma(alpha);
  std::vector<double> out;
  out.reserve(m.size());
  for (double v : m) out.push_back(ewma.Push(v));
  return out;
}

}  // namespace sds
