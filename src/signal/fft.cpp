#include "signal/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace sds {

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void FftPow2(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  SDS_CHECK(IsPowerOfTwo(n), "FftPow2 requires a power-of-two size");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

namespace {

// Bluestein's algorithm: expresses a length-N DFT as a convolution that can
// be evaluated with power-of-two FFTs. Handles any N >= 1.
std::vector<Complex> Bluestein(std::span<const Complex> input, bool inverse) {
  const std::size_t n = input.size();
  const std::size_t m = NextPowerOfTwo(2 * n - 1);
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp factors: w_k = exp(sign * i * pi * k^2 / n).
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small and exact.
    const auto k2 = static_cast<double>((k * k) % (2 * n));
    const double angle = sign * std::numbers::pi * k2 / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    b[m - k] = b[k];
  }

  FftPow2(a, /*inverse=*/false);
  FftPow2(b, /*inverse=*/false);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  FftPow2(a, /*inverse=*/true);

  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  if (inverse) {
    for (auto& x : out) x /= static_cast<double>(n);
  }
  return out;
}

}  // namespace

std::vector<Complex> Fft(std::span<const Complex> input) {
  SDS_CHECK(!input.empty(), "FFT of empty input");
  if (IsPowerOfTwo(input.size())) {
    std::vector<Complex> data(input.begin(), input.end());
    FftPow2(data, /*inverse=*/false);
    return data;
  }
  return Bluestein(input, /*inverse=*/false);
}

std::vector<Complex> InverseFft(std::span<const Complex> input) {
  SDS_CHECK(!input.empty(), "inverse FFT of empty input");
  if (IsPowerOfTwo(input.size())) {
    std::vector<Complex> data(input.begin(), input.end());
    FftPow2(data, /*inverse=*/true);
    return data;
  }
  return Bluestein(input, /*inverse=*/true);
}

std::vector<Complex> FftReal(std::span<const double> input) {
  std::vector<Complex> c(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) c[i] = Complex(input[i], 0.0);
  return Fft(c);
}

}  // namespace sds
