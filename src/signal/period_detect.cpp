#include "signal/period_detect.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "signal/acf.h"
#include "signal/periodogram.h"

namespace sds {
namespace {

// Finds the ACF local maximum nearest to `lag` within +-radius; returns the
// lag of that maximum, or 0 when the neighbourhood is monotone (no hill).
std::size_t SnapToAcfPeak(std::span<const double> acf, std::size_t lag,
                          std::size_t radius) {
  const std::size_t lo = lag > radius ? lag - radius : 1;
  const std::size_t hi = std::min(acf.size() - 1, lag + radius);
  if (lo >= hi) return 0;

  std::size_t best = 0;
  double best_val = -2.0;
  for (std::size_t i = lo; i <= hi; ++i) {
    const bool is_local_max =
        (i == 1 || acf[i] >= acf[i - 1]) &&
        (i + 1 >= acf.size() || acf[i] >= acf[i + 1]);
    if (is_local_max && acf[i] > best_val) {
      best_val = acf[i];
      best = i;
    }
  }
  return best;
}

}  // namespace

std::optional<PeriodEstimate> DetectPeriod(std::span<const double> x,
                                           const PeriodDetectorOptions& opts) {
  if (x.size() < 8) return std::nullopt;

  const auto power = Periodogram(x, opts.hann_window);
  const auto candidates = FindSpectrumPeaks(
      power, x.size(), opts.spectrum_threshold, opts.max_candidates);
  if (candidates.empty()) return std::nullopt;

  const std::size_t max_lag = x.size() / 2;
  const auto acf = AutocorrelationFft(x, max_lag);

  std::optional<PeriodEstimate> best;
  for (const auto& cand : candidates) {
    const auto lag = static_cast<std::size_t>(cand.period + 0.5);
    if (lag < 2 || lag > max_lag) continue;
    const auto radius = std::max<std::size_t>(
        2, static_cast<std::size_t>(opts.hill_radius_fraction *
                                    static_cast<double>(lag)));
    if (!IsOnAcfHill(acf, SnapToAcfPeak(acf, lag, radius), radius) &&
        !IsOnAcfHill(acf, lag, radius)) {
      continue;
    }
    const std::size_t snapped = SnapToAcfPeak(acf, lag, radius);
    if (snapped == 0) continue;
    const double strength = acf[snapped];
    if (strength < opts.min_strength) continue;

    PeriodEstimate est;
    est.period = static_cast<double>(snapped);
    est.strength = strength;

    if (!best) {
      best = est;
      continue;
    }
    // Prefer clearly stronger candidates; on near-ties prefer the smaller
    // period so ACF multiples of the fundamental do not win.
    if (est.strength > best->strength + opts.strength_tie_margin) {
      best = est;
    } else if (std::abs(est.strength - best->strength) <=
                   opts.strength_tie_margin &&
               est.period < best->period) {
      best = est;
    }
  }
  return best;
}

std::optional<PeriodEstimate> DetectPeriod(std::span<const double> x) {
  return DetectPeriod(x, PeriodDetectorOptions{});
}

}  // namespace sds
