// Magnitude-squared spectral coherence (Welch-averaged), the third approach
// the paper explored in Section 3.4 before settling on SDS/B and SDS/P. The
// bench_sec34_correlation binary reproduces the negative result: coherence
// between pre- and post-attack statistics shows no usable separating trend.
#pragma once

#include <span>
#include <vector>

namespace sds {

struct CoherenceOptions {
  // Welch segment length; must be a power of two.
  std::size_t segment_length = 64;
  // Overlap between consecutive segments, in samples (< segment_length).
  std::size_t overlap = 32;
};

// Coherence spectrum C_xy(f) in [0, 1] for frequency bins 0..segment/2.
// Requires at least two full segments so cross/auto spectra can average;
// x and y must be the same length.
std::vector<double> SpectralCoherence(std::span<const double> x,
                                      std::span<const double> y,
                                      const CoherenceOptions& opts);

// Mean coherence over non-DC bins — the scalar summary the measurement-study
// bench reports.
double MeanCoherence(std::span<const double> x, std::span<const double> y,
                     const CoherenceOptions& opts);

}  // namespace sds
