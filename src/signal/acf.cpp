#include "signal/acf.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "signal/fft.h"
#include "stats/descriptive.h"

namespace sds {

std::vector<double> Autocorrelation(std::span<const double> x,
                                    std::size_t max_lag) {
  SDS_CHECK(!x.empty(), "ACF of empty series");
  SDS_CHECK(max_lag < x.size(), "max_lag must be < series length");
  const std::size_t n = x.size();
  const double mean = Mean(x);

  double c0 = 0.0;
  for (double v : x) c0 += (v - mean) * (v - mean);

  std::vector<double> acf(max_lag + 1, 0.0);
  if (c0 == 0.0) return acf;

  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    double c = 0.0;
    for (std::size_t t = 0; t + lag < n; ++t) {
      c += (x[t] - mean) * (x[t + lag] - mean);
    }
    acf[lag] = c / c0;
  }
  return acf;
}

std::vector<double> AutocorrelationFft(std::span<const double> x,
                                       std::size_t max_lag) {
  SDS_CHECK(!x.empty(), "ACF of empty series");
  SDS_CHECK(max_lag < x.size(), "max_lag must be < series length");
  const std::size_t n = x.size();
  const double mean = Mean(x);

  // Zero-pad to at least 2n to make the circular convolution linear.
  const std::size_t m = NextPowerOfTwo(2 * n);
  std::vector<Complex> buf(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) buf[i] = Complex(x[i] - mean, 0.0);

  FftPow2(buf, /*inverse=*/false);
  for (auto& v : buf) v = Complex(std::norm(v), 0.0);
  FftPow2(buf, /*inverse=*/true);

  std::vector<double> acf(max_lag + 1, 0.0);
  const double c0 = buf[0].real();
  if (c0 <= 0.0) return acf;
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    acf[lag] = buf[lag].real() / c0;
  }
  return acf;
}

bool IsOnAcfHill(std::span<const double> acf, std::size_t lag,
                 std::size_t radius) {
  if (lag == 0 || lag >= acf.size()) return false;
  const std::size_t lo = lag > radius ? lag - radius : 1;
  const std::size_t hi = std::min(acf.size() - 1, lag + radius);
  // The lag is on a hill when it is (within the neighbourhood) a maximum and
  // the neighbourhood actually rises toward it from at least one side.
  double best = acf[lo];
  std::size_t best_lag = lo;
  for (std::size_t i = lo; i <= hi; ++i) {
    if (acf[i] > best) {
      best = acf[i];
      best_lag = i;
    }
  }
  if (best_lag != lag) return false;
  const bool rises_left = lo < lag && acf[lo] < acf[lag];
  const bool falls_right = hi > lag && acf[hi] < acf[lag];
  return rises_left || falls_right;
}

}  // namespace sds
