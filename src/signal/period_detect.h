// DFT-ACF period detection (Vlachos et al. [40], as adopted by SDS/P).
//
// Neither transform alone is reliable: the DFT can report frequencies that do
// not exist in the series (spectral leakage), while the ACF also peaks at
// integer multiples of the true period. The combined procedure:
//
//   1. Compute the periodogram and extract candidate periods from the
//      significant spectral peaks.
//   2. For each candidate, check that it lies on a hill of the ACF, and snap
//      it to the nearest ACF local maximum.
//   3. Among validated candidates, return the one with the strongest ACF
//      value; prefer the smallest period among near-equal candidates so that
//      ACF multiples of the fundamental do not win.
#pragma once

#include <optional>
#include <span>

namespace sds {

struct PeriodEstimate {
  // Period in samples (snapped to the validating ACF peak).
  double period = 0.0;
  // ACF value at the snapped lag; in (0, 1]. Higher = stronger periodicity.
  double strength = 0.0;
};

struct PeriodDetectorOptions {
  // Spectral peaks must exceed this multiple of the mean non-DC power.
  double spectrum_threshold = 3.0;
  // Consider at most this many spectral candidates.
  std::size_t max_candidates = 8;
  // ACF hill search radius as a fraction of the candidate period.
  double hill_radius_fraction = 0.35;
  // Minimum ACF strength for a candidate to be accepted.
  double min_strength = 0.2;
  // Apply a Hann window before the DFT stage.
  bool hann_window = true;
  // Two validated candidates whose strengths differ by less than this are
  // considered equal, in which case the smaller period wins (anti-multiple).
  double strength_tie_margin = 0.05;
};

// Returns the detected period of `x`, or nullopt when no candidate passes
// both the spectral and the ACF validation (i.e. the series does not look
// periodic). x.size() should be at least twice the longest period of
// interest, mirroring the paper's W_P = 2p choice.
std::optional<PeriodEstimate> DetectPeriod(std::span<const double> x,
                                           const PeriodDetectorOptions& opts);

std::optional<PeriodEstimate> DetectPeriod(std::span<const double> x);

}  // namespace sds
