#include "signal/coherence.h"

#include <cmath>
#include <complex>
#include <numbers>

#include "common/check.h"
#include "signal/fft.h"

namespace sds {

std::vector<double> SpectralCoherence(std::span<const double> x,
                                      std::span<const double> y,
                                      const CoherenceOptions& opts) {
  SDS_CHECK(x.size() == y.size(), "series must have equal length");
  SDS_CHECK(IsPowerOfTwo(opts.segment_length),
            "segment_length must be a power of two");
  SDS_CHECK(opts.overlap < opts.segment_length,
            "overlap must be smaller than segment_length");
  const std::size_t seg = opts.segment_length;
  const std::size_t hop = seg - opts.overlap;
  SDS_CHECK(x.size() >= seg + hop, "need at least two segments");

  const std::size_t bins = seg / 2 + 1;
  std::vector<double> pxx(bins, 0.0);
  std::vector<double> pyy(bins, 0.0);
  std::vector<Complex> pxy(bins, Complex(0.0, 0.0));

  std::vector<double> hann(seg);
  for (std::size_t i = 0; i < seg; ++i) {
    hann[i] = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                    static_cast<double>(i) /
                                    static_cast<double>(seg - 1)));
  }

  std::size_t segments = 0;
  for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
    std::vector<Complex> bx(seg);
    std::vector<Complex> by(seg);
    double mx = 0.0;
    double my = 0.0;
    for (std::size_t i = 0; i < seg; ++i) {
      mx += x[start + i];
      my += y[start + i];
    }
    mx /= static_cast<double>(seg);
    my /= static_cast<double>(seg);
    for (std::size_t i = 0; i < seg; ++i) {
      bx[i] = Complex((x[start + i] - mx) * hann[i], 0.0);
      by[i] = Complex((y[start + i] - my) * hann[i], 0.0);
    }
    FftPow2(bx, /*inverse=*/false);
    FftPow2(by, /*inverse=*/false);
    for (std::size_t k = 0; k < bins; ++k) {
      pxx[k] += std::norm(bx[k]);
      pyy[k] += std::norm(by[k]);
      pxy[k] += bx[k] * std::conj(by[k]);
    }
    ++segments;
  }
  SDS_CHECK(segments >= 2, "need at least two segments for coherence");

  std::vector<double> coherence(bins, 0.0);
  for (std::size_t k = 0; k < bins; ++k) {
    const double denom = pxx[k] * pyy[k];
    if (denom > 0.0) coherence[k] = std::norm(pxy[k]) / denom;
  }
  return coherence;
}

double MeanCoherence(std::span<const double> x, std::span<const double> y,
                     const CoherenceOptions& opts) {
  const auto c = SpectralCoherence(x, y, opts);
  double sum = 0.0;
  for (std::size_t k = 1; k < c.size(); ++k) sum += c[k];
  return sum / static_cast<double>(c.size() - 1);
}

}  // namespace sds
