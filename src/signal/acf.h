// Autocorrelation function (ACF).
//
// SDS/P validates DFT-generated candidate periods against the ACF of the
// moving-average series: a true period sits on a "hill" (local maximum) of
// the ACF, whereas spectral-leakage artifacts do not (Section 4.2.2,
// following Vlachos et al.).
#pragma once

#include <span>
#include <vector>

namespace sds {

// Normalized autocorrelation for lags 0..max_lag (acf[0] == 1 unless the
// series has zero variance, in which case all entries are 0).
// Uses the biased estimator (divides by N), computed directly; O(N*max_lag).
std::vector<double> Autocorrelation(std::span<const double> x,
                                    std::size_t max_lag);

// Same values computed via FFT (circular convolution with zero padding);
// O(N log N). Exposed separately so tests can cross-validate the two paths
// and the detector can pick the cheaper one for its window size.
std::vector<double> AutocorrelationFft(std::span<const double> x,
                                       std::size_t max_lag);

// True if `lag` is a strict local maximum ("on a hill") of the ACF within
// a +-radius neighbourhood, using quadratic interpolation at the boundary.
bool IsOnAcfHill(std::span<const double> acf, std::size_t lag,
                 std::size_t radius);

}  // namespace sds
