#include "signal/periodogram.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "signal/fft.h"
#include "stats/descriptive.h"

namespace sds {

std::vector<double> Periodogram(std::span<const double> x, bool hann_window) {
  SDS_CHECK(x.size() >= 2, "periodogram needs at least two samples");
  const std::size_t n = x.size();
  const double mean = Mean(x);

  std::vector<Complex> buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = x[i] - mean;
    if (hann_window) {
      const double w =
          0.5 * (1.0 - std::cos(2.0 * std::numbers::pi *
                                static_cast<double>(i) /
                                static_cast<double>(n - 1)));
      v *= w;
    }
    buf[i] = Complex(v, 0.0);
  }

  const auto spec = Fft(buf);
  std::vector<double> power(n / 2 + 1, 0.0);
  for (std::size_t k = 0; k < power.size(); ++k) {
    power[k] = std::norm(spec[k]) / static_cast<double>(n);
  }
  return power;
}

std::vector<SpectrumPeak> FindSpectrumPeaks(std::span<const double> power,
                                            std::size_t series_length,
                                            double threshold_factor,
                                            std::size_t max_peaks) {
  SDS_CHECK(power.size() >= 2, "spectrum too short");
  double mean_power = 0.0;
  for (std::size_t k = 1; k < power.size(); ++k) mean_power += power[k];
  mean_power /= static_cast<double>(power.size() - 1);

  std::vector<SpectrumPeak> peaks;
  for (std::size_t k = 1; k < power.size(); ++k) {
    if (power[k] < threshold_factor * mean_power) continue;
    // Require a local maximum so a broad lobe contributes one candidate.
    const bool left_ok = (k == 1) || power[k] >= power[k - 1];
    const bool right_ok = (k + 1 == power.size()) || power[k] >= power[k + 1];
    if (!left_ok || !right_ok) continue;
    SpectrumPeak p;
    p.bin = k;
    p.power = power[k];
    p.period = static_cast<double>(series_length) / static_cast<double>(k);
    peaks.push_back(p);
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const SpectrumPeak& a, const SpectrumPeak& b) {
              return a.power > b.power;
            });
  if (peaks.size() > max_peaks) peaks.resize(max_peaks);
  return peaks;
}

}  // namespace sds
