// Periodogram (power spectrum) of a real series, the DFT half of the DFT-ACF
// period detector. The series is mean-removed and optionally Hann-windowed
// (Harris [18] — windowing reduces the spectral leakage that makes the plain
// DFT "detect false frequencies", which is exactly why the paper pairs it
// with ACF validation).
#pragma once

#include <span>
#include <vector>

namespace sds {

struct SpectrumPeak {
  // DFT bin index (1..N/2); frequency is bin / N cycles per sample.
  std::size_t bin = 0;
  double power = 0.0;
  // Implied period in samples: N / bin.
  double period = 0.0;
};

// Power at bins 0..N/2 of the mean-removed (and optionally Hann-windowed)
// series. power[0] is ~0 by construction after mean removal.
std::vector<double> Periodogram(std::span<const double> x, bool hann_window);

// Extracts candidate periodicity peaks: bins whose power exceeds
// `threshold_factor` times the mean non-DC power, sorted by descending power,
// at most max_peaks entries.
std::vector<SpectrumPeak> FindSpectrumPeaks(std::span<const double> power,
                                            std::size_t series_length,
                                            double threshold_factor,
                                            std::size_t max_peaks);

}  // namespace sds
