// Fast Fourier Transform.
//
// SDS/P needs the discrete Fourier transform of short moving-average windows
// (Section 4.2.2) to generate candidate periods. Sizes are arbitrary (W_P is
// twice the application period, not a power of two), so we provide a radix-2
// iterative Cooley-Tukey kernel for power-of-two sizes and Bluestein's
// chirp-z algorithm for everything else.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace sds {

using Complex = std::complex<double>;

// In-place forward/inverse FFT for power-of-two sizes.
// inverse=true applies the conjugate transform and scales by 1/N.
void FftPow2(std::vector<Complex>& data, bool inverse);

// Forward DFT of arbitrary-size input (dispatches to radix-2 or Bluestein).
std::vector<Complex> Fft(std::span<const Complex> input);

// Inverse DFT of arbitrary-size input (exactly inverts Fft).
std::vector<Complex> InverseFft(std::span<const Complex> input);

// Forward DFT of a real-valued series; returns all N complex bins.
std::vector<Complex> FftReal(std::span<const double> input);

// True if n is a power of two (n >= 1).
bool IsPowerOfTwo(std::size_t n);

// Smallest power of two >= n.
std::size_t NextPowerOfTwo(std::size_t n);

}  // namespace sds
