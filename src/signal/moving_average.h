// Streaming data preprocessing from Section 4.1 of the paper.
//
// Raw PCM samples {A_1, A_2, ...} are smoothed in two stages:
//
//   1. Sliding-window moving average: M_n is the mean of W raw samples,
//      advancing by a step of dW samples per window (Equation 1).
//   2. Exponentially weighted moving average over the M_n series:
//      S_0 = M_0; S_n = (1-alpha) S_{n-1} + alpha M_n (Equation 2).
//
// Both stages are incremental: each raw sample costs O(1).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/ring_buffer.h"
#include "common/snapshot.h"

namespace sds {

// Sliding-window mean with window W and step dW. Push() returns the new M_n
// whenever a window completes, nullopt otherwise.
class SlidingWindowAverage {
 public:
  SlidingWindowAverage(std::size_t window, std::size_t step);

  std::optional<double> Push(double raw);

  std::size_t window() const { return window_; }
  std::size_t step() const { return step_; }
  // Number of completed windows so far (the index n of the next M_n).
  std::size_t windows_emitted() const { return windows_emitted_; }

  void Reset();

  // Snapshot/restore for restart-without-rewarm (DESIGN.md §13). The running
  // window_sum_ is serialized bit-exactly — recomputing it from the window
  // contents would diverge from the incremental sum's accumulated rounding.
  // RestoreState returns false (leaving the average untouched) when the
  // stream is corrupt or was saved with a different window/step geometry.
  void SaveState(SnapshotWriter& w) const;
  bool RestoreState(SnapshotReader& r);

 private:
  std::size_t window_;
  std::size_t step_;
  RingBuffer<double> buf_;
  double window_sum_ = 0.0;
  std::size_t since_last_emit_ = 0;
  bool first_window_done_ = false;
  std::size_t windows_emitted_ = 0;
};

// EWMA over an already-downsampled series (Equation 2).
class Ewma {
 public:
  explicit Ewma(double alpha);

  double Push(double m);

  bool has_value() const { return has_value_; }
  double value() const { return value_; }
  double alpha() const { return alpha_; }

  void Reset();

  void SaveState(SnapshotWriter& w) const;
  bool RestoreState(SnapshotReader& r);

 private:
  double alpha_;
  double value_ = 0.0;
  bool has_value_ = false;
};

// Batch helpers used by tests and offline analysis.
std::vector<double> MovingAverageSeries(const std::vector<double>& raw,
                                        std::size_t window, std::size_t step);
std::vector<double> EwmaSeries(const std::vector<double>& m, double alpha);

}  // namespace sds
