#include "cluster/mitigation.h"

#include <algorithm>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace sds::cluster {

namespace tel = sds::telemetry;

namespace {
// Smoothing for the per-tick rate EWMA that backs the attacked-rate
// snapshot (~40-tick memory: long enough to ride out burst noise, short
// enough that 300 attacked ticks dominate a clean history).
constexpr double kRateAlpha = 0.05;
}  // namespace

const char* MitigationPolicyName(MitigationPolicy policy) {
  switch (policy) {
    case MitigationPolicy::kNone:
      return "none";
    case MitigationPolicy::kMigrateVictim:
      return "migrate-victim";
    case MitigationPolicy::kQuarantineAttacker:
      return "quarantine-attacker";
    case MitigationPolicy::kThrottleFallback:
      return "throttle-fallback";
  }
  return "?";
}

const char* MitigationStateName(MitigationState state) {
  switch (state) {
    case MitigationState::kIdle:
      return "idle";
    case MitigationState::kDispatched:
      return "dispatched";
    case MitigationState::kInFlight:
      return "in-flight";
    case MitigationState::kVerifying:
      return "verifying";
    case MitigationState::kSettled:
      return "settled";
    case MitigationState::kFailed:
      return "failed";
  }
  return "?";
}

MitigationEngine::MitigationEngine(Cluster& cluster, const VmRef& victim,
                                   MitigationPolicy policy, int spare_host)
    : MitigationEngine(cluster, victim,
                       [&] {
                         MitigationConfig config;
                         config.policy = policy;
                         config.spare_host = spare_host;
                         return config;
                       }(),
                       nullptr) {}

MitigationEngine::MitigationEngine(Cluster& cluster, const VmRef& victim,
                                   const MitigationConfig& config,
                                   Actuator* actuator)
    : cluster_(cluster), victim_(victim), config_(config) {
  SDS_CHECK(victim.valid(), "mitigation needs a valid victim placement");
  const bool needs_spare = config.policy == MitigationPolicy::kMigrateVictim ||
                           config.policy == MitigationPolicy::kQuarantineAttacker;
  SDS_CHECK(!needs_spare ||
                (config.spare_host >= 0 &&
                 config.spare_host < cluster.host_count() &&
                 config.spare_host != victim.host),
            "spare host must exist and differ from the victim's host");
  SDS_CHECK(config.command_timeout > 0, "command timeout must be positive");
  SDS_CHECK(config.max_attempts > 0, "need at least one attempt per action");
  SDS_CHECK(config.backoff_base >= 0 &&
                config.backoff_cap >= config.backoff_base,
            "bad backoff range");
  SDS_CHECK(config.verify_window >= 0, "verify window must be non-negative");
  SDS_CHECK(config.verify_recovery_ratio >= 1.0,
            "recovery ratio below 1 would pass without any recovery");
  if (actuator) {
    actuator_ = actuator;
  } else {
    owned_actuator_ = std::make_unique<Actuator>(cluster);
    actuator_ = owned_actuator_.get();
  }
  if (tel::Telemetry* t = cluster_.machine(victim_.host).telemetry()) {
    prof_ = &t->profiler();
    span_mitigate_ = prof_->RegisterSpan("cluster.mitigate");
  }
}

void MitigationEngine::OnAlarm(OwnerId attributed_attacker) {
  if (state_ != MitigationState::kIdle ||
      config_.policy == MitigationPolicy::kNone) {
    return;
  }
  SDS_PROFILE_SPAN(prof_, span_mitigate_);

  alarm_tick_ = cluster_.now();
  alarm_host_ = victim_.host;
  attacker_ = attributed_attacker;
  // Pin the incident's telemetry to the alarm-time host NOW, before any
  // action can change victim_.host.
  alarm_tel_ = cluster_.machine(alarm_host_).telemetry();
  attacked_access_ = ewma_access_;
  attacked_miss_ = ewma_miss_;
  rolled_back_ = false;

  // Quarantine needs a culprit that is a real co-tenant; anything else
  // falls back to migrating the victim (recorded as such, and audited — a
  // provider reviewing a quarantine policy that keeps migrating instead
  // needs to see WHY each alarm went unattributed).
  fallback_ = config_.policy == MitigationPolicy::kQuarantineAttacker &&
              (attributed_attacker == 0 || attributed_attacker == victim_.id);

  chain_.clear();
  chain_index_ = 0;
  attempts_ = 0;
  backoff_until_ = 0;
  switch (config_.policy) {
    case MitigationPolicy::kQuarantineAttacker:
      if (!fallback_) chain_.push_back(Action::kQuarantine);
      chain_.push_back(Action::kMigrate);
      break;
    case MitigationPolicy::kMigrateVictim:
      chain_.push_back(Action::kMigrate);
      break;
    case MitigationPolicy::kThrottleFallback:
      chain_.push_back(Action::kThrottle);
      break;
    case MitigationPolicy::kNone:
      return;  // unreachable (guarded above)
  }
  if (config_.allow_throttle_fallback && chain_.back() != Action::kThrottle) {
    chain_.push_back(Action::kThrottle);
  }

  Dispatch();
}

void MitigationEngine::OnAlarm(OwnerId attributed_attacker,
                               OwnerId forensic_suspect) {
  const bool primary_unusable =
      attributed_attacker == 0 || attributed_attacker == victim_.id;
  const bool suspect_usable =
      forensic_suspect != 0 && forensic_suspect != victim_.id;
  const bool substitute =
      config_.prefer_forensic_suspect && primary_unusable && suspect_usable;
  const bool will_act =
      state_ == MitigationState::kIdle &&
      config_.policy != MitigationPolicy::kNone;
  OnAlarm(substitute ? forensic_suspect : attributed_attacker);
  // Audited after the fact: alarm_tel_ is pinned inside OnAlarm.
  if (substitute && will_act) {
    AuditStep("forensic_substitution", static_cast<double>(forensic_suspect),
              false);
  }
}

void MitigationEngine::Dispatch() {
  const Action action = chain_[chain_index_];
  if (action == Action::kThrottle) {
    ApplyThrottle();
    return;
  }
  ++stats_.dispatches;
  ++attempts_;
  dispatch_tick_ = cluster_.now();
  if (action == Action::kQuarantine) {
    VmRef attacker;
    attacker.host = alarm_host_;
    attacker.id = attacker_;
    cmd_ = actuator_->SubmitStop(attacker);
  } else {
    cmd_ = actuator_->SubmitMigrate(victim_, config_.spare_host);
  }
  state_ = MitigationState::kDispatched;
  // A zero-latency actuator completes inside Submit; pump so the clean
  // path settles synchronously within OnAlarm, exactly like the one-shot
  // engine did.
  PumpCommand();
}

void MitigationEngine::PumpCommand() {
  if (cmd_ == 0) return;
  const CommandResult& result = actuator_->result(cmd_);
  if (result.status == CommandStatus::kInFlight) {
    if (cluster_.now() - dispatch_tick_ >= config_.command_timeout) {
      ++stats_.timeouts;
      AuditStep("timeout", static_cast<double>(attempts_), true);
      actuator_->Cancel(cmd_);
      cmd_ = 0;
      OnAttemptFailed();
    } else {
      state_ = MitigationState::kInFlight;
    }
    return;
  }
  cmd_ = 0;
  if (result.status == CommandStatus::kSucceeded) {
    ApplySuccess(result);
  } else {
    OnAttemptFailed();
  }
}

void MitigationEngine::OnAttemptFailed() {
  if (attempts_ >= config_.max_attempts) {
    Escalate();
    return;
  }
  const Tick shift = std::min<Tick>(attempts_ - 1, 30);
  const Tick backoff =
      std::min(config_.backoff_base << shift, config_.backoff_cap);
  backoff_until_ = cluster_.now() + backoff;
  ++stats_.retries;
  AuditStep("retry", static_cast<double>(attempts_), false);
  state_ = MitigationState::kInFlight;  // waiting out the backoff
}

void MitigationEngine::Escalate() {
  if (chain_index_ + 1 >= chain_.size() ||
      static_cast<int>(stats_.escalations) >= config_.max_escalation_rounds) {
    Fail();
    return;
  }
  ++chain_index_;
  ++stats_.escalations;
  attempts_ = 0;
  backoff_until_ = 0;
  AuditStep("escalate", static_cast<double>(chain_index_), true);
  Dispatch();
}

void MitigationEngine::Fail() {
  state_ = MitigationState::kFailed;
  AuditStep("exhausted", static_cast<double>(stats_.dispatches), true);
}

void MitigationEngine::ApplySuccess(const CommandResult& result) {
  const Action action = chain_[chain_index_];
  if (action == Action::kMigrate) {
    victim_ = result.placement;
    applied_ = MitigationPolicy::kMigrateVictim;
  } else {
    applied_ = MitigationPolicy::kQuarantineAttacker;
  }
  if (!mitigated_) {
    mitigated_ = true;
    mitigation_tick_ = cluster_.now();
  }
  EmitMitigationRecord();
  if (config_.verify_window > 0) {
    BeginVerify();
  } else {
    Settle();
  }
}

void MitigationEngine::ApplyThrottle() {
  if (attacker_ != 0 && attacker_ != victim_.id) {
    cluster_.hypervisor(alarm_host_).ThrottleVm(attacker_,
                                                config_.throttle_ticks);
  } else {
    cluster_.hypervisor(victim_.host)
        .ThrottleAllExcept(victim_.id, config_.throttle_ticks);
  }
  applied_ = MitigationPolicy::kThrottleFallback;
  if (!mitigated_) {
    mitigated_ = true;
    mitigation_tick_ = cluster_.now();
  }
  EmitMitigationRecord();
  // The throttle acts immediately and cannot bounce; verifying it would
  // leave nowhere to escalate.
  Settle();
}

void MitigationEngine::Settle() {
  state_ = MitigationState::kSettled;
  settled_tick_ = cluster_.now();
}

void MitigationEngine::BeginVerify() {
  state_ = MitigationState::kVerifying;
  verify_access_ = 0.0;
  verify_miss_ = 0.0;
  verify_ticks_ = 0;
  rate_primed_ = false;  // rebaseline at the (possibly new) placement
}

void MitigationEngine::EvaluateVerify() {
  const double window = static_cast<double>(config_.verify_window);
  const double mean_access = verify_access_ / window;
  const double mean_miss = verify_miss_ / window;
  const double ratio = config_.verify_recovery_ratio;
  const bool recovered = mean_access >= ratio * attacked_access_ ||
                         mean_miss * ratio <= attacked_miss_;
  if (recovered) {
    AuditStep("verify-pass", mean_access, false);
    Settle();
  } else {
    ++stats_.verify_failures;
    AuditStep("verify-fail", mean_access, true);
    Escalate();
  }
}

void MitigationEngine::OnRetraction() {
  if (!config_.rollback_on_retraction || rolling_back_ || rolled_back_) return;
  if (state_ == MitigationState::kIdle || state_ == MitigationState::kFailed) {
    return;
  }
  if (cmd_ != 0) {
    actuator_->Cancel(cmd_);
    cmd_ = 0;
  }
  if (!mitigated_) {
    // Nothing applied yet: abandon the response and re-arm.
    ++stats_.rollbacks;
    rolled_back_ = true;
    AuditStep("rollback", 0.0, false);
    state_ = MitigationState::kIdle;
    return;
  }
  // The detector withdrew the alarm mid-verification: the response is
  // complete as far as actuation goes.
  if (state_ == MitigationState::kVerifying) Settle();
  switch (applied_) {
    case MitigationPolicy::kQuarantineAttacker: {
      VmRef attacker;
      attacker.host = alarm_host_;
      attacker.id = attacker_;
      cmd_ = actuator_->SubmitResume(attacker);
      break;
    }
    case MitigationPolicy::kMigrateVictim:
      cmd_ = actuator_->SubmitMigrate(victim_, alarm_host_);
      break;
    default:
      // A throttle expires on its own; nothing to undo.
      return;
  }
  rolling_back_ = true;
  dispatch_tick_ = cluster_.now();
  PumpRollback();
}

void MitigationEngine::PumpRollback() {
  if (cmd_ == 0) return;
  const CommandResult& result = actuator_->result(cmd_);
  if (result.status == CommandStatus::kInFlight) {
    if (cluster_.now() - dispatch_tick_ >= config_.command_timeout) {
      actuator_->Cancel(cmd_);
      cmd_ = 0;
      rolling_back_ = false;
      ++stats_.rollback_failures;
      AuditStep("rollback-fail", 0.0, true);
    }
    return;
  }
  cmd_ = 0;
  rolling_back_ = false;
  if (result.status == CommandStatus::kSucceeded) {
    if (result.op == ActuationOp::kMigrate) victim_ = result.placement;
    ++stats_.rollbacks;
    rolled_back_ = true;
    AuditStep("rollback", static_cast<double>(result.target.id), false);
  } else {
    ++stats_.rollback_failures;
    AuditStep("rollback-fail", static_cast<double>(result.error), true);
  }
}

void MitigationEngine::OnTick() {
  actuator_->OnTick();
  TrackRates();
  if (rolling_back_) {
    PumpRollback();
    return;
  }
  switch (state_) {
    case MitigationState::kDispatched:
    case MitigationState::kInFlight:
      if (cmd_ != 0) {
        PumpCommand();
      } else if (cluster_.now() >= backoff_until_) {
        Dispatch();
      }
      break;
    default:
      break;
  }
}

void MitigationEngine::TrackRates() {
  const sim::OwnerCounters& counters = cluster_.counters(victim_);
  const bool moved = rate_place_.host != victim_.host ||
                     rate_place_.id != victim_.id;
  if (rate_primed_ && !moved) {
    const double da =
        static_cast<double>(counters.llc_accesses - last_access_);
    const double dm = static_cast<double>(counters.llc_misses - last_miss_);
    if (ewma_primed_) {
      ewma_access_ += kRateAlpha * (da - ewma_access_);
      ewma_miss_ += kRateAlpha * (dm - ewma_miss_);
    } else {
      ewma_access_ = da;
      ewma_miss_ = dm;
      ewma_primed_ = true;
    }
    if (state_ == MitigationState::kVerifying) {
      verify_access_ += da;
      verify_miss_ += dm;
      if (++verify_ticks_ >= config_.verify_window) EvaluateVerify();
    }
  }
  last_access_ = counters.llc_accesses;
  last_miss_ = counters.llc_misses;
  rate_place_ = victim_;
  rate_primed_ = true;
}

void MitigationEngine::EmitMitigationRecord() {
  if (!alarm_tel_) return;
  const Tick now = cluster_.now();
  if (alarm_tel_->tracer().enabled(tel::Layer::kEval)) {
    alarm_tel_->tracer().Emit(
        tel::MakeEvent(now, tel::Layer::kEval,
                       fallback_ ? "mitigation_fallback"
                                 : "mitigation_applied",
                       victim_.id)
            .Str("policy", MitigationPolicyName(applied_))
            .Num("attributed_attacker", static_cast<double>(attacker_)));
  }
  tel::AuditRecord r;
  r.tick = now;
  r.detector = "MitigationEngine";
  r.check = "mitigation";
  r.channel = MitigationPolicyName(applied_);
  r.value = static_cast<double>(attacker_);
  r.violation = fallback_;
  r.alarm = true;
  alarm_tel_->audit().Append(r);
}

void MitigationEngine::AuditStep(const char* name, double value,
                                 bool violation) {
  if (!alarm_tel_) return;
  const Tick now = cluster_.now();
  if (alarm_tel_->tracer().enabled(tel::Layer::kEval)) {
    alarm_tel_->tracer().Emit(
        tel::MakeEvent(now, tel::Layer::kEval, name, victim_.id)
            .Str("state", MitigationStateName(state_))
            .Num("value", value));
  }
  tel::AuditRecord r;
  r.tick = now;
  r.detector = "MitigationEngine";
  r.check = "actuation";
  r.channel = name;
  r.value = value;
  r.violation = violation;
  r.alarm = false;
  alarm_tel_->audit().Append(r);
}

}  // namespace sds::cluster
