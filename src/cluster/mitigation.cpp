#include "cluster/mitigation.h"

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace sds::cluster {

namespace tel = sds::telemetry;

const char* MitigationPolicyName(MitigationPolicy policy) {
  switch (policy) {
    case MitigationPolicy::kNone:
      return "none";
    case MitigationPolicy::kMigrateVictim:
      return "migrate-victim";
    case MitigationPolicy::kQuarantineAttacker:
      return "quarantine-attacker";
  }
  return "?";
}

MitigationEngine::MitigationEngine(Cluster& cluster, const VmRef& victim,
                                   MitigationPolicy policy, int spare_host)
    : cluster_(cluster),
      victim_(victim),
      policy_(policy),
      spare_host_(spare_host) {
  SDS_CHECK(victim.valid(), "mitigation needs a valid victim placement");
  SDS_CHECK(policy == MitigationPolicy::kNone ||
                (spare_host >= 0 && spare_host < cluster.host_count() &&
                 spare_host != victim.host),
            "spare host must exist and differ from the victim's host");
  if (tel::Telemetry* t = cluster_.machine(victim_.host).telemetry()) {
    prof_ = &t->profiler();
    span_mitigate_ = prof_->RegisterSpan("cluster.mitigate");
  }
}

void MitigationEngine::OnAlarm(OwnerId attributed_attacker) {
  if (mitigated_ || policy_ == MitigationPolicy::kNone) return;
  SDS_PROFILE_SPAN(prof_, span_mitigate_);

  // Quarantine needs a culprit that is a real co-tenant; anything else
  // falls back to migrating the victim (recorded as such, and audited — a
  // provider reviewing a quarantine policy that keeps migrating instead
  // needs to see WHY each alarm went unattributed).
  const bool fallback =
      policy_ == MitigationPolicy::kQuarantineAttacker &&
      (attributed_attacker == 0 || attributed_attacker == victim_.id);
  if (policy_ == MitigationPolicy::kQuarantineAttacker && !fallback) {
    VmRef attacker;
    attacker.host = victim_.host;
    attacker.id = attributed_attacker;
    cluster_.StopVm(attacker);
    applied_ = MitigationPolicy::kQuarantineAttacker;
  } else {
    // Unattributed alarm (or migrate policy): move the victim out instead.
    victim_ = cluster_.Migrate(victim_, spare_host_);
    applied_ = MitigationPolicy::kMigrateVictim;
  }
  mitigated_ = true;
  mitigation_tick_ = cluster_.now();

  if (tel::Telemetry* t = cluster_.machine(victim_.host).telemetry()) {
    if (t->tracer().enabled(tel::Layer::kEval)) {
      t->tracer().Emit(
          tel::MakeEvent(mitigation_tick_, tel::Layer::kEval,
                         fallback ? "mitigation_fallback"
                                  : "mitigation_applied",
                         victim_.id)
              .Str("policy", MitigationPolicyName(applied_))
              .Num("attributed_attacker",
                   static_cast<double>(attributed_attacker)));
    }
    tel::AuditRecord r;
    r.tick = mitigation_tick_;
    r.detector = "MitigationEngine";
    r.check = "mitigation";
    r.channel = MitigationPolicyName(applied_);
    r.value = static_cast<double>(attributed_attacker);
    r.violation = fallback;
    r.alarm = true;
    t->audit().Append(r);
  }
}

}  // namespace sds::cluster
