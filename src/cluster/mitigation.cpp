#include "cluster/mitigation.h"

#include "common/check.h"

namespace sds::cluster {

const char* MitigationPolicyName(MitigationPolicy policy) {
  switch (policy) {
    case MitigationPolicy::kNone:
      return "none";
    case MitigationPolicy::kMigrateVictim:
      return "migrate-victim";
    case MitigationPolicy::kQuarantineAttacker:
      return "quarantine-attacker";
  }
  return "?";
}

MitigationEngine::MitigationEngine(Cluster& cluster, const VmRef& victim,
                                   MitigationPolicy policy, int spare_host)
    : cluster_(cluster),
      victim_(victim),
      policy_(policy),
      spare_host_(spare_host) {
  SDS_CHECK(victim.valid(), "mitigation needs a valid victim placement");
  SDS_CHECK(policy == MitigationPolicy::kNone ||
                (spare_host >= 0 && spare_host < cluster.host_count() &&
                 spare_host != victim.host),
            "spare host must exist and differ from the victim's host");
}

void MitigationEngine::OnAlarm(OwnerId attributed_attacker) {
  if (mitigated_ || policy_ == MitigationPolicy::kNone) return;

  if (policy_ == MitigationPolicy::kQuarantineAttacker &&
      attributed_attacker != 0 && attributed_attacker != victim_.id) {
    VmRef attacker;
    attacker.host = victim_.host;
    attacker.id = attributed_attacker;
    cluster_.StopVm(attacker);
    applied_ = MitigationPolicy::kQuarantineAttacker;
  } else {
    // Unattributed alarm (or migrate policy): move the victim out instead.
    victim_ = cluster_.Migrate(victim_, spare_host_);
    applied_ = MitigationPolicy::kMigrateVictim;
  }
  mitigated_ = true;
  mitigation_tick_ = cluster_.now();
}

}  // namespace sds::cluster
