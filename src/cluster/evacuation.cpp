#include "cluster/evacuation.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace sds::cluster {

const char* EvacuationOutcomeName(EvacuationOutcome outcome) {
  switch (outcome) {
    case EvacuationOutcome::kPending:
      return "pending";
    case EvacuationOutcome::kMigrated:
      return "migrated";
    case EvacuationOutcome::kThrottledInPlace:
      return "throttled-in-place";
    case EvacuationOutcome::kAbandoned:
      return "abandoned";
  }
  return "?";
}

EvacuationEngine::EvacuationEngine(Cluster& cluster, HostLifecycle& lifecycle,
                                   Actuator& actuator,
                                   const EvacuationConfig& config)
    : cluster_(cluster),
      lifecycle_(lifecycle),
      actuator_(actuator),
      config_(config) {
  SDS_CHECK(lifecycle.host_count() == cluster.host_count(),
            "lifecycle host count must match the cluster");
  SDS_CHECK(config_.command_timeout > 0, "command timeout must be positive");
  SDS_CHECK(config_.max_attempts >= 1, "need at least one attempt");
  SDS_CHECK(config_.backoff_base >= 1 &&
                config_.backoff_cap >= config_.backoff_base,
            "bad backoff range");
  SDS_CHECK(config_.throttle_ticks > 0, "throttle duration must be positive");
}

bool EvacuationEngine::NeedsEvacuation(int host) const {
  switch (lifecycle_.state(host)) {
    case HostState::kDown:
    case HostState::kDead:
      return true;
    case HostState::kDraining:
      return config_.evacuate_draining;
    case HostState::kUp:
    case HostState::kDegraded:
    case HostState::kRecovering:
      return false;
  }
  return false;
}

int EvacuationEngine::PickDestination(int source_host) const {
  int best = -1;
  int best_free = -1;
  for (int h = 0; h < cluster_.host_count(); ++h) {
    if (h == source_host) continue;
    if (!lifecycle_.placeable(h)) continue;
    if (!actuator_.host_usable(h)) continue;
    if (!cluster_.HasCapacity(h)) continue;
    const int capacity = cluster_.vm_capacity(h);
    const int free = capacity == 0
                         ? std::numeric_limits<int>::max() -
                               cluster_.runnable_vms(h)
                         : capacity - cluster_.runnable_vms(h);
    if (free > best_free) {  // strict: ties keep the lowest host id
      best_free = free;
      best = h;
    }
  }
  return best;
}

Tick EvacuationEngine::Backoff(int attempts) const {
  Tick backoff = config_.backoff_base;
  for (int i = 1; i < attempts && backoff < config_.backoff_cap; ++i) {
    backoff *= 2;
  }
  return std::min(backoff, config_.backoff_cap);
}

void EvacuationEngine::StartTasks() {
  for (int host = 0; host < cluster_.host_count(); ++host) {
    if (!NeedsEvacuation(host)) continue;
    const vm::Hypervisor& hv = cluster_.hypervisor(host);
    for (OwnerId id = 1; id <= hv.vm_count(); ++id) {
      VmRef vm;
      vm.host = host;
      vm.id = id;
      if (!cluster_.IsRunnable(vm)) continue;
      const bool tracked =
          std::any_of(tasks_.begin(), tasks_.end(), [&vm](const Task& t) {
            return t.vm.host == vm.host && t.vm.id == vm.id;
          });
      if (tracked) continue;
      Task task;
      task.record = records_.size();
      task.vm = vm;
      task.next_attempt = cluster_.now();
      tasks_.push_back(task);
      EvacuationRecord record;
      record.from = vm;
      record.started = cluster_.now();
      records_.push_back(record);
      ++stats_.started;
    }
  }
}

void EvacuationEngine::FinishMigrated(Task& task, const VmRef& placement) {
  EvacuationRecord& record = records_[task.record];
  record.to = placement;
  record.finished = cluster_.now();
  record.attempts = task.attempts;
  record.outcome = EvacuationOutcome::kMigrated;
  ++stats_.migrated;
  stats_.evacuation_ticks +=
      static_cast<std::uint64_t>(record.finished - record.started);
  task.done = true;
  if (on_migrated_) on_migrated_(record.from, placement);
}

void EvacuationEngine::FinishThrottled(Task& task) {
  EvacuationRecord& record = records_[task.record];
  record.finished = cluster_.now();
  record.attempts = task.attempts;
  record.outcome = EvacuationOutcome::kThrottledInPlace;
  ++stats_.throttled_in_place;
  cluster_.hypervisor(task.vm.host)
      .ThrottleVm(task.vm.id, config_.throttle_ticks);
  task.done = true;
}

void EvacuationEngine::DriveTask(Task& task) {
  const Tick now = cluster_.now();

  if (task.command != 0) {
    const CommandResult& result = actuator_.result(task.command);
    switch (result.status) {
      case CommandStatus::kSucceeded:
        FinishMigrated(task, result.placement);
        return;
      case CommandStatus::kFailed:
      case CommandStatus::kCancelled:
        task.command = 0;
        ++stats_.retries;
        task.next_attempt = now + Backoff(task.attempts);
        return;
      case CommandStatus::kInFlight:
        if (now - task.dispatched >= config_.command_timeout) {
          // Lost (or pathologically slow) command: cancel so a re-dispatch
          // cannot double-actuate, then back off and retry.
          actuator_.Cancel(task.command);
          task.command = 0;
          ++stats_.timeouts;
          task.next_attempt = now + Backoff(task.attempts);
        }
        return;
    }
  }

  if (now < task.next_attempt) return;

  if (!cluster_.IsRunnable(task.vm)) {
    EvacuationRecord& record = records_[task.record];
    record.finished = now;
    record.attempts = task.attempts;
    record.outcome = EvacuationOutcome::kAbandoned;
    ++stats_.abandoned;
    task.done = true;
    return;
  }

  if (task.attempts >= config_.max_attempts) {
    FinishThrottled(task);
    return;
  }

  const int dest = PickDestination(task.vm.host);
  if (dest < 0) {
    ++stats_.no_destination;
    ++task.attempts;
    task.next_attempt = now + Backoff(task.attempts);
    return;
  }

  ++task.attempts;
  task.command = actuator_.SubmitMigrate(task.vm, dest);
  task.dispatched = now;
  // A null actuation plan completes commands synchronously at submit;
  // process the terminal result in the same tick so fault-free evacuation
  // converges in one pass.
  const CommandResult& result = actuator_.result(task.command);
  if (result.status == CommandStatus::kSucceeded) {
    FinishMigrated(task, result.placement);
  } else if (result.status == CommandStatus::kFailed) {
    task.command = 0;
    ++stats_.retries;
    task.next_attempt = now + Backoff(task.attempts);
  }
}

void EvacuationEngine::OnTick() {
  StartTasks();
  for (Task& task : tasks_) {
    if (!task.done) DriveTask(task);
  }
}

bool EvacuationEngine::quiescent() const {
  return std::all_of(tasks_.begin(), tasks_.end(),
                     [](const Task& t) { return t.done; });
}

}  // namespace sds::cluster
