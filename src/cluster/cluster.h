// A small multi-host cluster on top of the single-machine simulator.
//
// The paper's Discussion (Section 6) frames detection as the trigger for a
// provider response — "take proper actions (e.g., VM migrations) when they
// happen". This module provides the substrate for that: several simulated
// hosts ticking in lockstep, VM deployment by factory, and migration.
//
// Migration semantics: stop-and-restart. The source VM stops; a fresh
// instance of the same workload starts on the destination host (its factory
// is retained at deployment time). This models the contention-relief effect
// of migration — the property the mitigation experiments measure — without
// simulating live-migration state transfer.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/machine.h"
#include "vm/hypervisor.h"

namespace sds::cluster {

class HostLifecycle;

using WorkloadFactory = std::function<std::unique_ptr<vm::Workload>()>;

struct HostConfig {
  sim::MachineConfig machine;
  vm::HypervisorConfig hypervisor;
  // Maximum RUNNABLE VMs this host admits; 0 = unlimited (the default, which
  // preserves pre-capacity behavior). Stopped/quarantined VMs release their
  // slot, so a quarantine frees capacity for a later migration.
  int vm_capacity = 0;
};

// Identifies a VM placement within the cluster.
struct VmRef {
  int host = -1;
  OwnerId id = 0;
  bool valid() const { return host >= 0 && id != 0; }
};

class Cluster {
 public:
  Cluster(int hosts, const HostConfig& config, std::uint64_t seed);
  // Heterogeneous cluster: one config per host (capacity, telemetry handle,
  // machine geometry may all differ).
  Cluster(const std::vector<HostConfig>& hosts, std::uint64_t seed);

  // Deploys a VM built by `factory` on `host`. The factory is retained so
  // the VM can be re-instantiated on migration. Aborts when the host is at
  // capacity (use HasCapacity for a non-fatal check).
  VmRef Deploy(int host, const std::string& name, WorkloadFactory factory);

  // Advances every host by one tick. With a lifecycle attached, hosts that
  // are down / recovering / dead (or skipping a degraded tick) do NOT tick:
  // their machines freeze in place, VM state intact, until the host serves
  // again or the evacuation engine moves the VMs off.
  void RunTick();
  Tick now() const;

  // Attaches the host state machine (DESIGN.md §17). Non-owning; the
  // lifecycle must outlive the cluster and cover the same host count.
  // Pass nullptr to detach. RunTick then drives lifecycle->BeginTick and
  // gates each host on lifecycle->serving — with a null HostFaultPlan that
  // gate is always open and the attachment is bit-transparent.
  void AttachLifecycle(HostLifecycle* lifecycle);
  HostLifecycle* lifecycle() { return lifecycle_; }

  // True when `host` executes the current tick (always true without a
  // lifecycle).
  bool host_serving(int host) const;
  // True when a migration may land on `host` per the lifecycle (always true
  // without one). The Actuator consults this at execution time, so a
  // command completing into a host that died in flight fails with
  // kHostDown instead of placing a VM on a dead machine.
  bool host_placeable(int host) const;

  // Stop-and-restart migration; returns the new placement. The source VM
  // remains on its host in the stopped state (its counters freeze). The
  // source must be runnable and the destination must have capacity; callers
  // that cannot guarantee either route through cluster::Actuator, which
  // turns these aborts into retryable command failures.
  VmRef Migrate(const VmRef& ref, int destination_host);

  // Stops a VM in place (the provider quarantining a suspected attacker).
  void StopVm(const VmRef& ref);

  // Restarts a stopped VM in place (rollback of a quarantine). The host
  // must have capacity for it to become runnable again.
  void ResumeVm(const VmRef& ref);

  // True when `host` can admit one more runnable VM.
  bool HasCapacity(int host) const;
  // True when the referenced VM is in the running state.
  bool IsRunnable(const VmRef& ref) const;

  int host_count() const { return static_cast<int>(hosts_.size()); }
  sim::Machine& machine(int host);
  vm::Hypervisor& hypervisor(int host);
  const sim::OwnerCounters& counters(const VmRef& ref);

  // Number of runnable VMs on a host (capacity/balance diagnostics).
  int runnable_vms(int host) const;
  // Configured capacity of a host (0 = unlimited).
  int vm_capacity(int host) const;

 private:
  struct Host {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<vm::Hypervisor> hypervisor;
    int vm_capacity = 0;  // 0 = unlimited
  };
  struct Record {
    std::string name;
    WorkloadFactory factory;
  };

  const Record& RecordFor(const VmRef& ref) const;

  std::vector<Host> hosts_;
  // records_[host][owner-1] = deployment record.
  std::vector<std::vector<Record>> records_;
  // Cluster-global tick counter. Host 0's machine clock stops when host 0
  // is down, so the cluster keeps its own monotonic time (identical to the
  // old hosts_.front() clock whenever every host ticks).
  Tick tick_ = 0;
  HostLifecycle* lifecycle_ = nullptr;
};

}  // namespace sds::cluster
