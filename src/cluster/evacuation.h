// Automatic VM evacuation of dead and draining hosts (DESIGN.md §17).
//
// The engine watches the HostLifecycle every tick; when a host is down,
// dead or draining, each of its runnable VMs gets an evacuation task that
// routes a migration through the shared Actuator (never Cluster::Migrate
// directly — the det-actuation-idempotent contract), with capacity-aware
// placement, retries with exponential backoff, and per-command timeouts.
// When every attempt is exhausted — typically because no spare host has
// room — the task falls back to throttling the VM in place: the provider
// admits it cannot move the VM and caps its damage where it stands (the
// same terminal fallback the MitigationEngine escalates to).
//
// Placement: the usable destination (lifecycle-placeable, no injected down
// window, spare capacity) with the most free slots wins; ties break to the
// lowest host id, so placement is deterministic.
//
// Detector handoff seam: cluster cannot depend on the obs envelope layer
// (they are DAG siblings), so the engine only REPORTS completed migrations
// through set_on_migrated; eval-layer harnesses hang the warm detector
// handoff (obs/handoff.h) off that hook.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/actuator.h"
#include "cluster/cluster.h"
#include "cluster/host_lifecycle.h"
#include "common/types.h"

namespace sds::cluster {

struct EvacuationConfig {
  // Ticks a submitted migration may stay unacknowledged before the engine
  // cancels it (catches lost commands) and retries.
  Tick command_timeout = 64;
  // Attempts (submissions or no-destination scans) per VM before the
  // throttle-in-place fallback.
  int max_attempts = 5;
  // Exponential backoff between attempts: base * 2^(attempt-1), capped.
  Tick backoff_base = 8;
  Tick backoff_cap = 64;
  // Throttle duration of the in-place fallback.
  Tick throttle_ticks = 4000;
  // Also evacuate draining hosts (administrative drains), not just
  // down/dead ones.
  bool evacuate_draining = true;
};

enum class EvacuationOutcome : std::uint8_t {
  kPending,
  kMigrated,
  kThrottledInPlace,
  // The VM stopped being runnable while its task was pending (someone else
  // stopped or quarantined it) — nothing left to evacuate.
  kAbandoned,
};
const char* EvacuationOutcomeName(EvacuationOutcome outcome);

struct EvacuationRecord {
  VmRef from;
  VmRef to;  // valid only when outcome == kMigrated
  Tick started = 0;
  Tick finished = kInvalidTick;
  int attempts = 0;
  EvacuationOutcome outcome = EvacuationOutcome::kPending;
};

struct EvacuationStats {
  std::uint64_t started = 0;
  std::uint64_t migrated = 0;
  std::uint64_t throttled_in_place = 0;
  std::uint64_t retries = 0;         // failed attempts that were retried
  std::uint64_t timeouts = 0;        // commands cancelled after the timeout
  std::uint64_t no_destination = 0;  // scans that found no usable spare
  std::uint64_t abandoned = 0;       // source VM vanished mid-evacuation
  // Sum of (finished - started) over migrated VMs — evacuation convergence.
  std::uint64_t evacuation_ticks = 0;
};

class EvacuationEngine {
 public:
  // All references are non-owning and must outlive the engine; `actuator`
  // must drive the same `cluster`.
  EvacuationEngine(Cluster& cluster, HostLifecycle& lifecycle,
                   Actuator& actuator, const EvacuationConfig& config = {});

  // Called once per cluster tick (after Cluster::RunTick and
  // Actuator::OnTick). Starts tasks for newly-stranded VMs and drives the
  // retry machinery of the active ones.
  void OnTick();

  // Invoked after every successful evacuation migration with the old and
  // new placement, at a tick boundary — the warm detector-state handoff
  // hangs off this.
  using MigratedHook = std::function<void(const VmRef& from, const VmRef& to)>;
  void set_on_migrated(MigratedHook hook) { on_migrated_ = std::move(hook); }

  // True when no evacuation task is still pending.
  bool quiescent() const;

  const EvacuationStats& stats() const { return stats_; }
  const std::vector<EvacuationRecord>& records() const { return records_; }
  const EvacuationConfig& config() const { return config_; }

 private:
  struct Task {
    std::size_t record = 0;  // index into records_
    VmRef vm;
    CommandId command = 0;  // 0 = none in flight
    Tick dispatched = kInvalidTick;
    Tick next_attempt = 0;
    int attempts = 0;
    bool done = false;
  };

  bool NeedsEvacuation(int host) const;
  // Best destination for one more VM, or -1 when no usable host has room.
  int PickDestination(int source_host) const;
  Tick Backoff(int attempts) const;
  void StartTasks();
  void DriveTask(Task& task);
  void FinishMigrated(Task& task, const VmRef& placement);
  void FinishThrottled(Task& task);

  Cluster& cluster_;
  HostLifecycle& lifecycle_;
  Actuator& actuator_;
  EvacuationConfig config_;
  // Single-thread shard affinity: owned by the tick loop that owns the
  // cluster, like the lifecycle itself.
  std::vector<Task> tasks_ SDS_SHARD_OWNED;
  std::vector<EvacuationRecord> records_ SDS_SHARD_OWNED;
  EvacuationStats stats_ SDS_SHARD_OWNED;
  MigratedHook on_migrated_;
};

}  // namespace sds::cluster
