#include "cluster/host_lifecycle.h"

#include "common/check.h"

namespace sds::cluster {

const char* HostStateName(HostState state) {
  switch (state) {
    case HostState::kUp:
      return "up";
    case HostState::kDegraded:
      return "degraded";
    case HostState::kDown:
      return "down";
    case HostState::kRecovering:
      return "recovering";
    case HostState::kDraining:
      return "draining";
    case HostState::kDead:
      return "dead";
  }
  return "?";
}

HostLifecycle::HostLifecycle(int hosts, const fault::HostFaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {
  SDS_CHECK(hosts >= 1, "lifecycle needs at least one host");
  SDS_CHECK(plan_.down_min_ticks > 0 &&
                plan_.down_max_ticks >= plan_.down_min_ticks,
            "bad down-window range");
  SDS_CHECK(plan_.degrade_min_ticks > 0 &&
                plan_.degrade_max_ticks >= plan_.degrade_min_ticks,
            "bad degrade-window range");
  SDS_CHECK(plan_.degrade_stride >= 2, "degrade stride must be >= 2");
  SDS_CHECK(plan_.recovery_min_ticks >= 0 &&
                plan_.recovery_max_ticks >= plan_.recovery_min_ticks,
            "bad recovery-latency range");
  for (const double r : plan_.rates) {
    SDS_CHECK(r >= 0.0 && r <= 1.0, "fault rate must be a probability");
  }
  for (const fault::ScheduledHostFault& f : plan_.scheduled) {
    SDS_CHECK(f.host >= 0 && f.host < hosts, "scheduled fault: no such host");
    SDS_CHECK(f.kind != fault::HostFaultKind::kFlakyRecovery,
              "flaky recovery is per-attempt; it cannot be scheduled");
    SDS_CHECK(f.duration >= 0, "scheduled fault duration must be >= 0");
  }
  states_.assign(static_cast<std::size_t>(hosts), HostState::kUp);
  until_.assign(static_cast<std::size_t>(hosts), 0);
  degrade_entered_.assign(static_cast<std::size_t>(hosts), 0);
}

void HostLifecycle::Transition(Tick now, int host, HostState to) {
  auto& state = states_[static_cast<std::size_t>(host)];
  if (state == to) return;
  transitions_.push_back(HostTransition{now, host, state, to});
  state = to;
}

void HostLifecycle::EnterDown(Tick now, int host, Tick duration) {
  until_[static_cast<std::size_t>(host)] = now + duration;
  ++stats_.crashes;
  Transition(now, host, HostState::kDown);
}

void HostLifecycle::BeginTick(Tick now) {
  now_ = now;
  if (!plan_.enabled()) return;
  using K = fault::HostFaultKind;

  // Scheduled faults first — deterministic, no RNG consumed.
  for (const fault::ScheduledHostFault& f : plan_.scheduled) {
    if (f.tick != now) continue;
    const auto h = static_cast<std::size_t>(f.host);
    if (states_[h] == HostState::kDead) continue;
    ++stats_.injected[static_cast<std::size_t>(f.kind)];
    switch (f.kind) {
      case K::kCrash:
        EnterDown(now, f.host,
                  f.duration > 0 ? f.duration : plan_.down_min_ticks);
        break;
      case K::kDegrade:
        if (states_[h] == HostState::kUp) {
          until_[h] =
              now + (f.duration > 0 ? f.duration : plan_.degrade_min_ticks);
          degrade_entered_[h] = now;
          ++stats_.degraded_windows;
          Transition(now, f.host, HostState::kDegraded);
        }
        break;
      case K::kPermanentDeath:
        ++stats_.permanent_deaths;
        Transition(now, f.host, HostState::kDead);
        break;
      case K::kFlakyRecovery:
      case K::kKindCount:
        break;  // rejected in the constructor
    }
  }

  for (int host = 0; host < host_count(); ++host) {
    const auto h = static_cast<std::size_t>(host);
    switch (states_[h]) {
      case HostState::kDead:
        ++stats_.down_ticks;
        break;
      case HostState::kDown:
        if (now >= until_[h]) {
          ++stats_.recovery_attempts;
          const Tick latency = plan_.recovery_max_ticks > 0
                                   ? rng_.UniformInt(plan_.recovery_min_ticks,
                                                     plan_.recovery_max_ticks)
                                   : 0;
          until_[h] = now + latency;
          Transition(now, host, HostState::kRecovering);
          if (latency == 0) {
            // Zero-latency recovery resolves this tick; fall through to the
            // recovering arm below by re-running the switch logic inline.
            const double flaky = plan_.rate(K::kFlakyRecovery);
            if (flaky > 0.0 && rng_.Bernoulli(flaky)) {
              ++stats_.recovery_failures;
              ++stats_.injected[static_cast<std::size_t>(K::kFlakyRecovery)];
              EnterDown(now, host,
                        rng_.UniformInt(plan_.down_min_ticks,
                                        plan_.down_max_ticks));
            } else {
              Transition(now, host, HostState::kUp);
              break;
            }
          }
        }
        ++stats_.down_ticks;
        break;
      case HostState::kRecovering:
        if (now >= until_[h]) {
          const double flaky = plan_.rate(K::kFlakyRecovery);
          if (flaky > 0.0 && rng_.Bernoulli(flaky)) {
            ++stats_.recovery_failures;
            ++stats_.injected[static_cast<std::size_t>(K::kFlakyRecovery)];
            EnterDown(now, host,
                      rng_.UniformInt(plan_.down_min_ticks,
                                      plan_.down_max_ticks));
            ++stats_.down_ticks;
          } else {
            Transition(now, host, HostState::kUp);
          }
          break;
        }
        ++stats_.down_ticks;
        break;
      case HostState::kDegraded:
        if (now >= until_[h]) {
          Transition(now, host, HostState::kUp);
        } else if ((now - degrade_entered_[h]) % plan_.degrade_stride != 0) {
          ++stats_.degraded_skipped;
        }
        break;
      case HostState::kUp:
      case HostState::kDraining: {
        // Bernoulli draws in a fixed kind order; the first hit wins but
        // every applicable kind consumes its draw, so outcomes never shift
        // the stream (same discipline as the Actuator).
        bool hit = false;
        for (std::size_t k = 0; k < fault::kHostFaultKindCount; ++k) {
          const auto kind = static_cast<K>(k);
          if (kind == K::kFlakyRecovery) continue;  // per-attempt, not here
          if (kind == K::kDegrade && states_[h] == HostState::kDraining) {
            continue;  // draining hosts only crash or die
          }
          const double r = plan_.rate(kind);
          if (r <= 0.0 || !rng_.Bernoulli(r)) continue;
          if (hit) continue;
          hit = true;
          ++stats_.injected[k];
          switch (kind) {
            case K::kCrash:
              EnterDown(now, host,
                        rng_.UniformInt(plan_.down_min_ticks,
                                        plan_.down_max_ticks));
              ++stats_.down_ticks;
              break;
            case K::kDegrade:
              until_[h] = now + rng_.UniformInt(plan_.degrade_min_ticks,
                                                plan_.degrade_max_ticks);
              degrade_entered_[h] = now;
              ++stats_.degraded_windows;
              Transition(now, host, HostState::kDegraded);
              break;
            case K::kPermanentDeath:
              ++stats_.permanent_deaths;
              Transition(now, host, HostState::kDead);
              ++stats_.down_ticks;
              break;
            case K::kFlakyRecovery:
            case K::kKindCount:
              break;
          }
        }
        break;
      }
    }
  }
}

bool HostLifecycle::serving(int host) const {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  const auto h = static_cast<std::size_t>(host);
  switch (states_[h]) {
    case HostState::kUp:
    case HostState::kDraining:
      return true;
    case HostState::kDegraded:
      return (now_ - degrade_entered_[h]) % plan_.degrade_stride == 0;
    case HostState::kDown:
    case HostState::kRecovering:
    case HostState::kDead:
      return false;
  }
  return false;
}

bool HostLifecycle::placeable(int host) const {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  const HostState s = states_[static_cast<std::size_t>(host)];
  return s == HostState::kUp || s == HostState::kDegraded;
}

HostState HostLifecycle::state(int host) const {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  return states_[static_cast<std::size_t>(host)];
}

int HostLifecycle::up_hosts() const {
  int up = 0;
  for (const HostState s : states_) {
    if (s == HostState::kUp || s == HostState::kDegraded ||
        s == HostState::kDraining) {
      ++up;
    }
  }
  return up;
}

void HostLifecycle::Drain(int host) {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  if (states_[static_cast<std::size_t>(host)] == HostState::kUp) {
    Transition(now_, host, HostState::kDraining);
  }
}

void HostLifecycle::Undrain(int host) {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  if (states_[static_cast<std::size_t>(host)] == HostState::kDraining) {
    Transition(now_, host, HostState::kUp);
  }
}

}  // namespace sds::cluster
