#include "cluster/actuator.h"

#include <string>

#include "common/check.h"
#include "telemetry/telemetry.h"

namespace sds::cluster {

namespace tel = sds::telemetry;

const char* ActuationOpName(ActuationOp op) {
  switch (op) {
    case ActuationOp::kMigrate:
      return "migrate";
    case ActuationOp::kStop:
      return "stop";
    case ActuationOp::kResume:
      return "resume";
  }
  return "?";
}

const char* CommandStatusName(CommandStatus status) {
  switch (status) {
    case CommandStatus::kInFlight:
      return "in-flight";
    case CommandStatus::kSucceeded:
      return "succeeded";
    case CommandStatus::kFailed:
      return "failed";
    case CommandStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

const char* ActuationErrorName(ActuationError error) {
  switch (error) {
    case ActuationError::kNone:
      return "none";
    case ActuationError::kAborted:
      return "aborted";
    case ActuationError::kHostDown:
      return "host-down";
    case ActuationError::kNoCapacity:
      return "no-capacity";
    case ActuationError::kRejected:
      return "rejected";
    case ActuationError::kConflict:
      return "conflict";
    case ActuationError::kSourceGone:
      return "source-gone";
  }
  return "?";
}

namespace {

// Which fault kinds can hit which command type. Inapplicable kinds never
// consume a draw, so a stop-only workload and a migrate-only workload see
// independent, stable fault schedules from the same plan seed.
bool Applies(fault::ActuationFaultKind kind, ActuationOp op) {
  using K = fault::ActuationFaultKind;
  switch (kind) {
    case K::kCommandLost:
      return true;
    case K::kMigrationAbort:
    case K::kSpareHostDown:
    case K::kSpareAtCapacity:
      return op == ActuationOp::kMigrate;
    case K::kStopRejected:
      return op != ActuationOp::kMigrate;
    case K::kKindCount:
      break;
  }
  return false;
}

}  // namespace

Actuator::Actuator(Cluster& cluster, const fault::ActuationFaultPlan& plan)
    : cluster_(cluster), plan_(plan), rng_(plan.seed) {
  SDS_CHECK(plan_.latency_min_ticks >= 0 &&
                plan_.latency_max_ticks >= plan_.latency_min_ticks,
            "bad actuation latency range");
  SDS_CHECK(plan_.host_down_min_ticks > 0 &&
                plan_.host_down_max_ticks >= plan_.host_down_min_ticks,
            "bad host-down duration range");
  for (const double r : plan_.rates) {
    SDS_CHECK(r >= 0.0 && r <= 1.0, "fault rate must be a probability");
  }
  host_down_until_.assign(static_cast<std::size_t>(cluster_.host_count()), 0);
  telemetry_ = cluster_.machine(0).telemetry();
  if (telemetry_) {
    for (std::size_t k = 0; k < fault::kActuationFaultKindCount; ++k) {
      t_injected_[k] = telemetry_->metrics().GetCounter(
          std::string("actuation.injected.") +
          fault::ActuationFaultKindName(
              static_cast<fault::ActuationFaultKind>(k)));
    }
    t_commands_ = telemetry_->metrics().GetCounter("actuation.commands");
    t_failed_ = telemetry_->metrics().GetCounter("actuation.failed");
  }
}

CommandId Actuator::SubmitMigrate(const VmRef& vm, int destination_host) {
  SDS_CHECK(destination_host >= 0 && destination_host < cluster_.host_count(),
            "no such destination host");
  SDS_CHECK(destination_host != vm.host,
            "migration target must be a different host");
  return Submit(ActuationOp::kMigrate, vm, destination_host);
}

CommandId Actuator::SubmitStop(const VmRef& vm) {
  return Submit(ActuationOp::kStop, vm, -1);
}

CommandId Actuator::SubmitResume(const VmRef& vm) {
  return Submit(ActuationOp::kResume, vm, -1);
}

CommandId Actuator::Submit(ActuationOp op, const VmRef& vm,
                           int destination_host) {
  SDS_CHECK(vm.valid(), "invalid VM reference");
  const Tick now = cluster_.now();

  Command command;
  command.result.op = op;
  command.result.target = vm;
  command.result.destination = destination_host;
  command.result.placement = vm;
  command.result.submitted = now;

  if (HasOutstanding(vm)) {
    // Idempotency guard: never two concurrent actuations of one VM. The
    // rejection is synchronous and consumes no fault draws, so a duplicate
    // dispatch cannot shift the fault schedule of the retried original.
    ++stats_.conflicts;
    command.result.status = CommandStatus::kFailed;
    command.result.error = ActuationError::kConflict;
    command.result.completed = now;
    commands_.push_back(command);
    return static_cast<CommandId>(commands_.size());
  }

  ++stats_.commands;
  if (t_commands_) t_commands_->Add();

  // Fault draws, in a fixed order per accepted submission: latency first,
  // then one Bernoulli per applicable enabled kind in enum order (outcomes
  // do not affect later draws). The first hit wins; kSpareHostDown draws its
  // window length immediately so the stream stays aligned.
  Tick latency = 0;
  if (plan_.latency_max_ticks > 0) {
    latency = rng_.UniformInt(plan_.latency_min_ticks, plan_.latency_max_ticks);
  }
  command.due = now + latency;

  Tick down_ticks = 0;
  for (std::size_t k = 0; k < fault::kActuationFaultKindCount; ++k) {
    const auto kind = static_cast<fault::ActuationFaultKind>(k);
    if (!Applies(kind, op)) continue;
    const double r = plan_.rate(kind);
    if (r <= 0.0 || !rng_.Bernoulli(r)) continue;
    if (kind == fault::ActuationFaultKind::kSpareHostDown) {
      down_ticks =
          rng_.UniformInt(plan_.host_down_min_ticks, plan_.host_down_max_ticks);
    }
    if (command.injected == fault::ActuationFaultKind::kKindCount) {
      command.injected = kind;
    }
  }

  if (command.injected == fault::ActuationFaultKind::kCommandLost) {
    command.lost = true;
    ++stats_.lost;
  } else if (command.injected == fault::ActuationFaultKind::kSpareHostDown &&
             down_ticks > 0) {
    auto& until =
        host_down_until_[static_cast<std::size_t>(destination_host)];
    if (now + down_ticks > until) until = now + down_ticks;
  }
  if (command.injected != fault::ActuationFaultKind::kKindCount) {
    RecordInjection(command.injected, command);
  }

  commands_.push_back(command);
  const auto id = static_cast<CommandId>(commands_.size());
  if (!command.lost && command.due <= now) Complete(commands_.back());
  return id;
}

bool Actuator::HasOutstanding(const VmRef& vm) const {
  for (const Command& c : commands_) {
    if (c.result.status == CommandStatus::kInFlight && !c.lost &&
        c.result.target.host == vm.host && c.result.target.id == vm.id) {
      return true;
    }
  }
  return false;
}

void Actuator::OnTick() {
  const Tick now = cluster_.now();
  // Completing a migration appends to commands_? It does not (Cluster holds
  // its own records), but index-based iteration stays safe regardless.
  for (std::size_t i = 0; i < commands_.size(); ++i) {
    Command& c = commands_[i];
    if (c.result.status != CommandStatus::kInFlight || c.lost) continue;
    if (c.due <= now) Complete(c);
  }
}

void Actuator::Cancel(CommandId id) {
  SDS_CHECK(id >= 1 && id <= commands_.size(), "no such command");
  Command& c = commands_[id - 1];
  if (c.result.status != CommandStatus::kInFlight) return;
  ++stats_.cancelled;
  c.lost = false;
  c.result.status = CommandStatus::kCancelled;
  c.result.completed = cluster_.now();
}

const CommandResult& Actuator::result(CommandId id) const {
  SDS_CHECK(id >= 1 && id <= commands_.size(), "no such command");
  return commands_[id - 1].result;
}

bool Actuator::host_usable(int host) const {
  SDS_CHECK(host >= 0 && host < cluster_.host_count(), "no such host");
  return cluster_.now() >= host_down_until_[static_cast<std::size_t>(host)];
}

void Actuator::Complete(Command& command) {
  using K = fault::ActuationFaultKind;
  switch (command.injected) {
    case K::kMigrationAbort:
      Finish(command, CommandStatus::kFailed, ActuationError::kAborted);
      return;
    case K::kSpareHostDown:
      Finish(command, CommandStatus::kFailed, ActuationError::kHostDown);
      return;
    case K::kSpareAtCapacity:
      Finish(command, CommandStatus::kFailed, ActuationError::kNoCapacity);
      return;
    case K::kStopRejected:
      Finish(command, CommandStatus::kFailed, ActuationError::kRejected);
      return;
    default:
      break;
  }
  Execute(command);
}

void Actuator::Execute(Command& command) {
  const VmRef& target = command.result.target;
  switch (command.result.op) {
    case ActuationOp::kMigrate: {
      const int dest = command.result.destination;
      if (!cluster_.IsRunnable(target)) {
        Finish(command, CommandStatus::kFailed, ActuationError::kSourceGone);
        return;
      }
      if (!host_usable(dest)) {
        // An earlier command knocked this host down; fail fast without
        // consuming another injection.
        Finish(command, CommandStatus::kFailed, ActuationError::kHostDown);
        return;
      }
      if (!cluster_.host_placeable(dest)) {
        // The host lifecycle took the destination down (or started draining
        // it) while this command was in flight — the mid-actuation host
        // death case. Same error as an injected down window: callers retry
        // against a fresh placement decision.
        Finish(command, CommandStatus::kFailed, ActuationError::kHostDown);
        return;
      }
      if (!cluster_.HasCapacity(dest)) {
        Finish(command, CommandStatus::kFailed, ActuationError::kNoCapacity);
        return;
      }
      command.result.placement = cluster_.Migrate(target, dest);
      Finish(command, CommandStatus::kSucceeded, ActuationError::kNone);
      return;
    }
    case ActuationOp::kStop:
      // Stopping a stopped VM is a no-op: stop is naturally idempotent.
      cluster_.StopVm(target);
      Finish(command, CommandStatus::kSucceeded, ActuationError::kNone);
      return;
    case ActuationOp::kResume:
      if (!cluster_.IsRunnable(target) && !cluster_.HasCapacity(target.host)) {
        Finish(command, CommandStatus::kFailed, ActuationError::kNoCapacity);
        return;
      }
      cluster_.ResumeVm(target);
      Finish(command, CommandStatus::kSucceeded, ActuationError::kNone);
      return;
  }
}

void Actuator::Finish(Command& command, CommandStatus status,
                      ActuationError error) {
  command.result.status = status;
  command.result.error = error;
  command.result.completed = cluster_.now();
  const auto latency =
      static_cast<std::uint64_t>(command.result.completed -
                                 command.result.submitted);
  if (status == CommandStatus::kSucceeded) {
    ++stats_.completed;
    stats_.latency_ticks += latency;
  } else if (status == CommandStatus::kFailed) {
    ++stats_.failed;
    stats_.latency_ticks += latency;
    if (t_failed_) t_failed_->Add();
  }
}

void Actuator::RecordInjection(fault::ActuationFaultKind kind,
                               const Command& command) {
  const auto k = static_cast<std::size_t>(kind);
  ++stats_.injected[k];
  if (t_injected_[k]) t_injected_[k]->Add();
  if (telemetry_ && telemetry_->tracer().enabled(tel::Layer::kFault)) {
    telemetry_->tracer().Emit(
        tel::MakeEvent(cluster_.now(), tel::Layer::kFault,
                       fault::ActuationFaultKindName(kind),
                       command.result.target.id)
            .Str("op", ActuationOpName(command.result.op))
            .Num("host", static_cast<double>(command.result.target.host)));
  }
}

}  // namespace sds::cluster
