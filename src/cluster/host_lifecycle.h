// Host state machine (DESIGN.md §17): up → degraded → down → recovering →
// up, with administrative draining and permanent death, driven by a
// deterministic fault::HostFaultPlan.
//
// The lifecycle is attached to a Cluster (Cluster::AttachLifecycle); the
// cluster calls BeginTick() once per tick BEFORE ticking hosts and then
// skips every host whose serving() is false — a down host's machine simply
// freezes (its VMs keep their state but make no progress), which is what
// makes stop-and-restart evacuation of a dead host meaningful. With a null
// plan BeginTick returns immediately and every host serves every tick, so
// the attachment is bit-transparent (pinned by
// tests/integration/hostchaos_transparency_test).
//
// Threading: lifecycle state has single-thread shard affinity — the tick
// loop that owns the cluster owns this object too, so fields are annotated
// SDS_SHARD_OWNED (ROADMAP item 1: annotate shard state as it is written)
// and sdslint's conc-shard-owned rule keeps lock acquisitions out.
#pragma once

#include <cstdint>
#include <vector>

#include "common/annotations.h"
#include "common/rng.h"
#include "common/types.h"
#include "fault/host_plan.h"

namespace sds::cluster {

enum class HostState : std::uint8_t {
  kUp,          // serving every tick
  kDegraded,    // serving one tick in degrade_stride, for a window
  kDown,        // not serving; will enter recovery when the window expires
  kRecovering,  // not serving; scheduled recovery latency before kUp
  kDraining,    // serving, but the evacuation engine is moving VMs off
  kDead,        // permanently down
};

const char* HostStateName(HostState state);

// One state transition, in tick order — the host up/down timeline consumed
// by trace_inspect --hostchaos.
struct HostTransition {
  Tick tick = 0;
  int host = 0;
  HostState from = HostState::kUp;
  HostState to = HostState::kUp;
};

class HostLifecycle {
 public:
  explicit HostLifecycle(int hosts, const fault::HostFaultPlan& plan = {});

  // Advances every host's state machine to `now`. Called by
  // Cluster::RunTick before any host ticks; calling it directly as well is
  // a bug (double fault draws). Draw order is fixed: scheduled faults
  // first, then per-host Bernoulli draws in host order, kinds in enum
  // order, so the fault schedule is a pure function of the plan.
  void BeginTick(Tick now);

  // True when `host` executes the tick BeginTick was last called for.
  bool serving(int host) const;
  // True when a migration may land on `host` (kUp or kDegraded — never
  // down, recovering, draining or dead).
  bool placeable(int host) const;

  HostState state(int host) const;
  int host_count() const { return static_cast<int>(states_.size()); }
  int up_hosts() const;

  // Administrative drain: the host keeps serving but stops accepting
  // placements, and the evacuation engine moves its VMs off. Undrain
  // returns a still-draining host to kUp.
  void Drain(int host);
  void Undrain(int host);

  const fault::HostFaultPlan& plan() const { return plan_; }
  const fault::HostFaultStats& stats() const { return stats_; }
  const std::vector<HostTransition>& transitions() const {
    return transitions_;
  }

 private:
  void Transition(Tick now, int host, HostState to);
  void EnterDown(Tick now, int host, Tick duration);

  fault::HostFaultPlan plan_;
  Rng rng_ SDS_SHARD_OWNED;
  // Per-host machine state: current state, the tick the current window
  // expires, and the tick the degrade window was entered (fixes the serve
  // phase so a degraded host serves ticks where (now - entered) %
  // degrade_stride == 0).
  std::vector<HostState> states_ SDS_SHARD_OWNED;
  std::vector<Tick> until_ SDS_SHARD_OWNED;
  std::vector<Tick> degrade_entered_ SDS_SHARD_OWNED;
  Tick now_ SDS_SHARD_OWNED = 0;
  fault::HostFaultStats stats_ SDS_SHARD_OWNED;
  std::vector<HostTransition> transitions_ SDS_SHARD_OWNED;
};

}  // namespace sds::cluster
