#include "cluster/cluster.h"

#include <algorithm>

#include "cluster/host_lifecycle.h"
#include "common/check.h"

namespace sds::cluster {

Cluster::Cluster(int hosts, const HostConfig& config, std::uint64_t seed)
    : Cluster(std::vector<HostConfig>(
                  static_cast<std::size_t>(std::max(hosts, 0)), config),
              seed) {}

Cluster::Cluster(const std::vector<HostConfig>& hosts, std::uint64_t seed) {
  SDS_CHECK(!hosts.empty(), "cluster needs at least one host");
  Rng root(seed);
  hosts_.reserve(hosts.size());
  records_.resize(hosts.size());
  for (const HostConfig& config : hosts) {
    SDS_CHECK(config.vm_capacity >= 0, "host capacity must be non-negative");
    Host host;
    host.machine = std::make_unique<sim::Machine>(config.machine);
    host.hypervisor = std::make_unique<vm::Hypervisor>(
        *host.machine, config.hypervisor, root.Fork());
    host.vm_capacity = config.vm_capacity;
    hosts_.push_back(std::move(host));
  }
}

VmRef Cluster::Deploy(int host, const std::string& name,
                      WorkloadFactory factory) {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  SDS_CHECK(factory != nullptr, "deployment needs a workload factory");
  SDS_CHECK(HasCapacity(host), "host at capacity");
  VmRef ref;
  ref.host = host;
  ref.id = hosts_[static_cast<std::size_t>(host)].hypervisor->CreateVm(
      name, factory());
  records_[static_cast<std::size_t>(host)].push_back(Record{name, factory});
  return ref;
}

void Cluster::RunTick() {
  if (lifecycle_ != nullptr) lifecycle_->BeginTick(tick_);
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    if (lifecycle_ != nullptr && !lifecycle_->serving(static_cast<int>(h))) {
      continue;
    }
    hosts_[h].hypervisor->RunTick();
  }
  ++tick_;
}

Tick Cluster::now() const { return tick_; }

void Cluster::AttachLifecycle(HostLifecycle* lifecycle) {
  SDS_CHECK(lifecycle == nullptr || lifecycle->host_count() == host_count(),
            "lifecycle host count must match the cluster");
  lifecycle_ = lifecycle;
}

bool Cluster::host_serving(int host) const {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  return lifecycle_ == nullptr || lifecycle_->serving(host);
}

bool Cluster::host_placeable(int host) const {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  return lifecycle_ == nullptr || lifecycle_->placeable(host);
}

const Cluster::Record& Cluster::RecordFor(const VmRef& ref) const {
  SDS_CHECK(ref.valid(), "invalid VM reference");
  SDS_CHECK(ref.host < host_count(), "no such host");
  const auto& host_records = records_[static_cast<std::size_t>(ref.host)];
  SDS_CHECK(ref.id <= host_records.size(), "no such VM on that host");
  return host_records[ref.id - 1];
}

VmRef Cluster::Migrate(const VmRef& ref, int destination_host) {
  SDS_CHECK(destination_host >= 0 && destination_host < host_count(),
            "no such destination host");
  SDS_CHECK(destination_host != ref.host,
            "migration target must be a different host");
  SDS_CHECK(IsRunnable(ref), "cannot migrate a VM that is not running");
  SDS_CHECK(HasCapacity(destination_host), "destination host at capacity");
  const Record record = RecordFor(ref);  // copy before mutation
  StopVm(ref);
  return Deploy(destination_host, record.name, record.factory);
}

void Cluster::StopVm(const VmRef& ref) {
  RecordFor(ref);  // validates
  hosts_[static_cast<std::size_t>(ref.host)]
      .hypervisor->vm(ref.id)
      .set_state(vm::VmState::kStopped);
}

void Cluster::ResumeVm(const VmRef& ref) {
  RecordFor(ref);  // validates
  vm::VirtualMachine& machine_vm =
      hosts_[static_cast<std::size_t>(ref.host)].hypervisor->vm(ref.id);
  if (machine_vm.state() == vm::VmState::kRunning) return;
  SDS_CHECK(HasCapacity(ref.host), "host at capacity; cannot resume");
  machine_vm.set_state(vm::VmState::kRunning);
}

bool Cluster::HasCapacity(int host) const {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  const int capacity = hosts_[static_cast<std::size_t>(host)].vm_capacity;
  return capacity == 0 || runnable_vms(host) < capacity;
}

bool Cluster::IsRunnable(const VmRef& ref) const {
  RecordFor(ref);  // validates
  return hosts_[static_cast<std::size_t>(ref.host)]
      .hypervisor->vm(ref.id)
      .runnable();
}

sim::Machine& Cluster::machine(int host) {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  return *hosts_[static_cast<std::size_t>(host)].machine;
}

vm::Hypervisor& Cluster::hypervisor(int host) {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  return *hosts_[static_cast<std::size_t>(host)].hypervisor;
}

const sim::OwnerCounters& Cluster::counters(const VmRef& ref) {
  RecordFor(ref);  // validates
  return machine(ref.host).counters(ref.id);
}

int Cluster::vm_capacity(int host) const {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  return hosts_[static_cast<std::size_t>(host)].vm_capacity;
}

int Cluster::runnable_vms(int host) const {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  const auto& hv = *hosts_[static_cast<std::size_t>(host)].hypervisor;
  int runnable = 0;
  for (OwnerId id = 1; id <= hv.vm_count(); ++id) {
    if (hv.vm(id).runnable()) ++runnable;
  }
  return runnable;
}

}  // namespace sds::cluster
