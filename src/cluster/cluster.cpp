#include "cluster/cluster.h"

#include "common/check.h"

namespace sds::cluster {

Cluster::Cluster(int hosts, const HostConfig& config, std::uint64_t seed) {
  SDS_CHECK(hosts >= 1, "cluster needs at least one host");
  Rng root(seed);
  hosts_.reserve(static_cast<std::size_t>(hosts));
  records_.resize(static_cast<std::size_t>(hosts));
  for (int h = 0; h < hosts; ++h) {
    Host host;
    host.machine = std::make_unique<sim::Machine>(config.machine);
    host.hypervisor = std::make_unique<vm::Hypervisor>(
        *host.machine, config.hypervisor, root.Fork());
    hosts_.push_back(std::move(host));
  }
}

VmRef Cluster::Deploy(int host, const std::string& name,
                      WorkloadFactory factory) {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  SDS_CHECK(factory != nullptr, "deployment needs a workload factory");
  VmRef ref;
  ref.host = host;
  ref.id = hosts_[static_cast<std::size_t>(host)].hypervisor->CreateVm(
      name, factory());
  records_[static_cast<std::size_t>(host)].push_back(Record{name, factory});
  return ref;
}

void Cluster::RunTick() {
  for (auto& host : hosts_) host.hypervisor->RunTick();
}

Tick Cluster::now() const {
  return hosts_.front().hypervisor->now();
}

const Cluster::Record& Cluster::RecordFor(const VmRef& ref) const {
  SDS_CHECK(ref.valid(), "invalid VM reference");
  SDS_CHECK(ref.host < host_count(), "no such host");
  const auto& host_records = records_[static_cast<std::size_t>(ref.host)];
  SDS_CHECK(ref.id <= host_records.size(), "no such VM on that host");
  return host_records[ref.id - 1];
}

VmRef Cluster::Migrate(const VmRef& ref, int destination_host) {
  SDS_CHECK(destination_host >= 0 && destination_host < host_count(),
            "no such destination host");
  SDS_CHECK(destination_host != ref.host,
            "migration target must be a different host");
  const Record record = RecordFor(ref);  // copy before mutation
  StopVm(ref);
  return Deploy(destination_host, record.name, record.factory);
}

void Cluster::StopVm(const VmRef& ref) {
  RecordFor(ref);  // validates
  hosts_[static_cast<std::size_t>(ref.host)]
      .hypervisor->vm(ref.id)
      .set_state(vm::VmState::kStopped);
}

sim::Machine& Cluster::machine(int host) {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  return *hosts_[static_cast<std::size_t>(host)].machine;
}

vm::Hypervisor& Cluster::hypervisor(int host) {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  return *hosts_[static_cast<std::size_t>(host)].hypervisor;
}

const sim::OwnerCounters& Cluster::counters(const VmRef& ref) {
  RecordFor(ref);  // validates
  return machine(ref.host).counters(ref.id);
}

int Cluster::runnable_vms(int host) const {
  SDS_CHECK(host >= 0 && host < host_count(), "no such host");
  const auto& hv = *hosts_[static_cast<std::size_t>(host)].hypervisor;
  int runnable = 0;
  for (OwnerId id = 1; id <= hv.vm_count(); ++id) {
    if (hv.vm(id).runnable()) ++runnable;
  }
  return runnable;
}

}  // namespace sds::cluster
