// Mitigation: the provider response a detection alarm triggers (paper
// Section 6 — "take proper actions (e.g., VM migrations)").
//
// Policies:
//   kMigrateVictim       move the protected VM to a spare host, away from
//                        whatever is attacking it (always possible, but the
//                        attacker can re-co-locate — the paper's argument
//                        for detection over pure migration);
//   kQuarantineAttacker  stop the attributed attacker VM in place (needs an
//                        attribution, e.g. the KStest identification sweep;
//                        falls back to migrating the victim when the alarm
//                        is unattributed);
//   kThrottleFallback    throttle the contention source directly through
//                        the hypervisor. Crude (it taxes every co-tenant
//                        when unattributed) but infallible — it needs no
//                        placement, no spare host, no migration — which is
//                        why it terminates every escalation chain.
//
// The engine is a ticked state machine, not a one-shot:
//
//   idle -> dispatched -> in_flight -> verifying -> settled
//                 ^            |            |
//                 |  retry w/  |  escalate  |          (chain exhausted)
//                 +- backoff --+<-----------+--------------> failed
//
// Commands route through cluster::Actuator, whose ActuationFaultPlan may
// lose, abort, or bounce them. Each attempt has a timeout; failures retry
// with capped exponential backoff; exhausted attempts escalate along
// quarantine -> migrate -> throttle. With verification enabled the engine
// watches the victim's access/miss rates after an action applies and
// escalates when contention persists; with rollback enabled a detector
// retraction (false alarm) undoes the most recent applied action.
//
// Compatibility: constructed through the legacy (policy, spare_host)
// signature — or with a default MitigationConfig and a fault-free actuator —
// the engine settles synchronously inside OnAlarm and emits exactly the
// pre-actuation-plane telemetry (one "mitigation" audit record, one
// "mitigation_applied"/"mitigation_fallback" event). The actuation golden
// test pins this bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/actuator.h"
#include "cluster/cluster.h"
#include "common/types.h"

namespace sds::telemetry {
class SpanProfiler;
class Telemetry;
}  // namespace sds::telemetry

namespace sds::cluster {

enum class MitigationPolicy : std::uint8_t {
  kNone,
  kMigrateVictim,
  kQuarantineAttacker,
  kThrottleFallback,
};

const char* MitigationPolicyName(MitigationPolicy policy);

enum class MitigationState : std::uint8_t {
  kIdle,        // no alarm yet (or alarm retracted before any action)
  kDispatched,  // command submitted this tick, result not yet seen
  kInFlight,    // command outstanding, or waiting out a retry backoff
  kVerifying,   // action applied; watching the victim's rates for efficacy
  kSettled,     // mitigation complete (and verified, when enabled)
  kFailed,      // every attempt, escalation and fallback exhausted
};

const char* MitigationStateName(MitigationState state);

struct MitigationConfig {
  MitigationPolicy policy = MitigationPolicy::kNone;
  // Receives the victim under migrate (and under quarantine's unattributed
  // fallback). Unused by kNone / kThrottleFallback.
  int spare_host = -1;

  // Ticks an outstanding command may stay unacknowledged before the engine
  // cancels it and counts the attempt as failed (catches lost commands).
  Tick command_timeout = 64;
  // Submissions per action before escalating to the next one.
  int max_attempts = 5;
  // Retry backoff: min(backoff_base << (attempt - 1), backoff_cap) ticks.
  Tick backoff_base = 8;
  Tick backoff_cap = 128;

  // Duration of the hypervisor throttle when the chain falls back to it.
  Tick throttle_ticks = 4000;
  // Whether the escalation chain ends in kThrottleFallback. Disabling it
  // makes chain exhaustion terminal (state kFailed) — useful for measuring
  // how often the fallible actions alone suffice.
  bool allow_throttle_fallback = true;
  // Escalations allowed before giving up (chain steps, not retries).
  int max_escalation_rounds = 2;

  // Efficacy verification: after an action applies, watch the victim's
  // access/miss rates for this many ticks and escalate if they have not
  // recovered. 0 (default) settles immediately on command success.
  Tick verify_window = 0;
  // Recovery test: mean access rate over the window must reach ratio x the
  // attacked-rate snapshot, OR the mean miss rate must drop below the
  // attacked rate / ratio. (Covers both throughput-crushing bus locks and
  // miss-inflating LLC cleansing.)
  double verify_recovery_ratio = 1.2;

  // Undo the most recent applied action when the detector retracts the
  // alarm (OnRetraction): un-quarantine via resume, or migrate the victim
  // back. Off by default.
  bool rollback_on_retraction = false;

  // Let the two-argument OnAlarm substitute the forensic prime suspect for
  // an unusable primary attribution (unattributed, or the victim itself)
  // before the quarantine chain is chosen. Off by default: an unattributed
  // alarm then falls back to migrating the victim as before.
  bool prefer_forensic_suspect = false;
};

struct MitigationStats {
  std::uint64_t dispatches = 0;        // command submissions, incl. retries
  std::uint64_t retries = 0;           // re-dispatches after failure/timeout
  std::uint64_t timeouts = 0;          // attempts cancelled for no ack
  std::uint64_t escalations = 0;       // chain steps taken
  std::uint64_t verify_failures = 0;   // efficacy windows that failed
  std::uint64_t rollbacks = 0;         // retractions acted on
  std::uint64_t rollback_failures = 0; // rollback commands that never landed
};

class MitigationEngine {
 public:
  // Legacy signature: default robustness knobs and an owned fault-free
  // actuator — single-shot behavior, bit-identical telemetry.
  MitigationEngine(Cluster& cluster, const VmRef& victim,
                   MitigationPolicy policy, int spare_host);

  // Full control. `actuator` may be shared with other engines / the chaos
  // harness; when nullptr the engine owns a fault-free one.
  MitigationEngine(Cluster& cluster, const VmRef& victim,
                   const MitigationConfig& config,
                   Actuator* actuator = nullptr);

  // Reports an alarm at the current cluster time. `attributed_attacker` is
  // the culprit VM if the detector identified one (0 = unattributed; only
  // meaningful on the victim's host). Acts only from kIdle: repeated alarms
  // during an active response are absorbed, but a fresh alarm after a
  // rollback re-arms the engine.
  void OnAlarm(OwnerId attributed_attacker);

  // Alarm with a second opinion: `forensic_suspect` is the attribution
  // ledger's prime suspect (detect::ForensicReport::prime_suspect; 0 when
  // the report went unattributed). With prefer_forensic_suspect set it
  // stands in for an unusable primary attribution, so a quarantine policy
  // can act on hardware evidence when the KStest identification sweep came
  // back empty. The substitution is audited (channel
  // "forensic_substitution").
  void OnAlarm(OwnerId attributed_attacker, OwnerId forensic_suspect);

  // Reports that the detector withdrew the alarm (falling edge). With
  // rollback_on_retraction: cancels an in-flight response outright, or
  // undoes the most recent applied action. Otherwise a no-op.
  void OnRetraction();

  // Advances the state machine one tick: pumps the actuator, tracks the
  // victim's rate EWMA, applies timeouts/backoff/escalation, and steps the
  // verification window. Call once per cluster tick.
  void OnTick();

  bool mitigated() const { return mitigated_; }
  Tick mitigation_tick() const { return mitigation_tick_; }
  // The victim's current placement (changes when migrated).
  const VmRef& victim() const { return victim_; }
  MitigationPolicy applied_policy() const { return applied_; }

  MitigationState state() const { return state_; }
  Tick settled_tick() const { return settled_tick_; }
  bool rolled_back() const { return rolled_back_; }
  const MitigationStats& stats() const { return stats_; }
  Actuator& actuator() { return *actuator_; }

 private:
  enum class Action : std::uint8_t { kQuarantine, kMigrate, kThrottle };

  void Dispatch();
  void PumpCommand();
  void PumpRollback();
  void OnAttemptFailed();
  void Escalate();
  void Fail();
  void ApplySuccess(const CommandResult& result);
  void ApplyThrottle();
  void Settle();
  void BeginVerify();
  void EvaluateVerify();
  void TrackRates();
  // The legacy-shaped "mitigation" audit record + applied/fallback event.
  void EmitMitigationRecord();
  // An "actuation" audit record (+ same-named kEval event) for a state-
  // machine step that deviates from the clean path. `name` must be a string
  // literal (the tracer retains the pointer).
  void AuditStep(const char* name, double value, bool violation);

  Cluster& cluster_;
  VmRef victim_;
  MitigationConfig config_;
  std::unique_ptr<Actuator> owned_actuator_;
  Actuator* actuator_ = nullptr;

  // "cluster.mitigate" profiler span around each alarm response (resolved
  // from the victim host's telemetry handle at construction). Span id is a
  // raw integer (telemetry::SpanId).
  telemetry::SpanProfiler* prof_ = nullptr;
  std::uint32_t span_mitigate_ = 0;

  // Telemetry handle pinned ONCE at alarm time to the victim's alarm-time
  // host. Every record of the incident lands there, even after a migration
  // moved the victim (and even when hosts carry distinct telemetry) — the
  // old code re-resolved after mutating victim_ and audited the wrong host.
  telemetry::Telemetry* alarm_tel_ = nullptr;

  MitigationState state_ = MitigationState::kIdle;
  std::vector<Action> chain_;
  std::size_t chain_index_ = 0;
  bool fallback_ = false;  // quarantine alarm went unattributed
  OwnerId attacker_ = 0;
  int alarm_host_ = -1;
  Tick alarm_tick_ = kInvalidTick;

  CommandId cmd_ = 0;
  Tick dispatch_tick_ = kInvalidTick;
  Tick backoff_until_ = 0;
  int attempts_ = 0;

  bool mitigated_ = false;
  Tick mitigation_tick_ = kInvalidTick;
  Tick settled_tick_ = kInvalidTick;
  MitigationPolicy applied_ = MitigationPolicy::kNone;

  bool rolling_back_ = false;
  bool rolled_back_ = false;

  // Victim rate tracking (per-tick LLC access/miss deltas). The EWMA feeds
  // the attacked-rate snapshot at alarm time; the verification window uses
  // a plain mean at the post-action placement.
  VmRef rate_place_;
  bool rate_primed_ = false;
  std::uint64_t last_access_ = 0;
  std::uint64_t last_miss_ = 0;
  double ewma_access_ = 0.0;
  double ewma_miss_ = 0.0;
  bool ewma_primed_ = false;
  double attacked_access_ = 0.0;
  double attacked_miss_ = 0.0;
  double verify_access_ = 0.0;
  double verify_miss_ = 0.0;
  Tick verify_ticks_ = 0;

  MitigationStats stats_;
};

}  // namespace sds::cluster
