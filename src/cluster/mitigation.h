// Mitigation: the provider response a detection alarm triggers (paper
// Section 6 — "take proper actions (e.g., VM migrations)").
//
// Two policies:
//   kMigrateVictim       move the protected VM to a spare host, away from
//                        whatever is attacking it (always possible, but the
//                        attacker can re-co-locate — the paper's argument
//                        for detection over pure migration);
//   kQuarantineAttacker  stop the attributed attacker VM in place (needs an
//                        attribution, e.g. the KStest identification sweep;
//                        falls back to migrating the victim when the alarm
//                        is unattributed).
//
// The engine watches a detector and applies its policy once, on the first
// alarm; the mitigation benches then measure the victim's throughput
// recovery.
#pragma once

#include <cstdint>

#include "cluster/cluster.h"
#include "common/types.h"

namespace sds::telemetry {
class SpanProfiler;
}  // namespace sds::telemetry

namespace sds::cluster {

enum class MitigationPolicy : std::uint8_t {
  kNone,
  kMigrateVictim,
  kQuarantineAttacker,
};

const char* MitigationPolicyName(MitigationPolicy policy);

class MitigationEngine {
 public:
  // `victim` is the protected VM; `spare_host` receives it if migration is
  // the chosen (or fallback) response.
  MitigationEngine(Cluster& cluster, const VmRef& victim,
                   MitigationPolicy policy, int spare_host);

  // Reports an alarm at the current cluster time. `attributed_attacker` is
  // the culprit VM if the detector identified one (0 = unattributed; only
  // meaningful on the victim's host). Idempotent after the first response.
  void OnAlarm(OwnerId attributed_attacker);

  bool mitigated() const { return mitigated_; }
  Tick mitigation_tick() const { return mitigation_tick_; }
  // The victim's current placement (changes when migrated).
  const VmRef& victim() const { return victim_; }
  MitigationPolicy applied_policy() const { return applied_; }

 private:
  Cluster& cluster_;
  VmRef victim_;
  // "cluster.mitigate" profiler span around each actuation (resolved from
  // the victim host's telemetry handle). Span id is a raw integer
  // (telemetry::SpanId).
  telemetry::SpanProfiler* prof_ = nullptr;
  std::uint32_t span_mitigate_ = 0;
  MitigationPolicy policy_;
  int spare_host_;
  bool mitigated_ = false;
  Tick mitigation_tick_ = kInvalidTick;
  MitigationPolicy applied_ = MitigationPolicy::kNone;
};

}  // namespace sds::cluster
