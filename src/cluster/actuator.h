// Actuator: the fallible control-plane seam between mitigation policy and
// the Cluster primitives (the actuation-plane counterpart of the
// pcm::SampleSource seam from the monitoring-plane robustness work).
//
// Callers never invoke Cluster::Migrate / StopVm / ResumeVm directly (the
// `det-actuation-idempotent` lint rule enforces this inside src/cluster);
// they SUBMIT commands and poll the command's state while the cluster ticks:
//
//   submit -> in-flight (latency drawn from the plan) -> succeeded | failed
//
// A fault::ActuationFaultPlan decides, deterministically from its private
// RNG stream, whether a command is lost in transport (accepted, never
// acknowledged — only a caller timeout catches it), aborts mid-flight,
// bounces off a spare host that is down or out of capacity, or is rejected
// outright. With a null plan every command executes synchronously at submit
// and the seam is bit-transparent (pinned by the actuation golden test).
//
// Idempotency contract: at most one outstanding command per target VM.
// Submitting against a VM with a command still in flight fails synchronously
// with kConflict instead of double-actuating, and Cancel() guarantees an
// abandoned (typically lost) command will never execute afterwards — which
// together make blind re-dispatch after a timeout safe.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/types.h"
#include "fault/actuation_plan.h"

namespace sds::telemetry {
class Counter;
class Telemetry;
}  // namespace sds::telemetry

namespace sds::cluster {

enum class ActuationOp : std::uint8_t { kMigrate, kStop, kResume };
const char* ActuationOpName(ActuationOp op);

enum class CommandStatus : std::uint8_t {
  // Accepted, not yet acknowledged. Lost commands stay here forever — by
  // design the caller cannot distinguish "slow" from "gone" except by
  // timeout.
  kInFlight,
  kSucceeded,
  kFailed,
  kCancelled,
};
const char* CommandStatusName(CommandStatus status);

enum class ActuationError : std::uint8_t {
  kNone,
  kAborted,      // migration aborted mid-flight
  kHostDown,     // destination host inside a down window
  kNoCapacity,   // destination rejected the placement
  kRejected,     // stop/resume bounced off the hypervisor
  kConflict,     // another command for this VM is still outstanding
  kSourceGone,   // source VM no longer runnable at execution time
};
const char* ActuationErrorName(ActuationError error);

// Identifies a submitted command; 0 is never a valid id.
using CommandId = std::uint32_t;

struct CommandResult {
  ActuationOp op = ActuationOp::kMigrate;
  CommandStatus status = CommandStatus::kInFlight;
  ActuationError error = ActuationError::kNone;
  VmRef target;          // the VM the command was submitted against
  int destination = -1;  // migrations only
  // New placement after a successful migration (== target for stop/resume).
  VmRef placement;
  Tick submitted = 0;
  Tick completed = kInvalidTick;  // ack tick; kInvalidTick while in flight
};

class Actuator {
 public:
  // `plan` is copied; a default-constructed plan makes the actuator a
  // zero-latency infallible passthrough.
  explicit Actuator(Cluster& cluster,
                    const fault::ActuationFaultPlan& plan = {});

  // Submit a command. Commands whose drawn latency is zero execute before
  // the call returns (their result is immediately terminal). Returns the
  // command id; query `result(id)` for progress.
  CommandId SubmitMigrate(const VmRef& vm, int destination_host);
  CommandId SubmitStop(const VmRef& vm);
  CommandId SubmitResume(const VmRef& vm);

  // Completes every command whose latency has elapsed. Call once per
  // cluster tick (extra calls within one tick are harmless).
  void OnTick();

  // Abandons a command: it will never execute, even if it was merely slow.
  // No-op for commands already terminal.
  void Cancel(CommandId id);

  const CommandResult& result(CommandId id) const;

  // False while `host` is inside an injected down window.
  bool host_usable(int host) const;

  const fault::ActuationFaultPlan& plan() const { return plan_; }
  const fault::ActuationFaultStats& stats() const { return stats_; }
  Cluster& cluster() { return cluster_; }

 private:
  struct Command {
    CommandResult result;
    Tick due = 0;                 // execution tick (submit + drawn latency)
    bool lost = false;            // never acknowledges
    // Fault drawn at submit to apply at completion (kNone = clean).
    fault::ActuationFaultKind injected =
        fault::ActuationFaultKind::kKindCount;
  };

  CommandId Submit(ActuationOp op, const VmRef& vm, int destination_host);
  // True when another command targeting `vm` is still in flight.
  bool HasOutstanding(const VmRef& vm) const;
  void Complete(Command& command);
  void Execute(Command& command);
  void Finish(Command& command, CommandStatus status, ActuationError error);
  void RecordInjection(fault::ActuationFaultKind kind, const Command& command);

  Cluster& cluster_;
  fault::ActuationFaultPlan plan_;
  Rng rng_;
  std::vector<Command> commands_;  // id - 1 indexes this vector
  std::vector<Tick> host_down_until_;

  fault::ActuationFaultStats stats_;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter* t_injected_[fault::kActuationFaultKindCount] = {};
  telemetry::Counter* t_commands_ = nullptr;
  telemetry::Counter* t_failed_ = nullptr;
};

}  // namespace sds::cluster
