#include "telemetry/telemetry.h"

#include <fstream>
#include <ostream>

namespace sds::telemetry {

void Telemetry::WriteJsonl(std::ostream& os) {
  os << "{\"type\":\"header\",\"format\":\"sds-telemetry\",\"version\":1"
     << ",\"events_emitted\":" << tracer_.emitted()
     << ",\"events_dropped\":" << tracer_.dropped()
     << ",\"audit_records\":" << audit_.size() << "}\n";
  tracer_.WriteStatsJson(os);
  os << "\n";
  // Surface ring saturation as first-class metrics so rollup/alerting
  // pipelines (obs layer, fleet_inspect) see drops without parsing the
  // tracer_stats line.
  metrics_.GetGauge("telemetry.tracer.emitted")
      ->Set(static_cast<double>(tracer_.emitted()));
  metrics_.GetGauge("telemetry.tracer.dropped")
      ->Set(static_cast<double>(tracer_.dropped()));
  tracer_.FlushJsonl(os);
  audit_.WriteJsonl(os);
  profiler_.WriteJsonl(os);
  metrics_.WriteJsonl(os);
}

bool Telemetry::WriteJsonlFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  WriteJsonl(out);
  return static_cast<bool>(out);
}

}  // namespace sds::telemetry
