#include "telemetry/profiler.h"

#include <chrono>
#include <cstring>
#include <ostream>

#include "common/check.h"

namespace sds::telemetry {

const char* ProfileClockName(ProfileClock clock) {
  return clock == ProfileClock::kWall ? "wall" : "tick";
}

SpanProfiler::SpanProfiler(std::size_t slice_capacity)
    : slices_(slice_capacity) {}

SpanId SpanProfiler::RegisterSpan(const char* name) {
  SDS_CHECK(name != nullptr && name[0] != '\0', "span name must be non-empty");
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name || std::strcmp(names_[i], name) == 0) {
      return static_cast<SpanId>(i);
    }
  }
  names_.push_back(name);
  return static_cast<SpanId>(names_.size() - 1);
}

void SpanProfiler::Enable(ProfileClock clock) {
  SDS_CHECK(stack_.empty(), "cannot switch profiler state with spans open");
  enabled_ = true;
  ever_enabled_ = true;
  clock_ = clock;
}

void SpanProfiler::Disable() {
  enabled_ = false;
  stack_.clear();
}

std::uint64_t SpanProfiler::Now() {
  if (clock_ == ProfileClock::kTickDomain) return ++tick_now_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SpanProfiler::Enter(SpanId id) {
  if (!enabled_) return;
  SDS_DCHECK(id < names_.size(), "span id not registered");
  SDS_CHECK(stack_.size() < kMaxDepth, "span stack overflow (runaway nesting)");

  // Find (or create) the tree node for `id` under the current parent.
  const std::int32_t parent =
      stack_.empty() ? -1 : static_cast<std::int32_t>(stack_.back().node);
  const std::vector<std::uint32_t>& siblings =
      parent < 0 ? roots_ : nodes_[static_cast<std::size_t>(parent)].children;
  std::uint32_t node_index = 0xffffffffu;
  for (std::uint32_t child : siblings) {
    if (nodes_[child].span == id) {
      node_index = child;
      break;
    }
  }
  if (node_index == 0xffffffffu) {
    node_index = static_cast<std::uint32_t>(nodes_.size());
    Node node;
    node.span = id;
    node.parent = parent;
    nodes_.push_back(node);
    if (parent < 0) {
      roots_.push_back(node_index);
    } else {
      nodes_[static_cast<std::size_t>(parent)].children.push_back(node_index);
    }
  }
  stack_.push_back(Frame{node_index, Now()});
}

void SpanProfiler::Exit() {
  if (!enabled_ || stack_.empty()) return;
  const Frame frame = stack_.back();
  stack_.pop_back();
  const std::uint64_t end = Now();
  const std::uint64_t duration = end > frame.start ? end - frame.start : 0;
  Node& node = nodes_[frame.node];
  if (node.count == 0 || duration < node.min) node.min = duration;
  if (duration > node.max) node.max = duration;
  ++node.count;
  node.total += duration;
  if (!stack_.empty()) {
    nodes_[stack_.back().node].child_time += duration;
  }
  if (record_slices_) {
    if (slices_.full()) ++slices_dropped_;
    slices_.Push(SpanSlice{node.span,
                           static_cast<std::uint32_t>(stack_.size()),
                           frame.start, duration});
  }
}

std::vector<SpanNodeStats> SpanProfiler::Snapshot() const {
  // Pre-order walk; node indices in the output equal indices into nodes_
  // only by coincidence, so re-map parents to OUTPUT positions.
  std::vector<SpanNodeStats> out;
  out.reserve(nodes_.size());
  std::vector<std::int32_t> position(nodes_.size(), -1);
  // Iterative DFS: stack of (node, depth).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> work;
  for (auto it = roots_.rbegin(); it != roots_.rend(); ++it) {
    work.emplace_back(*it, 0u);
  }
  while (!work.empty()) {
    const auto [index, depth] = work.back();
    work.pop_back();
    const Node& node = nodes_[index];
    SpanNodeStats stats;
    stats.span = node.span;
    stats.name = names_[node.span];
    stats.parent =
        node.parent < 0 ? -1 : position[static_cast<std::size_t>(node.parent)];
    stats.depth = depth;
    stats.count = node.count;
    stats.total = node.total;
    stats.self =
        node.total > node.child_time ? node.total - node.child_time : 0;
    stats.min = node.min;
    stats.max = node.max;
    position[index] = static_cast<std::int32_t>(out.size());
    out.push_back(stats);
    for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
      work.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

SpanNodeStats SpanProfiler::AggregateByName(const char* name) const {
  SpanNodeStats agg;
  agg.name = name;
  bool first = true;
  for (const Node& node : nodes_) {
    const char* node_name = names_[node.span];
    if (node_name != name && std::strcmp(node_name, name) != 0) continue;
    agg.span = node.span;
    agg.count += node.count;
    agg.total += node.total;
    agg.self +=
        node.total > node.child_time ? node.total - node.child_time : 0;
    if (first || node.min < agg.min) agg.min = node.min;
    if (node.max > agg.max) agg.max = node.max;
    first = false;
  }
  return agg;
}

void SpanProfiler::WriteJsonl(std::ostream& os) const {
  if (!ever_enabled_) return;
  const auto snapshot = Snapshot();
  os << "{\"type\":\"profile\",\"clock\":\"" << ProfileClockName(clock_)
     << "\",\"spans\":" << snapshot.size()
     << ",\"slices_retained\":" << slices_.size()
     << ",\"slices_dropped\":" << slices_dropped_ << "}\n";
  for (const SpanNodeStats& s : snapshot) {
    os << "{\"type\":\"span\",\"name\":\"" << s.name
       << "\",\"parent\":" << s.parent << ",\"depth\":" << s.depth
       << ",\"count\":" << s.count << ",\"total\":" << s.total
       << ",\"self\":" << s.self << ",\"min\":" << s.min
       << ",\"max\":" << s.max << "}\n";
  }
}

}  // namespace sds::telemetry
