// The Telemetry handle: one metrics registry + one event tracer + one
// detector audit log, owned together and threaded through the stack as a
// single nullable pointer.
//
// Wiring: sim::MachineConfig carries a `Telemetry*`; everything downstream
// (Hypervisor, PcmSampler, detectors, eval::Experiment) reaches the same
// handle through the machine it already holds, so enabling observability for
// a run is ONE field assignment and the default (nullptr) compiles every
// instrumentation site down to a single predictable branch.
//
// Not thread-safe: attach one Telemetry per single-threaded experiment run.
// The multi-threaded sweep in eval::AggregateDetection runs with telemetry
// detached.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/audit.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/tracer.h"

namespace sds::telemetry {

class Telemetry {
 public:
  explicit Telemetry(std::size_t tracer_capacity = EventTracer::kDefaultCapacity)
      : tracer_(tracer_capacity) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  EventTracer& tracer() { return tracer_; }
  const EventTracer& tracer() const { return tracer_; }
  AuditLog& audit() { return audit_; }
  const AuditLog& audit() const { return audit_; }
  // The span profiler starts DISABLED; call profiler().Enable() to pay for
  // (and get) per-subsystem time attribution.
  SpanProfiler& profiler() { return profiler_; }
  const SpanProfiler& profiler() const { return profiler_; }

  // Writes the full telemetry state as one JSONL stream: a header line, the
  // retained event window (tracer ring is drained), every audit record, the
  // profiler's span tree (when it was enabled), and a final metrics
  // snapshot. This is the format tools/trace_inspect reads and benches write
  // via --telemetry_out.
  void WriteJsonl(std::ostream& os);
  // Convenience wrapper; returns false when the file cannot be opened.
  bool WriteJsonlFile(const std::string& path);

 private:
  MetricsRegistry metrics_;
  EventTracer tracer_;
  AuditLog audit_;
  SpanProfiler profiler_;
};

}  // namespace sds::telemetry
