// Metrics registry: named Counter / Gauge / Histogram instruments cheap
// enough for per-tick hot paths.
//
// The registry is looked up ONCE, at registration time (typically in a
// constructor); the returned instrument pointer is a plain slot — Add/Set/
// Observe are branch-free field updates with no map lookup, no allocation
// and no locking. Instrument pointers stay valid for the registry's
// lifetime (slots live in std::deque, which never relocates elements).
//
// Registering the same name twice returns the SAME instrument, so a
// profile-stage machine and a main-stage machine sharing one Telemetry
// accumulate into one set of counters. The registry is not thread-safe;
// attach one Telemetry per (single-threaded) experiment run.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace sds::telemetry {

class Counter {
 public:
  void Add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i], with one
// implicit overflow bucket above the last bound. Bounds are fixed at
// registration; Observe is a short linear scan over a handful of doubles
// (latency histograms use ~8 buckets), which beats binary search at this size.
//
// Non-finite inputs: +inf lands in the overflow bucket, -inf in bucket 0,
// NaN in the overflow bucket (it is "not inside any bound", and the overflow
// bucket is where unaccountable observations belong). All three are counted
// in count() but EXCLUDED from sum(), so the running sum stays finite and
// mean estimates stay usable after a stray bad sample.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // buckets().size() == bounds().size() + 1 (last bucket = overflow).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  // Interpolated quantile estimate, q in [0, 1]; see QuantileFromBuckets.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Estimates the q-quantile (q in [0, 1]) of a fixed-bucket histogram by
// linear interpolation inside the bucket where the cumulative count crosses
// q * total, Prometheus-style: bucket i spans (bounds[i-1], bounds[i]], the
// first bucket spans (min(0, bounds[0]), bounds[0]], and a quantile landing
// in the overflow bucket is clamped to the last bound (the histogram cannot
// resolve beyond it). Returns NaN for an empty histogram. buckets.size()
// must equal bounds.size() + 1. Shared by Histogram::Quantile and
// tools/trace_inspect, which recomputes quantiles from serialized buckets.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<std::uint64_t>& buckets,
                           double q);

// Default bucket bounds for latency-in-nanoseconds histograms.
std::vector<double> LatencyNsBounds();

class MetricsRegistry {
 public:
  // All three return a stable pointer; re-registering a name returns the
  // existing instrument (for histograms the original bounds are kept).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // One JSONL line per instrument:
  //   {"type":"metric","metric":"counter","name":...,"value":...}
  // Histograms additionally carry "sum", "buckets" and "bounds".
  void WriteJsonl(std::ostream& os) const;

 private:
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  // name -> index into the matching deque; ordered so WriteJsonl output is
  // deterministic.
  std::map<std::string, std::size_t> counter_index_;
  std::map<std::string, std::size_t> gauge_index_;
  std::map<std::string, std::size_t> histogram_index_;
};

}  // namespace sds::telemetry
