// Detector decision audit log.
//
// Every decision a detector makes — each SDS/B EWMA boundary check, each
// SDS/P period re-estimation, each KStest two-sample test — is recorded with
// its INPUTS (the value under test, the accepted range), its VERDICT and its
// MARGIN, so a recall/specificity/delay number in bench/fig09–fig11 can be
// explained sample by sample instead of being a bare aggregate.
//
// Margin convention: signed distance to the decision boundary, normalized to
// the check's own scale; POSITIVE means the check violated (the value sits
// margin units beyond the accepted range), negative means it passed with
// that much headroom. A margin of exactly 0 sits on the boundary.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.h"

namespace sds::telemetry {

struct AuditRecord {
  Tick tick = 0;
  // Detector instance name ("SDS", "SDS/B", "KStest", ...); string literal
  // or otherwise outliving the log.
  const char* detector = "";
  // Which check ran: "boundary" (SDS/B), "period" (SDS/P), "kstest".
  const char* check = "";
  // Statistic channel the check consumed ("AccessNum" / "MissNum").
  const char* channel = "";
  // The value under test: the new EWMA value (boundary), the computed period
  // in MA steps (period; 0 when none was detectable), the KS p-value.
  double value = 0.0;
  // Accepted range the value was tested against: [mu-k*sigma, mu+k*sigma]
  // for boundary, the +-tolerance band around the profiled period for
  // period, [alpha, 1] for the KS p-value.
  double lower = 0.0;
  double upper = 0.0;
  double margin = 0.0;
  bool violation = false;
  // Consecutive violations on this channel AFTER this check.
  int consecutive = 0;
  // Detector-level alarm state AFTER this check was absorbed.
  bool alarm = false;
};

class AuditLog {
 public:
  void Append(const AuditRecord& record) { records_.push_back(record); }

  const std::vector<AuditRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

  // One JSONL line per record:
  //   {"type":"audit","tick":...,"detector":"SDS","check":"boundary",...}
  void WriteJsonl(std::ostream& os) const;

 private:
  std::vector<AuditRecord> records_;
};

void WriteAuditJson(std::ostream& os, const AuditRecord& record);

}  // namespace sds::telemetry
