#include "telemetry/tracer.h"

#include <cmath>
#include <ostream>

#include "common/check.h"

namespace sds::telemetry {

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kSimMachine:
      return "sim.machine";
    case Layer::kSimCache:
      return "sim.cache";
    case Layer::kSimBus:
      return "sim.bus";
    case Layer::kSimDram:
      return "sim.dram";
    case Layer::kVm:
      return "vm";
    case Layer::kPcm:
      return "pcm";
    case Layer::kFault:
      return "fault";
    case Layer::kDetect:
      return "detect";
    case Layer::kEval:
      return "eval";
    case Layer::kLayerCount:
      break;
  }
  return "?";
}

TraceEvent& TraceEvent::Num(const char* key, double value) {
  for (auto& slot : nums) {
    if (slot.key == nullptr) {
      slot = NumField{key, value};
      return *this;
    }
  }
  SDS_DCHECK(false, "TraceEvent numeric field slots exhausted");
  return *this;
}

TraceEvent& TraceEvent::Str(const char* key, const char* value) {
  for (auto& slot : strs) {
    if (slot.key == nullptr) {
      slot = StrField{key, value};
      return *this;
    }
  }
  SDS_DCHECK(false, "TraceEvent string field slots exhausted");
  return *this;
}

TraceEvent MakeEvent(Tick tick, Layer layer, const char* name,
                     std::int64_t owner) {
  TraceEvent e;
  e.tick = tick;
  e.layer = layer;
  e.name = name;
  e.owner = owner;
  return e;
}

EventTracer::EventTracer(std::size_t capacity) : ring_(capacity) {
  EnableAllLayers();
}

void EventTracer::Emit(const TraceEvent& event) {
  if (!enabled(event.layer)) return;
  if (ring_.full()) {
    ++dropped_;
    // The OLDEST event is about to be overwritten; attribute the loss to its
    // layer so the drop breakdown says whose history vanished.
    ++dropped_by_layer_[static_cast<std::size_t>(ring_.oldest().layer)];
  }
  ring_.Push(event);
  ++emitted_;
  ++emitted_by_layer_[static_cast<std::size_t>(event.layer)];
}

namespace {

// Doubles that hold integral values (ticks, counts, owner ids routed through
// Num fields) print as integers so the JSONL stays grep- and diff-friendly.
void WriteNumber(std::ostream& os, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os << v;
  }
}

}  // namespace

void WriteEventJson(std::ostream& os, const TraceEvent& event) {
  os << "{\"type\":\"event\",\"tick\":" << event.tick << ",\"layer\":\""
     << LayerName(event.layer) << "\",\"event\":\""
     << (event.name ? event.name : "?") << '"';
  if (event.owner >= 0) os << ",\"owner\":" << event.owner;
  for (const auto& f : event.nums) {
    if (!f.key) continue;
    os << ",\"" << f.key << "\":";
    WriteNumber(os, f.value);
  }
  for (const auto& f : event.strs) {
    if (!f.key) continue;
    os << ",\"" << f.key << "\":\"" << (f.value ? f.value : "") << '"';
  }
  os << '}';
}

void EventTracer::WriteStatsJson(std::ostream& os) const {
  os << "{\"type\":\"tracer_stats\",\"capacity\":" << ring_.capacity()
     << ",\"retained\":" << ring_.size() << ",\"emitted\":" << emitted_
     << ",\"dropped\":" << dropped_;
  for (std::size_t i = 0; i < kLayerCount; ++i) {
    if (emitted_by_layer_[i] == 0 && dropped_by_layer_[i] == 0) continue;
    const char* name = LayerName(static_cast<Layer>(i));
    os << ",\"emitted." << name << "\":" << emitted_by_layer_[i];
    if (dropped_by_layer_[i] != 0) {
      os << ",\"dropped." << name << "\":" << dropped_by_layer_[i];
    }
  }
  os << "}";
}

std::size_t EventTracer::FlushJsonl(std::ostream& os) {
  const std::size_t n = ring_.size();
  for (std::size_t i = 0; i < n; ++i) {
    WriteEventJson(os, ring_[i]);
    os << '\n';
  }
  ring_.Clear();
  return n;
}

}  // namespace sds::telemetry
