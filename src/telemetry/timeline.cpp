#include "telemetry/timeline.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <ostream>

#include "telemetry/telemetry.h"

namespace sds::telemetry {

namespace {

bool IsContentionEvent(const char* name) {
  if (name == nullptr) return false;
  return std::strcmp(name, "bus_saturated") == 0 ||
         std::strcmp(name, "cross_owner_eviction") == 0 ||
         std::strcmp(name, "lock_window_open") == 0;
}

// Detector-decision audit records only: mitigation actuations and
// degradation actions are joined separately, not treated as checks.
bool IsDetectorCheck(const AuditRecord& r) {
  return std::strcmp(r.check, "mitigation") != 0 &&
         std::strcmp(r.check, "degrade") != 0;
}

Tick SafeDelta(Tick later, Tick earlier) {
  return later >= earlier ? later - earlier : 0;
}

}  // namespace

std::vector<Incident> ReconstructIncidents(const Telemetry& telemetry,
                                           const TimelineOptions& options) {
  const EventTracer& tracer = telemetry.tracer();
  const auto& records = telemetry.audit().records();

  // Attack start: explicit option wins; otherwise the eval-layer marker
  // event (emitted by eval::Experiment when stage 3 begins).
  Tick attack_start = options.attack_start;
  if (attack_start == kInvalidTick) {
    for (std::size_t i = 0; i < tracer.retained(); ++i) {
      const TraceEvent& e = tracer.event(i);
      if (e.name != nullptr &&
          std::strcmp(e.name, "attack_phase_begin") == 0) {
        attack_start = e.tick;
        break;
      }
    }
  }
  if (attack_start == kInvalidTick) return {};

  // First observable contention symptom after the attack began.
  Tick first_contention = kInvalidTick;
  for (std::size_t i = 0; i < tracer.retained(); ++i) {
    const TraceEvent& e = tracer.event(i);
    if (e.tick < attack_start || !IsContentionEvent(e.name)) continue;
    if (first_contention == kInvalidTick || e.tick < first_contention) {
      first_contention = e.tick;
    }
  }

  // Mitigation actuations, in tick order (the log is appended in tick order).
  std::vector<Tick> mitigations;
  for (const AuditRecord& r : records) {
    if (std::strcmp(r.check, "mitigation") == 0) mitigations.push_back(r.tick);
  }

  std::vector<Incident> incidents;
  std::map<std::string, bool> alarm_state;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const AuditRecord& r = records[i];
    if (!IsDetectorCheck(r)) continue;
    bool& state = alarm_state[r.detector];
    if (r.alarm == state) continue;
    state = r.alarm;
    if (!r.alarm || r.tick < attack_start) continue;

    Incident inc;
    inc.detector = r.detector;
    inc.attack_start = attack_start;
    inc.first_contention = first_contention;
    inc.alarm = r.tick;

    // Decisive record: among this detector's records at the alarm tick,
    // prefer a violating one (both channels are audited per interval; the
    // alarm flag is set on all of them).
    const AuditRecord* decisive = &r;
    std::size_t decisive_index = i;
    for (std::size_t j = i; j < records.size() && records[j].tick == r.tick;
         ++j) {
      const AuditRecord& cand = records[j];
      if (IsDetectorCheck(cand) && inc.detector == cand.detector &&
          cand.alarm && cand.violation) {
        decisive = &cand;
        decisive_index = j;
        break;
      }
    }
    inc.channel = decisive->channel;

    // First post-attack check of this detector (any channel).
    for (const AuditRecord& c : records) {
      if (!IsDetectorCheck(c) || inc.detector != c.detector) continue;
      if (c.tick >= attack_start) {
        inc.first_check = c.tick;
        break;
      }
    }

    // Decisive streak start: the latest record on the decisive channel and
    // check with consecutive == 1 at or before the alarm (the consecutive
    // counter resets on every pass, so this is the streak's first violation).
    for (std::size_t j = decisive_index + 1; j-- > 0;) {
      const AuditRecord& c = records[j];
      if (!IsDetectorCheck(c) || inc.detector != c.detector ||
          std::strcmp(c.check, decisive->check) != 0 ||
          std::strcmp(c.channel, decisive->channel) != 0 ||
          c.tick > inc.alarm) {
        continue;
      }
      if (!c.violation) break;  // walked past the streak
      inc.streak_start = c.tick;
      if (c.consecutive <= 1) break;
    }
    if (inc.streak_start == kInvalidTick) inc.streak_start = inc.alarm;
    if (inc.first_check == kInvalidTick) inc.first_check = inc.streak_start;

    const auto mit = std::lower_bound(mitigations.begin(), mitigations.end(),
                                      inc.alarm);
    if (mit != mitigations.end()) inc.mitigation = *mit;

    inc.delay.sampling_wait = SafeDelta(inc.first_check, attack_start);
    inc.delay.detector_compute = SafeDelta(inc.streak_start, inc.first_check);
    inc.delay.debounce = SafeDelta(inc.alarm, inc.streak_start);
    inc.delay.mitigation = inc.mitigation == kInvalidTick
                               ? 0
                               : SafeDelta(inc.mitigation, inc.alarm);
    incidents.push_back(std::move(inc));
  }
  return incidents;
}

void WriteIncidentReport(std::ostream& os,
                         const std::vector<Incident>& incidents,
                         const Telemetry& telemetry, double tpcm_seconds) {
  const TickClock clock(tpcm_seconds);
  if (incidents.empty()) {
    os << "incident timeline: no post-attack alarm incidents\n";
    return;
  }
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    const Incident& inc = incidents[i];
    os << "incident #" << i + 1 << " (" << inc.detector << " on "
       << inc.channel << ")\n";
    os << "  attack begins        t=" << inc.attack_start << " ("
       << clock.ToSeconds(inc.attack_start) << "s)\n";
    if (inc.first_contention != kInvalidTick) {
      os << "  first contention     t=" << inc.first_contention << " (+"
         << clock.ToSeconds(inc.first_contention - inc.attack_start) << "s)";
      // The ring drops oldest events, so after a long run the earliest
      // RETAINED contention symptom can postdate the alarm itself.
      if (telemetry.tracer().dropped() > 0) {
        os << " [earliest retained; " << telemetry.tracer().dropped()
           << " older events dropped]";
      }
      os << "\n";
    }
    os << "  first check          t=" << inc.first_check
       << "  sampling wait      " << inc.delay.sampling_wait << " ticks ("
       << clock.ToSeconds(inc.delay.sampling_wait) << "s)\n";
    os << "  violation streak     t=" << inc.streak_start
       << "  detector compute   " << inc.delay.detector_compute << " ticks ("
       << clock.ToSeconds(inc.delay.detector_compute) << "s)\n";
    os << "  alarm                t=" << inc.alarm
       << "  debounce           " << inc.delay.debounce << " ticks ("
       << clock.ToSeconds(inc.delay.debounce) << "s)\n";
    if (inc.mitigation != kInvalidTick) {
      os << "  mitigation           t=" << inc.mitigation
         << "  actuation          " << inc.delay.mitigation << " ticks ("
         << clock.ToSeconds(inc.delay.mitigation) << "s)\n";
    }
    os << "  detection delay      " << inc.delay.detection_total()
       << " ticks (" << clock.ToSeconds(inc.delay.detection_total())
       << "s)\n";
  }

  // Join the profiler: the tick-domain "detector compute" stage above, in
  // measured wall nanoseconds per sample (only meaningful on the wall clock).
  const SpanProfiler& profiler = telemetry.profiler();
  if (profiler.clock() != ProfileClock::kWall) return;
  for (const char* span :
       {"detect.sds.tick", "detect.kstest.tick", "pcm.sample"}) {
    const SpanNodeStats agg = profiler.AggregateByName(span);
    if (agg.count == 0) continue;
    os << "profiled " << span << ": "
       << agg.total / agg.count << " ns/call over " << agg.count
       << " calls (self "
       << agg.self / agg.count << " ns/call)\n";
  }
}

}  // namespace sds::telemetry
