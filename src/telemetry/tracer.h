// Structured event tracing with a ring-buffer sink.
//
// Instrumentation sites build a TraceEvent — a fixed-size POD whose keys are
// string LITERALS (no allocation, no formatting on the hot path) — and hand
// it to the tracer, which copies it into a bounded ring. When the ring is
// full the OLDEST event is dropped and a drop counter advances, so tracing
// can stay enabled for arbitrarily long runs at bounded memory; flushing
// serializes the retained window as JSONL:
//
//   {"type":"event","tick":1234,"layer":"sim.bus","event":"lock_window_open",
//    "owner":3,"slots":40}
//
// Each layer has an enable bit; a disabled layer's instrumentation reduces
// to one inline mask test, which is what keeps always-compiled tracing
// effectively free when off.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

#include "common/ring_buffer.h"
#include "common/types.h"

namespace sds::telemetry {

enum class Layer : std::uint8_t {
  kSimMachine = 0,
  kSimCache,
  kSimBus,
  kSimDram,
  kVm,
  kPcm,
  // Monitoring-plane fault injection and the degradation actions detectors
  // take in response (fault/fault_injector.h, detect/degrade.h).
  kFault,
  kDetect,
  kEval,
  kLayerCount,
};

inline constexpr std::size_t kLayerCount =
    static_cast<std::size_t>(Layer::kLayerCount);

// Dotted layer name as it appears in the JSONL ("sim.bus", "detect", ...).
const char* LayerName(Layer layer);

struct TraceEvent {
  Tick tick = 0;
  Layer layer = Layer::kSimMachine;
  // Event name; must point at a string literal (the ring stores the pointer).
  const char* name = nullptr;
  // Owner id the event is attributed to; -1 = not owner-specific.
  std::int64_t owner = -1;

  struct NumField {
    const char* key = nullptr;  // string literal; nullptr = slot unused
    double value = 0.0;
  };
  struct StrField {
    const char* key = nullptr;  // string literal; nullptr = slot unused
    const char* value = nullptr;
  };
  std::array<NumField, 6> nums{};
  std::array<StrField, 2> strs{};

  // Fluent field setters so call sites read as one expression.
  TraceEvent& Num(const char* key, double value);
  TraceEvent& Str(const char* key, const char* value);
};

TraceEvent MakeEvent(Tick tick, Layer layer, const char* name,
                     std::int64_t owner = -1);

class EventTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit EventTracer(std::size_t capacity = kDefaultCapacity);

  // Per-layer enable flags. All layers start ENABLED: attaching a Telemetry
  // is itself the opt-in, and the flags exist to silence noisy layers.
  bool enabled(Layer layer) const {
    return (enabled_mask_ & (1u << static_cast<unsigned>(layer))) != 0;
  }
  void EnableLayer(Layer layer) {
    enabled_mask_ |= 1u << static_cast<unsigned>(layer);
  }
  void DisableLayer(Layer layer) {
    enabled_mask_ &= ~(1u << static_cast<unsigned>(layer));
  }
  void DisableAllLayers() { enabled_mask_ = 0; }
  void EnableAllLayers() { enabled_mask_ = (1u << kLayerCount) - 1; }

  // Copies the event into the ring (dropping the oldest when full). Call
  // sites should check enabled() first; Emit rechecks so a stray call on a
  // disabled layer is still correct.
  void Emit(const TraceEvent& event);

  std::size_t retained() const { return ring_.size(); }
  std::size_t capacity() const { return ring_.capacity(); }
  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t dropped() const { return dropped_; }
  // Drop accounting by the layer of the EVICTED event: which layer's history
  // the ring overwrote, not which layer's emission forced the eviction. This
  // is what tells you whose events you lost when the ring saturated.
  std::uint64_t dropped_by_layer(Layer layer) const {
    return dropped_by_layer_[static_cast<std::size_t>(layer)];
  }
  // Per-layer emission counts (denominator for drop ratios).
  std::uint64_t emitted_by_layer(Layer layer) const {
    return emitted_by_layer_[static_cast<std::size_t>(layer)];
  }

  // Oldest retained event first; index < retained().
  const TraceEvent& event(std::size_t index) const { return ring_[index]; }

  // Serializes the retained window as JSONL (oldest first) and clears the
  // ring. Returns the number of lines written.
  std::size_t FlushJsonl(std::ostream& os);

  // One {"type":"tracer_stats",...} JSON line: capacity, retained, emitted,
  // dropped, and the nonzero per-layer emitted/dropped breakdown. Written by
  // Telemetry::WriteJsonl so saturated rings are visible in every stream
  // tools/trace_inspect reads.
  void WriteStatsJson(std::ostream& os) const;

 private:
  RingBuffer<TraceEvent> ring_;
  std::uint32_t enabled_mask_;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::array<std::uint64_t, kLayerCount> emitted_by_layer_{};
  std::array<std::uint64_t, kLayerCount> dropped_by_layer_{};
};

// Serializes one event as a single JSON object (no trailing newline).
void WriteEventJson(std::ostream& os, const TraceEvent& event);

}  // namespace sds::telemetry
