#include "telemetry/audit.h"

#include <ostream>

namespace sds::telemetry {

void WriteAuditJson(std::ostream& os, const AuditRecord& r) {
  os << "{\"type\":\"audit\",\"tick\":" << r.tick << ",\"detector\":\""
     << r.detector << "\",\"check\":\"" << r.check << "\",\"channel\":\""
     << r.channel << "\",\"value\":" << r.value << ",\"lower\":" << r.lower
     << ",\"upper\":" << r.upper << ",\"margin\":" << r.margin
     << ",\"violation\":" << (r.violation ? "true" : "false")
     << ",\"consecutive\":" << r.consecutive
     << ",\"alarm\":" << (r.alarm ? "true" : "false") << '}';
}

void AuditLog::WriteJsonl(std::ostream& os) const {
  for (const auto& r : records_) {
    WriteAuditJson(os, r);
    os << '\n';
  }
}

}  // namespace sds::telemetry
