// Hierarchical span profiler: where does a simulation second go?
//
// Instrumentation sites register a span name ONCE (at construction, like
// metrics instruments) and then open RAII scoped spans on the hot path. The
// profiler maintains the enter/exit stack, so the same span name opened under
// different parents becomes distinct NODES of a call tree, each accumulating
// count / total time / self time (total minus time spent in child spans) /
// min / max. This is what turns "the run took 4 s" into "62% hypervisor
// scheduling, 21% cache simulation, 9% detector Observe".
//
// Two clock domains:
//   kWall        std::chrono::steady_clock nanoseconds — the real profile;
//   kTickDomain  a deterministic virtual clock that advances by exactly one
//                unit per reading, so span counts, nesting and durations are
//                bit-reproducible under test (a span's duration is then
//                2 + 2*(clock reads made inside it), independent of machine
//                load).
//
// Cost model: the profiler starts DISABLED; a ProfileSpan on a disabled or
// detached profiler is one pointer test and nothing else, which keeps the
// per-tick instrumentation in sim/vm/pcm/detect effectively free (verified by
// BM_CacheAccess staying within noise of the uninstrumented baseline).
// Defining SDS_PROFILING_DISABLED (cmake -DSDS_PROFILING=OFF) compiles the
// SDS_PROFILE_SPAN macro away entirely.
//
// Besides the aggregated tree, the profiler can retain individual span
// intervals ("slices") in a bounded drop-oldest ring; these are what the
// Perfetto exporter (telemetry/perfetto.h) turns into nested "X" duration
// events a trace viewer can render.
//
// Not thread-safe, like the rest of the telemetry handle: one profiler per
// single-threaded experiment run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/ring_buffer.h"

namespace sds::telemetry {

// Index into the profiler's span-name table; stable for the profiler's
// lifetime, assigned in registration order.
using SpanId = std::uint32_t;
inline constexpr SpanId kInvalidSpanId = 0xffffffffu;

enum class ProfileClock : std::uint8_t { kWall, kTickDomain };

const char* ProfileClockName(ProfileClock clock);

// One retained span interval, for trace export.
struct SpanSlice {
  SpanId span = kInvalidSpanId;
  std::uint32_t depth = 0;  // nesting depth at entry (root = 0)
  std::uint64_t start = 0;  // clock units (ns in kWall)
  std::uint64_t duration = 0;
};

// Aggregated statistics of one node of the span tree.
struct SpanNodeStats {
  SpanId span = kInvalidSpanId;
  const char* name = "";
  std::int32_t parent = -1;  // node index of the parent, -1 for roots
  std::uint32_t depth = 0;
  std::uint64_t count = 0;
  std::uint64_t total = 0;  // inclusive, clock units
  std::uint64_t self = 0;   // total minus time inside child spans
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};

class SpanProfiler {
 public:
  static constexpr std::size_t kDefaultSliceCapacity = 1 << 15;
  static constexpr std::size_t kMaxDepth = 64;

  explicit SpanProfiler(std::size_t slice_capacity = kDefaultSliceCapacity);

  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  // Interns `name` (compared by content, so re-registration from another
  // translation unit returns the same id). Cold path; call at construction.
  SpanId RegisterSpan(const char* name);
  std::size_t registered_spans() const { return names_.size(); }
  const char* span_name(SpanId id) const { return names_[id]; }

  // Must be called with no spans open. Enabling mid-run is fine (profiles
  // the remainder); re-enabling does not reset accumulated statistics.
  void Enable(ProfileClock clock = ProfileClock::kWall);
  void Disable();
  bool enabled() const { return enabled_; }
  ProfileClock clock() const { return clock_; }

  // Individual-interval retention for the Perfetto exporter. On by default;
  // turn off for long runs where only the aggregate tree matters.
  void set_record_slices(bool record) { record_slices_ = record; }
  bool record_slices() const { return record_slices_; }

  // Hot path. Prefer ProfileSpan / SDS_PROFILE_SPAN over calling directly.
  // Enter on a disabled profiler is a no-op; Exit tolerates an empty stack
  // (e.g. after Disable() mid-span), so RAII unwinding is always safe.
  void Enter(SpanId id);
  void Exit();

  std::size_t open_spans() const { return stack_.size(); }

  // The aggregated tree, pre-order (parents before children); node indices
  // in SpanNodeStats::parent refer to positions in this vector.
  std::vector<SpanNodeStats> Snapshot() const;

  // Sums count/total/self over every node with this span name (a span opened
  // under several parents has several nodes). Zero-count stats when the name
  // was never entered.
  SpanNodeStats AggregateByName(const char* name) const;

  // Retained slices, oldest first.
  std::size_t slices_retained() const { return slices_.size(); }
  std::uint64_t slices_dropped() const { return slices_dropped_; }
  const SpanSlice& slice(std::size_t index) const { return slices_[index]; }

  // One JSONL line per tree node:
  //   {"type":"span","name":"vm.tick","node":0,"parent":-1,"depth":0,
  //    "count":1200,"total":...,"self":...,"min":...,"max":...}
  // preceded by a {"type":"profile",...} summary line. No output when the
  // profiler was never enabled.
  void WriteJsonl(std::ostream& os) const;

 private:
  struct Node {
    SpanId span = kInvalidSpanId;
    std::int32_t parent = -1;
    std::vector<std::uint32_t> children;
    std::uint64_t count = 0;
    std::uint64_t total = 0;
    std::uint64_t child_time = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
  };
  struct Frame {
    std::uint32_t node = 0;
    std::uint64_t start = 0;
  };

  std::uint64_t Now();

  bool enabled_ = false;
  bool ever_enabled_ = false;
  bool record_slices_ = true;
  ProfileClock clock_ = ProfileClock::kWall;
  std::uint64_t tick_now_ = 0;  // kTickDomain virtual clock

  std::vector<const char*> names_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> roots_;
  std::vector<Frame> stack_;
  RingBuffer<SpanSlice> slices_;
  std::uint64_t slices_dropped_ = 0;
};

// RAII scoped span. Constructing against a null or disabled profiler costs
// one branch; otherwise Enter/Exit bracket the enclosing scope.
class ProfileSpan {
 public:
  ProfileSpan(SpanProfiler* profiler, SpanId id)
      : profiler_(profiler != nullptr && profiler->enabled() ? profiler
                                                             : nullptr) {
    if (profiler_ != nullptr) profiler_->Enter(id);
  }
  ~ProfileSpan() {
    if (profiler_ != nullptr) profiler_->Exit();
  }
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  SpanProfiler* profiler_;
};

// Compile-time kill switch: with SDS_PROFILING_DISABLED defined the span
// object (and its branch) vanishes from every instrumentation site.
#if defined(SDS_PROFILING_DISABLED)
#define SDS_PROFILE_SPAN(profiler, id) ((void)0)
#else
#define SDS_PROFILE_CONCAT_INNER(a, b) a##b
#define SDS_PROFILE_CONCAT(a, b) SDS_PROFILE_CONCAT_INNER(a, b)
#define SDS_PROFILE_SPAN(profiler, id)                 \
  ::sds::telemetry::ProfileSpan SDS_PROFILE_CONCAT(    \
      sds_profile_span_, __LINE__)((profiler), (id))
#endif

}  // namespace sds::telemetry
