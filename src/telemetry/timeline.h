// Incident timeline reconstruction: joins the tracer's event window, the
// detector audit log and the span profiler into one causal chain per alarm
// episode —
//
//   attack phase begins -> first observable contention -> detector's first
//   post-attack check -> first violating check of the decisive streak ->
//   alarm -> mitigation actuation
//
// — and decomposes the headline detection delay (paper Figure 11) into the
// stages it is actually spent in:
//
//   sampling_wait      attack start until the detector first EVALUATED a
//                      post-attack statistic (PCM cadence + EWMA/MA window
//                      fill; for KStest also the L_M monitoring grid);
//   detector_compute   first post-attack check until the decisive violation
//                      streak began (how long the statistics took to cross
//                      the boundary);
//   debounce           decisive streak start until the alarm (the H_C
//                      consecutive-violation rule's deliberate holdoff);
//   mitigation         alarm until the MitigationEngine acted (0 when no
//                      engine is wired up).
//
// The reconstruction is driven by AUDIT records, which unlike tracer events
// survive ring overflow, so it stays correct on long runs; events only
// refine the picture (first bus saturation / cross-owner eviction), and the
// profiler contributes the wall-time cost of the detector's checks.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace sds::telemetry {

class Telemetry;

struct DelayDecomposition {
  Tick sampling_wait = 0;
  Tick detector_compute = 0;
  Tick debounce = 0;
  Tick mitigation = 0;
  // sampling_wait + detector_compute + debounce == alarm - attack_start.
  Tick detection_total() const {
    return sampling_wait + detector_compute + debounce;
  }
};

struct Incident {
  std::string detector;
  // Statistic channel whose violation streak raised the alarm.
  std::string channel;
  Tick attack_start = kInvalidTick;
  // First contention symptom in the event window (bus_saturated /
  // cross_owner_eviction / lock_window_open at or after attack_start);
  // kInvalidTick when those events were dropped or tracing was off.
  Tick first_contention = kInvalidTick;
  Tick first_check = kInvalidTick;       // first post-attack audited check
  Tick streak_start = kInvalidTick;      // first violation of decisive streak
  Tick alarm = kInvalidTick;
  Tick mitigation = kInvalidTick;        // kInvalidTick when none occurred
  DelayDecomposition delay;
};

struct TimelineOptions {
  // Tick the attack program activated. kInvalidTick = recover it from the
  // eval-layer "attack_phase_begin" trace event; reconstruction then skips
  // incident assembly (returning alarms only, with empty decompositions) if
  // neither source provides it.
  Tick attack_start = kInvalidTick;
};

// One incident per rising alarm edge at or after the attack start, in tick
// order. Alarm edges BEFORE the attack start (false positives) are ignored:
// they have no detection delay to decompose.
std::vector<Incident> ReconstructIncidents(const Telemetry& telemetry,
                                           const TimelineOptions& options = {});

// Human-readable report: one causal chain per incident plus, when the span
// profiler holds data, the measured wall cost of the detector's per-sample
// work (the "detector compute" stage in real nanoseconds rather than ticks).
void WriteIncidentReport(std::ostream& os,
                         const std::vector<Incident>& incidents,
                         const Telemetry& telemetry,
                         double tpcm_seconds = kDefaultTpcmSeconds);

}  // namespace sds::telemetry
