#include "telemetry/metrics.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"

namespace sds::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SDS_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  SDS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
            "histogram bounds must be sorted");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += value;
}

std::vector<double> LatencyNsBounds() {
  return {50.0, 80.0, 120.0, 200.0, 400.0, 800.0, 1600.0, 6400.0};
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return &counters_[it->second];
  counter_index_[name] = counters_.size();
  return &counters_.emplace_back();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return &gauges_[it->second];
  gauge_index_[name] = gauges_.size();
  return &gauges_.emplace_back();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return &histograms_[it->second];
  histogram_index_[name] = histograms_.size();
  return &histograms_.emplace_back(std::move(bounds));
}

void MetricsRegistry::WriteJsonl(std::ostream& os) const {
  for (const auto& [name, idx] : counter_index_) {
    os << "{\"type\":\"metric\",\"metric\":\"counter\",\"name\":\"" << name
       << "\",\"value\":" << counters_[idx].value() << "}\n";
  }
  for (const auto& [name, idx] : gauge_index_) {
    os << "{\"type\":\"metric\",\"metric\":\"gauge\",\"name\":\"" << name
       << "\",\"value\":" << gauges_[idx].value() << "}\n";
  }
  for (const auto& [name, idx] : histogram_index_) {
    const Histogram& h = histograms_[idx];
    os << "{\"type\":\"metric\",\"metric\":\"histogram\",\"name\":\"" << name
       << "\",\"count\":" << h.count() << ",\"sum\":" << h.sum()
       << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) os << ',';
      os << h.bounds()[i];
    }
    os << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      if (i) os << ',';
      os << h.buckets()[i];
    }
    os << "]}\n";
  }
}

}  // namespace sds::telemetry
