#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/check.h"

namespace sds::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SDS_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  SDS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
            "histogram bounds must be sorted");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  if (!std::isfinite(value)) [[unlikely]] {
    // NaN and +inf go to the overflow bucket, -inf to the first; none of
    // them contaminates the running sum (see the class comment).
    ++buckets_[value < 0.0 ? 0 : buckets_.size() - 1];
    ++count_;
    return;
  }
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += value;
}

double Histogram::Quantile(double q) const {
  return QuantileFromBuckets(bounds_, buckets_, q);
}

double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<std::uint64_t>& buckets,
                           double q) {
  SDS_CHECK(buckets.size() == bounds.size() + 1,
            "buckets must be one longer than bounds");
  SDS_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return std::nan("");
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets[i]);
    if (next < rank && i + 1 < buckets.size()) {
      cumulative = next;
      continue;
    }
    if (i == bounds.size()) return bounds.back();  // overflow: clamp
    const double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
    const double upper = bounds[i];
    if (buckets[i] == 0) return upper;
    const double fraction =
        std::clamp((rank - cumulative) / static_cast<double>(buckets[i]),
                   0.0, 1.0);
    return lower + (upper - lower) * fraction;
  }
  return bounds.back();
}

std::vector<double> LatencyNsBounds() {
  return {50.0, 80.0, 120.0, 200.0, 400.0, 800.0, 1600.0, 6400.0};
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return &counters_[it->second];
  counter_index_[name] = counters_.size();
  return &counters_.emplace_back();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return &gauges_[it->second];
  gauge_index_[name] = gauges_.size();
  return &gauges_.emplace_back();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return &histograms_[it->second];
  histogram_index_[name] = histograms_.size();
  return &histograms_.emplace_back(std::move(bounds));
}

void MetricsRegistry::WriteJsonl(std::ostream& os) const {
  for (const auto& [name, idx] : counter_index_) {
    os << "{\"type\":\"metric\",\"metric\":\"counter\",\"name\":\"" << name
       << "\",\"value\":" << counters_[idx].value() << "}\n";
  }
  for (const auto& [name, idx] : gauge_index_) {
    os << "{\"type\":\"metric\",\"metric\":\"gauge\",\"name\":\"" << name
       << "\",\"value\":" << gauges_[idx].value() << "}\n";
  }
  for (const auto& [name, idx] : histogram_index_) {
    const Histogram& h = histograms_[idx];
    os << "{\"type\":\"metric\",\"metric\":\"histogram\",\"name\":\"" << name
       << "\",\"count\":" << h.count() << ",\"sum\":" << h.sum()
       << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) os << ',';
      os << h.bounds()[i];
    }
    os << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      if (i) os << ',';
      os << h.buckets()[i];
    }
    os << "]}\n";
  }
}

}  // namespace sds::telemetry
