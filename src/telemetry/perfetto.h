// Chrome / Perfetto trace-event JSON export.
//
// Serializes one Telemetry handle as a JSON object in the trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// that chrome://tracing and https://ui.perfetto.dev load directly:
//
//   * profiler slices  -> nested "X" (complete) duration events on the
//                         "profiler" process, one track per nesting level
//                         collapsed automatically by the viewer;
//   * tracer events    -> "i" (instant) events on the "simulation" process,
//                         one thread track per telemetry layer, args carrying
//                         the event's numeric/string fields;
//   * audit records    -> "i" events on a dedicated detector-decisions track,
//                         args carrying value/bounds/margin/verdict.
//
// Time bases. Tick-domain data (tracer events, audits) is mapped through
// tpcm_seconds so one tick renders as its virtual duration; profiler slices
// are emitted in their own clock domain (wall nanoseconds, or deterministic
// units in tick-domain mode) on a separate process so the two axes never
// visually mix. Both are valid trace-event streams either way — the format
// only requires microsecond numbers, not a shared epoch.
//
// The export is read-only (unlike Telemetry::WriteJsonl it drains nothing),
// so it can run mid-experiment or after WriteJsonl in any order.
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.h"

namespace sds::telemetry {

class Telemetry;

struct PerfettoOptions {
  // Virtual seconds per simulator tick (Table 1: T_PCM).
  double tpcm_seconds = kDefaultTpcmSeconds;
  bool include_tracer_events = true;
  bool include_audit_records = true;
  bool include_profiler_slices = true;
};

// Writes the full trace-event JSON object ({"traceEvents":[...],...}).
void WritePerfettoTrace(const Telemetry& telemetry, std::ostream& os,
                        const PerfettoOptions& options = {});

// Convenience wrapper; returns false when the file cannot be opened.
bool WritePerfettoTraceFile(const Telemetry& telemetry,
                            const std::string& path,
                            const PerfettoOptions& options = {});

// Escapes a string for embedding inside a JSON string literal (quotes,
// backslashes, control characters). Exposed for the exporter's tests.
std::string JsonEscape(const char* s);

}  // namespace sds::telemetry
