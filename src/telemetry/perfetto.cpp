#include "telemetry/perfetto.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "telemetry/telemetry.h"

namespace sds::telemetry {

namespace {

// Process ids: tick-domain data and profiler slices live on separate
// processes so the viewer never renders two time bases on one axis.
constexpr int kSimPid = 1;
constexpr int kProfilerPid = 2;
// Thread ids on kSimPid: 1 + layer index for tracer events, then one extra
// track for detector audit records.
constexpr int kAuditTid = static_cast<int>(kLayerCount) + 1;

void WriteJsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no inf/nan literals
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

// Emits the common prefix of one trace event and leaves the object open so
// callers can append args. `ts` is in microseconds per the format.
void BeginEvent(std::ostream& os, bool& first, const char* name,
                const char* phase, double ts_us, int pid, int tid,
                const char* category) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << JsonEscape(name) << "\",\"ph\":\"" << phase
     << "\",\"ts\":";
  WriteJsonNumber(os, ts_us);
  os << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"cat\":\"" << category
     << '"';
}

void WriteMetadata(std::ostream& os, bool& first, const char* name, int pid,
                   int tid, const char* value) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << name << "\",\"ph\":\"M\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << JsonEscape(value)
     << "\"}}";
}

}  // namespace

std::string JsonEscape(const char* s) {
  std::string out;
  if (s == nullptr) return out;
  for (const char* p = s; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void WritePerfettoTrace(const Telemetry& telemetry, std::ostream& os,
                        const PerfettoOptions& options) {
  const double tick_us = options.tpcm_seconds * 1e6;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  // Track naming metadata.
  WriteMetadata(os, first, "process_name", kSimPid, 0, "simulation (ticks)");
  for (std::size_t i = 0; i < kLayerCount; ++i) {
    WriteMetadata(os, first, "thread_name", kSimPid, static_cast<int>(i) + 1,
                  LayerName(static_cast<Layer>(i)));
  }
  WriteMetadata(os, first, "thread_name", kSimPid, kAuditTid,
                "detector decisions");
  const SpanProfiler& profiler = telemetry.profiler();
  const bool slices = options.include_profiler_slices &&
                      profiler.slices_retained() > 0;
  if (slices) {
    WriteMetadata(os, first, "process_name", kProfilerPid, 0,
                  profiler.clock() == ProfileClock::kWall
                      ? "profiler (wall clock)"
                      : "profiler (deterministic tick clock)");
    WriteMetadata(os, first, "thread_name", kProfilerPid, 1, "spans");
  }

  if (options.include_tracer_events) {
    const EventTracer& tracer = telemetry.tracer();
    for (std::size_t i = 0; i < tracer.retained(); ++i) {
      const TraceEvent& e = tracer.event(i);
      BeginEvent(os, first, e.name != nullptr ? e.name : "?", "i",
                 static_cast<double>(e.tick) * tick_us, kSimPid,
                 static_cast<int>(e.layer) + 1, LayerName(e.layer));
      os << ",\"s\":\"t\",\"args\":{\"tick\":" << e.tick;
      if (e.owner >= 0) os << ",\"owner\":" << e.owner;
      for (const auto& f : e.nums) {
        if (f.key == nullptr) continue;
        os << ",\"" << JsonEscape(f.key) << "\":";
        WriteJsonNumber(os, f.value);
      }
      for (const auto& f : e.strs) {
        if (f.key == nullptr) continue;
        os << ",\"" << JsonEscape(f.key) << "\":\""
           << JsonEscape(f.value != nullptr ? f.value : "") << '"';
      }
      os << "}}";
    }
  }

  if (options.include_audit_records) {
    for (const AuditRecord& r : telemetry.audit().records()) {
      BeginEvent(os, first, r.check, "i",
                 static_cast<double>(r.tick) * tick_us, kSimPid, kAuditTid,
                 "audit");
      os << ",\"s\":\"t\",\"args\":{\"tick\":" << r.tick << ",\"detector\":\""
         << JsonEscape(r.detector) << "\",\"channel\":\""
         << JsonEscape(r.channel) << "\",\"value\":";
      WriteJsonNumber(os, r.value);
      os << ",\"lower\":";
      WriteJsonNumber(os, r.lower);
      os << ",\"upper\":";
      WriteJsonNumber(os, r.upper);
      os << ",\"margin\":";
      WriteJsonNumber(os, r.margin);
      os << ",\"violation\":" << (r.violation ? "true" : "false")
         << ",\"consecutive\":" << r.consecutive
         << ",\"alarm\":" << (r.alarm ? "true" : "false") << "}}";
    }
  }

  if (slices) {
    // Profiler timestamps are nanoseconds (or deterministic units); scale to
    // the format's microseconds and rebase to the earliest slice so the
    // track starts near zero. Complete ("X") events nest by timestamp
    // containment, which the enter/exit discipline guarantees.
    std::uint64_t base = profiler.slice(0).start;
    for (std::size_t i = 1; i < profiler.slices_retained(); ++i) {
      base = std::min(base, profiler.slice(i).start);
    }
    for (std::size_t i = 0; i < profiler.slices_retained(); ++i) {
      const SpanSlice& s = profiler.slice(i);
      BeginEvent(os, first, profiler.span_name(s.span), "X",
                 static_cast<double>(s.start - base) / 1e3, kProfilerPid, 1,
                 "span");
      os << ",\"dur\":";
      WriteJsonNumber(os, static_cast<double>(s.duration) / 1e3);
      os << ",\"args\":{\"depth\":" << s.depth << "}}";
    }
  }

  os << "\n]}\n";
}

bool WritePerfettoTraceFile(const Telemetry& telemetry,
                            const std::string& path,
                            const PerfettoOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  WritePerfettoTrace(telemetry, out, options);
  return static_cast<bool>(out);
}

}  // namespace sds::telemetry
