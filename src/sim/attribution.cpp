#include "sim/attribution.h"

#include "common/check.h"

namespace sds::sim {

AttributionLedger::AttributionLedger(OwnerId max_owners)
    : max_owners_(max_owners) {
  SDS_CHECK(max_owners > 0, "attribution ledger needs at least one owner");
  const std::size_t n = static_cast<std::size_t>(max_owners) * max_owners;
  evictions_.assign(n, 0);
  bus_delay_.assign(n, 0);
  occupancy_.assign(max_owners, 0);
  tick_occupancy_.assign(max_owners, 0);
}

void AttributionLedger::RecordTickStart() {
  tick_occupancy_.assign(max_owners_, 0);
}

void AttributionLedger::RecordEviction(OwnerId culprit, OwnerId victim) {
  SDS_DCHECK(culprit < max_owners_ && victim < max_owners_,
             "owner out of range");
  ++evictions_[Index(culprit, victim)];
}

void AttributionLedger::RecordBusOccupancy(OwnerId owner,
                                           std::uint32_t slots) {
  SDS_DCHECK(owner < max_owners_, "owner out of range");
  occupancy_[owner] += slots;
  tick_occupancy_[owner] += slots;
}

void AttributionLedger::RecordBusStall(OwnerId victim) {
  SDS_DCHECK(victim < max_owners_, "owner out of range");
  for (OwnerId o = 0; o < max_owners_; ++o) {
    if (o == victim) continue;
    bus_delay_[Index(o, victim)] += tick_occupancy_[o];
  }
}

std::uint64_t AttributionLedger::evictions_suffered(OwnerId victim) const {
  std::uint64_t total = 0;
  for (OwnerId o = 0; o < max_owners_; ++o) {
    if (o != victim) total += evictions_[Index(o, victim)];
  }
  return total;
}

std::uint64_t AttributionLedger::bus_delay_suffered(OwnerId victim) const {
  std::uint64_t total = 0;
  for (OwnerId o = 0; o < max_owners_; ++o) {
    if (o != victim) total += bus_delay_[Index(o, victim)];
  }
  return total;
}

}  // namespace sds::sim
