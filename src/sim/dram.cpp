#include "sim/dram.h"

// Header-only implementation; this translation unit anchors the library.
