// Per-resource interference attribution ledger.
//
// The counters in sim::Machine say WHAT a VM experienced (accesses, misses,
// stalls); this ledger says WHO caused it. The cache records, per
// (culprit, victim) pair, how many of the victim's valid lines the culprit
// evicted; the bus records each owner's slot occupancy and, whenever an
// owner's request stalls on the exhausted budget, charges every co-tenant by
// the slots it consumed in that tick — a deterministic, integer-only
// queue-delay attribution. Detectors raise alarms from the statistics;
// forensics (detect/forensics.h) turns this ledger into ranked suspects.
//
// Cost contract: the ledger is attached by sim::Machine only when
// MachineConfig::attribution is set. Detached (the default), every hook is
// one null-pointer test — the golden regression tests pin that an
// attribution-off run is bit-identical to the pre-ledger simulator. The
// ledger is a pure observer either way: attaching it never changes a single
// simulated outcome, only what is remembered about it.
//
// Mutation policy (enforced by sdslint's det-attrib-ledger rule): the
// Record* mutators are called from the sim layer only — the cache's eviction
// path and the bus's consume/stall paths. Every other layer reads the
// cumulative matrices through the const accessors.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sds::sim {

class AttributionLedger {
 public:
  // Sized like the machine's counter file: owner ids in [0, max_owners).
  explicit AttributionLedger(OwnerId max_owners);

  // -- sim-layer mutators (see the mutation policy above) -------------------

  // Starts a new tick: resets the per-tick occupancy the stall charges key
  // on. Driven from Machine::BeginTick.
  void RecordTickStart();

  // `culprit` filled a line by evicting a valid line owned by `victim`.
  // Same-owner self-evictions are counted on the diagonal — they are the
  // baseline that makes a cleansing attacker's off-diagonal row stand out.
  void RecordEviction(OwnerId culprit, OwnerId victim);

  // `owner` consumed `slots` bus slots this tick (accesses, miss transfers
  // and atomic lock windows alike).
  void RecordBusOccupancy(OwnerId owner, std::uint32_t slots);

  // `victim`'s request found the bus budget exhausted. Each co-tenant is
  // charged by the slots it consumed so far this tick: the owners that ate
  // the budget are, in exact proportion, the owners that imposed the delay.
  void RecordBusStall(OwnerId victim);

  // -- read side (any layer) ------------------------------------------------

  OwnerId max_owners() const { return max_owners_; }

  // Valid lines of `victim` evicted by `culprit` since construction.
  std::uint64_t evictions_inflicted(OwnerId culprit, OwnerId victim) const {
    return evictions_[Index(culprit, victim)];
  }
  // Stall charges: slot-weighted delay `culprit` imposed on `victim`.
  std::uint64_t bus_delay_imposed(OwnerId culprit, OwnerId victim) const {
    return bus_delay_[Index(culprit, victim)];
  }
  // Total bus slots `owner` consumed since construction.
  std::uint64_t occupancy_slots(OwnerId owner) const {
    return occupancy_[owner];
  }
  // Slots `owner` consumed in the current tick (resets at RecordTickStart).
  std::uint32_t tick_occupancy_slots(OwnerId owner) const {
    return tick_occupancy_[owner];
  }

  // Row/column sums over culprits other than `owner` itself.
  std::uint64_t evictions_suffered(OwnerId victim) const;
  std::uint64_t bus_delay_suffered(OwnerId victim) const;

 private:
  std::size_t Index(OwnerId culprit, OwnerId victim) const {
    return static_cast<std::size_t>(culprit) * max_owners_ + victim;
  }

  OwnerId max_owners_;
  // max_owners x max_owners, culprit-major.
  std::vector<std::uint64_t> evictions_;
  std::vector<std::uint64_t> bus_delay_;
  std::vector<std::uint64_t> occupancy_;
  std::vector<std::uint32_t> tick_occupancy_;
};

}  // namespace sds::sim
