#include "sim/cache.h"

#include "common/check.h"
#include "sim/attribution.h"

namespace sds::sim {

LastLevelCache::LastLevelCache(const CacheConfig& config) : config_(config) {
  SDS_CHECK(config.sets > 0 && (config.sets & (config.sets - 1)) == 0,
            "cache sets must be a power of two");
  SDS_CHECK(config.ways > 0, "cache needs at least one way");
  set_mask_ = config.sets - 1;
  lines_.resize(static_cast<std::size_t>(config.sets) * config.ways);
}

LastLevelCache::Line* LastLevelCache::FindLine(std::uint32_t set,
                                               LineAddr addr) {
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == addr) return &base[w];
  }
  return nullptr;
}

const LastLevelCache::Line* LastLevelCache::FindLine(std::uint32_t set,
                                                     LineAddr addr) const {
  const Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == addr) return &base[w];
  }
  return nullptr;
}

CacheAccessResult LastLevelCache::Access(OwnerId owner, LineAddr addr) {
  const std::uint32_t set = SetIndexOf(addr);
  CacheAccessResult result;

  if (Line* line = FindLine(set, addr)) {
    line->lru = ++lru_clock_;
    line->owner = owner;  // shared lines re-tag to the latest toucher
    result.hit = true;
    return result;
  }

  // Miss: fill into an invalid way, or evict the LRU way.
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
  }
  if (victim == nullptr) {
    victim = base;
    for (std::uint32_t w = 1; w < config_.ways; ++w) {
      if (base[w].lru < victim->lru) victim = &base[w];
    }
    result.evicted_valid = true;
    result.evicted_owner = victim->owner;
    if (ledger_ != nullptr) ledger_->RecordEviction(owner, victim->owner);
  }
  victim->tag = addr;
  victim->owner = owner;
  victim->valid = true;
  victim->lru = ++lru_clock_;
  return result;
}

bool LastLevelCache::Contains(LineAddr addr) const {
  return FindLine(SetIndexOf(addr), addr) != nullptr;
}

std::size_t LastLevelCache::CountOwnerLines(OwnerId owner) const {
  std::size_t count = 0;
  for (const Line& line : lines_) {
    if (line.valid && line.owner == owner) ++count;
  }
  return count;
}

std::uint32_t LastLevelCache::OwnerLinesInSet(std::uint32_t set,
                                              OwnerId owner) const {
  SDS_CHECK(set < config_.sets, "set index out of range");
  const Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  std::uint32_t count = 0;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].owner == owner) ++count;
  }
  return count;
}

void LastLevelCache::Flush() {
  for (Line& line : lines_) line.valid = false;
  lru_clock_ = 0;
}

}  // namespace sds::sim
