// Shared memory-bus model.
//
// Intel's ring bus and the memory-controller buses are shared by every core
// in the socket (paper Section 2.1). We model the aggregate as a per-tick
// transaction budget: every LLC access consumes slots, an LLC miss consumes
// extra slots for the DRAM transfer, and an atomic locked operation consumes
// an exclusive lock window that is an order of magnitude more expensive —
// which is precisely the asymmetry the atomic bus locking attack exploits
// (Section 2.2). When the budget is exhausted mid-tick, remaining operations
// stall until the next tick: victims complete fewer accesses, and AccessNum
// drops emerge from the mechanism.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace sds::sim {

class AttributionLedger;

struct BusConfig {
  // Transaction slots available per tick (aggregate bus bandwidth).
  std::uint32_t slots_per_tick = 12000;
  // Slots consumed by an LLC access (hit).
  std::uint32_t access_slots = 1;
  // Additional slots consumed on an LLC miss (DRAM transfer).
  std::uint32_t miss_extra_slots = 3;
  // Slots consumed by one atomic locked operation: the lock quiesces every
  // bus in the socket for the duration of the exotic atomic.
  std::uint32_t atomic_lock_slots = 40;
};

struct BusStats {
  std::uint64_t slots_consumed = 0;
  std::uint64_t atomic_locks = 0;
  std::uint64_t stalled_requests = 0;
  // Ticks in which the budget ran out before all requests were served.
  std::uint64_t saturated_ticks = 0;
};

class MemoryBus {
 public:
  explicit MemoryBus(const BusConfig& config);

  // Starts a new tick, refilling the slot budget.
  void BeginTick();

  // Attempts to reserve `slots` in the current tick on behalf of `owner`.
  // On failure nothing is consumed and the request counts as stalled; with
  // a ledger attached, success records the owner's occupancy and failure
  // charges the queue delay to the owners that consumed the budget.
  bool TryConsume(OwnerId owner, std::uint32_t slots);

  // Attempts to reserve an atomic lock window for `owner`.
  bool TryAtomicLock(OwnerId owner);

  // Attaches the interference attribution ledger (nullptr detaches). The
  // only cost on the detached path is one null test per reservation.
  void AttachLedger(AttributionLedger* ledger) { ledger_ = ledger; }

  std::uint32_t slots_remaining() const { return remaining_; }
  const BusConfig& config() const { return config_; }
  const BusStats& stats() const { return stats_; }

 private:
  BusConfig config_;
  std::uint32_t remaining_ = 0;
  bool saturation_recorded_ = false;
  BusStats stats_;
  AttributionLedger* ledger_ = nullptr;  // not owned; see AttachLedger
};

}  // namespace sds::sim
