// Set-associative last-level cache with true LRU replacement.
//
// This is a real (scaled) cache model, not a statistical one: VMs own disjoint
// line-address ranges, their accesses contend for the same physical sets, and
// the LLC cleansing attack's effect on victim miss counts EMERGES from actual
// evictions rather than being injected. The default configuration scales the
// paper's 35 MB / 20-way Xeon LLC down to 2 MiB / 16-way so that 600 virtual
// seconds simulate in about a second of wall time; shapes are scale-free.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sds::sim {

class AttributionLedger;

struct CacheConfig {
  // Number of sets; must be a power of two.
  std::uint32_t sets = 2048;
  // Associativity (lines per set). Paper hardware: 20-way.
  std::uint32_t ways = 16;
};

struct CacheAccessResult {
  bool hit = false;
  // Owner of the line that was evicted to make room (only meaningful when
  // !hit and a valid line was displaced).
  bool evicted_valid = false;
  OwnerId evicted_owner = 0;
};

class LastLevelCache {
 public:
  explicit LastLevelCache(const CacheConfig& config);

  // Performs a load of `addr` on behalf of `owner`: on hit refreshes LRU, on
  // miss fills the line (evicting the LRU way).
  CacheAccessResult Access(OwnerId owner, LineAddr addr);

  // Attaches the interference attribution ledger (nullptr detaches). While
  // attached, every eviction of a valid line is recorded against the owner
  // that forced it — ways are already tagged with their owner, so the
  // inflicted/suffered matrix falls out of the replacement decision itself.
  // The only cost on the detached path is a null test in the eviction
  // branch; the hit path is untouched.
  void AttachLedger(AttributionLedger* ledger) { ledger_ = ledger; }

  // True when the line currently resides in the cache (no state change).
  bool Contains(LineAddr addr) const;

  // Number of valid lines currently owned by `owner` (introspection for
  // tests and occupancy diagnostics; a real attacker infers this by timing).
  std::size_t CountOwnerLines(OwnerId owner) const;

  // Number of valid lines owned by `owner` within one set.
  std::uint32_t OwnerLinesInSet(std::uint32_t set, OwnerId owner) const;

  std::uint32_t SetIndexOf(LineAddr addr) const {
    return static_cast<std::uint32_t>(addr) & set_mask_;
  }

  const CacheConfig& config() const { return config_; }
  std::size_t total_lines() const {
    return static_cast<std::size_t>(config_.sets) * config_.ways;
  }

  void Flush();

 private:
  struct Line {
    LineAddr tag = 0;
    OwnerId owner = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  Line* FindLine(std::uint32_t set, LineAddr addr);
  const Line* FindLine(std::uint32_t set, LineAddr addr) const;

  CacheConfig config_;
  std::uint32_t set_mask_;
  std::vector<Line> lines_;  // sets * ways, row-major by set
  std::uint64_t lru_clock_ = 0;
  AttributionLedger* ledger_ = nullptr;  // not owned; see AttachLedger
};

}  // namespace sds::sim
