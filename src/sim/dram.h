// DRAM latency model.
//
// The detectors only consume LLC counters, but the DRAM stage closes the loop
// for the performance-overhead experiments: every LLC miss pays a DRAM access
// whose latency accumulates into per-owner stall time, which is what makes a
// cleansed victim actually slower (not just "missier").
#pragma once

#include <cstdint>

namespace sds::sim {

struct DramConfig {
  // Latency of one DRAM access in nanoseconds of virtual time.
  double access_latency_ns = 80.0;
  // Additional queueing latency per outstanding request in the same tick,
  // modelling bank/channel contention under bursts.
  double queue_latency_ns = 2.0;
};

struct DramStats {
  std::uint64_t reads = 0;
  double total_latency_ns = 0.0;
};

class Dram {
 public:
  explicit Dram(const DramConfig& config) : config_(config) {}

  void BeginTick() { inflight_this_tick_ = 0; }

  // Performs one read and returns its modelled latency.
  double Read() {
    const double latency =
        config_.access_latency_ns +
        config_.queue_latency_ns * static_cast<double>(inflight_this_tick_);
    ++inflight_this_tick_;
    ++stats_.reads;
    stats_.total_latency_ns += latency;
    return latency;
  }

  const DramStats& stats() const { return stats_; }
  const DramConfig& config() const { return config_; }

 private:
  DramConfig config_;
  std::uint32_t inflight_this_tick_ = 0;
  DramStats stats_;
};

}  // namespace sds::sim
