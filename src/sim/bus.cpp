#include "sim/bus.h"

#include "sim/attribution.h"

namespace sds::sim {

MemoryBus::MemoryBus(const BusConfig& config)
    : config_(config), remaining_(config.slots_per_tick) {}

void MemoryBus::BeginTick() {
  remaining_ = config_.slots_per_tick;
  saturation_recorded_ = false;
}

bool MemoryBus::TryConsume(OwnerId owner, std::uint32_t slots) {
  if (slots > remaining_) {
    ++stats_.stalled_requests;
    if (!saturation_recorded_) {
      ++stats_.saturated_ticks;
      saturation_recorded_ = true;
    }
    if (ledger_ != nullptr) ledger_->RecordBusStall(owner);
    return false;
  }
  remaining_ -= slots;
  stats_.slots_consumed += slots;
  if (ledger_ != nullptr) ledger_->RecordBusOccupancy(owner, slots);
  return true;
}

bool MemoryBus::TryAtomicLock(OwnerId owner) {
  if (!TryConsume(owner, config_.atomic_lock_slots)) return false;
  ++stats_.atomic_locks;
  return true;
}

}  // namespace sds::sim
