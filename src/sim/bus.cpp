#include "sim/bus.h"

namespace sds::sim {

MemoryBus::MemoryBus(const BusConfig& config)
    : config_(config), remaining_(config.slots_per_tick) {}

void MemoryBus::BeginTick() {
  remaining_ = config_.slots_per_tick;
  saturation_recorded_ = false;
}

bool MemoryBus::TryConsume(std::uint32_t slots) {
  if (slots > remaining_) {
    ++stats_.stalled_requests;
    if (!saturation_recorded_) {
      ++stats_.saturated_ticks;
      saturation_recorded_ = true;
    }
    return false;
  }
  remaining_ -= slots;
  stats_.slots_consumed += slots;
  return true;
}

bool MemoryBus::TryAtomicLock() {
  if (!TryConsume(config_.atomic_lock_slots)) return false;
  ++stats_.atomic_locks;
  return true;
}

}  // namespace sds::sim
