// The simulated physical machine: one socket whose cores share an LLC, a
// memory bus and a DRAM channel, with per-owner hardware counters — the
// substrate on which VMs, attacks and the PCM sampler run.
//
// The counter registers mirror what Intel PCM exposes: cumulative LLC access
// and LLC miss counts per owner. The PCM sampler (src/pcm) reads deltas of
// these registers every T_PCM tick, producing exactly the AccessNum / MissNum
// series the paper's detectors consume.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/bus.h"
#include "sim/cache.h"
#include "sim/dram.h"

namespace sds::sim {

struct MachineConfig {
  CacheConfig cache;
  BusConfig bus;
  DramConfig dram;
  // Highest owner id (exclusive) the counter file is sized for.
  OwnerId max_owners = 32;
};

struct OwnerCounters {
  std::uint64_t llc_accesses = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t atomic_ops = 0;
  // Requests that could not be served because the bus budget was exhausted.
  std::uint64_t bus_stalls = 0;
  // Accumulated DRAM latency attributed to this owner (virtual ns).
  double dram_latency_ns = 0.0;
};

enum class AccessOutcome : std::uint8_t {
  kHit,
  kMiss,
  // The bus had no remaining bandwidth this tick; the operation did not
  // execute and should be retried next tick.
  kStalled,
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  // Advances the machine to the next tick, refilling the bus budget.
  void BeginTick();
  Tick now() const { return now_; }

  // A normal (non-atomic) memory load by `owner`.
  AccessOutcome Access(OwnerId owner, LineAddr addr);

  // An atomic locked operation: reserves an exclusive bus lock window and
  // then performs the access. This is the primitive the bus locking attack
  // issues in a tight loop.
  AccessOutcome AtomicAccess(OwnerId owner, LineAddr addr);

  const OwnerCounters& counters(OwnerId owner) const {
    SDS_DCHECK(owner < counters_.size(), "owner out of range");
    return counters_[owner];
  }

  LastLevelCache& cache() { return cache_; }
  const LastLevelCache& cache() const { return cache_; }
  MemoryBus& bus() { return bus_; }
  const MemoryBus& bus() const { return bus_; }
  const Dram& dram() const { return dram_; }
  const MachineConfig& config() const { return config_; }

 private:
  AccessOutcome FinishAccess(OwnerId owner, LineAddr addr);

  MachineConfig config_;
  LastLevelCache cache_;
  MemoryBus bus_;
  Dram dram_;
  std::vector<OwnerCounters> counters_;
  Tick now_ = 0;
};

}  // namespace sds::sim
