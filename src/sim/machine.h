// The simulated physical machine: one socket whose cores share an LLC, a
// memory bus and a DRAM channel, with per-owner hardware counters — the
// substrate on which VMs, attacks and the PCM sampler run.
//
// The counter registers mirror what Intel PCM exposes: cumulative LLC access
// and LLC miss counts per owner. The PCM sampler (src/pcm) reads deltas of
// these registers every T_PCM tick, producing exactly the AccessNum / MissNum
// series the paper's detectors consume.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sim/attribution.h"
#include "sim/bus.h"
#include "sim/cache.h"
#include "sim/dram.h"

namespace sds::telemetry {
class Telemetry;
class Counter;
class Histogram;
class SpanProfiler;
}  // namespace sds::telemetry

namespace sds::sim {

struct MachineConfig {
  CacheConfig cache;
  BusConfig bus;
  DramConfig dram;
  // Highest owner id (exclusive) the counter file is sized for.
  OwnerId max_owners = 32;
  // Maintain the per-resource interference attribution ledger
  // (sim/attribution.h): inter-VM eviction matrix from the cache, per-owner
  // occupancy and stall charges from the bus. Off (the default) the ledger
  // is never allocated and every hook is a null test — counter streams and
  // outcomes are bit-identical to the pre-ledger simulator.
  bool attribution = false;
  // Optional observability handle (not owned; must outlive the machine).
  // Everything running on this machine — hypervisor, samplers, detectors —
  // shares this one handle, so wiring a run for telemetry is this single
  // assignment. nullptr (the default) disables all instrumentation.
  telemetry::Telemetry* telemetry = nullptr;
};

struct OwnerCounters {
  std::uint64_t llc_accesses = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t atomic_ops = 0;
  // Requests that could not be served because the bus budget was exhausted.
  std::uint64_t bus_stalls = 0;
  // Accumulated DRAM latency attributed to this owner (virtual ns).
  double dram_latency_ns = 0.0;
};

enum class AccessOutcome : std::uint8_t {
  kHit,
  kMiss,
  // The bus had no remaining bandwidth this tick; the operation did not
  // execute and should be retried next tick.
  kStalled,
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  // Advances the machine to the next tick, refilling the bus budget.
  void BeginTick();
  Tick now() const { return now_; }

  // A normal (non-atomic) memory load by `owner`.
  AccessOutcome Access(OwnerId owner, LineAddr addr);

  // An atomic locked operation: reserves an exclusive bus lock window and
  // then performs the access. This is the primitive the bus locking attack
  // issues in a tight loop.
  AccessOutcome AtomicAccess(OwnerId owner, LineAddr addr);

  const OwnerCounters& counters(OwnerId owner) const {
    SDS_DCHECK(owner < counters_.size(), "owner out of range");
    return counters_[owner];
  }

  // The interference attribution ledger (nullptr unless
  // MachineConfig::attribution was set). Read-only outside the sim layer.
  const AttributionLedger* attribution() const { return ledger_.get(); }

  LastLevelCache& cache() { return cache_; }
  const LastLevelCache& cache() const { return cache_; }
  MemoryBus& bus() { return bus_; }
  const MemoryBus& bus() const { return bus_; }
  const Dram& dram() const { return dram_; }
  const MachineConfig& config() const { return config_; }

  // The shared observability handle (nullptr when detached).
  telemetry::Telemetry* telemetry() const { return config_.telemetry; }

 private:
  AccessOutcome FinishAccess(OwnerId owner, LineAddr addr);
  void RecordStall(OwnerId owner);

  // Cold instrumentation paths, out of line so the access fast path stays
  // compact. Only ever called when instrumented_ is true. Counter-style
  // metrics (hits/misses/stalls/atomic ops) are NOT updated per access;
  // SyncTelemetry folds the per-owner counter deltas into the registry once
  // per tick, so the uninstrumented per-access cost is zero and the
  // instrumented cost is one saturating pass over the counter file per tick.
  void SyncTelemetry();
  void InstrumentMiss(OwnerId owner, LineAddr addr, bool evicted_valid,
                      OwnerId evicted_owner, double latency);
  void InstrumentAtomic(OwnerId owner);
  void InstrumentStall(OwnerId owner);

  MachineConfig config_;
  LastLevelCache cache_;
  MemoryBus bus_;
  Dram dram_;
  std::vector<OwnerCounters> counters_;
  // Allocated only when config_.attribution is set; cache_ and bus_ hold
  // raw observer pointers to it.
  std::unique_ptr<AttributionLedger> ledger_;
  Tick now_ = 0;

  // True when config_.telemetry is attached; the ONLY telemetry cost on the
  // hot path is testing this flag.
  bool instrumented_ = false;
  // First bus saturation already traced this tick (one event per tick).
  bool saturation_traced_ = false;

  // Instrument slots, resolved once at construction (nullptr when detached).
  // prof_/span_tick_ drive the "sim.tick" profiler span around BeginTick;
  // span_tick_ holds a telemetry::SpanId (kept as a raw integer so this
  // header needs only a forward declaration).
  telemetry::SpanProfiler* prof_ = nullptr;
  std::uint32_t span_tick_ = 0;
  telemetry::Counter* t_ticks_ = nullptr;
  telemetry::Counter* t_hits_ = nullptr;
  telemetry::Counter* t_misses_ = nullptr;
  telemetry::Counter* t_cross_evictions_ = nullptr;
  telemetry::Counter* t_atomic_locks_ = nullptr;
  telemetry::Counter* t_stalls_ = nullptr;
  telemetry::Counter* t_saturated_ticks_ = nullptr;
  telemetry::Counter* t_dram_reads_ = nullptr;
  telemetry::Histogram* t_dram_latency_ = nullptr;
  // Totals already folded into the registry by SyncTelemetry.
  std::uint64_t synced_accesses_ = 0;
  std::uint64_t synced_misses_ = 0;
  std::uint64_t synced_atomic_ops_ = 0;
  std::uint64_t synced_stalls_ = 0;
};

}  // namespace sds::sim
