// A single memory operation as planned by a workload for one tick.
#pragma once

#include "common/types.h"

namespace sds::sim {

struct MemOp {
  LineAddr addr = 0;
  // Atomic read-modify-write that asserts the bus lock (the primitive the
  // bus locking attack abuses); costs the bus an exclusive lock window.
  bool atomic = false;
};

}  // namespace sds::sim
