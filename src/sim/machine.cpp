#include "sim/machine.h"

#include "telemetry/telemetry.h"

namespace sds::sim {

namespace tel = sds::telemetry;

Machine::Machine(const MachineConfig& config)
    : config_(config),
      cache_(config.cache),
      bus_(config.bus),
      dram_(config.dram),
      counters_(config.max_owners) {
  if (config_.attribution) {
    ledger_ = std::make_unique<AttributionLedger>(config_.max_owners);
    cache_.AttachLedger(ledger_.get());
    bus_.AttachLedger(ledger_.get());
  }
  if (tel::Telemetry* t = config_.telemetry) {
    instrumented_ = true;
    prof_ = &t->profiler();
    span_tick_ = prof_->RegisterSpan("sim.tick");
    tel::MetricsRegistry& m = t->metrics();
    t_ticks_ = m.GetCounter("sim.machine.ticks");
    t_hits_ = m.GetCounter("sim.cache.hits");
    t_misses_ = m.GetCounter("sim.cache.misses");
    t_cross_evictions_ = m.GetCounter("sim.cache.cross_owner_evictions");
    t_atomic_locks_ = m.GetCounter("sim.bus.atomic_locks");
    t_stalls_ = m.GetCounter("sim.bus.stalls");
    t_saturated_ticks_ = m.GetCounter("sim.bus.saturated_ticks");
    t_dram_reads_ = m.GetCounter("sim.dram.reads");
    t_dram_latency_ =
        m.GetHistogram("sim.dram.latency_ns", tel::LatencyNsBounds());
  }
}

Machine::~Machine() {
  // Fold the final (partial) tick's activity into the registry so metrics
  // read after a run are exact.
  if (instrumented_) SyncTelemetry();
}

void Machine::SyncTelemetry() {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t stalls = 0;
  for (const OwnerCounters& c : counters_) {
    accesses += c.llc_accesses;
    misses += c.llc_misses;
    atomic_ops += c.atomic_ops;
    stalls += c.bus_stalls;
  }
  t_hits_->Add((accesses - misses) - (synced_accesses_ - synced_misses_));
  t_misses_->Add(misses - synced_misses_);
  t_dram_reads_->Add(misses - synced_misses_);
  t_atomic_locks_->Add(atomic_ops - synced_atomic_ops_);
  t_stalls_->Add(stalls - synced_stalls_);
  synced_accesses_ = accesses;
  synced_misses_ = misses;
  synced_atomic_ops_ = atomic_ops;
  synced_stalls_ = stalls;
}

void Machine::BeginTick() {
  SDS_PROFILE_SPAN(prof_, span_tick_);
  bus_.BeginTick();
  dram_.BeginTick();
  if (ledger_) ledger_->RecordTickStart();
  saturation_traced_ = false;
  ++now_;
  if (instrumented_) [[unlikely]] {
    t_ticks_->Add();
    SyncTelemetry();
  }
}

void Machine::InstrumentStall(OwnerId owner) {
  if (saturation_traced_) return;
  saturation_traced_ = true;
  t_saturated_ticks_->Add();
  tel::Telemetry* t = config_.telemetry;
  if (t->tracer().enabled(tel::Layer::kSimBus)) {
    t->tracer().Emit(
        tel::MakeEvent(now_, tel::Layer::kSimBus, "bus_saturated", owner)
            .Num("slots_remaining", bus_.slots_remaining()));
  }
}

void Machine::RecordStall(OwnerId owner) {
  ++counters_[owner].bus_stalls;
  if (instrumented_) [[unlikely]] InstrumentStall(owner);
}

void Machine::InstrumentMiss(OwnerId owner, LineAddr addr, bool evicted_valid,
                             OwnerId evicted_owner, double latency) {
  t_dram_latency_->Observe(latency);
  if (evicted_valid && evicted_owner != owner) {
    t_cross_evictions_->Add();
    tel::Telemetry* t = config_.telemetry;
    if (t->tracer().enabled(tel::Layer::kSimCache)) {
      t->tracer().Emit(tel::MakeEvent(now_, tel::Layer::kSimCache,
                                      "cross_owner_eviction", owner)
                           .Num("victim", evicted_owner)
                           .Num("set", cache_.SetIndexOf(addr)));
    }
  }
}

AccessOutcome Machine::FinishAccess(OwnerId owner, LineAddr addr) {
  SDS_DCHECK(owner < counters_.size(), "owner out of range");
  OwnerCounters& ctr = counters_[owner];
  ++ctr.llc_accesses;
  const CacheAccessResult r = cache_.Access(owner, addr);
  if (r.hit) return AccessOutcome::kHit;

  ++ctr.llc_misses;
  // The DRAM transfer needs extra bus slots. If the budget runs dry the fill
  // still completes (the hardware would simply slip into the next interval),
  // so the failure only registers as bus pressure.
  bus_.TryConsume(owner, config_.bus.miss_extra_slots);
  const double latency = dram_.Read();
  ctr.dram_latency_ns += latency;
  if (instrumented_) [[unlikely]] {
    InstrumentMiss(owner, addr, r.evicted_valid, r.evicted_owner, latency);
  }
  return AccessOutcome::kMiss;
}

AccessOutcome Machine::Access(OwnerId owner, LineAddr addr) {
  SDS_DCHECK(owner < counters_.size(), "owner out of range");
  if (!bus_.TryConsume(owner, config_.bus.access_slots)) {
    RecordStall(owner);
    return AccessOutcome::kStalled;
  }
  return FinishAccess(owner, addr);
}

void Machine::InstrumentAtomic(OwnerId owner) {
  tel::Telemetry* t = config_.telemetry;
  if (t->tracer().enabled(tel::Layer::kSimBus)) {
    t->tracer().Emit(tel::MakeEvent(now_, tel::Layer::kSimBus,
                                    "lock_window_open", owner)
                         .Num("slots", config_.bus.atomic_lock_slots));
  }
}

AccessOutcome Machine::AtomicAccess(OwnerId owner, LineAddr addr) {
  SDS_DCHECK(owner < counters_.size(), "owner out of range");
  if (!bus_.TryAtomicLock(owner)) {
    RecordStall(owner);
    return AccessOutcome::kStalled;
  }
  ++counters_[owner].atomic_ops;
  if (instrumented_) [[unlikely]] InstrumentAtomic(owner);
  return FinishAccess(owner, addr);
}

}  // namespace sds::sim
