#include "sim/machine.h"

namespace sds::sim {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      cache_(config.cache),
      bus_(config.bus),
      dram_(config.dram),
      counters_(config.max_owners) {}

void Machine::BeginTick() {
  bus_.BeginTick();
  dram_.BeginTick();
  ++now_;
}

AccessOutcome Machine::FinishAccess(OwnerId owner, LineAddr addr) {
  SDS_DCHECK(owner < counters_.size(), "owner out of range");
  OwnerCounters& ctr = counters_[owner];
  ++ctr.llc_accesses;
  const CacheAccessResult r = cache_.Access(owner, addr);
  if (r.hit) return AccessOutcome::kHit;

  ++ctr.llc_misses;
  // The DRAM transfer needs extra bus slots. If the budget runs dry the fill
  // still completes (the hardware would simply slip into the next interval),
  // so the failure only registers as bus pressure.
  bus_.TryConsume(config_.bus.miss_extra_slots);
  ctr.dram_latency_ns += dram_.Read();
  return AccessOutcome::kMiss;
}

AccessOutcome Machine::Access(OwnerId owner, LineAddr addr) {
  SDS_DCHECK(owner < counters_.size(), "owner out of range");
  if (!bus_.TryConsume(config_.bus.access_slots)) {
    ++counters_[owner].bus_stalls;
    return AccessOutcome::kStalled;
  }
  return FinishAccess(owner, addr);
}

AccessOutcome Machine::AtomicAccess(OwnerId owner, LineAddr addr) {
  SDS_DCHECK(owner < counters_.size(), "owner out of range");
  if (!bus_.TryAtomicLock()) {
    ++counters_[owner].bus_stalls;
    return AccessOutcome::kStalled;
  }
  ++counters_[owner].atomic_ops;
  return FinishAccess(owner, addr);
}

}  // namespace sds::sim
