#include "svc/wal.h"

#include "common/snapshot.h"
#include "obs/snapshot.h"

namespace sds::svc {

namespace {

// Frame header: u32 payload_len | u64 fnv1a(payload), little-endian.
constexpr std::size_t kFrameHeaderBytes = 4 + 8;

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t GetU32(std::string_view bytes, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[pos + static_cast<size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(std::string_view bytes, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[pos + static_cast<size_t>(i)]))
         << (8 * i);
  }
  return v;
}

}  // namespace

const char* WalScanStopName(WalScanStop stop) {
  switch (stop) {
    case WalScanStop::kCleanEnd:
      return "clean_end";
    case WalScanStop::kTornFrame:
      return "torn_frame";
    case WalScanStop::kBadChecksum:
      return "bad_checksum";
    case WalScanStop::kBadVersion:
      return "bad_version";
    case WalScanStop::kBadRecord:
      return "bad_record";
  }
  return "?";
}

std::string WalWriter::EncodeFrame(const WalRecord& record) {
  SnapshotWriter payload;
  payload.U32(kWalPayloadVersion);  // det-wal-versioned pin
  payload.U32(static_cast<std::uint32_t>(record.kind));
  payload.U64(record.lsn);
  switch (record.kind) {
    case WalRecordKind::kEvent:
      payload.U64(record.sample.offset);
      payload.U32(record.sample.tenant);
      payload.I64(record.sample.tick);
      payload.U64(record.sample.access_num);
      payload.U64(record.sample.miss_num);
      payload.U32(record.disposition);
      break;
    case WalRecordKind::kTick:
      payload.I64(record.tick);
      break;
  }
  const std::string& body = payload.data();
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  PutU32(&frame, static_cast<std::uint32_t>(body.size()));
  PutU64(&frame, Fnv1a(body));
  frame.append(body);
  return frame;
}

WalScanResult WalReader::Scan(std::string_view bytes) {
  WalScanResult result;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderBytes) {
      result.stop = WalScanStop::kTornFrame;
      break;
    }
    const std::uint32_t len = GetU32(bytes, pos);
    const std::uint64_t checksum = GetU64(bytes, pos + 4);
    if (bytes.size() - pos - kFrameHeaderBytes < len) {
      result.stop = WalScanStop::kTornFrame;
      break;
    }
    const std::string_view body =
        bytes.substr(pos + kFrameHeaderBytes, len);
    if (Fnv1a(body) != checksum) {
      result.stop = WalScanStop::kBadChecksum;
      break;
    }
    SnapshotReader reader(body);
    const std::uint32_t version = reader.U32();
    if (!reader.ok() || version != kWalPayloadVersion) {
      result.stop = WalScanStop::kBadVersion;
      break;
    }
    WalRecord record;
    const std::uint32_t kind = reader.U32();
    record.lsn = reader.U64();
    if (kind == static_cast<std::uint32_t>(WalRecordKind::kEvent)) {
      record.kind = WalRecordKind::kEvent;
      record.sample.offset = reader.U64();
      record.sample.tenant = reader.U32();
      record.sample.tick = reader.I64();
      record.sample.access_num = reader.U64();
      record.sample.miss_num = reader.U64();
      record.disposition = reader.U32();
    } else if (kind == static_cast<std::uint32_t>(WalRecordKind::kTick)) {
      record.kind = WalRecordKind::kTick;
      record.tick = reader.I64();
    } else {
      result.stop = WalScanStop::kBadRecord;
      break;
    }
    if (!reader.ok() || !reader.exhausted()) {
      result.stop = WalScanStop::kBadRecord;
      break;
    }
    result.records.push_back(record);
    pos += kFrameHeaderBytes + len;
    result.valid_bytes = pos;
  }
  return result;
}

}  // namespace sds::svc
