// The service's ingest admission ladder and backpressure tiers.
//
// Every offered event gets exactly one Disposition, judged in a FIXED
// ladder order so a sample that is broken in several ways is always
// classified the same way (and the accounting is stable across runs):
//
//   1. kRejectMalformed    — the line did not parse; no tenant to blame.
//   2. kRejectQuarantined  — the tenant is serving a quarantine sentence.
//   3. kRejectInsane       — physically impossible counters, judged by the
//                            same detect/degrade SanityParams the in-VM
//                            detectors use.
//   4. kRejectFuture       — data timestamp ahead of the service clock by
//                            more than max_future_ticks.
//   5. kRejectStale        — data timestamp at or behind the tenant's
//                            newest enqueued tick (duplicates and
//                            out-of-order arrivals; under at-least-once
//                            redelivery these are EXPECTED, so they are
//                            never offenses).
//   6. backpressure tiers  — kAdmit below coalesce_depth; kCoalesce when
//                            the queue is deep and holds an entry for the
//                            same tenant to merge into; kShed at
//                            shed_depth (dropped with accounting, never
//                            with an OOM).
//
// Offenses: rungs 3 and 4 increment the tenant's offense counter; at
// quarantine_offense_threshold the tenant is quarantined for
// quarantine_ticks (a repeat offender drowns its own feed, not the
// service). Malformed lines carry no tenant and count globally only.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"
#include "detect/degrade.h"
#include "svc/sample.h"
#include "svc/tenant_table.h"

namespace sds::svc {

enum class Disposition : std::uint32_t {
  kAdmit = 0,
  kCoalesce,
  kShed,
  kRejectMalformed,
  kRejectInsane,
  kRejectFuture,
  kRejectStale,
  kRejectQuarantined,
  kDispositionCount,
};

inline constexpr std::size_t kDispositionCount =
    static_cast<std::size_t>(Disposition::kDispositionCount);

const char* DispositionName(Disposition d);

// True for the rungs that count against a tenant's quarantine threshold.
bool DispositionIsOffense(Disposition d);

struct AdmissionConfig {
  detect::SanityParams sanity;
  // Ladder rung 4: tolerated clock skew of the feed, in ticks.
  Tick max_future_ticks = 100;
  // Offenses before a tenant is quarantined, and for how long.
  std::uint32_t quarantine_offense_threshold = 3;
  Tick quarantine_ticks = 200;
  // Backpressure tiers by queue depth at offer time.
  std::size_t coalesce_depth = 64;
  std::size_t shed_depth = 256;
};

// Judges one PARSED sample down rungs 2..6. Pure: mutates nothing; the
// caller logs the verdict to the WAL and then applies it. `entry` may be
// null (tenant not yet tabled); `queue_has_tenant` reports whether the
// ingest queue already holds an entry this sample could coalesce into.
Disposition JudgeSample(const SvcSample& sample, const AdmissionConfig& config,
                        Tick current_tick, const TenantEntry* entry,
                        std::size_t queue_depth, bool queue_has_tenant);

// Applies one offense to the tenant's record; starts a quarantine (and
// resets the counter) when the threshold is reached. Returns true when a
// quarantine started.
bool RecordOffense(TenantEntry& entry, const AdmissionConfig& config,
                   Tick current_tick);

}  // namespace sds::svc
