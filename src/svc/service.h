// The crash-consistent streaming detection service (DESIGN.md §14).
//
// DetectionService is the long-running ingest half of the paper's detection
// plane: a feed offers per-tenant counter samples (at-least-once, possibly
// redelivered after a restart), the admission ladder judges each one, a
// bounded queue absorbs bursts under backpressure tiers, and per-tenant
// pipelines raise the alarms. Everything that matters survives a crash:
//
//   WRITE-AHEAD: every judged event and every tick advance is logged to the
//   StableStore (svc/wal.h frames) BEFORE its effects are applied to
//   volatile state. Periodically the whole volatile state is checkpointed
//   as one sealed obs/snapshot envelope (kind "svc_checkpoint", bound to
//   the config fingerprint) and the WAL prefix it covers is truncated.
//
//   RECOVERY INVARIANT: restore the checkpoint, replay the WAL tail
//   (skipping records the checkpoint already covers, by LSN), and the
//   service's decision log, alarm sequence and pinned accounting are
//   BIT-IDENTICAL to a never-crashed run fed the same stream — the feed
//   only has to redeliver from its last acknowledged position or earlier;
//   the transport-offset watermark deduplicates the overlap. Pinned by
//   tests/eval/service_chaos_test.
//
// The service is single-threaded and deterministic: no wall clocks, no
// randomness, ordered containers only. Ticks are DATA time, advanced by the
// caller (AdvanceTick), never by a timer.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"
#include "obs/snapshot.h"
#include "svc/admission.h"
#include "svc/pipeline.h"
#include "svc/sample.h"
#include "svc/store.h"
#include "svc/tenant_table.h"
#include "svc/wal.h"

namespace sds::svc {

struct SvcConfig {
  PipelineConfig pipeline;
  AdmissionConfig admission;
  // Tenant-table capacity (LRU eviction beyond it).
  std::size_t max_tenants = 64;
  // Queue entries drained into pipelines per tick advance.
  std::uint32_t drain_per_tick = 128;
  // Checkpoint cadence, in processed ticks.
  Tick checkpoint_every_ticks = 50;

  // Binds checkpoints and their WAL to this exact configuration; a config
  // change orphans the durable state (fresh start) instead of silently
  // feeding old analyzer windows into differently-tuned detectors.
  std::uint64_t Fingerprint() const;
};

// A decision-state EDGE for one tenant: active flipped at `tick`. The full
// per-sample verdict stream is deliberately not logged (it is unbounded and
// almost always "still inactive"); edges are the decisions that matter.
struct DecisionEvent {
  Tick tick = 0;
  TenantId tenant = 0;
  bool active = false;

  bool operator==(const DecisionEvent&) const = default;
};

// A rising edge only — the service's alarm sequence.
struct AlarmEvent {
  Tick tick = 0;
  TenantId tenant = 0;

  bool operator==(const AlarmEvent&) const = default;
};

// Counters checkpointed with the service (part of the recovery pin).
struct SvcAccounting {
  std::uint64_t offered = 0;  // events judged (post transport dedupe)
  std::uint64_t admitted = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_insane = 0;
  std::uint64_t rejected_future = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t rejected_quarantined = 0;
  std::uint64_t quarantines_started = 0;
  std::uint64_t ticks_processed = 0;
  std::uint64_t samples_drained = 0;

  bool operator==(const SvcAccounting&) const = default;
};

// Per-incarnation observability (NOT checkpointed, excluded from the pin:
// a recovered run legitimately differs from the reference here).
struct SvcIncarnation {
  std::uint64_t redelivered_deduped = 0;
  std::uint64_t wal_frames_appended = 0;
  std::uint64_t checkpoints_written = 0;
  bool recovered_from_checkpoint = false;
  obs::SnapshotStatus checkpoint_status = obs::SnapshotStatus::kOk;
  std::uint64_t recovery_replayed_records = 0;
  std::uint64_t recovery_skipped_records = 0;
  std::uint64_t recovery_wal_valid_bytes = 0;
  WalScanStop recovery_wal_stop = WalScanStop::kCleanEnd;
};

class DetectionService {
 public:
  // The store must outlive the service.
  DetectionService(const SvcConfig& config, StableStore* store);

  // Rebuilds state from the store's surviving checkpoint + WAL tail. Call
  // once, before the first Offer. Returns true when anything was recovered
  // (false = cold start). Ends by re-checkpointing so the torn tail is
  // dropped and the recovered state is durable again.
  bool Recover();

  // Offers one parsed event (sample.offset assigned by the feed, strictly
  // increasing). Returns false only when the service is dead (store crash).
  bool Offer(const SvcSample& sample);
  // Offers one unparseable feed line, identified by its transport offset.
  bool OfferMalformed(std::uint64_t offset);

  // Advances data time to `now`: logs the tick, drains the queue into the
  // tenant pipelines, maybe checkpoints. `now` at or behind the current
  // tick is a no-op (idempotent under redelivered drive loops).
  bool AdvanceTick(Tick now);

  // Forces a checkpoint + WAL truncation now. Returns false on store crash.
  bool Checkpoint();

  // True once the store crashed; every mutation fails from then on.
  bool dead() const;

  Tick current_tick() const { return current_tick_; }
  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t transport_watermark() const { return transport_watermark_; }
  const SvcAccounting& accounting() const { return acct_; }
  const SvcIncarnation& incarnation() const { return inc_; }
  const TenantTable& tenants() const { return table_; }
  const std::vector<DecisionEvent>& decision_log() const {
    return decision_log_;
  }
  const std::vector<AlarmEvent>& alarm_log() const { return alarm_log_; }

 private:
  struct QueueEntry {
    TenantId tenant = 0;
    Tick tick = 0;
    std::uint64_t access_num = 0;
    std::uint64_t miss_num = 0;
  };

  bool LogRecord(WalRecord& record);
  void ApplyEvent(const WalRecord& record);
  void ApplyTick(const WalRecord& record);
  void DrainQueue();
  bool RestoreFromPayload(SnapshotReader& r, std::uint64_t* last_lsn);
  void ResetVolatileState();

  SvcConfig config_;
  StableStore* store_;

  Tick current_tick_ = -1;
  std::uint64_t transport_watermark_ = 0;
  std::uint64_t next_lsn_ = 1;
  // The service is single-threaded by charter (see the header comment); the
  // queue and the tenant table are the two structures a parallel tick engine
  // would be most tempted to share. Shard-owned pins that door shut: sdslint
  // rejects any service method that takes a lock around them — the parallel
  // engine must partition tenants across service instances instead.
  std::deque<QueueEntry> queue_ SDS_SHARD_OWNED;
  TenantTable table_ SDS_SHARD_OWNED;
  SvcAccounting acct_;
  SvcIncarnation inc_;
  std::vector<DecisionEvent> decision_log_;
  std::vector<AlarmEvent> alarm_log_;

  Tick ticks_since_checkpoint_ = 0;
  std::uint64_t wal_pending_bytes_ = 0;
  bool replaying_ = false;
};

}  // namespace sds::svc
