// Per-tenant detection pipeline hosted by the streaming service.
//
// Each admitted tenant runs the paper's detection machinery over its own
// sample stream, hypervisor-free: the service consumes counter readings off
// a feed, so it builds on the pure stream analyzers (BoundaryAnalyzer /
// PeriodAnalyzer) rather than the hypervisor-wired SdsDetector. The
// combination logic is exactly detect/offline.cpp's ReplaySds: profile both
// channels during the tenant's clean warm-up window, then alarm on boundary
// violations — AND'ed with period violations when the profile found the
// tenant periodic. A KS mode mirrors the KStest baseline: the warm-up
// window becomes the reference distribution and a sliding monitored window
// is KS-tested against it at a fixed stride.
//
// Every pipeline is snapshot-complete: SaveState serializes the phase, the
// warm-up trace (when still profiling), the built profile and the analyzer
// state (when monitoring), so a checkpointed-and-restored pipeline makes
// bit-identical decisions from the restore point on — the tenant-level half
// of the service's crash-recovery pin.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/snapshot.h"
#include "common/types.h"
#include "detect/params.h"
#include "detect/profile.h"
#include "pcm/pcm_sampler.h"

namespace sds::svc {

enum class PipelineMode : std::uint8_t {
  kSds = 0,  // SDS/B (+ SDS/P when the profile is periodic)
  kKs = 1,   // two-sample KS test against the warm-up reference
};

const char* PipelineModeName(PipelineMode mode);

struct PipelineConfig {
  PipelineMode mode = PipelineMode::kSds;
  detect::DetectorParams det;
  // Admitted samples collected before monitoring starts. Must be large
  // enough for BuildSdsProfile (>= det.window + det.step) in SDS mode; in
  // KS mode it is the reference window length.
  std::uint32_t profile_len = 600;
  // KS mode: monitored sliding-window length, test stride (in admitted
  // samples), and significance level.
  std::uint32_t ks_window = 100;
  std::uint32_t ks_stride = 25;
  double ks_alpha = 0.05;
};

// The verdict for one admitted sample.
struct PipelineDecision {
  // False while the pipeline is still profiling (no verdicts yet).
  bool decided = false;
  bool active = false;
  bool alarm = false;    // rising edge at this sample
  bool cleared = false;  // falling edge at this sample
};

class TenantPipeline {
 public:
  explicit TenantPipeline(const PipelineConfig& config);

  // Feeds one admitted sample (drained from the service queue, in order).
  PipelineDecision OnSample(const pcm::PcmSample& sample);

  bool monitoring() const { return monitoring_; }
  bool active() const { return was_active_; }
  std::uint64_t samples_seen() const { return samples_seen_; }

  void SaveState(SnapshotWriter& w) const;
  bool RestoreState(SnapshotReader& r);

 private:
  void FinishProfiling();
  bool EvaluateSds(const pcm::PcmSample& sample);
  bool EvaluateKs(const pcm::PcmSample& sample);

  PipelineConfig config_;
  bool monitoring_ = false;
  bool was_active_ = false;
  std::uint64_t samples_seen_ = 0;

  // Profiling phase: the clean warm-up trace.
  std::vector<pcm::PcmSample> warmup_;

  // SDS monitoring state.
  detect::SdsProfile profile_;
  std::unique_ptr<detect::BoundaryAnalyzer> b_access_;
  std::unique_ptr<detect::BoundaryAnalyzer> b_miss_;
  std::unique_ptr<detect::PeriodAnalyzer> p_access_;
  std::unique_ptr<detect::PeriodAnalyzer> p_miss_;

  // KS monitoring state.
  std::vector<double> ks_reference_;
  std::deque<double> ks_window_;
  std::uint64_t ks_since_check_ = 0;
  bool ks_active_ = false;
};

}  // namespace sds::svc
