#include "svc/tenant_table.h"

#include "common/check.h"

namespace sds::svc {

TenantTable::TenantTable(const PipelineConfig& pipeline_config,
                         std::size_t capacity)
    : pipeline_config_(pipeline_config), capacity_(capacity) {
  SDS_CHECK(capacity_ > 0, "tenant table capacity must be positive");
}

void TenantTable::EvictLru() {
  SDS_CHECK(!lru_.empty(), "evicting from an empty table");
  const TenantId victim = lru_.back();
  lru_.pop_back();
  entries_.erase(victim);
  evicted_ever_.insert(victim);
  ++stats_.evictions;
}

TenantEntry& TenantTable::Touch(TenantId tenant) {
  auto it = entries_.find(tenant);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return *it->second.entry;
  }
  if (entries_.size() >= capacity_) EvictLru();
  lru_.push_front(tenant);
  Slot slot;
  slot.entry = std::make_unique<TenantEntry>(pipeline_config_);
  slot.lru_pos = lru_.begin();
  auto [pos, inserted] = entries_.emplace(tenant, std::move(slot));
  SDS_CHECK(inserted, "tenant already tabled");
  ++stats_.created;
  if (evicted_ever_.count(tenant) != 0) ++stats_.readmissions;
  return *pos->second.entry;
}

const TenantEntry* TenantTable::Find(TenantId tenant) const {
  auto it = entries_.find(tenant);
  return it == entries_.end() ? nullptr : it->second.entry.get();
}

TenantEntry* TenantTable::FindMutable(TenantId tenant) {
  auto it = entries_.find(tenant);
  return it == entries_.end() ? nullptr : it->second.entry.get();
}

std::vector<TenantId> TenantTable::RecencyOrder() const {
  return std::vector<TenantId>(lru_.begin(), lru_.end());
}

void TenantTable::SaveState(SnapshotWriter& w) const {
  w.U64(entries_.size());
  // Recency order, most recent first — restore re-Touches in reverse so the
  // rebuilt list is bit-identical.
  for (const TenantId tenant : lru_) {
    const auto& slot = entries_.at(tenant);
    w.U32(tenant);
    w.U32(slot.entry->offenses);
    w.I64(slot.entry->quarantined_until);
    w.I64(slot.entry->last_enqueued_tick);
    slot.entry->pipeline.SaveState(w);
  }
  w.U64(evicted_ever_.size());
  for (const TenantId tenant : evicted_ever_) w.U32(tenant);
  w.U64(stats_.created);
  w.U64(stats_.evictions);
  w.U64(stats_.readmissions);
}

bool TenantTable::RestoreState(SnapshotReader& r) {
  lru_.clear();
  entries_.clear();
  evicted_ever_.clear();
  stats_ = TenantTableStats{};

  const std::uint64_t n = r.U64();
  if (!r.ok() || n > capacity_) return false;
  // Saved most-recent-first; rebuild by appending at the BACK so the list
  // ends up in the same order without churning splices.
  for (std::uint64_t i = 0; i < n; ++i) {
    const TenantId tenant = r.U32();
    auto entry = std::make_unique<TenantEntry>(pipeline_config_);
    entry->offenses = r.U32();
    entry->quarantined_until = r.I64();
    entry->last_enqueued_tick = r.I64();
    if (!r.ok() || !entry->pipeline.RestoreState(r)) return false;
    lru_.push_back(tenant);
    Slot slot;
    slot.entry = std::move(entry);
    slot.lru_pos = std::prev(lru_.end());
    auto [pos, inserted] = entries_.emplace(tenant, std::move(slot));
    if (!inserted) return false;  // duplicate tenant = corrupt checkpoint
  }
  const std::uint64_t evicted = r.U64();
  if (!r.ok()) return false;
  for (std::uint64_t i = 0; i < evicted; ++i) {
    evicted_ever_.insert(r.U32());
  }
  stats_.created = r.U64();
  stats_.evictions = r.U64();
  stats_.readmissions = r.U64();
  return r.ok();
}

}  // namespace sds::svc
