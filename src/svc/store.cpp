#include "svc/store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace sds::svc {

namespace {

std::uint64_t TornPrefixLen(const fault::ServiceCrashPoint& point,
                            std::uint64_t total) {
  if (point.byte_offset >= 0) {
    return std::min<std::uint64_t>(
        static_cast<std::uint64_t>(point.byte_offset), total);
  }
  double f = point.byte_fraction;
  if (f < 0.0) f = 0.0;
  if (f > 1.0) f = 1.0;
  const auto kept = static_cast<std::uint64_t>(f * static_cast<double>(total));
  return std::min(kept, total);
}

}  // namespace

const fault::ServiceCrashPoint* MemStore::PointFor(
    fault::ServiceFaultKind a, fault::ServiceFaultKind b,
    std::uint64_t ordinal) const {
  for (const auto& point : plan_.points) {
    if ((point.kind == a || point.kind == b) && point.op_index == ordinal) {
      return &point;
    }
  }
  return nullptr;
}

bool MemStore::AppendWal(std::string_view bytes) {
  if (crashed_) return false;
  ++wal_appends_;
  const auto* point = PointFor(fault::ServiceFaultKind::kCrashMidWalAppend,
                               fault::ServiceFaultKind::kCrashAfterWalAppend,
                               wal_appends_);
  if (point == nullptr) {
    wal_.append(bytes);
    return true;
  }
  if (point->kind == fault::ServiceFaultKind::kCrashAfterWalAppend) {
    wal_.append(bytes);  // whole frame made it; the process dies right after
  } else {
    wal_.append(bytes.substr(0, TornPrefixLen(*point, bytes.size())));
  }
  crashed_ = true;
  return false;
}

bool MemStore::WriteCheckpoint(std::string_view blob) {
  if (crashed_) return false;
  ++checkpoint_writes_;
  const int inactive = (active_slot_ == 0) ? 1 : 0;
  const auto* point = PointFor(fault::ServiceFaultKind::kCrashMidCheckpoint,
                               fault::ServiceFaultKind::kCrashMidCheckpoint,
                               checkpoint_writes_);
  if (point != nullptr) {
    // The torn blob lands in the inactive slot; the active slot survives.
    slots_[inactive] = blob.substr(0, TornPrefixLen(*point, blob.size()));
    crashed_ = true;
    return false;
  }
  slots_[inactive] = std::string(blob);
  active_slot_ = inactive;  // atomic promotion
  return true;
}

bool MemStore::TruncateWal(std::uint64_t bytes) {
  if (crashed_) return false;
  wal_.erase(0, std::min<std::uint64_t>(bytes, wal_.size()));
  return true;
}

std::string MemStore::ReadCheckpoint() const {
  return active_slot_ < 0 ? std::string() : slots_[active_slot_];
}

MemStore MemStore::Reincarnate() const {
  MemStore fresh;
  fresh.wal_ = wal_;
  fresh.slots_[0] = slots_[0];
  fresh.slots_[1] = slots_[1];
  fresh.active_slot_ = active_slot_;
  return fresh;
}

// ---------------------------------------------------------------------------
// FileStore

namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool WriteWholeFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return out.good();
}

}  // namespace

FileStore::FileStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) crashed_ = true;
}

std::string FileStore::WalPath() const { return dir_ + "/wal.log"; }
std::string FileStore::CkptPath() const { return dir_ + "/ckpt.snap"; }

bool FileStore::AppendWal(std::string_view bytes) {
  if (crashed_) return false;
  std::ofstream out(WalPath(), std::ios::binary | std::ios::app);
  if (!out) {
    crashed_ = true;
    return false;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) crashed_ = true;
  return !crashed_;
}

bool FileStore::WriteCheckpoint(std::string_view blob) {
  if (crashed_) return false;
  const std::string tmp = CkptPath() + ".tmp";
  if (!WriteWholeFile(tmp, blob)) {
    crashed_ = true;
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, CkptPath(), ec);
  if (ec) crashed_ = true;
  return !crashed_;
}

bool FileStore::TruncateWal(std::uint64_t bytes) {
  if (crashed_) return false;
  std::string wal = ReadWholeFile(WalPath());
  wal.erase(0, std::min<std::uint64_t>(bytes, wal.size()));
  const std::string tmp = WalPath() + ".tmp";
  if (!WriteWholeFile(tmp, wal)) {
    crashed_ = true;
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, WalPath(), ec);
  if (ec) crashed_ = true;
  return !crashed_;
}

std::string FileStore::ReadWal() const { return ReadWholeFile(WalPath()); }

std::string FileStore::ReadCheckpoint() const {
  return ReadWholeFile(CkptPath());
}

}  // namespace sds::svc
