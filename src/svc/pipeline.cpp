#include "svc/pipeline.h"

#include <span>

#include "stats/ks_test.h"

namespace sds::svc {

const char* PipelineModeName(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::kSds:
      return "sds";
    case PipelineMode::kKs:
      return "ks";
  }
  return "?";
}

TenantPipeline::TenantPipeline(const PipelineConfig& config)
    : config_(config) {}

void TenantPipeline::FinishProfiling() {
  if (config_.mode == PipelineMode::kSds) {
    profile_ = detect::BuildSdsProfile(warmup_, config_.det);
    b_access_ = std::make_unique<detect::BoundaryAnalyzer>(
        profile_.access_boundary, config_.det);
    b_miss_ = std::make_unique<detect::BoundaryAnalyzer>(
        profile_.miss_boundary, config_.det);
    if (profile_.access_period) {
      p_access_ = std::make_unique<detect::PeriodAnalyzer>(
          *profile_.access_period, config_.det);
    }
    if (profile_.miss_period) {
      p_miss_ = std::make_unique<detect::PeriodAnalyzer>(
          *profile_.miss_period, config_.det);
    }
  } else {
    ks_reference_ =
        detect::ChannelSeries(warmup_, pcm::Channel::kAccessNum);
  }
  warmup_.clear();
  warmup_.shrink_to_fit();
  monitoring_ = true;
}

bool TenantPipeline::EvaluateSds(const pcm::PcmSample& sample) {
  const auto access = static_cast<double>(sample.access_num);
  const auto miss = static_cast<double>(sample.miss_num);
  b_access_->Observe(access);
  b_miss_->Observe(miss);
  if (p_access_) p_access_->Observe(access);
  if (p_miss_) p_miss_->Observe(miss);

  const bool boundary = b_access_->attack_active() || b_miss_->attack_active();
  const bool period = (p_access_ && p_access_->attack_active()) ||
                      (p_miss_ && p_miss_->attack_active());
  return profile_.periodic() ? (boundary && period) : boundary;
}

bool TenantPipeline::EvaluateKs(const pcm::PcmSample& sample) {
  ks_window_.push_back(static_cast<double>(sample.access_num));
  while (ks_window_.size() > config_.ks_window) ks_window_.pop_front();
  ++ks_since_check_;
  if (ks_window_.size() == config_.ks_window &&
      ks_since_check_ >= config_.ks_stride && !ks_reference_.empty()) {
    ks_since_check_ = 0;
    const std::vector<double> window(ks_window_.begin(), ks_window_.end());
    ks_active_ =
        KsRejectsSameDistribution(ks_reference_, window, config_.ks_alpha);
  }
  return ks_active_;
}

PipelineDecision TenantPipeline::OnSample(const pcm::PcmSample& sample) {
  ++samples_seen_;
  PipelineDecision decision;
  if (!monitoring_) {
    warmup_.push_back(sample);
    if (warmup_.size() >= config_.profile_len) FinishProfiling();
    return decision;
  }
  decision.decided = true;
  const bool active = (config_.mode == PipelineMode::kSds)
                          ? EvaluateSds(sample)
                          : EvaluateKs(sample);
  decision.active = active;
  decision.alarm = active && !was_active_;
  decision.cleared = !active && was_active_;
  was_active_ = active;
  return decision;
}

void TenantPipeline::SaveState(SnapshotWriter& w) const {
  w.U32(static_cast<std::uint32_t>(config_.mode));
  w.Bool(monitoring_);
  w.Bool(was_active_);
  w.U64(samples_seen_);
  if (!monitoring_) {
    w.U64(warmup_.size());
    for (const auto& s : warmup_) {
      w.I64(s.tick);
      w.U64(s.access_num);
      w.U64(s.miss_num);
    }
    return;
  }
  if (config_.mode == PipelineMode::kSds) {
    w.F64(profile_.access_boundary.mean);
    w.F64(profile_.access_boundary.stddev);
    w.F64(profile_.miss_boundary.mean);
    w.F64(profile_.miss_boundary.stddev);
    w.Bool(profile_.access_period.has_value());
    if (profile_.access_period) {
      w.F64(profile_.access_period->period);
      w.F64(profile_.access_period->strength);
    }
    w.Bool(profile_.miss_period.has_value());
    if (profile_.miss_period) {
      w.F64(profile_.miss_period->period);
      w.F64(profile_.miss_period->strength);
    }
    b_access_->SaveState(w);
    b_miss_->SaveState(w);
    if (p_access_) p_access_->SaveState(w);
    if (p_miss_) p_miss_->SaveState(w);
  } else {
    w.VecF64(ks_reference_);
    w.VecF64(std::vector<double>(ks_window_.begin(), ks_window_.end()));
    w.U64(ks_since_check_);
    w.Bool(ks_active_);
  }
}

bool TenantPipeline::RestoreState(SnapshotReader& r) {
  const std::uint32_t mode = r.U32();
  if (!r.ok() || mode != static_cast<std::uint32_t>(config_.mode)) {
    return false;
  }
  monitoring_ = r.Bool();
  was_active_ = r.Bool();
  samples_seen_ = r.U64();
  if (!r.ok()) return false;
  if (!monitoring_) {
    const std::uint64_t n = r.U64();
    if (!r.ok() || n > config_.profile_len) return false;
    warmup_.clear();
    warmup_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      pcm::PcmSample s;
      s.tick = r.I64();
      s.access_num = r.U64();
      s.miss_num = r.U64();
      warmup_.push_back(s);
    }
    return r.ok();
  }
  if (config_.mode == PipelineMode::kSds) {
    profile_ = detect::SdsProfile{};
    profile_.access_boundary.mean = r.F64();
    profile_.access_boundary.stddev = r.F64();
    profile_.miss_boundary.mean = r.F64();
    profile_.miss_boundary.stddev = r.F64();
    if (r.Bool()) {
      detect::PeriodProfile p;
      p.period = r.F64();
      p.strength = r.F64();
      profile_.access_period = p;
    }
    if (r.Bool()) {
      detect::PeriodProfile p;
      p.period = r.F64();
      p.strength = r.F64();
      profile_.miss_period = p;
    }
    if (!r.ok()) return false;
    b_access_ = std::make_unique<detect::BoundaryAnalyzer>(
        profile_.access_boundary, config_.det);
    b_miss_ = std::make_unique<detect::BoundaryAnalyzer>(
        profile_.miss_boundary, config_.det);
    p_access_.reset();
    p_miss_.reset();
    if (!b_access_->RestoreState(r)) return false;
    if (!b_miss_->RestoreState(r)) return false;
    if (profile_.access_period) {
      p_access_ = std::make_unique<detect::PeriodAnalyzer>(
          *profile_.access_period, config_.det);
      if (!p_access_->RestoreState(r)) return false;
    }
    if (profile_.miss_period) {
      p_miss_ = std::make_unique<detect::PeriodAnalyzer>(
          *profile_.miss_period, config_.det);
      if (!p_miss_->RestoreState(r)) return false;
    }
    return r.ok();
  }
  ks_reference_ = r.VecF64();
  const std::vector<double> window = r.VecF64();
  ks_window_.assign(window.begin(), window.end());
  ks_since_check_ = r.U64();
  ks_active_ = r.Bool();
  return r.ok() && ks_window_.size() <= config_.ks_window;
}

}  // namespace sds::svc
