#include "svc/admission.h"

#include <algorithm>

namespace sds::svc {

const char* DispositionName(Disposition d) {
  switch (d) {
    case Disposition::kAdmit:
      return "admit";
    case Disposition::kCoalesce:
      return "coalesce";
    case Disposition::kShed:
      return "shed";
    case Disposition::kRejectMalformed:
      return "reject_malformed";
    case Disposition::kRejectInsane:
      return "reject_insane";
    case Disposition::kRejectFuture:
      return "reject_future";
    case Disposition::kRejectStale:
      return "reject_stale";
    case Disposition::kRejectQuarantined:
      return "reject_quarantined";
    case Disposition::kDispositionCount:
      break;
  }
  return "?";
}

bool DispositionIsOffense(Disposition d) {
  return d == Disposition::kRejectInsane || d == Disposition::kRejectFuture;
}

Disposition JudgeSample(const SvcSample& sample, const AdmissionConfig& config,
                        Tick current_tick, const TenantEntry* entry,
                        std::size_t queue_depth, bool queue_has_tenant) {
  // Rung 2: quarantine sentence.
  if (entry != nullptr && entry->quarantined_until != kInvalidTick &&
      current_tick < entry->quarantined_until) {
    return Disposition::kRejectQuarantined;
  }
  // Rung 3: physically impossible counters. The delta spans the gap since
  // the tenant's newest enqueued tick (first contact spans one tick), the
  // same scaling detect/degrade applies after sampler gaps.
  pcm::PcmSample pcm_sample;
  pcm_sample.tick = sample.tick;
  pcm_sample.access_num = sample.access_num;
  pcm_sample.miss_num = sample.miss_num;
  Tick span = 1;
  if (entry != nullptr && entry->last_enqueued_tick != kInvalidTick &&
      sample.tick > entry->last_enqueued_tick) {
    span = sample.tick - entry->last_enqueued_tick;
  }
  if (!detect::SampleIsSane(pcm_sample, config.sanity, span)) {
    return Disposition::kRejectInsane;
  }
  // Rung 4: future-timestamped.
  if (sample.tick > current_tick + config.max_future_ticks) {
    return Disposition::kRejectFuture;
  }
  // Rung 5: stale / duplicate.
  if (entry != nullptr && entry->last_enqueued_tick != kInvalidTick &&
      sample.tick <= entry->last_enqueued_tick) {
    return Disposition::kRejectStale;
  }
  // Rung 6: backpressure tiers.
  if (queue_depth >= config.shed_depth) return Disposition::kShed;
  if (queue_depth >= config.coalesce_depth && queue_has_tenant) {
    return Disposition::kCoalesce;
  }
  return Disposition::kAdmit;
}

bool RecordOffense(TenantEntry& entry, const AdmissionConfig& config,
                   Tick current_tick) {
  ++entry.offenses;
  if (entry.offenses < config.quarantine_offense_threshold) return false;
  entry.offenses = 0;
  entry.quarantined_until = current_tick + config.quarantine_ticks;
  return true;
}

}  // namespace sds::svc
