#include "svc/service.h"

#include <algorithm>

#include "common/check.h"
#include "common/snapshot.h"

namespace sds::svc {

namespace {

constexpr const char* kCheckpointKind = "svc_checkpoint";

// Recovery couples the checkpoint envelope and the WAL tail it replays on
// top: both halves of the durable state must be sealed by the same release,
// or the LSN skip below would splice differently-formatted streams.
static_assert(kWalPayloadVersion == obs::kSnapshotVersion,
              "checkpoint envelope and WAL payload share one version pin");

}  // namespace

std::uint64_t SvcConfig::Fingerprint() const {
  SnapshotWriter w;
  w.U32(static_cast<std::uint32_t>(pipeline.mode));
  w.U64(pipeline.det.window);
  w.U64(pipeline.det.step);
  w.F64(pipeline.det.alpha);
  w.F64(pipeline.det.boundary_k);
  w.I64(pipeline.det.h_c);
  w.F64(pipeline.det.wp_multiplier);
  w.U64(pipeline.det.delta_wp);
  w.I64(pipeline.det.h_p);
  w.F64(pipeline.det.period_tolerance);
  w.U32(pipeline.profile_len);
  w.U32(pipeline.ks_window);
  w.U32(pipeline.ks_stride);
  w.F64(pipeline.ks_alpha);
  w.Bool(admission.sanity.enabled);
  w.U64(admission.sanity.max_delta_per_tick);
  w.Bool(admission.sanity.check_miss_le_access);
  w.I64(admission.max_future_ticks);
  w.U32(admission.quarantine_offense_threshold);
  w.I64(admission.quarantine_ticks);
  w.U64(admission.coalesce_depth);
  w.U64(admission.shed_depth);
  w.U64(max_tenants);
  w.U32(drain_per_tick);
  w.I64(checkpoint_every_ticks);
  return Fnv1a(w.data());
}

DetectionService::DetectionService(const SvcConfig& config, StableStore* store)
    : config_(config),
      store_(store),
      table_(config.pipeline, config.max_tenants) {
  SDS_CHECK(store_ != nullptr, "service needs a stable store");
}

bool DetectionService::dead() const { return store_->crashed(); }

bool DetectionService::LogRecord(WalRecord& record) {
  record.lsn = next_lsn_;
  const std::string frame = WalWriter::EncodeFrame(record);
  if (!store_->AppendWal(frame)) return false;
  ++next_lsn_;
  wal_pending_bytes_ += frame.size();
  ++inc_.wal_frames_appended;
  return true;
}

void DetectionService::ApplyEvent(const WalRecord& record) {
  const SvcSample& s = record.sample;
  transport_watermark_ = std::max(transport_watermark_, s.offset);
  ++acct_.offered;
  switch (static_cast<Disposition>(record.disposition)) {
    case Disposition::kAdmit: {
      QueueEntry entry;
      entry.tenant = s.tenant;
      entry.tick = s.tick;
      entry.access_num = s.access_num;
      entry.miss_num = s.miss_num;
      queue_.push_back(entry);
      table_.Touch(s.tenant).last_enqueued_tick = s.tick;
      ++acct_.admitted;
      break;
    }
    case Disposition::kCoalesce: {
      // Merge into the newest queued entry for the same tenant: the deltas
      // sum (both cover disjoint intervals) and the merged entry reports
      // the newest tick.
      bool merged = false;
      for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
        if (it->tenant == s.tenant) {
          it->access_num += s.access_num;
          it->miss_num += s.miss_num;
          it->tick = std::max(it->tick, s.tick);
          merged = true;
          break;
        }
      }
      if (!merged) {
        QueueEntry entry;
        entry.tenant = s.tenant;
        entry.tick = s.tick;
        entry.access_num = s.access_num;
        entry.miss_num = s.miss_num;
        queue_.push_back(entry);
      }
      table_.Touch(s.tenant).last_enqueued_tick = s.tick;
      ++acct_.coalesced;
      break;
    }
    case Disposition::kShed:
      ++acct_.shed;
      break;
    case Disposition::kRejectMalformed:
      ++acct_.rejected_malformed;
      break;
    case Disposition::kRejectInsane:
    case Disposition::kRejectFuture: {
      if (static_cast<Disposition>(record.disposition) ==
          Disposition::kRejectInsane) {
        ++acct_.rejected_insane;
      } else {
        ++acct_.rejected_future;
      }
      TenantEntry& entry = table_.Touch(s.tenant);
      if (RecordOffense(entry, config_.admission, current_tick_)) {
        ++acct_.quarantines_started;
      }
      break;
    }
    case Disposition::kRejectStale:
      ++acct_.rejected_stale;
      break;
    case Disposition::kRejectQuarantined:
      ++acct_.rejected_quarantined;
      break;
    case Disposition::kDispositionCount:
      break;
  }
}

void DetectionService::DrainQueue() {
  for (std::uint32_t i = 0; i < config_.drain_per_tick && !queue_.empty();
       ++i) {
    const QueueEntry entry = queue_.front();
    queue_.pop_front();
    ++acct_.samples_drained;
    TenantEntry& tenant = table_.Touch(entry.tenant);
    pcm::PcmSample sample;
    sample.tick = entry.tick;
    sample.access_num = entry.access_num;
    sample.miss_num = entry.miss_num;
    const PipelineDecision decision = tenant.pipeline.OnSample(sample);
    if (decision.alarm) {
      alarm_log_.push_back(AlarmEvent{entry.tick, entry.tenant});
    }
    if (decision.alarm || decision.cleared) {
      decision_log_.push_back(
          DecisionEvent{entry.tick, entry.tenant, decision.active});
    }
  }
}

void DetectionService::ApplyTick(const WalRecord& record) {
  current_tick_ = record.tick;
  ++acct_.ticks_processed;
  DrainQueue();
}

bool DetectionService::Offer(const SvcSample& sample) {
  if (dead()) return false;
  if (sample.offset <= transport_watermark_) {
    ++inc_.redelivered_deduped;
    return true;
  }
  const TenantEntry* entry = table_.Find(sample.tenant);
  bool queue_has_tenant = false;
  for (const QueueEntry& q : queue_) {
    if (q.tenant == sample.tenant) {
      queue_has_tenant = true;
      break;
    }
  }
  const Disposition verdict =
      JudgeSample(sample, config_.admission, current_tick_, entry,
                  queue_.size(), queue_has_tenant);
  WalRecord record;
  record.kind = WalRecordKind::kEvent;
  record.sample = sample;
  record.disposition = static_cast<std::uint32_t>(verdict);
  if (!LogRecord(record)) return false;
  ApplyEvent(record);
  return true;
}

bool DetectionService::OfferMalformed(std::uint64_t offset) {
  if (dead()) return false;
  if (offset <= transport_watermark_) {
    ++inc_.redelivered_deduped;
    return true;
  }
  WalRecord record;
  record.kind = WalRecordKind::kEvent;
  record.sample.offset = offset;
  record.disposition =
      static_cast<std::uint32_t>(Disposition::kRejectMalformed);
  if (!LogRecord(record)) return false;
  ApplyEvent(record);
  return true;
}

bool DetectionService::AdvanceTick(Tick now) {
  if (dead()) return false;
  if (now <= current_tick_) return true;  // already processed (redelivery)
  WalRecord record;
  record.kind = WalRecordKind::kTick;
  record.tick = now;
  if (!LogRecord(record)) return false;
  ApplyTick(record);
  ++ticks_since_checkpoint_;
  if (ticks_since_checkpoint_ >= config_.checkpoint_every_ticks) {
    return Checkpoint();
  }
  return true;
}

bool DetectionService::Checkpoint() {
  if (dead()) return false;
  if (replaying_) return true;  // never truncate an unreplayed WAL tail
  SnapshotWriter w;
  w.I64(current_tick_);
  w.U64(transport_watermark_);
  w.U64(next_lsn_ - 1);  // last LSN the checkpoint covers
  w.U64(queue_.size());
  for (const QueueEntry& q : queue_) {
    w.U32(q.tenant);
    w.I64(q.tick);
    w.U64(q.access_num);
    w.U64(q.miss_num);
  }
  table_.SaveState(w);
  w.U64(acct_.offered);
  w.U64(acct_.admitted);
  w.U64(acct_.coalesced);
  w.U64(acct_.shed);
  w.U64(acct_.rejected_malformed);
  w.U64(acct_.rejected_insane);
  w.U64(acct_.rejected_future);
  w.U64(acct_.rejected_stale);
  w.U64(acct_.rejected_quarantined);
  w.U64(acct_.quarantines_started);
  w.U64(acct_.ticks_processed);
  w.U64(acct_.samples_drained);
  w.U64(decision_log_.size());
  for (const DecisionEvent& d : decision_log_) {
    w.I64(d.tick);
    w.U32(d.tenant);
    w.Bool(d.active);
  }
  w.U64(alarm_log_.size());
  for (const AlarmEvent& a : alarm_log_) {
    w.I64(a.tick);
    w.U32(a.tenant);
  }
  const std::string blob =
      obs::SealSnapshot(kCheckpointKind, config_.Fingerprint(), w.data());
  if (!store_->WriteCheckpoint(blob)) return false;
  ++inc_.checkpoints_written;
  if (!store_->TruncateWal(wal_pending_bytes_)) return false;
  wal_pending_bytes_ = 0;
  ticks_since_checkpoint_ = 0;
  return true;
}

bool DetectionService::RestoreFromPayload(SnapshotReader& r,
                                          std::uint64_t* last_lsn) {
  current_tick_ = r.I64();
  transport_watermark_ = r.U64();
  *last_lsn = r.U64();
  const std::uint64_t queue_len = r.U64();
  if (!r.ok()) return false;
  queue_.clear();
  for (std::uint64_t i = 0; i < queue_len; ++i) {
    QueueEntry q;
    q.tenant = r.U32();
    q.tick = r.I64();
    q.access_num = r.U64();
    q.miss_num = r.U64();
    if (!r.ok()) return false;
    queue_.push_back(q);
  }
  if (!table_.RestoreState(r)) return false;
  acct_.offered = r.U64();
  acct_.admitted = r.U64();
  acct_.coalesced = r.U64();
  acct_.shed = r.U64();
  acct_.rejected_malformed = r.U64();
  acct_.rejected_insane = r.U64();
  acct_.rejected_future = r.U64();
  acct_.rejected_stale = r.U64();
  acct_.rejected_quarantined = r.U64();
  acct_.quarantines_started = r.U64();
  acct_.ticks_processed = r.U64();
  acct_.samples_drained = r.U64();
  const std::uint64_t decisions = r.U64();
  if (!r.ok()) return false;
  decision_log_.clear();
  for (std::uint64_t i = 0; i < decisions; ++i) {
    DecisionEvent d;
    d.tick = r.I64();
    d.tenant = r.U32();
    d.active = r.Bool();
    if (!r.ok()) return false;
    decision_log_.push_back(d);
  }
  const std::uint64_t alarms = r.U64();
  if (!r.ok()) return false;
  alarm_log_.clear();
  for (std::uint64_t i = 0; i < alarms; ++i) {
    AlarmEvent a;
    a.tick = r.I64();
    a.tenant = r.U32();
    if (!r.ok()) return false;
    alarm_log_.push_back(a);
  }
  return r.ok() && r.exhausted();
}

void DetectionService::ResetVolatileState() {
  current_tick_ = -1;
  transport_watermark_ = 0;
  next_lsn_ = 1;
  queue_.clear();
  table_ = TenantTable(config_.pipeline, config_.max_tenants);
  acct_ = SvcAccounting{};
  decision_log_.clear();
  alarm_log_.clear();
}

bool DetectionService::Recover() {
  bool recovered = false;
  std::uint64_t last_lsn = 0;

  const std::string ckpt = store_->ReadCheckpoint();
  if (!ckpt.empty()) {
    std::string payload;
    const obs::SnapshotStatus status = obs::OpenSnapshot(
        ckpt, kCheckpointKind, config_.Fingerprint(), &payload);
    inc_.checkpoint_status = status;
    if (status == obs::SnapshotStatus::kOk) {
      SnapshotReader r(payload);
      if (RestoreFromPayload(r, &last_lsn)) {
        recovered = true;
        inc_.recovered_from_checkpoint = true;
        next_lsn_ = last_lsn + 1;
      } else {
        // A sealed-but-inconsistent payload: refuse it loudly, start cold.
        inc_.checkpoint_status = obs::SnapshotStatus::kCorrupt;
        ResetVolatileState();
        last_lsn = 0;
      }
    }
  }

  const std::string wal = store_->ReadWal();
  const WalScanResult scan = WalReader::Scan(wal);
  inc_.recovery_wal_valid_bytes = scan.valid_bytes;
  inc_.recovery_wal_stop = scan.stop;
  replaying_ = true;
  for (const WalRecord& record : scan.records) {
    if (record.lsn <= last_lsn) {
      // Pre-checkpoint leftovers: the crash hit between the checkpoint
      // write and the WAL truncation it pays for.
      ++inc_.recovery_skipped_records;
      continue;
    }
    if (record.kind == WalRecordKind::kEvent) {
      ApplyEvent(record);
    } else {
      ApplyTick(record);
    }
    next_lsn_ = record.lsn + 1;
    ++inc_.recovery_replayed_records;
    recovered = true;
  }
  replaying_ = false;
  // Everything surviving in the WAL — replayed, skipped, or torn — is
  // covered by the checkpoint Recover() ends with.
  wal_pending_bytes_ = wal.size();
  if (recovered) Checkpoint();
  return recovered;
}

}  // namespace sds::svc
