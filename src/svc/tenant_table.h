// Bounded-memory tenant table: TenantId -> per-tenant detection state,
// with LRU eviction and loud accounting.
//
// "Monitor a million tenants" cannot mean a million resident analyzer
// pipelines — the table holds at most `capacity` entries and evicts the
// least-recently-touched tenant when a new one arrives. Eviction is LOSSY
// BY DESIGN: the evicted tenant's pipeline state (warm-up trace, analyzer
// windows, quarantine history) is discarded, and if the tenant re-appears
// it is readmitted from scratch — a fresh profiling phase. Both events are
// counted (evictions / readmissions) so capacity pressure is never silent;
// the fleet operator sizes the table from those counters, not from OOMs.
//
// Each entry also carries the tenant's poison-input record: the offense
// counter the admission ladder bumps and the quarantine deadline it sets.
// Iteration order and eviction order are fully deterministic (std::list
// recency order, std::map storage) — the table is part of the service's
// checkpointed, bit-identically-recovered state.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>

#include "common/snapshot.h"
#include "common/types.h"
#include "svc/pipeline.h"
#include "svc/sample.h"

namespace sds::svc {

struct TenantEntry {
  TenantPipeline pipeline;
  // Poison-input record (admission ladder).
  std::uint32_t offenses = 0;
  Tick quarantined_until = kInvalidTick;  // kInvalidTick = not quarantined
  // Newest tick enqueued for this tenant (the stale/duplicate watermark).
  Tick last_enqueued_tick = kInvalidTick;

  explicit TenantEntry(const PipelineConfig& config) : pipeline(config) {}
};

struct TenantTableStats {
  std::uint64_t created = 0;
  std::uint64_t evictions = 0;
  std::uint64_t readmissions = 0;
};

class TenantTable {
 public:
  TenantTable(const PipelineConfig& pipeline_config, std::size_t capacity);

  // Returns the tenant's entry, creating it (and possibly evicting the LRU
  // tenant) if absent. Every call marks the tenant most-recently-used.
  TenantEntry& Touch(TenantId tenant);

  // Returns the entry without creating or promoting, or nullptr.
  const TenantEntry* Find(TenantId tenant) const;
  TenantEntry* FindMutable(TenantId tenant);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const TenantTableStats& stats() const { return stats_; }

  // Tenants in recency order, most recent first (checkpoint + inspection).
  std::vector<TenantId> RecencyOrder() const;

  void SaveState(SnapshotWriter& w) const;
  bool RestoreState(SnapshotReader& r);

 private:
  struct Slot {
    std::unique_ptr<TenantEntry> entry;
    std::list<TenantId>::iterator lru_pos;
  };

  void EvictLru();

  PipelineConfig pipeline_config_;
  std::size_t capacity_;
  // Front = most recently used.
  std::list<TenantId> lru_;
  std::map<TenantId, Slot> entries_;
  // Tenants that were evicted at least once; a re-created member counts as
  // a readmission.
  std::set<TenantId> evicted_ever_;
  TenantTableStats stats_;
};

}  // namespace sds::svc
