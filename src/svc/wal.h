// Checksummed write-ahead log for the streaming detection service.
//
// The WAL is a full OPERATION log, not a sample log: every event the feed
// offers gets exactly one record — admitted, coalesced, shed, or rejected —
// in transport-offset order, plus one record per tick advance. That choice
// is what makes crash recovery bit-identical: quarantine counters, shed
// accounting and coalesce merges are side effects of REJECTED events, so a
// log of admitted samples alone could never rebuild them. Replay re-APPLIES
// each record's recorded disposition; it never re-judges the admission
// ladder (whose verdicts can depend on volatile state the crash destroyed).
//
// Frame format, repeated until end-of-log:
//
//   u32 payload_len | u64 fnv1a(payload) | payload
//
// with all integers little-endian and the payload a common/snapshot.h field
// stream beginning with U32 kWalPayloadVersion (= obs::kSnapshotVersion) —
// the same version pin the checkpoint envelopes carry, so one
// release-format bump invalidates both halves of the durable state together
// (enforced by sdslint's det-wal-versioned rule). Then: U32 record kind,
// U64 LSN, kind fields.
//
// WalReader scans a raw byte string (possibly ending in a torn frame — the
// normal aftermath of a crash) and stops at the first frame that is
// incomplete, checksum-corrupt, or version-mismatched, reporting how many
// bytes were valid and why it stopped. A torn tail is EXPECTED, not an
// error: recovery keeps the valid prefix and relies on at-least-once
// redelivery for the rest.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "obs/snapshot.h"
#include "svc/sample.h"

namespace sds::svc {

// The version every WAL payload opens with — deliberately the checkpoint
// envelope's pin, so one release-format bump invalidates both halves of the
// durable state together.
inline constexpr std::uint32_t kWalPayloadVersion = obs::kSnapshotVersion;

enum class WalRecordKind : std::uint32_t {
  // One offered event and the disposition the service chose for it. The
  // full sample rides along: coalesce replay needs the counter values, and
  // accounting replay needs the tenant.
  kEvent = 0,
  // The service advanced to `tick` and drained its queue into the tenant
  // pipelines. Replay re-runs the drain (deterministic given the queue and
  // tenant state the preceding records rebuilt).
  kTick = 1,
};

struct WalRecord {
  WalRecordKind kind = WalRecordKind::kEvent;
  std::uint64_t lsn = 0;
  // kEvent fields (sample.offset is the transport dedup key).
  SvcSample sample;
  std::uint32_t disposition = 0;  // svc::Disposition enum value
  // kTick field.
  Tick tick = 0;
};

// Why a WAL scan stopped.
enum class WalScanStop : std::uint8_t {
  kCleanEnd = 0,   // consumed every byte
  kTornFrame,      // partial header or payload at the tail
  kBadChecksum,    // payload bytes do not match the frame checksum
  kBadVersion,     // payload sealed by a different release
  kBadRecord,      // field stream malformed despite a good checksum
};

const char* WalScanStopName(WalScanStop stop);

struct WalScanResult {
  std::vector<WalRecord> records;
  // Bytes of `bytes` covered by intact frames (recovery truncates here).
  std::uint64_t valid_bytes = 0;
  WalScanStop stop = WalScanStop::kCleanEnd;
};

// Encodes one record as a framed WAL entry ready for StableStore::AppendWal.
class WalWriter {
 public:
  static std::string EncodeFrame(const WalRecord& record);
};

// Decodes a WAL byte string, tolerating a torn tail.
class WalReader {
 public:
  static WalScanResult Scan(std::string_view bytes);
};

}  // namespace sds::svc
