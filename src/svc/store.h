// Stable-storage seam for the streaming detection service.
//
// Everything the service must not lose across a crash goes through a
// StableStore: WAL frames (append-only byte string) and checkpoint blobs
// (sealed obs/snapshot envelopes). The interface is deliberately tiny so two
// implementations can share the service unchanged:
//
//   * MemStore  — in-memory, used by tests and the chaos harness. It
//     interprets a fault::ServiceFaultPlan: at a planned operation ordinal
//     it keeps only a torn prefix of the written bytes and flips the store
//     into the CRASHED state, after which every operation fails — exactly
//     like a process that lost power mid-write. The surviving bytes are then
//     handed to a fresh service, which must recover.
//   * FileStore — file-backed, used by the `svcd` binary. Checkpoints go
//     through write-to-temp + rename so a torn checkpoint can never replace
//     a good one.
//
// Checkpoint atomicity is TWO-SLOT in both stores: WriteCheckpoint writes
// the new blob into the inactive slot and only then promotes it to active.
// A crash mid-write tears the inactive slot; the active slot — the previous
// good checkpoint — survives, and the torn blob is rejected by its envelope
// checksum on recovery.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "fault/service_plan.h"

namespace sds::svc {

class StableStore {
 public:
  virtual ~StableStore() = default;

  // Appends bytes to the WAL. Returns false if the store is (or just became)
  // crashed; a crash mid-append may still have persisted a torn prefix.
  virtual bool AppendWal(std::string_view bytes) = 0;

  // Replaces the checkpoint via the two-slot protocol. Returns false on
  // crash; the previously active checkpoint is preserved in that case.
  virtual bool WriteCheckpoint(std::string_view blob) = 0;

  // Drops the first `bytes` bytes of the WAL (everything the active
  // checkpoint already covers). Returns false on crash.
  virtual bool TruncateWal(std::uint64_t bytes) = 0;

  // Recovery-side reads. Defined even after a crash: they return whatever
  // reached stable storage (recovery is exactly the consumer of a crashed
  // store's remains).
  virtual std::string ReadWal() const = 0;
  virtual std::string ReadCheckpoint() const = 0;

  // True once a planned crash point fired (MemStore) or an I/O error was
  // hit (FileStore). A crashed store never accepts another write.
  virtual bool crashed() const = 0;
};

// In-memory store with deterministic crash injection. Operation ordinals
// are 1-based and counted per class: WAL appends for the *WalAppend kinds,
// checkpoint writes for kCrashMidCheckpoint.
class MemStore final : public StableStore {
 public:
  MemStore() = default;
  explicit MemStore(fault::ServiceFaultPlan plan) : plan_(std::move(plan)) {}

  bool AppendWal(std::string_view bytes) override;
  bool WriteCheckpoint(std::string_view blob) override;
  bool TruncateWal(std::uint64_t bytes) override;
  std::string ReadWal() const override { return wal_; }
  std::string ReadCheckpoint() const override;
  bool crashed() const override { return crashed_; }

  // Hands the surviving bytes to a fresh store (the "restart"): same WAL,
  // same slots, inert fault plan.
  MemStore Reincarnate() const;

  std::uint64_t wal_appends() const { return wal_appends_; }
  std::uint64_t checkpoint_writes() const { return checkpoint_writes_; }

 private:
  // Returns the planned crash point armed for this operation, or nullptr.
  const fault::ServiceCrashPoint* PointFor(fault::ServiceFaultKind a,
                                           fault::ServiceFaultKind b,
                                           std::uint64_t ordinal) const;

  fault::ServiceFaultPlan plan_;
  std::string wal_;
  // slots_[active_slot_] is the durable checkpoint; the other slot is
  // scratch for the write in flight.
  std::string slots_[2];
  int active_slot_ = -1;  // -1: no checkpoint yet
  std::uint64_t wal_appends_ = 0;
  std::uint64_t checkpoint_writes_ = 0;
  bool crashed_ = false;
};

// File-backed store rooted at `dir`: <dir>/wal.log, <dir>/ckpt.snap
// (+ ckpt.snap.tmp during writes). Creates the directory if missing.
class FileStore final : public StableStore {
 public:
  explicit FileStore(std::string dir);

  bool AppendWal(std::string_view bytes) override;
  bool WriteCheckpoint(std::string_view blob) override;
  bool TruncateWal(std::uint64_t bytes) override;
  std::string ReadWal() const override;
  std::string ReadCheckpoint() const override;
  bool crashed() const override { return crashed_; }

  const std::string& dir() const { return dir_; }

 private:
  std::string WalPath() const;
  std::string CkptPath() const;

  std::string dir_;
  bool crashed_ = false;
};

}  // namespace sds::svc
