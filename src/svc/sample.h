// The streaming detection service's ingest unit.
//
// A SvcSample is one per-tenant PCM counter reading as it arrives OFF-HOST:
// the same (tick, access_num, miss_num) triple pcm::PcmSample carries, plus
// the tenant it belongs to and the transport offset the feed assigned to the
// delivery. The offset is the at-least-once dedup key — a feed that replays
// after a service restart re-sends suffixes of its stream, and the service
// drops everything at or below its durable watermark without re-judging it.
// Offsets are strictly increasing per feed; ticks are the DATA timestamp and
// are validated separately by the admission ladder (out-of-order, duplicate
// and future-timestamped ticks are data-quality problems, not transport
// problems).
//
// Wire format (one JSON object per line, the telemetry JSONL dialect):
//   {"type":"svc_sample","tenant":N,"tick":T,"access_num":A,"miss_num":M}
// The offset is implicit: line number in the feed file (1-based), assigned
// by the reader. ParseSampleLine is deliberately strict — anything that does
// not parse exactly is the admission ladder's kMalformed rung, never a
// crash.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace sds::svc {

using TenantId = std::uint32_t;

struct SvcSample {
  TenantId tenant = 0;
  Tick tick = 0;
  std::uint64_t access_num = 0;
  std::uint64_t miss_num = 0;
  // Transport sequence assigned by the feed (1-based, strictly increasing).
  std::uint64_t offset = 0;
};

// One svc_sample JSONL line, without trailing newline.
std::string FormatSampleLine(const SvcSample& sample);
void WriteSampleLine(std::ostream& os, const SvcSample& sample);

// Parses a svc_sample line. Returns nullopt for anything malformed: wrong
// type tag, missing field, non-numeric value, negative numbers, trailing
// garbage. The returned sample's offset is 0 — the caller (feed reader)
// assigns it.
std::optional<SvcSample> ParseSampleLine(std::string_view line);

}  // namespace sds::svc
