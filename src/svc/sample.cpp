#include "svc/sample.h"

#include <cctype>
#include <cstdio>
#include <ostream>

namespace sds::svc {

namespace {

// Minimal strict scanner over one flat JSON object. No nesting, no arrays,
// no escapes beyond none (keys/values the service emits never contain any):
// exactly what FormatSampleLine produces, and nothing more.
struct Scanner {
  std::string_view s;
  std::size_t pos = 0;
  bool ok = true;

  void SkipWs() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    ok = false;
    return false;
  }

  // Parses "quoted" and returns the body.
  std::string_view QuotedString() {
    SkipWs();
    if (pos >= s.size() || s[pos] != '"') {
      ok = false;
      return {};
    }
    const std::size_t start = ++pos;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') {  // escapes never appear in svc_sample lines
        ok = false;
        return {};
      }
      ++pos;
    }
    if (pos >= s.size()) {
      ok = false;
      return {};
    }
    return s.substr(start, pos++ - start);
  }

  // Non-negative integer value. Rejects signs, decimals, exponents and
  // overflow — counter readings are u64 and ticks are non-negative here.
  std::uint64_t UInt() {
    SkipWs();
    const std::size_t start = pos;
    std::uint64_t v = 0;
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos])) != 0) {
      const std::uint64_t digit = static_cast<std::uint64_t>(s[pos] - '0');
      if (v > (UINT64_MAX - digit) / 10) {
        ok = false;
        return 0;
      }
      v = v * 10 + digit;
      ++pos;
    }
    if (pos == start) ok = false;
    return v;
  }

  bool AtEnd() {
    SkipWs();
    return pos == s.size();
  }
};

}  // namespace

std::string FormatSampleLine(const SvcSample& sample) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"svc_sample\",\"tenant\":%u,\"tick\":%lld,"
                "\"access_num\":%llu,\"miss_num\":%llu}",
                static_cast<unsigned>(sample.tenant),
                static_cast<long long>(sample.tick),
                static_cast<unsigned long long>(sample.access_num),
                static_cast<unsigned long long>(sample.miss_num));
  return buf;
}

void WriteSampleLine(std::ostream& os, const SvcSample& sample) {
  os << FormatSampleLine(sample) << '\n';
}

std::optional<SvcSample> ParseSampleLine(std::string_view line) {
  Scanner sc{line};
  if (!sc.Consume('{')) return std::nullopt;

  SvcSample out;
  bool have_type = false;
  bool have_tenant = false;
  bool have_tick = false;
  bool have_access = false;
  bool have_miss = false;
  bool first = true;
  while (true) {
    sc.SkipWs();
    if (sc.pos < sc.s.size() && sc.s[sc.pos] == '}') {
      ++sc.pos;
      break;
    }
    if (!first && !sc.Consume(',')) return std::nullopt;
    first = false;
    const std::string_view key = sc.QuotedString();
    if (!sc.ok || !sc.Consume(':')) return std::nullopt;
    if (key == "type") {
      if (have_type || sc.QuotedString() != "svc_sample") return std::nullopt;
      have_type = true;
    } else if (key == "tenant") {
      if (have_tenant) return std::nullopt;
      const std::uint64_t v = sc.UInt();
      if (!sc.ok || v > UINT32_MAX) return std::nullopt;
      out.tenant = static_cast<TenantId>(v);
      have_tenant = true;
    } else if (key == "tick") {
      if (have_tick) return std::nullopt;
      const std::uint64_t v = sc.UInt();
      if (!sc.ok || v > static_cast<std::uint64_t>(INT64_MAX)) {
        return std::nullopt;
      }
      out.tick = static_cast<Tick>(v);
      have_tick = true;
    } else if (key == "access_num") {
      if (have_access) return std::nullopt;
      out.access_num = sc.UInt();
      have_access = true;
    } else if (key == "miss_num") {
      if (have_miss) return std::nullopt;
      out.miss_num = sc.UInt();
      have_miss = true;
    } else {
      return std::nullopt;  // unknown keys are poison, not extension points
    }
    if (!sc.ok) return std::nullopt;
  }
  if (!sc.AtEnd()) return std::nullopt;  // trailing garbage
  if (!have_type || !have_tenant || !have_tick || !have_access || !have_miss) {
    return std::nullopt;
  }
  return out;
}

}  // namespace sds::svc
