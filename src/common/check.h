// Invariant checking.
//
// SDS_CHECK is an always-on assertion used for precondition violations that
// indicate a programming error by the caller; it aborts with a message rather
// than throwing because such states are never recoverable inside a simulation
// step. SDS_DCHECK compiles out in release builds and guards hot paths.
#pragma once

#include <string_view>

namespace sds::internal {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              std::string_view message);

}  // namespace sds::internal

#define SDS_CHECK(expr, message)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::sds::internal::CheckFailed(__FILE__, __LINE__, #expr, (message)); \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define SDS_DCHECK(expr, message) \
  do {                            \
  } while (false)
#else
#define SDS_DCHECK(expr, message) SDS_CHECK(expr, message)
#endif
