// Fixed-capacity ring buffer used by the streaming preprocessors and the
// period detector, which need "the most recent N values" views without
// reallocating on the hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace sds {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : data_(capacity), capacity_(capacity) {
    SDS_CHECK(capacity > 0, "RingBuffer capacity must be positive");
  }

  // Appends a value, evicting the oldest when full (counted in evictions()).
  void Push(const T& value) {
    data_[head_] = value;
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) {
      ++size_;
    } else {
      ++evictions_;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool full() const { return size_ == capacity_; }
  bool empty() const { return size_ == 0; }
  // Lifetime count of elements overwritten by Push on a full ring. Survives
  // Clear() — it accounts for the ring's whole history, not one window — so
  // saturation stays visible after the retained window is flushed.
  std::uint64_t evictions() const { return evictions_; }

  // Index 0 is the OLDEST retained element; size()-1 is the newest.
  const T& operator[](std::size_t i) const {
    SDS_DCHECK(i < size_, "RingBuffer index out of range");
    return data_[(head_ + capacity_ - size_ + i) % capacity_];
  }

  const T& newest() const {
    SDS_DCHECK(size_ > 0, "RingBuffer is empty");
    return (*this)[size_ - 1];
  }
  const T& oldest() const {
    SDS_DCHECK(size_ > 0, "RingBuffer is empty");
    return (*this)[0];
  }

  // Copies the retained elements, oldest first, into a contiguous vector.
  std::vector<T> ToVector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

  void Clear() {
    size_ = 0;
    head_ = 0;
  }

 private:
  std::vector<T> data_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace sds
