#include "common/snapshot.h"

#include <cstring>

namespace sds {
namespace {

// One tag byte per field so a reader that drifts out of sync (truncation,
// flipped bytes, version skew the envelope missed) fails at the next field
// instead of silently reinterpreting garbage.
constexpr char kTagU64 = 'U';
constexpr char kTagI64 = 'I';
constexpr char kTagU32 = 'u';
constexpr char kTagF64 = 'F';
constexpr char kTagBool = 'B';
constexpr char kTagStr = 'S';
constexpr char kTagVecF64 = 'V';

// Snapshots must not balloon on corrupt length prefixes.
constexpr std::uint64_t kMaxLength = 1ull << 28;

}  // namespace

void SnapshotWriter::Raw64(std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  data_.append(bytes, 8);
}

void SnapshotWriter::U64(std::uint64_t v) {
  data_.push_back(kTagU64);
  Raw64(v);
}

void SnapshotWriter::I64(std::int64_t v) {
  data_.push_back(kTagI64);
  Raw64(static_cast<std::uint64_t>(v));
}

void SnapshotWriter::U32(std::uint32_t v) {
  data_.push_back(kTagU32);
  Raw64(v);
}

void SnapshotWriter::F64(double v) {
  data_.push_back(kTagF64);
  Raw64(std::bit_cast<std::uint64_t>(v));
}

void SnapshotWriter::Bool(bool v) {
  data_.push_back(kTagBool);
  data_.push_back(v ? '\1' : '\0');
}

void SnapshotWriter::Str(std::string_view v) {
  data_.push_back(kTagStr);
  Raw64(v.size());
  data_.append(v.data(), v.size());
}

void SnapshotWriter::VecF64(const std::vector<double>& v) {
  data_.push_back(kTagVecF64);
  Raw64(v.size());
  for (double d : v) Raw64(std::bit_cast<std::uint64_t>(d));
}

bool SnapshotReader::Take(char expected_tag) {
  if (!ok_ || pos_ >= data_.size() || data_[pos_] != expected_tag) {
    ok_ = false;
    return false;
  }
  ++pos_;
  return true;
}

std::uint64_t SnapshotReader::Raw64() {
  if (!ok_ || pos_ + 8 > data_.size()) {
    ok_ = false;
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(
                                                         i)]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::uint64_t SnapshotReader::U64() {
  if (!Take(kTagU64)) return 0;
  return Raw64();
}

std::int64_t SnapshotReader::I64() {
  if (!Take(kTagI64)) return 0;
  return static_cast<std::int64_t>(Raw64());
}

std::uint32_t SnapshotReader::U32() {
  if (!Take(kTagU32)) return 0;
  const std::uint64_t v = Raw64();
  if (v > 0xffffffffull) {
    ok_ = false;
    return 0;
  }
  return static_cast<std::uint32_t>(v);
}

double SnapshotReader::F64() {
  if (!Take(kTagF64)) return 0.0;
  return std::bit_cast<double>(Raw64());
}

bool SnapshotReader::Bool() {
  if (!Take(kTagBool)) return false;
  if (pos_ >= data_.size()) {
    ok_ = false;
    return false;
  }
  const char c = data_[pos_++];
  if (c != '\0' && c != '\1') {
    ok_ = false;
    return false;
  }
  return c == '\1';
}

std::string SnapshotReader::Str() {
  if (!Take(kTagStr)) return "";
  const std::uint64_t n = Raw64();
  if (!ok_ || n > kMaxLength || pos_ + n > data_.size()) {
    ok_ = false;
    return "";
  }
  std::string out(data_.substr(pos_, n));
  pos_ += n;
  return out;
}

std::vector<double> SnapshotReader::VecF64() {
  if (!Take(kTagVecF64)) return {};
  const std::uint64_t n = Raw64();
  if (!ok_ || n > kMaxLength / 8 || pos_ + 8 * n > data_.size()) {
    ok_ = false;
    return {};
  }
  std::vector<double> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(std::bit_cast<double>(Raw64()));
  }
  return out;
}

std::uint64_t Fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace sds
