#include "common/csv.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace sds {
namespace {

bool NeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string DoubleToString(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << (NeedsQuoting(fields[i]) ? Quote(fields[i]) : fields[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::ToField(double v) { return DoubleToString(v); }
std::string CsvWriter::ToField(long long v) { return std::to_string(v); }
std::string CsvWriter::ToField(unsigned long long v) {
  return std::to_string(v);
}

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Str(double v) { return DoubleToString(v); }
std::string TextTable::Str(long long v) { return std::to_string(v); }
std::string TextTable::Str(unsigned long long v) { return std::to_string(v); }

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << '\n';
  };

  if (!header_.empty()) {
    print_row(header_);
    std::vector<std::string> rule;
    rule.reserve(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) {
      rule.push_back(std::string(widths[i], '-'));
    }
    print_row(rule);
  }
  for (const auto& row : rows_) print_row(row);
}

std::string FormatFixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Sparkline(const std::vector<double>& values, std::size_t width) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#", "@"};
  constexpr std::size_t kNumLevels = sizeof(kLevels) / sizeof(kLevels[0]);
  if (values.empty() || width == 0) return "";

  // Downsample by averaging buckets.
  std::vector<double> buckets(std::min(width, values.size()), 0.0);
  std::vector<std::size_t> counts(buckets.size(), 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t b = i * buckets.size() / values.size();
    buckets[b] += values[i];
    counts[b] += 1;
  }
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (counts[b] > 0) buckets[b] /= static_cast<double>(counts[b]);
  }

  const auto [mn_it, mx_it] = std::minmax_element(buckets.begin(), buckets.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  const double span = (mx > mn) ? (mx - mn) : 1.0;

  std::string out;
  out.reserve(buckets.size());
  for (double v : buckets) {
    const auto level = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(kNumLevels - 1),
                         std::floor((v - mn) / span * kNumLevels)));
    out += kLevels[level];
  }
  return out;
}

}  // namespace sds
