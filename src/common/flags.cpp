#include "common/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace sds {

bool Flags::Parse(int argc, char** argv,
                  const std::vector<std::string>& known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // --name value form, unless the next token is another flag or absent.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "unknown flag --%s; known flags:", name.c_str());
      for (const auto& k : known) std::fprintf(stderr, " --%s", k.c_str());
      std::fprintf(stderr, "\n");
      return false;
    }
    values_[name] = value;
  }
  return true;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

long long Flags::GetInt(const std::string& name, long long default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atoll(it->second.c_str());
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace sds
