#include "common/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace sds {

void Flags::PrintUsage(std::FILE* out) const {
  std::fprintf(out, "usage: %s [--flag[=value]] [positional...]\n",
               program_.c_str());
  std::size_t width = 4;  // "help"
  for (const auto& spec : known_) width = std::max(width, spec.name.size());
  for (const auto& spec : known_) {
    std::fprintf(out, "  --%-*s  %s\n", static_cast<int>(width),
                 spec.name.c_str(),
                 spec.description.empty() ? "(no description)"
                                          : spec.description.c_str());
  }
  std::fprintf(out, "  --%-*s  %s\n", static_cast<int>(width), "help",
               "print this usage table and exit");
}

bool Flags::Parse(int argc, char** argv, const std::vector<FlagSpec>& known) {
  known_ = known;
  if (argc > 0 && argv[0] != nullptr) program_ = argv[0];
  const auto find_spec = [&](const std::string& name) -> const FlagSpec* {
    for (const FlagSpec& s : known_) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // --name value form, unless the next token is another flag, absent, or
      // this flag never takes a value (--help and registered boolean flags).
      const FlagSpec* spec = find_spec(name);
      const bool takes_value =
          name != "help" && (spec == nullptr || !spec->boolean);
      if (takes_value && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (name == "help") {
      help_requested_ = true;
      PrintUsage(stdout);
      return false;
    }
    if (find_spec(name) == nullptr) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", program_.c_str(),
                   name.c_str());
      PrintUsage(stderr);
      return false;
    }
    values_[name] = value;
  }
  return true;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

long long Flags::GetInt(const std::string& name, long long default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atoll(it->second.c_str());
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace sds
