// Typed field-stream serialization primitives for detector state snapshots.
//
// A SnapshotWriter appends tagged fields (u64 / i64 / f64 / bool / string /
// double-vector) to a byte buffer; a SnapshotReader consumes them in the same
// order, verifying each field's 1-byte type tag. Any mismatch — wrong tag,
// truncated buffer, oversized length — sets a STICKY error flag instead of
// throwing or aborting, so a corrupted snapshot is rejected gracefully by the
// caller checking ok() once at the end.
//
// Determinism: doubles are serialized as their IEEE-754 bit pattern
// (little-endian u64), so a save/restore round trip is bit-exact — the
// foundation of the restart-without-rewarm guarantee pinned by
// tests/obs/snapshot_test. Framing (magic, version, checksum) is layered on
// top by obs/snapshot.h; this module is only the field stream.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sds {

class SnapshotWriter {
 public:
  void U64(std::uint64_t v);
  void I64(std::int64_t v);
  void U32(std::uint32_t v);
  void F64(double v);
  void Bool(bool v);
  void Str(std::string_view v);
  void VecF64(const std::vector<double>& v);

  const std::string& data() const { return data_; }
  std::string TakeData() { return std::move(data_); }

 private:
  void Raw64(std::uint64_t v);

  std::string data_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view data) : data_(data) {}

  std::uint64_t U64();
  std::int64_t I64();
  std::uint32_t U32();
  double F64();
  bool Bool();
  std::string Str();
  std::vector<double> VecF64();

  // False once any read hit a tag mismatch or ran off the end. All reads
  // after an error return zero values; callers check once, at the end.
  bool ok() const { return ok_; }
  // True when every byte was consumed (trailing garbage is corruption).
  bool exhausted() const { return pos_ == data_.size(); }
  // Bytes consumed so far — lets an envelope reader locate the payload that
  // follows a header without re-deriving field widths.
  std::size_t consumed() const { return pos_; }

 private:
  bool Take(char expected_tag);
  std::uint64_t Raw64();

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// FNV-1a over a byte string; the checksum obs/snapshot.h seals envelopes
// with. Exposed here so both sides share one definition.
std::uint64_t Fnv1a(std::string_view bytes);

}  // namespace sds
