// Output helpers for the benchmark harness: CSV emission for plotting and
// fixed-width text tables that mirror the paper's tables/figures in stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sds {

// Writes rows of string fields with correct quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void WriteRow(const std::vector<std::string>& fields);

  // Convenience for mixed field types.
  template <typename... Args>
  void Row(const Args&... args) {
    WriteRow(std::vector<std::string>{ToField(args)...});
  }

 private:
  static std::string ToField(const std::string& s) { return s; }
  static std::string ToField(const char* s) { return s; }
  static std::string ToField(double v);
  static std::string ToField(long long v);
  static std::string ToField(unsigned long long v);
  static std::string ToField(int v) { return ToField(static_cast<long long>(v)); }
  static std::string ToField(long v) { return ToField(static_cast<long long>(v)); }
  static std::string ToField(unsigned v) {
    return ToField(static_cast<unsigned long long>(v));
  }
  static std::string ToField(std::size_t v) {
    return ToField(static_cast<unsigned long long>(v));
  }

  std::ostream& os_;
};

// Accumulates rows then prints an aligned table with a header rule, e.g.
//
//   application    recall    specificity
//   -----------    ------    -----------
//   k-means        1.000     0.97
class TextTable {
 public:
  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  template <typename... Args>
  void Row(const Args&... args) {
    AddRow(std::vector<std::string>{Str(args)...});
  }

  // Renders the table to the stream. Column widths are computed from content.
  void Print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

  static std::string Str(const std::string& s) { return s; }
  static std::string Str(const char* s) { return s; }
  static std::string Str(double v);
  static std::string Str(long long v);
  static std::string Str(unsigned long long v);
  static std::string Str(int v) { return Str(static_cast<long long>(v)); }
  static std::string Str(long v) { return Str(static_cast<long long>(v)); }
  static std::string Str(unsigned v) {
    return Str(static_cast<unsigned long long>(v));
  }
  static std::string Str(std::size_t v) {
    return Str(static_cast<unsigned long long>(v));
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with a fixed number of decimals (helper shared by the
// bench binaries so tables look uniform).
std::string FormatFixed(double v, int decimals);

// Renders an ASCII sparkline of a series (used by the measurement-study bench
// to show the Figure 2-6 time-series shapes directly in the terminal).
std::string Sparkline(const std::vector<double>& values, std::size_t width);

}  // namespace sds
