#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace sds::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 std::string_view message) {
  std::fprintf(stderr, "[sds] check failed at %s:%d: (%s) %.*s\n", file, line,
               expr, static_cast<int>(message.size()), message.data());
  std::abort();
}

}  // namespace sds::internal
