// Minimal command-line flag parsing for the bench/example/tool binaries.
//
// Supports --name=value and --name value forms plus boolean --name. Each
// known flag is registered with a description; `--help` prints a usage table
// and Parse returns false with help_requested() set, so binaries exit 0 on
// help and nonzero on a real parse error. Unknown flags are an error so
// typos in experiment sweeps fail loudly (and now print the table of what IS
// known) instead of silently running the default configuration.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace sds {

// A registered flag. Implicitly constructible from a bare name so legacy
// call sites (`flags.Parse(argc, argv, {"runs", "seed"})`) keep working;
// prefer the {name, description} form so --help says something useful.
struct FlagSpec {
  FlagSpec(const char* flag_name) : name(flag_name) {}  // NOLINT(runtime/explicit)
  FlagSpec(std::string flag_name) : name(std::move(flag_name)) {}  // NOLINT
  FlagSpec(std::string flag_name, std::string flag_description)
      : name(std::move(flag_name)), description(std::move(flag_description)) {}
  FlagSpec(std::string flag_name, std::string flag_description,
           bool is_boolean)
      : name(std::move(flag_name)),
        description(std::move(flag_description)),
        boolean(is_boolean) {}

  std::string name;
  std::string description;
  // Boolean flags never consume the following token as their value, so
  // `tool --json path` keeps `path` positional. Non-boolean flags retain the
  // legacy greedy `--name value` behaviour.
  bool boolean = false;
};

class Flags {
 public:
  // Parses argv. On error prints a message plus the usage table to stderr
  // and returns false. On --help prints the usage table to stdout, sets
  // help_requested() and returns false; callers should then exit 0:
  //   if (!flags.Parse(...)) return flags.help_requested() ? 0 : 1;
  bool Parse(int argc, char** argv, const std::vector<FlagSpec>& known);

  // True when parsing stopped because --help was given.
  bool help_requested() const { return help_requested_; }

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  long long GetInt(const std::string& name, long long default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  void PrintUsage(std::FILE* out) const;

  std::string program_ = "program";
  std::vector<FlagSpec> known_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace sds
