// Minimal command-line flag parsing for the bench/example binaries.
//
// Supports --name=value and --name value forms plus boolean --name. Unknown
// flags are an error so typos in experiment sweeps fail loudly instead of
// silently running the default configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sds {

class Flags {
 public:
  // Parses argv. On error prints a message to stderr and returns false.
  bool Parse(int argc, char** argv, const std::vector<std::string>& known);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  long long GetInt(const std::string& name, long long default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace sds
