#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace sds {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  SDS_CHECK(bound > 0, "UniformInt bound must be positive");
  // Lemire multiply-shift with rejection of the biased region.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  SDS_CHECK(lo <= hi, "UniformInt range is empty");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

std::int64_t Rng::Poisson(double lambda) {
  SDS_CHECK(lambda >= 0.0, "Poisson lambda must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double prod = UniformDouble();
    std::int64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= UniformDouble();
    }
    return n;
  }
  // Normal approximation with continuity correction; adequate for the
  // intensity modelling this library uses Poisson for.
  const double v = Normal(lambda, std::sqrt(lambda));
  return std::max<std::int64_t>(0, static_cast<std::int64_t>(v + 0.5));
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double lambda) {
  SDS_CHECK(lambda > 0.0, "Exponential rate must be positive");
  double u = UniformDouble();
  while (u <= 0.0) u = UniformDouble();
  return -std::log(u) / lambda;
}

Rng Rng::Fork() { return Rng((*this)()); }

ZipfSampler::ZipfSampler(std::size_t n, double exponent) : exponent_(exponent) {
  SDS_CHECK(n > 0, "ZipfSampler needs a non-empty domain");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace sds
