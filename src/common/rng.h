// Deterministic random number generation for the simulator.
//
// Every stochastic component in this library takes an explicit Rng (or a seed)
// so that experiment runs are bit-identical across repetitions with the same
// seed. The generator is xoshiro256++, seeded through SplitMix64, which is
// fast, high quality, and trivially reproducible across platforms.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <vector>

namespace sds {

// xoshiro256++ by Blackman & Vigna (public domain reference implementation
// re-expressed here). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  // Uniform integer in [0, bound) using Lemire's rejection-free-in-practice
  // multiply-shift reduction. bound must be > 0.
  std::uint64_t UniformInt(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Standard normal via Box-Muller (cached second variate).
  double Normal();
  double Normal(double mean, double stddev);

  // Poisson-distributed count (Knuth for small lambda, normal approximation
  // for large lambda). Always >= 0.
  std::int64_t Poisson(double lambda);

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  // Exponential with rate lambda (> 0).
  double Exponential(double lambda);

  // Derives an independent child generator; used to give each simulated
  // component its own stream from one experiment seed.
  Rng Fork();

 private:
  std::array<std::uint64_t, 4> s_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Samples from a Zipf(n, s) distribution over {0, ..., n-1} using a
// precomputed inverse-CDF table. Used by the PageRank-style workloads whose
// hyperlink popularity follows a Zipfian distribution (paper Section 3.1).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t Sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace sds
