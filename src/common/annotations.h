// Concurrency-discipline annotations, enforced by sdslint (DESIGN.md §16).
//
// The macros expand to nothing: they are structured comments with teeth.
// sdslint's pass 4 reads them lexically and enforces:
//
//   SDS_GUARDED_BY(mu)   on a field: every method of the owning class that
//                        touches the field must hold `mu` — via a
//                        lock_guard/unique_lock/scoped_lock/shared_lock on
//                        it, a direct mu.lock(), or SDS_ASSERT_HELD(mu)
//                        when the lock is taken by the caller. Constructors
//                        and destructors are exempt (no concurrent access
//                        before/after the object's lifetime).
//
//   SDS_SHARD_OWNED      on a field: the field has single-thread shard
//                        affinity — exactly one thread ever touches it, by
//                        partitioning, so it needs no lock. Methods of the
//                        owning class must NOT acquire any lock (a locked
//                        method is evidence the state is shared after all),
//                        and a field cannot be both guarded and shard-owned.
//
//   SDS_ASSERT_HELD(mu)  in a method body: documents (and satisfies the
//                        checker for) a lock acquired by the caller. The
//                        expansion type-checks the mutex name without
//                        odr-using it, so typos fail to compile.
//
// Keeping the expansion empty (rather than clang's thread-safety
// attributes) keeps the annotations portable across the GCC/Clang matrix;
// sdslint is the single enforcement engine either way.
#pragma once

#define SDS_GUARDED_BY(mu)
#define SDS_SHARD_OWNED
#define SDS_ASSERT_HELD(mu) ((void)sizeof(&(mu)))
