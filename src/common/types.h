// Fundamental value types shared across the library.
//
// The simulator advances in discrete ticks. One tick corresponds to one PCM
// sampling interval (T_PCM seconds of virtual time, 0.01 s by default, matching
// Table 1 of the paper). All durations in the public API are expressed either
// in ticks or in virtual seconds; conversions go through TickClock.
#pragma once

#include <cstdint>
#include <limits>

namespace sds {

using Tick = std::int64_t;

inline constexpr Tick kInvalidTick = std::numeric_limits<Tick>::min();

// Default PCM sampling interval in virtual seconds (Table 1: T_PCM = 0.01 s).
inline constexpr double kDefaultTpcmSeconds = 0.01;

// Converts between ticks and virtual seconds for a fixed sampling interval.
class TickClock {
 public:
  constexpr explicit TickClock(double tpcm_seconds = kDefaultTpcmSeconds)
      : tpcm_seconds_(tpcm_seconds) {}

  constexpr double ToSeconds(Tick t) const {
    return static_cast<double>(t) * tpcm_seconds_;
  }
  constexpr Tick ToTicks(double seconds) const {
    return static_cast<Tick>(seconds / tpcm_seconds_ + 0.5);
  }
  constexpr double tpcm_seconds() const { return tpcm_seconds_; }

 private:
  double tpcm_seconds_;
};

// Identifies the owner of a memory access inside the simulated machine.
// Owner 0 is reserved for the hypervisor / monitoring agents.
using OwnerId = std::uint32_t;

inline constexpr OwnerId kHypervisorOwner = 0;

// A 64-bit cache-line address (already shifted: one unit == one line).
using LineAddr = std::uint64_t;

}  // namespace sds
