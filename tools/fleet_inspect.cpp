// fleet_inspect: summarizes the fleet observability JSONL stream written by
// bench_fleetobs --rollup_out (obs::FleetRollup::WriteJsonl +
// obs::SloEngine::WriteJsonl output).
//
//   fleet_inspect fleet.jsonl                 fleet health + SLO + top talkers
//   fleet_inspect fleet.jsonl --metric=NAME   rank tenants by this metric
//                                             (default detect.latency_ticks)
//   fleet_inspect fleet.jsonl --top=K         show K noisiest tenants (def 10)
//   fleet_inspect fleet.jsonl --alerts=N      dump the first N alert records
//   fleet_inspect fleet.jsonl --svc           per-crash-point recovery rows
//   fleet_inspect fleet.jsonl --forensics     per-VM conviction table over
//                                             the stream's forensic reports
//   fleet_inspect chaos.jsonl --hostchaos     warm-vs-cold handoff table over
//                                             the stream's host-chaos runs
//                                             (bench_hostchaos --trace_out)
//
// Line types consumed: "rollup" (one window x series row), "rollup_stats"
// (ingest/drop/memory accounting), "slo_alert" (level transitions),
// "slo_status" (final per-rule state), the streaming-service
// accounting pair "svc_ref" / "svc_recovery" written by
// bench_svc_chaos_sweep --accounting_out, and "forensic_report"
// (detect::WriteForensicReportJson incident records). Like trace_inspect, the parser
// handles exactly the flat one-object-per-line JSON this repo emits and
// malformed input never crashes the tool: empty lines, truncated records
// and unknown "type" values are counted and reported, and everything
// parseable is still summarized.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"

namespace {

using sds::FormatFixed;
using sds::TextTable;

// One parsed JSONL line: flat key -> raw value text (quotes stripped for
// strings, arrays kept verbatim).
using JsonObject = std::map<std::string, std::string>;

bool ParseLine(const std::string& line, JsonObject& out) {
  out.clear();
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  while (true) {
    skip_ws();
    if (i < line.size() && line[i] == '}') return true;
    if (i >= line.size() || line[i] != '"') return false;
    const auto key_end = line.find('"', i + 1);
    if (key_end == std::string::npos) return false;
    std::string key = line.substr(i + 1, key_end - i - 1);
    i = key_end + 1;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    if (i >= line.size()) return false;
    std::string value;
    if (line[i] == '"') {
      const auto end = line.find('"', i + 1);
      if (end == std::string::npos) return false;
      value = line.substr(i + 1, end - i - 1);
      i = end + 1;
    } else if (line[i] == '[') {
      const auto end = line.find(']', i);
      if (end == std::string::npos) return false;
      value = line.substr(i, end - i + 1);
      i = end + 1;
    } else {
      const auto end = line.find_first_of(",}", i);
      if (end == std::string::npos) return false;
      value = line.substr(i, end - i);
      i = end;
    }
    out.emplace(std::move(key), std::move(value));
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') return true;
    return false;
  }
}

double NumOr(const JsonObject& o, const std::string& key, double fallback) {
  const auto it = o.find(key);
  if (it == o.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

std::string StrOr(const JsonObject& o, const std::string& key,
                  const std::string& fallback) {
  const auto it = o.find(key);
  return it == o.end() ? fallback : it->second;
}

// Per-metric fleet aggregate across all rollup rows.
struct MetricHealth {
  std::uint64_t rows = 0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double worst_p95 = 0.0;
  double worst_p99 = 0.0;
  std::int64_t first_window = 0;
  std::int64_t last_window = 0;

  void Add(const JsonObject& row) {
    const double row_min = NumOr(row, "min", 0.0);
    const double row_max = NumOr(row, "max", 0.0);
    const std::int64_t window =
        static_cast<std::int64_t>(NumOr(row, "window", 0.0));
    if (rows == 0) {
      min = row_min;
      max = row_max;
      first_window = last_window = window;
    } else {
      min = std::min(min, row_min);
      max = std::max(max, row_max);
      first_window = std::min(first_window, window);
      last_window = std::max(last_window, window);
    }
    ++rows;
    count += static_cast<std::uint64_t>(NumOr(row, "count", 0.0));
    sum += NumOr(row, "sum", 0.0);
    worst_p95 = std::max(worst_p95, NumOr(row, "p95", 0.0));
    worst_p99 = std::max(worst_p99, NumOr(row, "p99", 0.0));
  }

  double mean() const { return count == 0 ? 0.0 : sum / count; }
};

// Per-(host, tenant) ranking state for the --metric series.
struct TenantHealth {
  std::uint64_t rows = 0;
  double worst_p95 = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;
  std::int64_t worst_window = 0;

  double mean() const { return count == 0 ? 0.0 : sum / count; }
};

}  // namespace

int main(int argc, char** argv) {
  sds::Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"metric",
            "metric used to rank tenants (default detect.latency_ticks)"},
           {"top", "noisiest tenants to show (default 10)"},
           {"alerts", "dump the first N slo_alert records (default 0)"},
           {"svc", "dump per-crash-point service recovery rows", true},
           {"forensics", "per-VM conviction table over forensic reports",
            true},
           {"hostchaos",
            "warm-vs-cold handoff table over host-chaos runs", true}})) {
    return flags.help_requested() ? 0 : 1;
  }
  if (flags.positional().size() != 1) {
    std::cerr << "usage: fleet_inspect <fleet.jsonl> [--metric=NAME] "
                 "[--top=K] [--alerts=N]\n";
    return 1;
  }

  const std::string rank_metric =
      flags.GetString("metric", "detect.latency_ticks");
  const std::size_t top_k =
      static_cast<std::size_t>(std::max<std::int64_t>(flags.GetInt("top", 10), 0));
  const std::size_t dump_alerts =
      static_cast<std::size_t>(std::max<std::int64_t>(flags.GetInt("alerts", 0), 0));

  std::ifstream in(flags.positional()[0]);
  if (!in) {
    std::cerr << "cannot open " << flags.positional()[0] << "\n";
    return 1;
  }

  std::uint64_t total_lines = 0;
  std::uint64_t empty_lines = 0;
  std::uint64_t malformed_lines = 0;
  std::map<std::string, std::uint64_t> unknown_types;

  std::map<std::string, MetricHealth> metrics;
  std::map<std::pair<std::uint32_t, std::uint32_t>, TenantHealth> tenants;
  std::vector<JsonObject> alerts;
  std::vector<JsonObject> statuses;
  JsonObject stats;
  bool have_stats = false;
  // Streaming-service accounting (bench_svc_chaos_sweep --accounting_out).
  JsonObject svc_ref;
  bool have_svc_ref = false;
  std::vector<JsonObject> svc_recoveries;
  // Forensic incident reports, aggregated per convicted VM.
  std::vector<JsonObject> forensic_reports;
  // Host-chaos runs (bench_hostchaos --trace_out): records are aggregated
  // into a warm side and a cold side keyed by the enclosing run header's
  // warm_handoff flag, so the fleet view directly compares the two replays.
  struct HostChaosSide {
    std::uint64_t runs = 0;
    std::uint64_t handoffs = 0;
    std::uint64_t blind_sum = 0;  // over closed (non-censored) windows
    std::uint64_t blind_closed = 0;
    std::uint64_t blind_censored = 0;
    std::uint64_t max_blind = 0;
  };
  HostChaosSide hc_sides[2];  // [0]=cold, [1]=warm
  bool hc_current_warm = false;
  bool hc_seen = false;
  std::uint64_t hc_transitions = 0;
  std::uint64_t hc_host_downs = 0;
  std::map<std::string, std::uint64_t> hc_evac_outcomes;
  std::uint64_t hc_evac_attempts = 0;
  std::uint64_t hc_evacuations = 0;

  std::string line;
  JsonObject obj;
  while (std::getline(in, line)) {
    ++total_lines;
    // Whitespace-only lines (including the \r a Windows editor leaves on an
    // otherwise blank line) count as empty, not malformed.
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      ++empty_lines;
      continue;
    }
    if (!ParseLine(line, obj)) {
      ++malformed_lines;
      continue;
    }
    const std::string type = StrOr(obj, "type", "?");
    if (type == "rollup") {
      const std::string metric = StrOr(obj, "metric", "?");
      metrics[metric].Add(obj);
      if (metric == rank_metric) {
        const auto host = static_cast<std::uint32_t>(NumOr(obj, "host", 0.0));
        const auto tenant =
            static_cast<std::uint32_t>(NumOr(obj, "tenant", 0.0));
        TenantHealth& t = tenants[{host, tenant}];
        ++t.rows;
        const double p95 = NumOr(obj, "p95", 0.0);
        if (p95 > t.worst_p95) {
          t.worst_p95 = p95;
          t.worst_window = static_cast<std::int64_t>(NumOr(obj, "window", 0.0));
        }
        t.sum += NumOr(obj, "sum", 0.0);
        t.count += static_cast<std::uint64_t>(NumOr(obj, "count", 0.0));
      }
    } else if (type == "rollup_stats") {
      stats = obj;
      have_stats = true;
    } else if (type == "slo_alert") {
      alerts.push_back(obj);
    } else if (type == "slo_status") {
      statuses.push_back(obj);
    } else if (type == "svc_ref") {
      svc_ref = obj;
      have_svc_ref = true;
    } else if (type == "svc_recovery") {
      svc_recoveries.push_back(obj);
    } else if (type == "forensic_report") {
      forensic_reports.push_back(obj);
    } else if (type == "hostchaos_header") {
      hc_seen = true;
      hc_current_warm = StrOr(obj, "warm_handoff", "false") == "true";
      ++hc_sides[hc_current_warm ? 1 : 0].runs;
    } else if (type == "host_state") {
      hc_seen = true;
      ++hc_transitions;
      const std::string to = StrOr(obj, "to", "?");
      if (to == "down" || to == "dead") ++hc_host_downs;
    } else if (type == "evacuation") {
      hc_seen = true;
      ++hc_evacuations;
      ++hc_evac_outcomes[StrOr(obj, "outcome", "?")];
      hc_evac_attempts +=
          static_cast<std::uint64_t>(NumOr(obj, "attempts", 0.0));
    } else if (type == "handoff") {
      hc_seen = true;
      HostChaosSide& side = hc_sides[hc_current_warm ? 1 : 0];
      ++side.handoffs;
      const auto blind =
          static_cast<std::int64_t>(NumOr(obj, "blind_ticks", -1.0));
      if (blind < 0) {
        ++side.blind_censored;
      } else {
        ++side.blind_closed;
        side.blind_sum += static_cast<std::uint64_t>(blind);
        side.max_blind =
            std::max(side.max_blind, static_cast<std::uint64_t>(blind));
      }
    } else {
      ++unknown_types[type];
    }
  }

  std::cout << "fleet_inspect: " << flags.positional()[0] << "\n";
  std::cout << "  lines=" << total_lines << " empty=" << empty_lines
            << " malformed=" << malformed_lines;
  if (!unknown_types.empty()) {
    std::cout << " unknown_types={";
    bool first = true;
    for (const auto& [type, n] : unknown_types) {
      if (!first) std::cout << ", ";
      first = false;
      std::cout << type << ":" << n;
    }
    std::cout << "}";
  }
  std::cout << "\n\n";

  if (have_stats) {
    std::cout << "rollup accounting: shards="
              << static_cast<std::uint64_t>(NumOr(stats, "shards", 0.0))
              << " window_ticks="
              << static_cast<std::uint64_t>(NumOr(stats, "window_ticks", 0.0))
              << " ingested="
              << static_cast<std::uint64_t>(NumOr(stats, "ingested", 0.0))
              << " rows="
              << static_cast<std::uint64_t>(NumOr(stats, "rows", 0.0))
              << " live_series="
              << static_cast<std::uint64_t>(NumOr(stats, "live_series", 0.0))
              << "\n  drops: late="
              << static_cast<std::uint64_t>(NumOr(stats, "dropped_late", 0.0))
              << " series="
              << static_cast<std::uint64_t>(NumOr(stats, "dropped_series", 0.0))
              << " samples="
              << static_cast<std::uint64_t>(
                     NumOr(stats, "dropped_samples", 0.0))
              << "  memory=" << FormatFixed(
                     NumOr(stats, "memory_bytes", 0.0) / 1024.0, 1)
              << " KiB\n\n";
  } else {
    std::cout << "rollup accounting: no rollup_stats record in stream\n\n";
  }

  if (!metrics.empty()) {
    std::cout << "fleet health by metric:\n";
    TextTable table;
    table.SetHeader({"metric", "rows", "samples", "mean", "min", "max",
                     "worst p95", "worst p99", "windows"});
    for (const auto& [name, m] : metrics) {
      table.Row(name, TextTable::Str(m.rows), TextTable::Str(m.count),
                FormatFixed(m.mean(), 3), FormatFixed(m.min, 3),
                FormatFixed(m.max, 3), FormatFixed(m.worst_p95, 3),
                FormatFixed(m.worst_p99, 3),
                TextTable::Str(m.first_window) + ".." +
                    TextTable::Str(m.last_window));
    }
    table.Print(std::cout);
    std::cout << "\n";
  } else {
    std::cout << "fleet health: no rollup rows in stream\n\n";
  }

  if (!tenants.empty() && top_k > 0) {
    std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                          TenantHealth>>
        ranked(tenants.begin(), tenants.end());
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.second.worst_p95 != b.second.worst_p95)
        return a.second.worst_p95 > b.second.worst_p95;
      return a.first < b.first;  // deterministic tie-break
    });
    if (ranked.size() > top_k) ranked.resize(top_k);
    std::cout << "top " << ranked.size() << " tenants by worst p95("
              << rank_metric << "):\n";
    TextTable table;
    table.SetHeader(
        {"host", "tenant", "worst p95", "at window", "mean", "rows"});
    for (const auto& [key, t] : ranked) {
      table.Row(TextTable::Str(key.first), TextTable::Str(key.second),
                FormatFixed(t.worst_p95, 3), TextTable::Str(t.worst_window),
                FormatFixed(t.mean(), 3), TextTable::Str(t.rows));
    }
    table.Print(std::cout);
    std::cout << "\n";
  } else if (top_k > 0) {
    std::cout << "no rollup rows for metric \"" << rank_metric
              << "\" — nothing to rank (see fleet health table for metric "
                 "names)\n\n";
  }

  if (!statuses.empty()) {
    std::cout << "slo status (" << alerts.size() << " alert transitions):\n";
    TextTable table;
    table.SetHeader({"rule", "expr", "level", "burn", "violating", "windows"});
    for (const JsonObject& st : statuses) {
      table.Row(StrOr(st, "rule", "?"), StrOr(st, "expr", "?"),
                StrOr(st, "level", "?"), FormatFixed(NumOr(st, "burn", 0.0), 3),
                TextTable::Str(
                    static_cast<std::uint64_t>(NumOr(st, "violating", 0.0))),
                TextTable::Str(
                    static_cast<std::uint64_t>(NumOr(st, "windows", 0.0))));
    }
    table.Print(std::cout);
    std::cout << "\n";
  } else {
    std::cout << "slo status: no slo_status records in stream\n\n";
  }

  if (dump_alerts > 0 && !alerts.empty()) {
    std::cout << "first " << std::min(dump_alerts, alerts.size())
              << " alert transitions:\n";
    TextTable table;
    table.SetHeader(
        {"window", "rule", "level", "burn", "host", "tenant", "observed"});
    for (std::size_t i = 0; i < alerts.size() && i < dump_alerts; ++i) {
      const JsonObject& a = alerts[i];
      table.Row(TextTable::Str(
                    static_cast<std::int64_t>(NumOr(a, "window", 0.0))),
                StrOr(a, "rule", "?"), StrOr(a, "level", "?"),
                FormatFixed(NumOr(a, "burn", 0.0), 3),
                TextTable::Str(
                    static_cast<std::uint32_t>(NumOr(a, "host", 0.0))),
                TextTable::Str(
                    static_cast<std::uint32_t>(NumOr(a, "tenant", 0.0))),
                FormatFixed(NumOr(a, "observed", 0.0), 3));
    }
    table.Print(std::cout);
  }

  if (!forensic_reports.empty()) {
    // Fleet-level forensics: how often each VM was convicted across the
    // stream's incident reports, and how often the KStest identification
    // sweep concurred. A VM convicted repeatedly across incidents is a
    // serial offender; a low agreement rate flags divergence between the
    // hardware evidence and the perturbation-based baseline.
    struct Conviction {
      std::uint64_t incidents = 0;
      std::uint64_t ks_named = 0;   // KStest also produced a culprit
      std::uint64_t ks_agreed = 0;  // ... and it was this VM
      double worst_score = 0.0;
    };
    std::map<std::uint64_t, Conviction> convictions;
    std::uint64_t unattributed = 0;
    for (const JsonObject& r : forensic_reports) {
      if (StrOr(r, "attributed", "false") != "true") {
        ++unattributed;
        continue;
      }
      const auto vm = static_cast<std::uint64_t>(NumOr(r, "prime_suspect", 0));
      Conviction& c = convictions[vm];
      ++c.incidents;
      if (NumOr(r, "kstest_culprit", 0.0) != 0.0) {
        ++c.ks_named;
        if (StrOr(r, "kstest_agrees", "false") == "true") ++c.ks_agreed;
      }
      // The report's suspect list is score-sorted; the prime suspect's
      // score is the first "score" in the verbatim array. Cheaper to carry
      // it as a top-level field would be a format change; instead reuse the
      // array text up to the first object boundary.
      const std::string raw = StrOr(r, "suspects", "[]");
      const auto pos = raw.find("\"score\":");
      if (pos != std::string::npos) {
        try {
          c.worst_score = std::max(c.worst_score, std::stod(raw.substr(pos + 8)));
        } catch (...) {
          // damaged row: keep the running max
        }
      }
    }
    std::cout << "\nforensic convictions (" << forensic_reports.size()
              << " reports, " << unattributed << " unattributed):\n";
    if (flags.GetBool("forensics", false) && !convictions.empty()) {
      TextTable table;
      table.SetHeader({"vm", "incidents", "worst score", "kstest named",
                       "kstest agreed"});
      for (const auto& [vm, c] : convictions) {
        table.Row(TextTable::Str(vm), TextTable::Str(c.incidents),
                  FormatFixed(c.worst_score, 3), TextTable::Str(c.ks_named),
                  TextTable::Str(c.ks_agreed));
      }
      table.Print(std::cout);
    } else if (!convictions.empty()) {
      std::cout << "  (run with --forensics for the per-VM table)\n";
    }
  }

  if (hc_seen) {
    // Host-chaos fleet view: how much the hosts misbehaved, whether
    // evacuation converged, and the warm-vs-cold handoff comparison (the
    // bench writes both replays of each cell into one stream). A warm row
    // whose mean blind window is not well below the cold row's means the
    // handoff is not carrying detector state.
    std::cout << "\nhost-chaos: runs=" << (hc_sides[0].runs + hc_sides[1].runs)
              << " (warm=" << hc_sides[1].runs << " cold=" << hc_sides[0].runs
              << ") host_transitions=" << hc_transitions
              << " host_downs=" << hc_host_downs << "\n";
    if (hc_evacuations != 0) {
      std::cout << "  evacuations: " << hc_evacuations;
      for (const auto& [outcome, n] : hc_evac_outcomes) {
        std::cout << " " << outcome << "=" << n;
      }
      std::cout << " mean_attempts="
                << FormatFixed(static_cast<double>(hc_evac_attempts) /
                                   static_cast<double>(hc_evacuations),
                               1)
                << "\n";
    }
    if (flags.GetBool("hostchaos", false) &&
        (hc_sides[0].handoffs != 0 || hc_sides[1].handoffs != 0)) {
      TextTable table;
      table.SetHeader({"handoff", "runs", "handoffs", "mean blind", "max blind",
                       "censored"});
      for (int side = 1; side >= 0; --side) {
        const HostChaosSide& s = hc_sides[side];
        table.Row(side == 1 ? "warm" : "cold", TextTable::Str(s.runs),
                  TextTable::Str(s.handoffs),
                  s.blind_closed == 0
                      ? "-"
                      : FormatFixed(static_cast<double>(s.blind_sum) /
                                        static_cast<double>(s.blind_closed),
                                    1),
                  TextTable::Str(s.max_blind),
                  TextTable::Str(s.blind_censored));
      }
      table.Print(std::cout);
    } else if (hc_sides[0].handoffs != 0 || hc_sides[1].handoffs != 0) {
      std::cout << "  (run with --hostchaos for the warm-vs-cold handoff "
                   "table)\n";
    }
  }

  if (have_svc_ref || !svc_recoveries.empty()) {
    // Streaming-service WAL / recovery / shed accounting, from the chaos
    // sweep's --accounting_out stream. A recovery row with identical=0 means
    // the crash-consistency pin broke for that crash point.
    std::cout << "\nstreaming service";
    if (have_svc_ref) {
      std::cout << " (reference run): events="
                << static_cast<std::uint64_t>(NumOr(svc_ref, "events", 0.0))
                << " admitted="
                << static_cast<std::uint64_t>(NumOr(svc_ref, "admitted", 0.0))
                << " coalesced="
                << static_cast<std::uint64_t>(NumOr(svc_ref, "coalesced", 0.0))
                << " shed="
                << static_cast<std::uint64_t>(NumOr(svc_ref, "shed", 0.0))
                << " shed_rate="
                << FormatFixed(NumOr(svc_ref, "shed_rate", 0.0), 3)
                << "\n  wal_appends="
                << static_cast<std::uint64_t>(
                       NumOr(svc_ref, "wal_appends", 0.0))
                << " checkpoints="
                << static_cast<std::uint64_t>(
                       NumOr(svc_ref, "checkpoints", 0.0))
                << " quarantines="
                << static_cast<std::uint64_t>(
                       NumOr(svc_ref, "quarantines", 0.0))
                << " alarms="
                << static_cast<std::uint64_t>(NumOr(svc_ref, "alarms", 0.0))
                << "\n";
    } else {
      std::cout << ": no svc_ref record in stream\n";
    }
    if (!svc_recoveries.empty()) {
      std::uint64_t identical = 0, fired = 0;
      std::uint64_t max_replayed = 0, max_deduped = 0;
      for (const JsonObject& r : svc_recoveries) {
        if (NumOr(r, "bit_identical", 0.0) != 0.0) ++identical;
        if (NumOr(r, "fired", 0.0) != 0.0) ++fired;
        max_replayed = std::max(
            max_replayed,
            static_cast<std::uint64_t>(NumOr(r, "replayed", 0.0)));
        max_deduped = std::max(
            max_deduped,
            static_cast<std::uint64_t>(NumOr(r, "deduped", 0.0)));
      }
      std::cout << "  recovery: crash_points=" << svc_recoveries.size()
                << " fired=" << fired << " bit_identical=" << identical << "/"
                << svc_recoveries.size() << " max_replayed=" << max_replayed
                << " max_deduped=" << max_deduped
                << (identical == svc_recoveries.size()
                        ? ""
                        : "  ** PIN BROKEN **")
                << "\n";
      if (flags.GetBool("svc", false)) {
        TextTable table;
        table.SetHeader({"kind", "op", "bytes", "fired", "crash tick", "ckpt",
                         "replayed", "deduped", "wal stop", "identical"});
        for (const JsonObject& r : svc_recoveries) {
          table.Row(StrOr(r, "kind", "?"),
                    TextTable::Str(
                        static_cast<std::uint64_t>(NumOr(r, "op_index", 0.0))),
                    FormatFixed(NumOr(r, "byte_fraction", 0.0), 2),
                    NumOr(r, "fired", 0.0) != 0.0 ? "yes" : "NO",
                    TextTable::Str(static_cast<std::int64_t>(
                        NumOr(r, "crash_tick", -1.0))),
                    NumOr(r, "from_checkpoint", 0.0) != 0.0 ? "yes" : "no",
                    TextTable::Str(
                        static_cast<std::uint64_t>(NumOr(r, "replayed", 0.0))),
                    TextTable::Str(
                        static_cast<std::uint64_t>(NumOr(r, "deduped", 0.0))),
                    StrOr(r, "wal_stop", "?"),
                    NumOr(r, "bit_identical", 0.0) != 0.0 ? "yes" : "NO");
        }
        table.Print(std::cout);
      }
    }
  }
  return 0;
}
