// trace_inspect: summarizes a telemetry JSONL stream (telemetry::Telemetry::
// WriteJsonl output, written by benches via --telemetry_out or by
// pcm::WriteTraceJsonl).
//
//   trace_inspect run.jsonl                  per-layer / per-event / metric
//                                            summaries + alarm timeline
//   trace_inspect run.jsonl --layer=detect   restrict event tables to a layer
//   trace_inspect run.jsonl --audit          dump every audit record
//   trace_inspect run.jsonl --events=N       also dump the first N events
//   trace_inspect run.jsonl --svc            per-crash-point service
//                                            recovery rows (svc_ref /
//                                            svc_recovery records)
//   trace_inspect run.jsonl --forensics      per-suspect evidence rows under
//                                            each forensic incident report
//   trace_inspect lint_stats.json --lint     lint-run summary (the
//                                            `sdslint --stats --stats-out`
//                                            payload), with per-rule hits
//   trace_inspect chaos.jsonl --hostchaos    per-transition host up/down
//                                            timeline and per-evacuation rows
//                                            under each host-chaos run
//                                            (bench_hostchaos --trace_out)
//
// The parser handles exactly the flat one-object-per-line JSON this repo
// emits (string/number/bool values, numeric arrays); it is not a general
// JSON parser and does not try to be. Malformed input NEVER crashes the
// tool: empty lines, truncated records and unknown "type" values are each
// counted separately and reported in the summary, and everything parseable
// is still summarized.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/types.h"
#include "telemetry/metrics.h"

namespace {

using sds::TickClock;

// One parsed JSONL line: flat key -> raw value text (quotes stripped for
// strings, arrays kept verbatim).
using JsonObject = std::map<std::string, std::string>;

bool ParseLine(const std::string& line, JsonObject& out) {
  out.clear();
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  while (true) {
    skip_ws();
    if (i < line.size() && line[i] == '}') return true;
    // Key.
    if (i >= line.size() || line[i] != '"') return false;
    const auto key_end = line.find('"', i + 1);
    if (key_end == std::string::npos) return false;
    std::string key = line.substr(i + 1, key_end - i - 1);
    i = key_end + 1;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    if (i >= line.size()) return false;
    // Value: string, array (kept verbatim), or bare token (number/bool).
    std::string value;
    if (line[i] == '"') {
      const auto end = line.find('"', i + 1);
      if (end == std::string::npos) return false;
      value = line.substr(i + 1, end - i - 1);
      i = end + 1;
    } else if (line[i] == '[') {
      const auto end = line.find(']', i);
      if (end == std::string::npos) return false;
      value = line.substr(i, end - i + 1);
      i = end + 1;
    } else if (line[i] == '{') {
      // One level of nesting, kept verbatim like arrays (the sdslint stats
      // payload's flat "rule_hits" object); re-parse with ParseLine to read
      // its fields.
      const auto end = line.find('}', i);
      if (end == std::string::npos) return false;
      value = line.substr(i, end - i + 1);
      i = end + 1;
    } else {
      const auto end = line.find_first_of(",}", i);
      if (end == std::string::npos) return false;
      value = line.substr(i, end - i);
      i = end;
    }
    out.emplace(std::move(key), std::move(value));
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') return true;
    return false;
  }
}

double NumOr(const JsonObject& o, const std::string& key, double fallback) {
  const auto it = o.find(key);
  if (it == o.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

std::string StrOr(const JsonObject& o, const std::string& key,
                  const std::string& fallback) {
  const auto it = o.find(key);
  return it == o.end() ? fallback : it->second;
}

// Parses an "[{...},{...}]" array of FLAT objects (as ParseLine keeps them
// verbatim — the forensic "suspects" field). Damaged elements are skipped.
std::vector<JsonObject> ParseObjectArray(const std::string& raw) {
  std::vector<JsonObject> out;
  std::size_t i = 0;
  while ((i = raw.find('{', i)) != std::string::npos) {
    const auto end = raw.find('}', i);
    if (end == std::string::npos) break;
    JsonObject o;
    if (ParseLine(raw.substr(i, end - i + 1), o)) out.push_back(std::move(o));
    i = end + 1;
  }
  return out;
}

// Parses a "[1,2,3]" array value (as ParseLine keeps them) into numbers.
// Unparseable elements are skipped rather than fatal.
std::vector<double> ParseNumberArray(const std::string& raw) {
  std::vector<double> out;
  if (raw.size() < 2 || raw.front() != '[' || raw.back() != ']') return out;
  std::size_t i = 1;
  while (i < raw.size() - 1) {
    const auto end = raw.find_first_of(",]", i);
    const std::string token = raw.substr(i, end - i);
    try {
      out.push_back(std::stod(token));
    } catch (...) {
      // skip
    }
    if (end == std::string::npos || end >= raw.size() - 1) break;
    i = end + 1;
  }
  return out;
}

struct LayerSummary {
  std::uint64_t events = 0;
  long long first_tick = -1;
  long long last_tick = -1;
};

struct AuditSummary {
  std::uint64_t records = 0;
  std::uint64_t violations = 0;
  std::uint64_t alarmed = 0;
  double worst_margin = -1e300;
};

// One header-delimited host-chaos run (bench_hostchaos --trace_out writes a
// hostchaos_header line per run, warm then cold, followed by that run's
// host_state / evacuation / handoff records).
struct HostChaosRun {
  JsonObject header;
  std::vector<JsonObject> host_states;
  std::vector<JsonObject> evacuations;
  std::vector<JsonObject> handoffs;
};

// Blind-window histogram bucket label for one handoff's blind_ticks value
// (-1 = still open when the run ended, i.e. censored).
const char* const kBlindBucketNames[] = {"censored", "0",      "1-50",
                                         "51-200",   "201-800", ">800"};
constexpr std::size_t kBlindBuckets = std::size(kBlindBucketNames);

std::size_t BlindBucket(long long blind) {
  if (blind < 0) return 0;
  if (blind == 0) return 1;
  if (blind <= 50) return 2;
  if (blind <= 200) return 3;
  if (blind <= 800) return 4;
  return 5;
}

}  // namespace

int main(int argc, char** argv) {
  sds::Flags flags;
  if (!flags.Parse(argc, argv,
                   {{"layer", "restrict event tables to this layer"},
                    {"audit", "dump every audit record", true},
                    {"events", "also dump the first N matching events"},
                    {"svc", "dump per-crash-point service recovery rows",
                     true},
                    {"forensics",
                     "dump per-suspect evidence under each forensic report",
                     true},
                    {"lint",
                     "dump per-rule hit counts under the lint summary",
                     true},
                    {"hostchaos",
                     "dump host up/down timelines and evacuation rows under "
                     "each host-chaos run",
                     true}})) {
    return flags.help_requested() ? 0 : 1;
  }
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: trace_inspect <telemetry.jsonl> [--layer=L] "
                         "[--audit] [--events=N]\n");
    return 1;
  }
  const std::string path = flags.positional()[0];
  const std::string layer_filter = flags.GetString("layer", "");
  const bool dump_audit = flags.GetBool("audit", false);
  const bool dump_svc = flags.GetBool("svc", false);
  const bool dump_forensics = flags.GetBool("forensics", false);
  const bool dump_lint = flags.GetBool("lint", false);
  const bool dump_hostchaos = flags.GetBool("hostchaos", false);
  const long long dump_events = flags.GetInt("events", 0);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_inspect: cannot open %s\n", path.c_str());
    return 1;
  }

  std::map<std::string, LayerSummary> layers;
  std::map<std::string, std::uint64_t> event_counts;  // "layer/event"
  std::map<std::string, AuditSummary> audits;         // "detector/check"
  std::map<std::string, std::uint64_t> fault_events;  // layer=fault, by name
  // check=degrade audit records, keyed "consumer/action".
  std::map<std::string, std::uint64_t> degrade_actions;
  // check=actuation audit records (the MitigationEngine's retry / escalate /
  // verify / rollback steps), keyed by channel; plus the terminal
  // check=mitigation records as an incident timeline.
  std::map<std::string, std::uint64_t> actuation_steps;
  std::vector<JsonObject> mitigation_records;
  std::vector<JsonObject> alarm_timeline;             // alarm events + audits
  std::map<std::string, bool> alarm_state;            // per detector
  std::vector<std::string> metric_lines;
  std::vector<std::string> span_lines;
  std::optional<JsonObject> profile_header;
  std::vector<std::string> event_dump;
  std::uint64_t total_events = 0, total_audits = 0;
  // Input-hygiene accounting: each malformation class counted separately so
  // "my tool said nothing" and "my file is damaged" are distinguishable.
  std::uint64_t empty_lines = 0, bad_lines = 0;
  std::map<std::string, std::uint64_t> unknown_types;
  std::optional<JsonObject> header;
  std::optional<JsonObject> tracer_stats;
  // Streaming-service accounting records (bench_svc_chaos_sweep
  // --accounting_out), mixed into a telemetry stream or inspected alone.
  std::optional<JsonObject> svc_ref;
  std::vector<JsonObject> svc_recoveries;
  // Forensic incident reports (detect::WriteForensicReportJson lines).
  std::vector<JsonObject> forensic_reports;
  // sdslint --stats payload (BENCH_lint / --stats-out): the one record kind
  // without a "type" key, recognized by its field set.
  std::optional<JsonObject> lint_stats;
  // Host-chaos runs (bench_hostchaos --trace_out), header-delimited.
  std::vector<HostChaosRun> hostchaos_runs;

  std::string line;
  long long lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      ++empty_lines;
      continue;
    }
    JsonObject o;
    if (!ParseLine(line, o)) {
      ++bad_lines;
      continue;
    }
    const std::string type = StrOr(o, "type", "");
    if (type == "header") {
      header = o;
    } else if (type == "tracer_stats") {
      tracer_stats = o;
    } else if (type == "event") {
      const std::string layer = StrOr(o, "layer", "?");
      const std::string event = StrOr(o, "event", "?");
      const auto tick = static_cast<long long>(NumOr(o, "tick", -1));
      ++total_events;
      auto& ls = layers[layer];
      ++ls.events;
      if (ls.first_tick < 0) ls.first_tick = tick;
      ls.last_tick = tick;
      if (layer_filter.empty() || layer == layer_filter) {
        ++event_counts[layer + "/" + event];
        if (dump_events > 0 &&
            event_dump.size() < static_cast<std::size_t>(dump_events)) {
          event_dump.push_back(line);
        }
      }
      if (event == "alarm_raised" || event == "alarm_cleared") {
        alarm_timeline.push_back(o);
      }
      if (layer == "fault") ++fault_events[event];
    } else if (type == "audit") {
      ++total_audits;
      const std::string detector = StrOr(o, "detector", "?");
      const bool alarm = StrOr(o, "alarm", "false") == "true";
      auto& as = audits[detector + "/" + StrOr(o, "check", "?")];
      ++as.records;
      if (StrOr(o, "violation", "false") == "true") ++as.violations;
      if (alarm) ++as.alarmed;
      if (o.count("margin") != 0) {
        as.worst_margin = std::max(as.worst_margin, NumOr(o, "margin", -1e300));
      }
      // Audit records survive ring overflow, so reconstruct alarm
      // transitions from them even when the alarm_raised event itself was
      // dropped from the retained event window.
      const auto [state, inserted] = alarm_state.emplace(detector, false);
      if (state->second != alarm) {
        state->second = alarm;
        JsonObject transition = o;
        transition["event"] =
            alarm ? "alarm_raised (audit)" : "alarm_cleared (audit)";
        alarm_timeline.push_back(std::move(transition));
      }
      if (StrOr(o, "check", "") == "degrade") {
        ++degrade_actions[detector + "/" + StrOr(o, "channel", "?")];
      }
      if (StrOr(o, "check", "") == "actuation") {
        ++actuation_steps[StrOr(o, "channel", "?")];
      }
      if (StrOr(o, "check", "") == "mitigation") {
        mitigation_records.push_back(o);
      }
      if (dump_audit) event_dump.push_back(line);
    } else if (type == "metric") {
      metric_lines.push_back(line);
    } else if (type == "profile") {
      profile_header = o;
    } else if (type == "span") {
      span_lines.push_back(line);
    } else if (type == "svc_ref") {
      svc_ref = o;
    } else if (type == "svc_recovery") {
      svc_recoveries.push_back(o);
    } else if (type == "forensic_report") {
      forensic_reports.push_back(o);
    } else if (type == "hostchaos_header") {
      hostchaos_runs.emplace_back();
      hostchaos_runs.back().header = o;
    } else if (type == "host_state" || type == "evacuation" ||
               type == "handoff") {
      // A record before any header (truncated file) still gets summarized
      // under an implicit run.
      if (hostchaos_runs.empty()) hostchaos_runs.emplace_back();
      if (type == "host_state") {
        hostchaos_runs.back().host_states.push_back(std::move(o));
      } else if (type == "evacuation") {
        hostchaos_runs.back().evacuations.push_back(std::move(o));
      } else {
        hostchaos_runs.back().handoffs.push_back(std::move(o));
      }
    } else if (type.empty() && o.count("rule_hits") != 0 &&
               o.count("files_scanned") != 0) {
      lint_stats = o;
    } else {
      // A future writer's record (or corruption that still parses): count it
      // by name, keep going.
      ++unknown_types[type.empty() ? "(missing)" : type];
    }
  }

  const TickClock clock;
  std::printf("telemetry stream: %s\n", path.c_str());
  if (header) {
    std::printf("  emitted=%lld dropped=%lld audit_records=%lld\n",
                static_cast<long long>(NumOr(*header, "events_emitted", 0)),
                static_cast<long long>(NumOr(*header, "events_dropped", 0)),
                static_cast<long long>(NumOr(*header, "audit_records", 0)));
  }
  std::printf("  parsed: %llu events, %llu audit records, %zu metrics, "
              "%zu profiler spans",
              static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_audits),
              metric_lines.size(), span_lines.size());
  if (empty_lines) {
    std::printf(", %llu empty lines",
                static_cast<unsigned long long>(empty_lines));
  }
  if (bad_lines) {
    std::printf(", %llu unparseable lines",
                static_cast<unsigned long long>(bad_lines));
  }
  std::printf("\n");
  if (!unknown_types.empty()) {
    std::printf("  unknown record types:");
    for (const auto& [name, count] : unknown_types) {
      std::printf(" %s=%llu", name.c_str(),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }
  if (tracer_stats) {
    // Ring saturation report: a saturated ring silently discards the oldest
    // events, so say exactly how much history was lost and whose it was.
    const auto dropped =
        static_cast<long long>(NumOr(*tracer_stats, "dropped", 0));
    const auto emitted =
        static_cast<long long>(NumOr(*tracer_stats, "emitted", 0));
    std::printf("\ntracer ring: capacity=%lld retained=%lld emitted=%lld "
                "dropped=%lld",
                static_cast<long long>(NumOr(*tracer_stats, "capacity", 0)),
                static_cast<long long>(NumOr(*tracer_stats, "retained", 0)),
                emitted, dropped);
    if (dropped > 0 && emitted > 0) {
      std::printf(" (%.1f%% of emitted events lost)",
                  100.0 * static_cast<double>(dropped) /
                      static_cast<double>(emitted));
    }
    std::printf("\n");
    if (dropped > 0) {
      std::printf("  dropped by layer:");
      for (const auto& [key, value] : *tracer_stats) {
        if (key.rfind("dropped.", 0) == 0) {
          std::printf(" %s=%s", key.substr(8).c_str(), value.c_str());
        }
      }
      std::printf("\n");
    }
  }

  std::printf("\nper-layer summary\n");
  std::printf("  %-12s %10s %12s %12s\n", "layer", "events", "first-tick",
              "last-tick");
  for (const auto& [name, ls] : layers) {
    std::printf("  %-12s %10llu %12lld %12lld\n", name.c_str(),
                static_cast<unsigned long long>(ls.events), ls.first_tick,
                ls.last_tick);
  }

  std::printf("\nper-event counts%s\n",
              layer_filter.empty() ? ""
                                   : (" (layer=" + layer_filter + ")").c_str());
  for (const auto& [key, count] : event_counts) {
    std::printf("  %-40s %10llu\n", key.c_str(),
                static_cast<unsigned long long>(count));
  }

  if (!audits.empty()) {
    std::printf("\naudit summary (detector/check)\n");
    std::printf("  %-24s %8s %10s %8s %12s\n", "detector/check", "records",
                "violations", "alarmed", "worst-margin");
    for (const auto& [key, as] : audits) {
      std::printf("  %-24s %8llu %10llu %8llu ", key.c_str(),
                  static_cast<unsigned long long>(as.records),
                  static_cast<unsigned long long>(as.violations),
                  static_cast<unsigned long long>(as.alarmed));
      // Degradation audits carry no margin; leave the column blank.
      if (as.worst_margin > -1e300) {
        std::printf("%12.4f\n", as.worst_margin);
      } else {
        std::printf("%12s\n", "-");
      }
    }
  }

  if (!fault_events.empty() || !degrade_actions.empty()) {
    // The monitoring-plane story of the run: what the FaultInjector did to
    // the sample stream, and how the detectors' degradation gates responded.
    std::printf("\nmonitoring-plane faults & degradation\n");
    if (!fault_events.empty()) {
      std::printf("  %-40s %10s\n", "fault-layer event", "count");
      for (const auto& [name, count] : fault_events) {
        std::printf("  %-40s %10llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
      }
    }
    if (!degrade_actions.empty()) {
      std::printf("  %-40s %10s\n", "degradation (consumer/action)", "count");
      for (const auto& [key, count] : degrade_actions) {
        std::printf("  %-40s %10llu\n", key.c_str(),
                    static_cast<unsigned long long>(count));
      }
    }
  }

  if (!actuation_steps.empty() || !mitigation_records.empty()) {
    // The actuation-plane story: every deviation from the clean dispatch ->
    // settle path (retries, timeouts, escalations, verification verdicts,
    // rollbacks) plus the terminal mitigation record(s). A clean run shows
    // only the mitigation line — any step row means the control plane had
    // to fight.
    std::printf("\nactuation incidents\n");
    for (const auto& [channel, count] : actuation_steps) {
      std::printf("  %-40s %10llu\n", channel.c_str(),
                  static_cast<unsigned long long>(count));
    }
    for (const auto& o : mitigation_records) {
      const auto tick = static_cast<long long>(NumOr(o, "tick", -1));
      std::printf("  t=%8lld (%7.2fs)  mitigation applied: policy=%s%s\n",
                  tick, clock.ToSeconds(tick),
                  StrOr(o, "channel", "?").c_str(),
                  StrOr(o, "violation", "false") == "true"
                      ? " (fallback: attacker unattributed)"
                      : "");
    }
  }

  if (!alarm_timeline.empty()) {
    // Event lines precede audit lines in the stream; interleave by tick.
    std::stable_sort(alarm_timeline.begin(), alarm_timeline.end(),
                     [](const JsonObject& a, const JsonObject& b) {
                       return NumOr(a, "tick", -1) < NumOr(b, "tick", -1);
                     });
    std::printf("\nalarm timeline\n");
    for (const auto& o : alarm_timeline) {
      const auto tick = static_cast<long long>(NumOr(o, "tick", -1));
      std::printf("  t=%8lld (%7.2fs)  %-14s %s", tick,
                  clock.ToSeconds(tick), StrOr(o, "event", "?").c_str(),
                  StrOr(o, "detector", "?").c_str());
      const auto owner = o.find("owner");
      if (owner != o.end()) std::printf(" owner=%s", owner->second.c_str());
      std::printf("\n");
    }
  } else {
    std::printf("\nalarm timeline: (no alarm events)\n");
  }

  if (!forensic_reports.empty()) {
    // Incident forensics: whom the hardware attribution ledger convicts for
    // each alarm, and whether the KStest identification sweep concurred.
    // One line per report; --forensics adds the per-suspect evidence rows.
    std::printf("\nforensic incident reports\n");
    for (const auto& r : forensic_reports) {
      const auto tick = static_cast<long long>(NumOr(r, "alarm_tick", -1));
      std::printf("  t=%8lld (%7.2fs)  ", tick, clock.ToSeconds(tick));
      if (StrOr(r, "attributed", "false") == "true") {
        std::printf("prime suspect VM %lld",
                    static_cast<long long>(NumOr(r, "prime_suspect", 0)));
      } else {
        std::printf("unattributed");
      }
      std::printf("  evidence t=%lld..%lld",
                  static_cast<long long>(NumOr(r, "window_start", -1)),
                  static_cast<long long>(NumOr(r, "window_end", -1)));
      const auto ks = static_cast<long long>(NumOr(r, "kstest_culprit", 0));
      if (ks != 0) {
        std::printf("  kstest=VM %lld (%s)", ks,
                    StrOr(r, "kstest_agrees", "false") == "true"
                        ? "agrees"
                        : "DISAGREES");
      }
      std::printf("\n");
      if (dump_forensics) {
        for (const auto& s : ParseObjectArray(StrOr(r, "suspects", "[]"))) {
          std::printf("    VM %-4lld score=%.3f evictions=%llu "
                      "bus_delay=%llu occupancy=%llu\n",
                      static_cast<long long>(NumOr(s, "vm", 0)),
                      NumOr(s, "score", 0.0),
                      static_cast<unsigned long long>(
                          NumOr(s, "evictions", 0)),
                      static_cast<unsigned long long>(
                          NumOr(s, "bus_delay", 0)),
                      static_cast<unsigned long long>(
                          NumOr(s, "occupancy", 0)));
        }
      }
    }
  }

  if (!span_lines.empty()) {
    // The profiler's aggregated span tree, indented by nesting depth.
    std::printf("\nprofiler span tree");
    if (profile_header) {
      std::printf(" (clock=%s, %lld slices retained, %lld dropped)",
                  StrOr(*profile_header, "clock", "?").c_str(),
                  static_cast<long long>(
                      NumOr(*profile_header, "slices_retained", 0)),
                  static_cast<long long>(
                      NumOr(*profile_header, "slices_dropped", 0)));
    }
    std::printf("\n  %-44s %10s %14s %14s\n", "span", "count", "total",
                "self");
    for (const auto& s : span_lines) {
      JsonObject o;
      if (!ParseLine(s, o)) continue;
      const auto depth = static_cast<int>(NumOr(o, "depth", 0));
      const std::string indent(static_cast<std::size_t>(
                                   std::max(0, std::min(depth, 16))) * 2,
                               ' ');
      std::printf("  %-44s %10lld %14.6g %14.6g\n",
                  (indent + StrOr(o, "name", "?")).c_str(),
                  static_cast<long long>(NumOr(o, "count", 0)),
                  NumOr(o, "total", 0.0), NumOr(o, "self", 0.0));
    }
  }

  if (!metric_lines.empty()) {
    std::printf("\nmetrics snapshot\n");
    for (const auto& m : metric_lines) {
      JsonObject o;
      if (!ParseLine(m, o)) continue;
      const std::string kind = StrOr(o, "metric", "?");
      if (kind == "histogram") {
        std::printf("  %-36s count=%lld sum=%.6g",
                    StrOr(o, "name", "?").c_str(),
                    static_cast<long long>(NumOr(o, "count", 0)),
                    NumOr(o, "sum", 0.0));
        // Interpolated quantiles from the serialized buckets — same
        // estimator the in-process Histogram::Quantile uses. Only printed
        // when the arrays are well formed (a damaged line degrades to the
        // raw bucket dump, never a crash).
        const auto bounds = ParseNumberArray(StrOr(o, "bounds", ""));
        const auto raw_buckets = ParseNumberArray(StrOr(o, "buckets", ""));
        if (!bounds.empty() && raw_buckets.size() == bounds.size() + 1) {
          std::vector<std::uint64_t> buckets;
          buckets.reserve(raw_buckets.size());
          for (double b : raw_buckets) {
            buckets.push_back(
                b < 0.0 ? 0 : static_cast<std::uint64_t>(b));
          }
          const double p50 =
              sds::telemetry::QuantileFromBuckets(bounds, buckets, 0.50);
          const double p95 =
              sds::telemetry::QuantileFromBuckets(bounds, buckets, 0.95);
          const double p99 =
              sds::telemetry::QuantileFromBuckets(bounds, buckets, 0.99);
          std::printf(" p50=%.6g p95=%.6g p99=%.6g", p50, p95, p99);
        } else {
          std::printf(" buckets=%s", StrOr(o, "buckets", "[]").c_str());
        }
        std::printf("\n");
      } else {
        std::printf("  %-36s %.6g\n", StrOr(o, "name", "?").c_str(),
                    NumOr(o, "value", 0.0));
      }
    }
  }

  if (svc_ref || !svc_recoveries.empty()) {
    // Streaming-service WAL / recovery / shed accounting. Any recovery row
    // that is not bit-identical means the crash-consistency pin broke.
    std::printf("\nstreaming service accounting\n");
    if (svc_ref) {
      std::printf("  reference: events=%llu admitted=%llu coalesced=%llu "
                  "shed=%llu shed_rate=%.3f\n",
                  static_cast<unsigned long long>(NumOr(*svc_ref, "events", 0)),
                  static_cast<unsigned long long>(
                      NumOr(*svc_ref, "admitted", 0)),
                  static_cast<unsigned long long>(
                      NumOr(*svc_ref, "coalesced", 0)),
                  static_cast<unsigned long long>(NumOr(*svc_ref, "shed", 0)),
                  NumOr(*svc_ref, "shed_rate", 0.0));
      std::printf("  wal_appends=%llu checkpoints=%llu quarantines=%llu "
                  "alarms=%llu decisions=%llu\n",
                  static_cast<unsigned long long>(
                      NumOr(*svc_ref, "wal_appends", 0)),
                  static_cast<unsigned long long>(
                      NumOr(*svc_ref, "checkpoints", 0)),
                  static_cast<unsigned long long>(
                      NumOr(*svc_ref, "quarantines", 0)),
                  static_cast<unsigned long long>(NumOr(*svc_ref, "alarms", 0)),
                  static_cast<unsigned long long>(
                      NumOr(*svc_ref, "decisions", 0)));
    }
    if (!svc_recoveries.empty()) {
      std::uint64_t identical = 0, fired = 0;
      for (const auto& r : svc_recoveries) {
        if (NumOr(r, "bit_identical", 0) != 0.0) ++identical;
        if (NumOr(r, "fired", 0) != 0.0) ++fired;
      }
      std::printf("  recovery: crash_points=%zu fired=%llu "
                  "bit_identical=%llu/%zu%s\n",
                  svc_recoveries.size(),
                  static_cast<unsigned long long>(fired),
                  static_cast<unsigned long long>(identical),
                  svc_recoveries.size(),
                  identical == svc_recoveries.size() ? ""
                                                     : "  ** PIN BROKEN **");
      if (dump_svc) {
        std::printf("  %-24s %8s %6s %6s %10s %9s %8s %14s %9s\n", "kind",
                    "op", "bytes", "fired", "crash-tick", "replayed",
                    "deduped", "wal-stop", "identical");
        for (const auto& r : svc_recoveries) {
          std::printf("  %-24s %8llu %6.2f %6s %10lld %9llu %8llu %14s %9s\n",
                      StrOr(r, "kind", "?").c_str(),
                      static_cast<unsigned long long>(NumOr(r, "op_index", 0)),
                      NumOr(r, "byte_fraction", 0.0),
                      NumOr(r, "fired", 0) != 0.0 ? "yes" : "NO",
                      static_cast<long long>(NumOr(r, "crash_tick", -1)),
                      static_cast<unsigned long long>(NumOr(r, "replayed", 0)),
                      static_cast<unsigned long long>(NumOr(r, "deduped", 0)),
                      StrOr(r, "wal_stop", "?").c_str(),
                      NumOr(r, "bit_identical", 0) != 0.0 ? "yes" : "NO");
        }
      }
    }
  }

  if (lint_stats) {
    // Static-analysis run summary (sdslint --stats --stats-out). cache_hits
    // vs parsed shows whether the warm incremental cache actually held; any
    // stale baseline entry means .sdslint-baseline needs --update-baseline.
    const auto& s = *lint_stats;
    std::printf("\nlint analysis (schema_version=%lld)\n",
                static_cast<long long>(NumOr(s, "schema_version", 0)));
    std::printf("  scanned=%llu files (cache_hits=%llu parsed=%llu)  "
                "functions=%llu call_edges=%llu\n",
                static_cast<unsigned long long>(NumOr(s, "files_scanned", 0)),
                static_cast<unsigned long long>(NumOr(s, "cache_hits", 0)),
                static_cast<unsigned long long>(NumOr(s, "parsed", 0)),
                static_cast<unsigned long long>(NumOr(s, "functions", 0)),
                static_cast<unsigned long long>(NumOr(s, "call_edges", 0)));
    std::printf("  taint: seeds=%llu tainted_functions=%llu\n",
                static_cast<unsigned long long>(NumOr(s, "taint_seeds", 0)),
                static_cast<unsigned long long>(
                    NumOr(s, "tainted_functions", 0)));
    const auto stale =
        static_cast<unsigned long long>(NumOr(s, "stale_baseline_entries", 0));
    std::printf("  findings: diagnostics=%llu baselined=%llu "
                "stale_baseline_entries=%llu suppressions=%llu%s\n",
                static_cast<unsigned long long>(NumOr(s, "diagnostics", 0)),
                static_cast<unsigned long long>(NumOr(s, "baselined", 0)),
                stale,
                static_cast<unsigned long long>(NumOr(s, "suppressions", 0)),
                stale != 0 ? "  ** STALE BASELINE **" : "");
    if (dump_lint) {
      JsonObject hits;
      if (ParseLine(StrOr(s, "rule_hits", "{}"), hits) && !hits.empty()) {
        std::printf("  %-40s %10s\n", "rule", "hits");
        for (const auto& [rule, count] : hits) {
          std::printf("  %-40s %10s\n", rule.c_str(), count.c_str());
        }
      } else {
        std::printf("  (no per-rule hits recorded)\n");
      }
    }
  }

  if (!hostchaos_runs.empty()) {
    // Host-chaos runs (DESIGN.md §17): per run, the host up/down timeline,
    // evacuation convergence, the warm-vs-cold handoff ledger and a
    // blind-window histogram. The bench writes the warm and cold replay of
    // the same cell back to back, so the two runs are directly comparable.
    std::printf("\nhost-chaos runs\n");
    for (std::size_t run = 0; run < hostchaos_runs.size(); ++run) {
      const HostChaosRun& hc = hostchaos_runs[run];
      std::printf("  run %zu: app=%s hosts=%lld handoff=%s attack_start=%lld "
                  "horizon=%lld\n",
                  run, StrOr(hc.header, "app", "?").c_str(),
                  static_cast<long long>(NumOr(hc.header, "hosts", 0)),
                  StrOr(hc.header, "warm_handoff", "?") == "true" ? "warm"
                                                                  : "cold",
                  static_cast<long long>(NumOr(hc.header, "attack_start", -1)),
                  static_cast<long long>(NumOr(hc.header, "horizon", -1)));

      // Host timeline: transition count and per-host down entries.
      std::map<long long, std::uint64_t> downs_by_host;
      for (const auto& t : hc.host_states) {
        const std::string to = StrOr(t, "to", "?");
        if (to == "down" || to == "dead") {
          ++downs_by_host[static_cast<long long>(NumOr(t, "host", -1))];
        }
      }
      std::printf("    host timeline: %zu transitions", hc.host_states.size());
      for (const auto& [host, downs] : downs_by_host) {
        std::printf("  host%lld: %llu down", host,
                    static_cast<unsigned long long>(downs));
      }
      std::printf("\n");
      if (dump_hostchaos) {
        for (const auto& t : hc.host_states) {
          const auto tick = static_cast<long long>(NumOr(t, "tick", -1));
          std::printf("      t=%8lld (%7.2fs)  host %lld  %s -> %s\n", tick,
                      clock.ToSeconds(tick),
                      static_cast<long long>(NumOr(t, "host", -1)),
                      StrOr(t, "from", "?").c_str(),
                      StrOr(t, "to", "?").c_str());
        }
      }

      if (!hc.evacuations.empty()) {
        std::map<std::string, std::uint64_t> outcomes;
        std::uint64_t attempts = 0, duration = 0;
        for (const auto& e : hc.evacuations) {
          ++outcomes[StrOr(e, "outcome", "?")];
          attempts += static_cast<std::uint64_t>(NumOr(e, "attempts", 0));
          duration += static_cast<std::uint64_t>(
              NumOr(e, "finished", 0) - NumOr(e, "tick", 0));
        }
        std::printf("    evacuations: %zu", hc.evacuations.size());
        for (const auto& [outcome, count] : outcomes) {
          std::printf("  %s=%llu", outcome.c_str(),
                      static_cast<unsigned long long>(count));
        }
        std::printf("  mean_attempts=%.1f mean_ticks=%.1f\n",
                    static_cast<double>(attempts) /
                        static_cast<double>(hc.evacuations.size()),
                    static_cast<double>(duration) /
                        static_cast<double>(hc.evacuations.size()));
        if (dump_hostchaos) {
          for (const auto& e : hc.evacuations) {
            const auto tick = static_cast<long long>(NumOr(e, "tick", -1));
            std::printf("      t=%8lld (%7.2fs)  VM %lld  host %lld -> %lld  "
                        "attempts=%lld  %s\n",
                        tick, clock.ToSeconds(tick),
                        static_cast<long long>(NumOr(e, "vm", -1)),
                        static_cast<long long>(NumOr(e, "from_host", -1)),
                        static_cast<long long>(NumOr(e, "to_host", -1)),
                        static_cast<long long>(NumOr(e, "attempts", 0)),
                        StrOr(e, "outcome", "?").c_str());
          }
        }
      }

      if (!hc.handoffs.empty()) {
        std::uint64_t warm = 0;
        std::uint64_t blind_hist[kBlindBuckets] = {};
        for (const auto& h : hc.handoffs) {
          if (StrOr(h, "warm", "false") == "true") ++warm;
          ++blind_hist[BlindBucket(
              static_cast<long long>(NumOr(h, "blind_ticks", -1)))];
        }
        std::printf("    handoffs: %zu (warm=%llu cold=%llu)  blind-window:",
                    hc.handoffs.size(),
                    static_cast<unsigned long long>(warm),
                    static_cast<unsigned long long>(hc.handoffs.size() -
                                                    warm));
        for (std::size_t b = 0; b < kBlindBuckets; ++b) {
          if (blind_hist[b] != 0) {
            std::printf(" [%s]=%llu", kBlindBucketNames[b],
                        static_cast<unsigned long long>(blind_hist[b]));
          }
        }
        std::printf("\n");
        if (dump_hostchaos) {
          for (const auto& h : hc.handoffs) {
            const auto tick = static_cast<long long>(NumOr(h, "tick", -1));
            std::printf("      t=%8lld (%7.2fs)  VM %lld  host %lld -> %lld  "
                        "%s %s %s  blind=%lld\n",
                        tick, clock.ToSeconds(tick),
                        static_cast<long long>(NumOr(h, "vm", -1)),
                        static_cast<long long>(NumOr(h, "from_host", -1)),
                        static_cast<long long>(NumOr(h, "to_host", -1)),
                        StrOr(h, "forced", "false") == "true" ? "forced"
                                                              : "evac",
                        StrOr(h, "warm", "false") == "true" ? "warm" : "cold",
                        StrOr(h, "status", "?").c_str(),
                        static_cast<long long>(NumOr(h, "blind_ticks", -1)));
          }
        }
      }
    }
  }

  if (!event_dump.empty()) {
    std::printf("\ndumped lines\n");
    for (const auto& l : event_dump) std::printf("  %s\n", l.c_str());
  }
  return 0;
}
