// svcd: the crash-consistent streaming detection service, file-backed.
//
// The library half (src/svc) is exercised in-memory by tests and the chaos
// harness; this binary is the operational half: a svc::FileStore rooted at
// --state_dir persists the WAL and the two-slot checkpoint across process
// restarts, so killing svcd mid-ingest and re-running it over the same feed
// reproduces the exact alarm sequence an uninterrupted run would have
// produced (the recovery invariant, DESIGN.md §14).
//
//   svcd --state_dir=DIR --feed=FILE    recover from DIR (if state exists),
//                                       ingest the feed JSONL, quiesce,
//                                       checkpoint, print the report
//   svcd --state_dir=DIR --status       recover + report only, no ingest
//   svcd --gen_feed=FILE                write a deterministic demo feed
//        [--ticks=N --tenants=K --seed=S]
//
// Feed lines are svc_sample JSONL (svc/sample.h); the transport offset is
// the 1-based line number, so re-feeding the same file after a crash is
// exactly the at-least-once redelivery the service dedupes. Lines that do
// not parse are offered down the malformed rung, never fatal.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/types.h"
#include "svc/sample.h"
#include "svc/service.h"
#include "svc/store.h"

namespace {

using namespace sds;

// SplitMix64 — same deterministic noise idiom as the eval sweeps.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double Draw01(std::uint64_t seed, std::uint64_t tenant, Tick tick,
              std::uint64_t salt) {
  std::uint64_t h = Mix(seed ^ (salt << 48));
  h = Mix(h ^ (tenant << 24));
  h = Mix(h ^ static_cast<std::uint64_t>(tick));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Small-window detector config so the demo feed alarms within a few hundred
// ticks; the library defaults (window 200, profile 600) are sized for
// paper-scale traces. With h_c cut to 4 the paper's k=1.125 band is far too
// tight (Chebyshev false-alarm bound (1/k^2)^4 ~ 0.39 per check), so widen
// the band instead: the demo attack shifts the MA by ~100 profile sigmas,
// so a wide k costs no detection delay while keeping clean tenants quiet.
svc::SvcConfig DemoConfig() {
  svc::SvcConfig config;
  config.pipeline.mode = svc::PipelineMode::kSds;
  config.pipeline.det.window = 40;
  config.pipeline.det.step = 10;
  config.pipeline.det.h_c = 4;
  config.pipeline.det.boundary_k = 25.0;
  config.pipeline.profile_len = 120;
  return config;
}

int GenerateFeed(const std::string& path, std::uint32_t tenants, Tick ticks,
                 std::uint64_t seed) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "svcd: cannot write " << path << "\n";
    return 1;
  }
  const Tick attack_start = ticks / 2;
  std::uint64_t lines = 0;
  for (Tick t = 0; t < ticks; ++t) {
    for (std::uint32_t tenant = 0; tenant < tenants; ++tenant) {
      svc::SvcSample s;
      s.tenant = tenant;
      s.tick = t;
      // Tenant 0 is the victim: its access stream shifts hard mid-feed, the
      // signature the SDS boundary analyzer is built to catch. Same counter
      // model as the eval chaos feed.
      const bool attacked = tenant == 0 && t >= attack_start;
      double a = 2200.0 + 600.0 * Draw01(seed, tenant, t, 1);
      if (attacked) a += 2600.0 + 400.0 * Draw01(seed, tenant, t, 2);
      const double ratio = 0.25 + 0.10 * Draw01(seed, tenant, t, 3);
      s.access_num = static_cast<std::uint64_t>(a);
      s.miss_num = static_cast<std::uint64_t>(a * ratio);
      svc::WriteSampleLine(out, s);
      ++lines;
    }
  }
  std::cout << "wrote " << lines << " svc_sample lines to " << path
            << " (tenants=" << tenants << " ticks=" << ticks
            << " seed=" << seed << ", tenant 0 attacked from tick "
            << attack_start << ")\n";
  return 0;
}

void PrintReport(const svc::DetectionService& service, bool recovered) {
  const svc::SvcAccounting& a = service.accounting();
  const svc::SvcIncarnation& inc = service.incarnation();
  std::cout << "\nstate: " << (recovered ? "recovered" : "cold start")
            << " tick=" << service.current_tick()
            << " watermark=" << service.transport_watermark()
            << " tenants=" << service.tenants().size()
            << " queue=" << service.queue_depth() << "\n";
  if (recovered) {
    std::cout << "  recovery: from_checkpoint="
              << (inc.recovered_from_checkpoint ? "yes" : "no")
              << " replayed=" << inc.recovery_replayed_records
              << " skipped=" << inc.recovery_skipped_records
              << " wal_bytes=" << inc.recovery_wal_valid_bytes
              << " wal_stop=" << svc::WalScanStopName(inc.recovery_wal_stop)
              << "\n";
  }
  std::cout << "  this run: deduped=" << inc.redelivered_deduped
            << " wal_appends=" << inc.wal_frames_appended
            << " checkpoints=" << inc.checkpoints_written << "\n";
  std::cout << "accounting: offered=" << a.offered
            << " admitted=" << a.admitted << " coalesced=" << a.coalesced
            << " shed=" << a.shed << "\n  rejected: malformed="
            << a.rejected_malformed << " insane=" << a.rejected_insane
            << " future=" << a.rejected_future
            << " stale=" << a.rejected_stale
            << " quarantined=" << a.rejected_quarantined
            << " (quarantines started: " << a.quarantines_started << ")\n"
            << "  ticks=" << a.ticks_processed
            << " drained=" << a.samples_drained << "\n";
  const auto& evictions = service.tenants().stats();
  std::cout << "tenant table: created=" << evictions.created
            << " evictions=" << evictions.evictions
            << " readmissions=" << evictions.readmissions << "\n";
  if (service.alarm_log().empty()) {
    std::cout << "alarms: none\n";
  } else {
    std::cout << "alarms (" << service.alarm_log().size() << "):\n";
    for (const svc::AlarmEvent& e : service.alarm_log()) {
      std::cout << "  t=" << e.tick << " tenant=" << e.tenant << " RAISED\n";
    }
  }
  for (const svc::DecisionEvent& e : service.decision_log()) {
    std::cout << "  decision edge: t=" << e.tick << " tenant=" << e.tenant
              << " active=" << (e.active ? "yes" : "no") << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  sds::Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"state_dir", "durable state directory (WAL + checkpoint)"},
           {"feed", "svc_sample JSONL feed to ingest"},
           {"status", "recover and report without ingesting", true},
           {"gen_feed", "write a deterministic demo feed here and exit"},
           {"ticks", "demo feed length in ticks (default 400)"},
           {"tenants", "demo feed tenant count (default 4)"},
           {"seed", "demo feed seed (default 7)"}})) {
    return flags.help_requested() ? 0 : 1;
  }

  const std::string gen_feed = flags.GetString("gen_feed", "");
  if (!gen_feed.empty()) {
    return GenerateFeed(gen_feed,
                        static_cast<std::uint32_t>(flags.GetInt("tenants", 4)),
                        static_cast<Tick>(flags.GetInt("ticks", 400)),
                        static_cast<std::uint64_t>(flags.GetInt("seed", 7)));
  }

  const std::string state_dir = flags.GetString("state_dir", "");
  if (state_dir.empty()) {
    std::cerr << "usage: svcd --state_dir=DIR (--feed=FILE | --status)\n"
                 "       svcd --gen_feed=FILE [--ticks=N --tenants=K "
                 "--seed=S]\n";
    return 1;
  }

  svc::FileStore store(state_dir);
  if (store.crashed()) {
    std::cerr << "svcd: cannot open state dir " << state_dir << "\n";
    return 1;
  }
  svc::DetectionService service(DemoConfig(), &store);
  const bool recovered = service.Recover();
  std::cout << "svcd: state_dir=" << state_dir << " ("
            << (recovered ? "recovered durable state" : "no durable state")
            << ")\n";

  const std::string feed_path = flags.GetString("feed", "");
  if (!flags.GetBool("status", false) && feed_path.empty()) {
    std::cerr << "svcd: nothing to do (pass --feed=FILE or --status)\n";
    return 1;
  }

  if (!feed_path.empty()) {
    std::ifstream feed(feed_path);
    if (!feed) {
      std::cerr << "svcd: cannot open feed " << feed_path << "\n";
      return 1;
    }
    std::string line;
    std::uint64_t offset = 0;  // 1-based line number = transport offset
    bool alive = true;
    while (alive && std::getline(feed, line)) {
      ++offset;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      std::optional<svc::SvcSample> sample = svc::ParseSampleLine(line);
      if (!sample) {
        alive = service.OfferMalformed(offset);
        continue;
      }
      sample->offset = offset;
      if (sample->tick > service.current_tick()) {
        alive = service.AdvanceTick(sample->tick);
        if (!alive) break;
      }
      alive = service.Offer(*sample);
    }
    // Quiesce: drain the queue, then make the final state durable.
    while (alive && service.queue_depth() > 0) {
      alive = service.AdvanceTick(service.current_tick() + 1);
    }
    if (alive) alive = service.Checkpoint();
    if (!alive) {
      std::cerr << "svcd: stable store failed mid-ingest; durable state is "
                   "intact up to the last full write — re-run to recover\n";
      PrintReport(service, recovered);
      return 1;
    }
    std::cout << "ingested " << offset << " feed lines from " << feed_path
              << "\n";
  }

  PrintReport(service, recovered);
  return 0;
}
