#include "sdslint/source.h"

#include <cctype>
#include <fstream>
#include <iterator>

namespace sdslint {
namespace {

bool IsWord(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Blanks comments and string/char literal bodies out of `raw` line by line,
// carrying block-comment state across lines. Literal bodies are collected per
// line into `strings` so the %p rule can look only inside format strings.
// Line/token analysis does not need raw-string or trigraph fidelity; the one
// R"( in the tree is handled well enough by the '"' state machine.
void StripFile(SourceText& f) {
  bool in_block = false;
  f.code.reserve(f.raw.size());
  f.strings.reserve(f.raw.size());
  for (const std::string& line : f.raw) {
    std::string code;
    code.reserve(line.size());
    std::string lits;
    bool in_string = false;
    bool in_char = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      if (in_block) {
        if (c == '*' && next == '/') {
          in_block = false;
          ++i;
        }
        code.push_back(' ');
        continue;
      }
      if (in_string || in_char) {
        const char quote = in_string ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          if (in_string) lits.push_back(next);
          code.append(2, ' ');
          ++i;
          continue;
        }
        if (c == quote) {
          in_string = in_char = false;
          code.push_back(c);
        } else {
          if (in_string) lits.push_back(c);
          code.push_back(' ');
        }
        continue;
      }
      if (c == '/' && next == '/') break;  // line comment: drop the rest
      if (c == '/' && next == '*') {
        in_block = true;
        code.append(2, ' ');
        ++i;
        continue;
      }
      if (c == '"') {
        in_string = true;
        code.push_back(c);
        continue;
      }
      if (c == '\'') {
        in_char = true;
        code.push_back(c);
        continue;
      }
      code.push_back(c);
    }
    f.code.push_back(std::move(code));
    f.strings.push_back(std::move(lits));
  }
}

}  // namespace

bool LoadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

void BuildSourceText(const std::string& path, const std::string& bytes,
                     SourceText* out) {
  out->path = path;
  out->raw.clear();
  out->code.clear();
  out->strings.clear();
  std::string line;
  for (std::size_t i = 0; i <= bytes.size(); ++i) {
    if (i == bytes.size()) {
      if (!line.empty()) out->raw.push_back(std::move(line));
      break;
    }
    if (bytes[i] == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      out->raw.push_back(std::move(line));
      line.clear();
    } else {
      line.push_back(bytes[i]);
    }
  }
  StripFile(*out);
}

bool LoadSource(const std::string& path, SourceText* out) {
  std::string bytes;
  if (!LoadFileBytes(path, &bytes)) return false;
  BuildSourceText(path, bytes, out);
  return true;
}

std::vector<std::string> SplitAllowRules(const std::string& raw) {
  std::vector<std::string> rules;
  std::string cur;
  for (char c : raw + ",") {
    if (c == ',' || c == ' ' || c == '\t') {
      if (!cur.empty()) rules.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  return rules;
}

std::string Trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::size_t FindToken(const std::string& line, const std::string& token,
                      std::size_t from) {
  for (std::size_t p = line.find(token, from); p != std::string::npos;
       p = line.find(token, p + 1)) {
    const bool left_ok = p == 0 || !IsWord(line[p - 1]);
    const std::size_t after = p + token.size();
    const bool right_ok = after >= line.size() || !IsWord(line[after]);
    if (left_ok && right_ok) return p;
  }
  return std::string::npos;
}

bool HasToken(const std::string& line, const std::string& token) {
  return FindToken(line, token) != std::string::npos;
}

void ParseIncludes(const SourceText& f, std::vector<IncludeDirective>* out) {
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    std::string t = Trimmed(f.raw[i]);
    if (t.empty() || t[0] != '#') continue;
    std::size_t p = t.find_first_not_of(" \t", 1);
    if (p == std::string::npos || t.compare(p, 7, "include") != 0) continue;
    p = t.find_first_of("\"<", p + 7);
    if (p == std::string::npos) continue;
    const bool angle = t[p] == '<';
    const char close = angle ? '>' : '"';
    const std::size_t end = t.find(close, p + 1);
    if (end == std::string::npos) continue;
    out->push_back(
        {static_cast<int>(i) + 1, t.substr(p + 1, end - p - 1), angle});
  }
}

void ParseAllows(const SourceText& f, std::vector<AllowComment>* out) {
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    const std::string& line = f.raw[i];
    std::size_t p = line.find("sdslint:");
    if (p == std::string::npos) continue;
    std::size_t q = line.find_first_not_of(" \t", p + 8);
    if (q == std::string::npos || line.compare(q, 5, "allow") != 0) continue;
    std::size_t open = line.find('(', q + 5);
    if (open == std::string::npos) continue;
    std::size_t close = line.find(')', open);
    if (close == std::string::npos) continue;
    AllowComment a;
    a.comment_line = static_cast<int>(i) + 1;
    a.raw_rules = line.substr(open + 1, close - open - 1);
    a.rules = SplitAllowRules(a.raw_rules);
    const bool comment_only = Trimmed(f.code[i]).empty();
    a.target_line = comment_only ? a.comment_line + 1 : a.comment_line;
    out->push_back(std::move(a));
  }
}

}  // namespace sdslint
