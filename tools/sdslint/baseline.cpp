#include "sdslint/baseline.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sdslint/model.h"

namespace sdslint {
namespace {

namespace fs = std::filesystem;

// Root-relative generic path when `path` lives under `root`, else unchanged.
// Keeps fingerprints identical between a repo-root run and an absolute-path
// run (the test harness uses absolute paths, CI uses relative ones).
std::string Relativize(const std::string& path, const std::string& root) {
  if (root.empty()) return path;
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) return path;
  const std::string g = rel.generic_string();
  if (g.rfind("..", 0) == 0) return path;  // outside root
  return g;
}

std::string StripDigits(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

}  // namespace

std::string BaselineFingerprint(const Diagnostic& d, const std::string& root) {
  const std::string key =
      d.rule + "|" + Relativize(d.file, root) + "|" + StripDigits(d.message);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(Fnv1a64(key)));
  return buf;
}

bool LoadBaseline(const std::string& path,
                  std::map<std::string, std::string>* entries) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find(' ');
    const std::string fp = sp == std::string::npos ? line : line.substr(0, sp);
    if (fp.size() == 16) entries->emplace(fp, line);
  }
  return true;
}

bool WriteBaseline(const std::string& path, const Result& result,
                   const std::string& include_root) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# sdslint baseline: accepted findings, one per line as\n"
         "#   <fingerprint> <rule> <file>:<line> <message>\n"
         "# The fingerprint (rule | root-relative file | digit-stripped\n"
         "# message) is what matching uses; the rest is context. Regenerate\n"
         "# with `sdslint --update-baseline ...`; prefer fixing findings or\n"
         "# adding a reviewed allow(...) comment over baselining them.\n";
  // Both live and already-baselined findings survive an update, so
  // refreshing the file never silently drops accepted entries.
  for (const std::vector<Diagnostic>* list :
       {&result.diagnostics, &result.baselined}) {
    for (const Diagnostic& d : *list) {
      out << BaselineFingerprint(d, include_root) << ' ' << d.rule << ' '
          << Relativize(d.file, include_root) << ':' << d.line << ' '
          << d.message << '\n';
    }
  }
  return static_cast<bool>(out);
}

}  // namespace sdslint
