// SARIF 2.1.0 and --stats JSON emitters (the legacy text/--json formats live
// in lint.cpp and are frozen byte-for-byte).
#include <filesystem>
#include <set>
#include <string>
#include <system_error>

#include "sdslint/json.h"
#include "sdslint/lint.h"

namespace sdslint {
namespace {

namespace fs = std::filesystem;

// GitHub code scanning wants repo-relative, forward-slash URIs.
std::string SarifUri(const std::string& path, const std::string& root) {
  if (!root.empty()) {
    std::error_code ec;
    const fs::path rel = fs::relative(path, root, ec);
    if (!ec && !rel.empty()) {
      const std::string g = rel.generic_string();
      if (g.rfind("..", 0) != 0) return g;
    }
  }
  return fs::path(path).generic_string();
}

}  // namespace

std::string ToSarif(const Result& result, const std::string& root) {
  std::set<std::string> rule_ids;
  for (const Diagnostic& d : result.diagnostics) rule_ids.insert(d.rule);

  std::string out =
      "{\"version\":\"2.1.0\","
      "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"sdslint\","
      "\"informationUri\":\"DESIGN.md\",\"rules\":[";
  bool first = true;
  for (const std::string& id : rule_ids) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":\"" + JsonEscape(id) + "\"}";
  }
  out += "]}},\"results\":[";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    if (i != 0) out += ",";
    out += "{\"ruleId\":\"" + JsonEscape(d.rule) +
           "\",\"level\":\"error\",\"message\":{\"text\":\"" +
           JsonEscape(d.message) +
           "\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":"
           "{\"uri\":\"" +
           JsonEscape(SarifUri(d.file, root)) +
           "\"},\"region\":{\"startLine\":" + std::to_string(d.line) +
           "}}}]}";
  }
  out += "]}]}";
  return out;
}

std::string StatsJson(const Result& result) {
  const Stats& s = result.stats;
  std::string out = "{\"files_scanned\":" + std::to_string(s.files_scanned) +
                    ",\"cache_hits\":" + std::to_string(s.cache_hits) +
                    ",\"parsed\":" + std::to_string(s.parsed) +
                    ",\"functions\":" + std::to_string(s.functions) +
                    ",\"call_edges\":" + std::to_string(s.call_edges) +
                    ",\"taint_seeds\":" + std::to_string(s.taint_seeds) +
                    ",\"tainted_functions\":" +
                    std::to_string(s.tainted_functions) +
                    ",\"diagnostics\":" +
                    std::to_string(result.diagnostics.size()) +
                    ",\"baselined\":" + std::to_string(result.baselined.size()) +
                    ",\"stale_baseline_entries\":" +
                    std::to_string(result.stale_baseline_entries.size()) +
                    ",\"suppressions\":" +
                    std::to_string(result.suppressions.size()) +
                    ",\"rule_hits\":{";
  bool first = true;
  for (const auto& [rule, count] : s.rule_hits) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(rule) + "\":" + std::to_string(count);
  }
  out += "}}";
  return out;
}

}  // namespace sdslint
