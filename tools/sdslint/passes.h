// Shared context handed by the orchestrator (lint.cpp) to the cross-TU
// passes: pass 2/3 (graph.cpp: call-graph linkage + determinism taint) and
// pass 4 (conc.cpp: concurrency discipline). The passes never touch raw text
// except conc.cpp's lazy body re-reads; everything else flows through the
// pass-1 FileSummary IR so the analysis cache stays authoritative.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sdslint/lint.h"
#include "sdslint/model.h"

namespace sdslint {

struct PassContext {
  // Scan-set summaries, sorted by path. Mutable: emission flips allow.used.
  std::vector<FileSummary*> files;
  // Resolves a quoted include target ("detect/params.h") against
  // <include_root>/src, loading + summarizing on demand; nullptr when the
  // target does not exist. May return files outside the scan set — they
  // contribute symbols and sinks but never receive diagnostics.
  std::function<FileSummary*(const std::string& target)> resolve;
  // Central emission: builtin-allow and allow(...) handling, rule-hit
  // accounting. The only way a pass may report.
  std::function<void(FileSummary&, int line, const std::string& rule,
                     std::string message)>
      emit;
  // True when a would-be diagnostic at (file, line, rule) is silenced by an
  // allow(...) comment or a builtin allow — used to keep suppressed sinks
  // from seeding taint WITHOUT marking the suppression as used.
  std::function<bool(const FileSummary&, int line, const std::string& rule)>
      silenced;
  Stats* stats = nullptr;
};

// Pass 2 + 3: link the cross-TU call graph over each file's quoted-include
// closure, seed determinism sinks, propagate taint backward, and emit
// det-taint at cross-file call edges out of deterministic layers plus the
// cross-file det-unordered-iter extension.
void RunGraphPasses(PassContext& ctx);

// Pass 4: conc-guarded-by / conc-shard-owned / conc-lock-order from the
// SDS_GUARDED_BY / SDS_SHARD_OWNED / SDS_ASSERT_HELD annotations.
void RunConcPass(PassContext& ctx);

}  // namespace sdslint
