// Incremental on-disk analysis cache: pass-1 FileSummary records keyed by
// raw-content hash. Only pass 1 is cached — passes 2-4 always re-link from
// the summaries, so cross-TU facts (call graph, taint, closures) can never
// go stale behind an unchanged file. A format bump (kSummaryFormatVersion)
// or any parse hiccup simply discards the entry; the cache is best-effort
// and never authoritative.
#pragma once

#include <cstdint>
#include <string>

#include "sdslint/model.h"

namespace sdslint {

// Loads the cached summary for `path` if one exists and its recorded
// content hash matches `content_hash`. Returns false on miss, version skew,
// hash mismatch, or any decode error.
bool LoadCachedSummary(const std::string& cache_dir, const std::string& path,
                       std::uint64_t content_hash, FileSummary* out);

// Writes `summary` (whose content_hash must already be set) into the cache.
// Best-effort: returns false when the directory or file cannot be written.
bool StoreCachedSummary(const std::string& cache_dir,
                        const FileSummary& summary);

}  // namespace sdslint
