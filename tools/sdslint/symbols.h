// Pass 1: distill one translation unit into a FileSummary (model.h).
//
// Combines the legacy line/token scans (sink tokens, unordered-container
// declarations and range-fors, std:: usage, version-pin tokens, restricted
// mutation verbs, #pragma once) with a lightweight scope-tracking token walk
// that records function declarations/definitions with body extents, call
// sites, annotated/mutex fields and lock operations. No libclang: the walk
// is a heuristic tuned to this codebase's style, and every downstream rule
// is designed to degrade safely (an unresolved name simply drops out of the
// graph) rather than misfire.
#pragma once

#include <string>

#include "sdslint/model.h"
#include "sdslint/source.h"

namespace sdslint {

// Builds the summary for a loaded file. `path` must already be the generic
// lexically-normal form; `layer` / `is_header` are precomputed by the
// driver so cache hits skip the lookup too.
FileSummary BuildSummary(const SourceText& text, const std::string& layer,
                         bool is_header);

}  // namespace sdslint
