#include "sdslint/symbols.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <set>

#include "sdslint/lint.h"

namespace sdslint {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Legacy line-based scans (ported verbatim from the v1 analyzer so the
// direct-rule diagnostics stay byte-compatible).
// ---------------------------------------------------------------------------

struct StdProvider {
  const char* ident;      // identifier after std::
  const char* providers;  // comma-separated satisfying <headers>
};

// Identifiers checked by hdr-self-contained. Deliberately restricted to types
// with an unambiguous home header (plus a few multi-provider stream cases) so
// the rule stays false-positive-free; pervasive transitively-available names
// (size_t, pair, move, swap) are out of scope.
constexpr StdProvider kStdProviders[] = {
    {"string", "string"},
    {"string_view", "string_view"},
    {"vector", "vector"},
    {"map", "map"},
    {"multimap", "map"},
    {"set", "set"},
    {"multiset", "set"},
    {"unordered_map", "unordered_map"},
    {"unordered_set", "unordered_set"},
    {"optional", "optional"},
    {"function", "functional"},
    {"array", "array"},
    {"deque", "deque"},
    {"atomic", "atomic"},
    {"thread", "thread"},
    {"mutex", "mutex"},
    {"lock_guard", "mutex"},
    {"unique_lock", "mutex"},
    {"condition_variable", "condition_variable"},
    {"chrono", "chrono"},
    {"int8_t", "cstdint"},
    {"int16_t", "cstdint"},
    {"int32_t", "cstdint"},
    {"int64_t", "cstdint"},
    {"uint8_t", "cstdint"},
    {"uint16_t", "cstdint"},
    {"uint32_t", "cstdint"},
    {"uint64_t", "cstdint"},
    {"FILE", "cstdio"},
    {"unique_ptr", "memory"},
    {"shared_ptr", "memory"},
    {"make_unique", "memory"},
    {"make_shared", "memory"},
    {"variant", "variant"},
    {"monostate", "variant"},
    {"span", "span"},
    {"ifstream", "fstream"},
    {"ofstream", "fstream"},
    {"stringstream", "sstream"},
    {"ostringstream", "sstream"},
    {"istringstream", "sstream"},
    {"ostream", "ostream,iostream,fstream,sstream,iosfwd"},
    {"istream", "istream,iostream,fstream,sstream,iosfwd"},
};

// Direct determinism sink tokens. `requires_call` mirrors v1: bare `rand`
// only counts when invoked.
struct BanToken {
  const char* token;
  bool requires_call;
  const char* rule;
};
constexpr BanToken kBanTokens[] = {
    {"rand", true, kRuleDetRand},
    {"srand", false, kRuleDetRand},
    {"random_device", false, kRuleDetRand},
    {"system_clock", false, kRuleDetClock},
    {"steady_clock", false, kRuleDetClock},
    {"high_resolution_clock", false, kRuleDetClock},
    {"clock_gettime", false, kRuleDetClock},
    {"gettimeofday", false, kRuleDetClock},
};

constexpr const char* kMutationVerbs[] = {
    "Migrate",         "StopVm",           "ResumeVm",     "RecordTickStart",
    "RecordEviction",  "RecordBusOccupancy", "RecordBusStall",
    "SaveState",       "RestoreState"};

void ScanSinks(const SourceText& f, FileSummary* out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const BanToken& ban : kBanTokens) {
      std::size_t p = FindToken(line, ban.token);
      if (p == std::string::npos) continue;
      if (ban.requires_call) {
        std::size_t q =
            line.find_first_not_of(" \t", p + std::strlen(ban.token));
        if (q == std::string::npos || line[q] != '(') continue;
      }
      out->sinks.push_back(
          {-1, static_cast<int>(i) + 1, ban.rule, ban.token});
    }
    // Pointer printing: %p inside a string literal renders an ASLR-random
    // address into output that is diffed across runs.
    if (f.strings[i].find("%p") != std::string::npos) {
      out->sinks.push_back(
          {-1, static_cast<int>(i) + 1, kRuleDetPointerPrint, "%p"});
    }
  }
}

void ScanVerbCalls(const SourceText& f, FileSummary* out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (const char* verb : kMutationVerbs) {
      for (std::size_t p = FindToken(line, verb); p != std::string::npos;
           p = FindToken(line, verb, p + 1)) {
        // Member-call syntax only: obj.Verb( / ptr->Verb(. Declarations
        // never match (word boundary / preceding character).
        if (p == 0) continue;
        const char before = line[p - 1];
        if (before != '.' && before != '>') continue;
        std::size_t q = line.find_first_not_of(" \t", p + std::strlen(verb));
        if (q == std::string::npos || line[q] != '(') continue;
        out->verb_calls.push_back({static_cast<int>(i) + 1, verb});
      }
    }
  }
}

void ScanStdUses(const SourceText& f, FileSummary* out) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    for (std::size_t p = line.find("std::"); p != std::string::npos;
         p = line.find("std::", p + 5)) {
      if (p > 0 && IsWordChar(line[p - 1])) continue;
      std::size_t q = p + 5;
      std::string ident;
      while (q < line.size() && IsWordChar(line[q])) ident.push_back(line[q++]);
      if (StdProvidersFor(ident) != nullptr && seen.insert(ident).second) {
        out->std_uses.push_back({ident, static_cast<int>(i) + 1});
      }
    }
  }
}

void ScanPragmaOnce(const SourceText& f, FileSummary* out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string t = Trimmed(f.code[i]);
    if (t.empty()) continue;
    out->pragma_diag_line = t == "#pragma once" ? 0 : static_cast<int>(i) + 1;
    return;
  }
  out->pragma_diag_line = f.raw.empty() ? 0 : 1;
}

void ScanVersionPins(const SourceText& f, FileSummary* out) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    if (out->snapshot.first_use == 0 && (HasToken(line, "SnapshotWriter") ||
                                         HasToken(line, "SnapshotReader"))) {
      out->snapshot.first_use = static_cast<int>(i) + 1;
    }
    if (out->wal.first_use == 0 &&
        (HasToken(line, "WalWriter") || HasToken(line, "WalReader"))) {
      out->wal.first_use = static_cast<int>(i) + 1;
    }
    if (HasToken(line, "kSnapshotVersion")) {
      out->snapshot.versioned = true;
      // kWalPayloadVersion is defined as obs::kSnapshotVersion in svc/wal.h,
      // so referencing either token references the pin.
      out->wal.versioned = true;
    }
    if (HasToken(line, "kWalPayloadVersion")) out->wal.versioned = true;
  }
}

// Joins f.code[line..] until parentheses opened on the first line balance
// (bounded lookahead). Returns the joined text.
std::string JoinBalanced(const SourceText& f, std::size_t start,
                         std::size_t open_pos) {
  std::string joined;
  int depth = 0;
  for (std::size_t i = start; i < f.code.size() && i < start + 8; ++i) {
    const std::string& line = f.code[i];
    std::size_t from = i == start ? open_pos : 0;
    joined += line.substr(from);
    for (std::size_t j = from; j < line.size(); ++j) {
      if (line[j] == '(') ++depth;
      if (line[j] == ')' && --depth == 0) return joined;
    }
    joined.push_back(' ');
  }
  return joined;
}

// Legacy unordered-container analysis: declared names (file-wide) and every
// range-for site with its range expression text. Matching happens at
// emission time — against this file's names (v1 behaviour) and against the
// include closure's names (the v2 cross-TU extension).
void ScanUnordered(const SourceText& f, FileSummary* out) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const char* container : {"unordered_map", "unordered_set"}) {
      for (std::size_t p = FindToken(f.code[i], container);
           p != std::string::npos;
           p = FindToken(f.code[i], container, p + 1)) {
        // Only declarations: the token must open a template argument list
        // (skips `#include <unordered_map>` and prose mentions).
        std::size_t cp = p + std::strlen(container);
        cp = f.code[i].find_first_not_of(" \t", cp);
        if (cp == std::string::npos || f.code[i][cp] != '<') continue;
        // Balance the template argument list (may span lines), then take
        // the following identifier as the declared name.
        std::size_t li = i;
        int depth = 0;
        bool done = false;
        std::string name;
        for (; li < f.code.size() && li < i + 8 && !done; ++li, cp = 0) {
          const std::string& l = f.code[li];
          for (std::size_t j = cp; j < l.size(); ++j) {
            if (l[j] == '<') ++depth;
            if (l[j] == '>' && --depth == 0) {
              std::size_t q = l.find_first_not_of(" \t&*", j + 1);
              while (q != std::string::npos && q < l.size() &&
                     IsWordChar(l[q])) {
                name.push_back(l[q]);
                ++q;
              }
              done = true;
              break;
            }
          }
        }
        if (!name.empty() && name != "const") names.insert(name);
      }
    }
  }
  out->unordered_names.assign(names.begin(), names.end());

  for (std::size_t i = 0; i < f.code.size(); ++i) {
    std::size_t p = FindToken(f.code[i], "for");
    if (p == std::string::npos) continue;
    std::size_t open = f.code[i].find('(', p);
    if (open == std::string::npos) continue;
    const std::string body = JoinBalanced(f, i, open);
    // The range-for ':' — skip "::" scope operators.
    std::size_t colon = std::string::npos;
    for (std::size_t j = 1; j + 1 < body.size(); ++j) {
      if (body[j] == ':' && body[j - 1] != ':' && body[j + 1] != ':') {
        colon = j;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    out->iters.push_back(
        {-1, static_cast<int>(i) + 1, body.substr(colon + 1)});
  }
}

// ---------------------------------------------------------------------------
// Token walk: functions, fields, calls, locks.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;   // 1-based
  char kind = 0;  // 'i' identifier, 'n' number, 'p' punctuation
};

// Tokenizes the stripped code lines, skipping preprocessor directives and
// their backslash continuations.
std::vector<Token> Tokenize(const SourceText& f) {
  std::vector<Token> out;
  bool continuation = false;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    const std::string trimmed = Trimmed(line);
    const bool raw_ends_backslash =
        !f.raw[i].empty() && f.raw[i].back() == '\\';
    if (continuation || (!trimmed.empty() && trimmed[0] == '#')) {
      continuation = raw_ends_backslash;
      continue;
    }
    continuation = false;
    const int ln = static_cast<int>(i) + 1;
    for (std::size_t j = 0; j < line.size();) {
      const char c = line[j];
      if (c == ' ' || c == '\t') {
        ++j;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        std::size_t b = j;
        while (j < line.size() && IsWordChar(line[j])) ++j;
        out.push_back({line.substr(b, j - b), ln, 'i'});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        std::size_t b = j;
        while (j < line.size() &&
               (IsWordChar(line[j]) || line[j] == '.' || line[j] == '\'')) {
          ++j;
        }
        out.push_back({line.substr(b, j - b), ln, 'n'});
        continue;
      }
      if (c == '"' || c == '\'') {
        // Literal: the body is blanked; skip to the closing quote.
        std::size_t close = line.find(c, j + 1);
        j = close == std::string::npos ? line.size() : close + 1;
        continue;
      }
      if (c == ':' && j + 1 < line.size() && line[j + 1] == ':') {
        out.push_back({"::", ln, 'p'});
        j += 2;
        continue;
      }
      if (c == '-' && j + 1 < line.size() && line[j + 1] == '>') {
        out.push_back({"->", ln, 'p'});
        j += 2;
        continue;
      }
      out.push_back({std::string(1, c), ln, 'p'});
      ++j;
    }
  }
  return out;
}

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kSet = {
      "if",     "for",    "while",  "switch", "return",   "sizeof",
      "catch",  "throw",  "new",    "delete", "alignof",  "decltype",
      "static_assert", "co_await", "co_return", "co_yield", "defined",
      "alignas", "typeid", "noexcept", "case", "else", "do", "goto"};
  return kSet;
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
  std::string name;  // namespace or class name; function: index into out
  int func_index = -1;
};

class Walker {
 public:
  Walker(const std::vector<Token>& tokens, FileSummary* out)
      : toks_(tokens), out_(out) {}

  void Walk() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (i < skip_to_) continue;
      const Token& t = toks_[i];
      if (t.kind == 'p' && t.text == "{") {
        OnOpenBrace(i);
        continue;
      }
      if (t.kind == 'p' && t.text == "}") {
        OnCloseBrace(t.line);
        buffer_.clear();
        continue;
      }
      if (t.kind == 'p' && t.text == ";") {
        if (AtDeclScope()) ProcessDeclaration();
        buffer_.clear();
        continue;
      }
      if (InFunction()) {
        ScanFunctionToken(i);
      } else {
        buffer_.push_back(i);
      }
    }
    // Close any dangling scopes at EOF.
    const int last_line = toks_.empty() ? 1 : toks_.back().line;
    while (!stack_.empty()) OnCloseBrace(last_line);
  }

 private:
  bool AtDeclScope() const {
    return stack_.empty() || stack_.back().kind == Scope::kNamespace ||
           stack_.back().kind == Scope::kClass;
  }
  bool InFunction() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return true;
      if (it->kind == Scope::kClass || it->kind == Scope::kNamespace) break;
    }
    return false;
  }
  int CurrentFunc() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return it->func_index;
    }
    return -1;
  }
  std::string CurrentClass() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  }
  std::string QualifiedPrefix() const {
    std::string q;
    for (const Scope& s : stack_) {
      if (s.kind != Scope::kNamespace && s.kind != Scope::kClass) continue;
      if (s.name.empty()) continue;
      if (!q.empty()) q += "::";
      q += s.name;
    }
    return q;
  }

  const Token& Tok(std::size_t buffer_pos) const {
    return toks_[buffer_[buffer_pos]];
  }

  // Removes `template <...>` headers and [[...]] attributes from the
  // buffer view, returning surviving buffer positions.
  std::vector<std::size_t> CleanBuffer() const {
    std::vector<std::size_t> view;
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind == 'i' && t.text == "template" && i + 1 < buffer_.size() &&
          Tok(i + 1).text == "<") {
        int depth = 0;
        ++i;
        for (; i < buffer_.size(); ++i) {
          if (Tok(i).text == "<") ++depth;
          if (Tok(i).text == ">" && --depth == 0) break;
        }
        continue;
      }
      if (t.text == "[" && i + 1 < buffer_.size() && Tok(i + 1).text == "[") {
        int depth = 0;
        for (; i < buffer_.size(); ++i) {
          if (Tok(i).text == "[") ++depth;
          if (Tok(i).text == "]" && --depth == 0) break;
        }
        continue;
      }
      view.push_back(i);
    }
    return view;
  }

  // Finds the parameter-list '(' in the cleaned view: the first top-level
  // '(' preceded by an identifier (or operator token chain) that is not a
  // control keyword. Returns view index or npos.
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  std::size_t FindParamOpen(const std::vector<std::size_t>& view) const {
    int paren = 0;
    int angle = 0;
    for (std::size_t v = 0; v < view.size(); ++v) {
      const Token& t = Tok(view[v]);
      if (t.kind != 'p') continue;
      if (t.text == "(") {
        if (paren == 0 && angle == 0 && v > 0) {
          const Token& prev = Tok(view[v - 1]);
          if (prev.kind == 'i' && ControlKeywords().count(prev.text) == 0) {
            return v;
          }
          // operator overloads: `operator` + punctuation before '('.
          for (std::size_t b = v; b-- > 0;) {
            const Token& bt = Tok(view[b]);
            if (bt.kind == 'i') {
              if (bt.text == "operator") return v;
              break;
            }
            if (bt.kind != 'p' || bt.text == ")" || bt.text == "(") break;
          }
        }
        ++paren;
        continue;
      }
      if (t.text == ")") {
        if (paren > 0) --paren;
        continue;
      }
      if (paren == 0 && t.text == "<") {
        // Template-argument heuristic: '<' after an identifier or '::'.
        if (v > 0 && (Tok(view[v - 1]).kind == 'i' ||
                      Tok(view[v - 1]).text == "::" ||
                      Tok(view[v - 1]).text == ">")) {
          ++angle;
        }
        continue;
      }
      if (paren == 0 && t.text == ">" && angle > 0) {
        --angle;
        continue;
      }
    }
    return kNpos;
  }

  // Extracts the (possibly qualified) name chain ending right before view
  // index `param_open`. Returns false when no usable name exists.
  bool ExtractName(const std::vector<std::size_t>& view,
                   std::size_t param_open, std::string* name,
                   std::string* qualified_tail, std::string* class_hint) {
    std::vector<std::string> parts;  // reversed
    std::size_t v = param_open;
    bool expect_id = true;
    while (v-- > 0) {
      const Token& t = Tok(view[v]);
      if (expect_id) {
        if (t.kind == 'i') {
          std::string piece = t.text;
          // Destructor: a '~' immediately before the identifier.
          if (v > 0 && Tok(view[v - 1]).text == "~") {
            piece = "~" + piece;
            --v;
          }
          parts.push_back(piece);
          expect_id = false;
          continue;
        }
        if (t.kind == 'p' && !parts.empty()) break;
        if (t.kind == 'p') {
          // operator==(...) — name is "operator" + punct chain.
          std::string punct = t.text;
          while (v > 0 && Tok(view[v - 1]).kind == 'p' &&
                 Tok(view[v - 1]).text != ")") {
            punct = Tok(view[v - 1]).text + punct;
            --v;
          }
          if (v > 0 && Tok(view[v - 1]).text == "operator") {
            parts.push_back("operator" + punct);
            --v;
            expect_id = false;
            continue;
          }
          return false;
        }
        return false;
      }
      if (t.kind == 'p' && t.text == "::") {
        expect_id = true;
        continue;
      }
      break;
    }
    if (parts.empty()) return false;
    std::reverse(parts.begin(), parts.end());
    *name = parts.back();
    std::string tail;
    for (const std::string& p : parts) {
      if (!tail.empty()) tail += "::";
      tail += p;
    }
    *qualified_tail = tail;
    *class_hint = parts.size() >= 2 ? parts[parts.size() - 2] : "";
    return true;
  }

  void RecordFunction(const std::vector<std::size_t>& view,
                      std::size_t param_open, bool is_definition,
                      int body_begin_line) {
    std::string name, tail, class_hint;
    if (!ExtractName(view, param_open, &name, &tail, &class_hint)) {
      if (is_definition) stack_.push_back({Scope::kFunction, "", -1});
      return;
    }
    FunctionSym fn;
    fn.name = name;
    fn.class_name = !class_hint.empty() ? class_hint : CurrentClass();
    const std::string prefix = QualifiedPrefix();
    fn.qualified = prefix.empty() ? tail : prefix + "::" + tail;
    fn.line = Tok(view[param_open - 1]).line;
    fn.is_definition = is_definition;
    if (is_definition) fn.body_begin = body_begin_line;
    const int index = static_cast<int>(out_->functions.size());
    out_->functions.push_back(std::move(fn));
    if (is_definition) stack_.push_back({Scope::kFunction, name, index});
  }

  // Decides what an opening brace at token index `i` introduces.
  void OnOpenBrace(std::size_t i) {
    const int line = toks_[i].line;
    if (!AtDeclScope()) {  // inside a function: plain block (or lambda etc.)
      stack_.push_back({Scope::kBlock, "", -1});
      return;
    }
    const std::vector<std::size_t> view = CleanBuffer();
    if (view.empty()) {
      stack_.push_back({Scope::kBlock, "", -1});
      buffer_.clear();
      return;
    }
    const Token& first = Tok(view.front());
    const Token& prev = Tok(view.back());
    if (first.text == "namespace") {
      std::string name;
      for (std::size_t v = 1; v < view.size(); ++v) {
        const Token& t = Tok(view[v]);
        if (t.kind == 'i') {
          if (!name.empty()) name += "::";
          name += t.text;
        } else if (t.text != "::") {
          break;
        }
      }
      stack_.push_back({Scope::kNamespace, name, -1});
      buffer_.clear();
      return;
    }
    if (first.text == "class" || first.text == "struct" ||
        first.text == "union") {
      std::string name;
      for (std::size_t v = 1; v < view.size(); ++v) {
        if (Tok(view[v]).kind == 'i') {
          name = Tok(view[v]).text;
          break;
        }
      }
      stack_.push_back({Scope::kClass, name, -1});
      buffer_.clear();
      return;
    }
    if (first.text == "enum" ||
        (first.text == "extern" && view.size() == 1)) {
      stack_.push_back({Scope::kBlock, "", -1});
      buffer_.clear();
      return;
    }
    // Braced initializers are swallowed into the statement instead of
    // opening a scope: `= {...}`, aggregate members `a_{1}` in ctor init
    // lists, and default member initializers `int v{3};`.
    const bool prev_is_init_punct =
        prev.kind == 'p' && (prev.text == "=" || prev.text == "," ||
                             prev.text == "(" || prev.text == "[");
    bool ctor_init = false;
    bool has_paren = false;
    {
      int depth = 0;
      bool after_params = false;
      for (std::size_t v = 0; v < view.size(); ++v) {
        const Token& t = Tok(view[v]);
        if (t.text == "(") {
          ++depth;
          has_paren = true;
        } else if (t.text == ")") {
          if (--depth == 0) after_params = true;
        } else if (after_params && depth == 0 && t.text == ":") {
          ctor_init = true;
        }
      }
    }
    if (prev_is_init_punct || (prev.kind == 'i' && ctor_init) ||
        (prev.kind == 'i' && !has_paren &&
         (stack_.empty() ? false : stack_.back().kind == Scope::kClass))) {
      SwallowBracedInit(i);
      return;
    }
    const std::size_t param_open = FindParamOpen(view);
    if (param_open != kNpos && param_open > 0) {
      RecordFunction(view, param_open, /*is_definition=*/true, line);
      buffer_.clear();
      return;
    }
    stack_.push_back({Scope::kBlock, "", -1});
    buffer_.clear();
  }

  // Consumes a balanced {...} group, leaving a '}' placeholder so the
  // statement buffer's "previous token" stays coherent.
  void SwallowBracedInit(std::size_t open_index) {
    int depth = 0;
    std::size_t i = open_index;
    for (; i < toks_.size(); ++i) {
      if (toks_[i].text == "{") ++depth;
      if (toks_[i].text == "}" && --depth == 0) break;
    }
    skip_to_ = i + 1;  // the walker loop skips the whole group
    buffer_.push_back(i < toks_.size() ? i : toks_.size() - 1);
  }

  void OnCloseBrace(int line) {
    if (stack_.empty()) return;
    const Scope s = stack_.back();
    stack_.pop_back();
    if (s.kind == Scope::kFunction && s.func_index >= 0) {
      out_->functions[static_cast<std::size_t>(s.func_index)].body_end = line;
    }
  }

  void ProcessDeclaration() {
    const std::vector<std::size_t> view = CleanBuffer();
    if (view.empty()) return;
    const Token& first = Tok(view.front());
    if (first.text == "using" || first.text == "typedef" ||
        first.text == "friend" || first.text == "namespace" ||
        first.text == "static_assert" || first.text == "enum") {
      return;
    }
    // A concurrency annotation marks a field declaration outright —
    // SDS_GUARDED_BY(mu)'s parens would otherwise read as a parameter list.
    bool annotated = false;
    for (std::size_t v = 0; v < view.size() && !annotated; ++v) {
      const Token& t = Tok(view[v]);
      annotated = t.kind == 'i' &&
                  (t.text == "SDS_GUARDED_BY" || t.text == "SDS_SHARD_OWNED");
    }
    // Function declaration? Only when no top-level '=' precedes the
    // parameter list (that would be a variable with a call initializer).
    const std::size_t param_open = annotated ? kNpos : FindParamOpen(view);
    bool eq_before = false;
    if (param_open != kNpos) {
      int paren = 0;
      for (std::size_t v = 0; v < param_open; ++v) {
        const Token& t = Tok(view[v]);
        if (t.text == "(") ++paren;
        if (t.text == ")") --paren;
        if (paren == 0 && t.text == "=") eq_before = true;
      }
    }
    if (param_open != kNpos && param_open > 0 && !eq_before) {
      if (first.text != "class" && first.text != "struct") {
        RecordFunction(view, param_open, /*is_definition=*/false, 0);
      }
      return;
    }
    // Variable / field declaration: record only what the rules care about.
    FieldDecl field;
    field.class_name = CurrentClass();
    std::size_t anno = kNpos;
    for (std::size_t v = 0; v < view.size(); ++v) {
      const Token& t = Tok(view[v]);
      if (t.kind != 'i') continue;
      if (t.text == "SDS_GUARDED_BY" && anno == kNpos) {
        anno = v;
        // Argument: last identifier inside the parens.
        for (std::size_t w = v + 1; w < view.size(); ++w) {
          const Token& a = Tok(view[w]);
          if (a.kind == 'i') field.guarded_by = a.text;
          if (a.text == ")") break;
        }
      } else if (t.text == "SDS_SHARD_OWNED") {
        if (anno == kNpos) anno = v;
        field.shard_owned = true;
      } else if (t.text == "mutex" || t.text == "shared_mutex" ||
                 t.text == "recursive_mutex" || t.text == "timed_mutex") {
        field.is_mutex = true;
      }
    }
    if (!field.is_mutex && field.guarded_by.empty() && !field.shard_owned) {
      return;
    }
    // Name: identifier immediately before the first annotation, else before
    // a top-level '=', else the last identifier.
    std::size_t name_at = kNpos;
    if (anno != kNpos) {
      for (std::size_t v = anno; v-- > 0;) {
        if (Tok(view[v]).kind == 'i') {
          name_at = v;
          break;
        }
      }
    } else {
      int paren = 0;
      std::size_t eq = kNpos;
      for (std::size_t v = 0; v < view.size(); ++v) {
        const Token& t = Tok(view[v]);
        if (t.text == "(") ++paren;
        if (t.text == ")") --paren;
        if (paren == 0 && t.text == "=" && eq == kNpos) eq = v;
      }
      const std::size_t end = eq == kNpos ? view.size() : eq;
      for (std::size_t v = end; v-- > 0;) {
        if (Tok(view[v]).kind == 'i') {
          name_at = v;
          break;
        }
      }
    }
    if (name_at == kNpos) return;
    field.name = Tok(view[name_at]).text;
    field.line = Tok(view[name_at]).line;
    out_->fields.push_back(std::move(field));
  }

  // Inside a function body: record calls and lock operations.
  void ScanFunctionToken(std::size_t i) {
    const Token& t = toks_[i];
    if (t.kind != 'i') return;
    const int func = CurrentFunc();
    // Lock acquisitions through the RAII guards.
    if (t.text == "lock_guard" || t.text == "unique_lock" ||
        t.text == "scoped_lock" || t.text == "shared_lock") {
      LockOp op;
      op.func = func;
      op.line = t.line;
      // Find the '(' of the guard's constructor, then collect the last
      // identifier of each top-level comma segment as a mutex name.
      std::size_t j = i + 1;
      int angle = 0;
      for (; j < toks_.size(); ++j) {
        const std::string& x = toks_[j].text;
        if (x == "<") ++angle;
        else if (x == ">" && angle > 0) --angle;
        else if (x == "(" && angle == 0) break;
        else if (x == ";" || x == "{" || x == "}") return;  // no args
      }
      if (j >= toks_.size()) return;
      int depth = 0;
      std::string last_id;
      for (; j < toks_.size(); ++j) {
        const Token& a = toks_[j];
        if (a.text == "(") {
          ++depth;
          continue;
        }
        if (a.text == ")") {
          if (--depth == 0) break;
          continue;
        }
        if (depth == 1 && a.text == ",") {
          if (!last_id.empty()) op.args.push_back(last_id);
          last_id.clear();
          continue;
        }
        if (depth >= 1 && a.kind == 'i') last_id = a.text;
      }
      if (!last_id.empty()) op.args.push_back(last_id);
      if (!op.args.empty()) out_->locks.push_back(std::move(op));
      return;
    }
    if (t.text == "SDS_ASSERT_HELD") {
      LockOp op;
      op.func = func;
      op.line = t.line;
      op.assert_held = true;
      for (std::size_t j = i + 1; j < toks_.size(); ++j) {
        if (toks_[j].kind == 'i') op.args.push_back(toks_[j].text);
        if (toks_[j].text == ")") break;
      }
      if (!op.args.empty()) out_->locks.push_back(std::move(op));
      return;
    }
    // Calls: identifier directly followed by '('.
    if (i + 1 >= toks_.size() || toks_[i + 1].text != "(") return;
    if (ControlKeywords().count(t.text) != 0) return;
    // `m.lock()` / `m->lock()`: a direct mutex acquisition.
    if ((t.text == "lock" || t.text == "try_lock") && i >= 2 &&
        (toks_[i - 1].text == "." || toks_[i - 1].text == "->") &&
        toks_[i - 2].kind == 'i') {
      out_->locks.push_back({func, t.line, {toks_[i - 2].text}, false});
      return;
    }
    CallSite call;
    call.func = func;
    call.line = t.line;
    call.name = t.text;
    if (i >= 2 && toks_[i - 1].text == "::" && toks_[i - 2].kind == 'i') {
      call.qualifier = toks_[i - 2].text;
    }
    out_->calls.push_back(std::move(call));
  }

  const std::vector<Token>& toks_;
  FileSummary* out_;
  std::vector<Scope> stack_;
  std::vector<std::size_t> buffer_;  // token indices of the open statement
  std::size_t skip_to_ = 0;          // consumed-brace fast-forward marker
};

// Attributes line-anchored facts (sinks, range-for sites) to the innermost
// enclosing function body.
int FunctionAt(const FileSummary& s, int line) {
  int best = -1;
  int best_begin = -1;
  for (std::size_t i = 0; i < s.functions.size(); ++i) {
    const FunctionSym& fn = s.functions[i];
    if (!fn.is_definition || fn.body_begin == 0) continue;
    if (line < fn.body_begin || line > fn.body_end) continue;
    if (fn.body_begin > best_begin) {
      best_begin = fn.body_begin;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

const char* StdProvidersFor(const std::string& ident) {
  for (const StdProvider& sp : kStdProviders) {
    if (ident == sp.ident) return sp.providers;
  }
  return nullptr;
}

FileSummary BuildSummary(const SourceText& text, const std::string& layer,
                         bool is_header) {
  FileSummary out;
  out.path = text.path;
  out.layer = layer;
  out.is_header = is_header;
  // content_hash is owned by the driver (it hashes the raw bytes before
  // deciding between cache hit and a fresh parse).
  ParseIncludes(text, &out.includes);
  ParseAllows(text, &out.allows);
  ScanSinks(text, &out);
  ScanVerbCalls(text, &out);
  ScanStdUses(text, &out);
  ScanPragmaOnce(text, &out);
  ScanVersionPins(text, &out);
  ScanUnordered(text, &out);

  const std::vector<Token> tokens = Tokenize(text);
  Walker walker(tokens, &out);
  walker.Walk();

  for (SinkOccur& s : out.sinks) s.func = FunctionAt(out, s.line);
  for (IterSite& it : out.iters) it.func = FunctionAt(out, it.line);
  return out;
}

}  // namespace sdslint
