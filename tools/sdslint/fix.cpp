// --fix: auto-remediation for the two mechanical header rules.
//
//   hdr-pragma-once      insert `#pragma once` before the header's first
//                        code line (leading comment banners stay on top).
//   hdr-self-contained   insert the missing `#include <hdr>` into the
//                        header's angle-include block, kept sorted; when no
//                        block exists, one is opened after #pragma once.
//
// Fixes are computed from a fresh analyzer run (baseline ignored — a
// baselined finding is still worth fixing), applied bottom-up so line
// numbers stay valid, and are idempotent: a second run finds nothing to do
// because the first run's insertions satisfy the rules.
#include <algorithm>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sdslint/lint.h"
#include "sdslint/source.h"

namespace sdslint {
namespace {

// Pulls the missing header out of a hdr-self-contained message
// ("... never pulls in <cstdint>; include it directly ..."). Empty when the
// message shape ever drifts — the fix is skipped rather than misapplied.
std::string MissingHeaderOf(const std::string& message) {
  const std::size_t tag = message.find("pulls in <");
  if (tag == std::string::npos) return "";
  const std::size_t open = tag + 10;
  const std::size_t close = message.find('>', open);
  if (close == std::string::npos) return "";
  return message.substr(open, close - open);
}

struct FilePlan {
  bool add_pragma = false;
  std::vector<std::string> add_includes;
};

bool ApplyPlan(const std::string& path, const FilePlan& plan) {
  SourceText text;
  if (!LoadSource(path, &text)) return false;
  std::vector<std::string> lines = text.raw;

  if (plan.add_pragma) {
    // Before the first code line (leading comment banners stay on top).
    std::size_t at = lines.size();
    for (std::size_t i = 0; i < text.code.size(); ++i) {
      if (!Trimmed(text.code[i]).empty()) {
        at = i;
        break;
      }
    }
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                 "#pragma once");
  }

  if (!plan.add_includes.empty()) {
    std::vector<std::string> adds;
    for (const std::string& hdr : plan.add_includes) {
      adds.push_back("#include <" + hdr + ">");
    }
    std::sort(adds.begin(), adds.end());
    adds.erase(std::unique(adds.begin(), adds.end()), adds.end());

    // Find the first contiguous block of #include <...> lines.
    std::size_t block_begin = lines.size();
    std::size_t block_end = lines.size();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (Trimmed(lines[i]).rfind("#include <", 0) == 0) {
        block_begin = i;
        block_end = i + 1;
        while (block_end < lines.size() &&
               Trimmed(lines[block_end]).rfind("#include <", 0) == 0) {
          ++block_end;
        }
        break;
      }
    }
    if (block_begin < lines.size()) {
      std::vector<std::string> block(
          lines.begin() + static_cast<std::ptrdiff_t>(block_begin),
          lines.begin() + static_cast<std::ptrdiff_t>(block_end));
      for (const std::string& add : adds) {
        if (std::find(block.begin(), block.end(), add) == block.end()) {
          block.push_back(add);
        }
      }
      std::sort(block.begin(), block.end());
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(block_begin),
                  lines.begin() + static_cast<std::ptrdiff_t>(block_end));
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(block_begin),
                   block.begin(), block.end());
    } else {
      // No block yet: open one after #pragma once (or at the top).
      std::size_t at = 0;
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (Trimmed(lines[i]) == "#pragma once") {
          at = i + 1;
          break;
        }
      }
      std::vector<std::string> insert;
      insert.emplace_back("");
      insert.insert(insert.end(), adds.begin(), adds.end());
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                   insert.begin(), insert.end());
    }
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const std::string& line : lines) out << line << '\n';
  return static_cast<bool>(out);
}

}  // namespace

int ApplyFixes(const Options& options, std::vector<std::string>* fixed_files) {
  Options run_options = options;
  run_options.baseline_path.clear();
  const Result result = Run(run_options);

  std::map<std::string, FilePlan> plans;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.rule == kRuleHdrPragmaOnce) {
      plans[d.file].add_pragma = true;
    } else if (d.rule == kRuleHdrSelfContained) {
      const std::string hdr = MissingHeaderOf(d.message);
      if (!hdr.empty()) plans[d.file].add_includes.push_back(hdr);
    }
  }

  int fixed = 0;
  for (const auto& [path, plan] : plans) {
    if (!ApplyPlan(path, plan)) continue;
    ++fixed;
    if (fixed_files != nullptr) fixed_files->push_back(path);
  }
  return fixed;
}

}  // namespace sdslint
