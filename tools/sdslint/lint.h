// sdslint: project-specific static analysis for the memdos_sds tree.
//
// A deliberately lexer-light (line/token-based) analyzer — no libclang — that
// enforces the two contracts the reproduction's bit-identical guarantee rests
// on (see DESIGN.md §11):
//
//   * the layer DAG  common → stats/signal → sim → vm → pcm →
//     {attacks, workloads, detect, fault} → {cluster, obs} → svc → eval, with
//     telemetry as a universal observability sink and fault/obs restricted
//     to their enumerated dependents, and
//   * the determinism contract: no ambient randomness, no wall-clock reads,
//     no pointer printing and no unordered-container iteration in the
//     deterministic layers.
//
// plus the header-hygiene rules (#pragma once, include-closure
// self-containment, the forward-declare-telemetry policy from PR 3).
//
// The analyzer is a library so the fixture tests can drive it directly; the
// CLI in main.cpp is a thin wrapper. Diagnostics print as
//   file:line: [rule-id] message
// which is both grep-able and clickable in editors/CI logs.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sdslint {

// Rule identifiers, exactly as they appear in diagnostics and in the
// allow(<rule>) suppression comments (spelled with an `sdslint` prefix).
inline constexpr char kRuleLayerDag[] = "layer-dag";
inline constexpr char kRuleDetRand[] = "det-rand";
inline constexpr char kRuleDetClock[] = "det-clock";
inline constexpr char kRuleDetPointerPrint[] = "det-pointer-print";
inline constexpr char kRuleDetUnorderedIter[] = "det-unordered-iter";
inline constexpr char kRuleDetActuationIdempotent[] =
    "det-actuation-idempotent";
inline constexpr char kRuleDetAttribLedger[] = "det-attrib-ledger";
inline constexpr char kRuleDetSnapshotVersioned[] = "det-snapshot-versioned";
inline constexpr char kRuleDetWalVersioned[] = "det-wal-versioned";
inline constexpr char kRuleHdrPragmaOnce[] = "hdr-pragma-once";
inline constexpr char kRuleHdrSelfContained[] = "hdr-self-contained";
inline constexpr char kRuleHdrTelemetryFwd[] = "hdr-telemetry-fwd";

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// One allow(...) suppression comment found in the tree, for
// --list-suppressions. `used` flips when the comment actually silenced at
// least one diagnostic, so stale escape hatches are visible.
struct Suppression {
  std::string file;
  int line = 0;           // line the suppression applies to
  int comment_line = 0;   // line the comment itself is on
  std::string rules;      // raw rule list inside allow(...)
  bool used = false;
};

struct Options {
  // Files or directories to scan (recursively, *.h/*.hpp/*.cpp/*.cc).
  std::vector<std::string> paths;
  // Directory containing src/ — quoted includes resolve against
  // <include_root>/src/<target>. Defaults to the current directory.
  std::string include_root = ".";
  // Path-substring filters; a file whose path contains any entry is skipped.
  // The CLI seeds this with "build/" and "tests/lint/fixtures" (seeded
  // violations testing sdslint itself must not fail the real tree).
  std::vector<std::string> ignores;
};

struct Result {
  std::vector<Diagnostic> diagnostics;   // sorted by file, then line
  std::vector<Suppression> suppressions; // every allow() comment seen
  int files_scanned = 0;
};

Result Run(const Options& options);

// "file:line: [rule-id] message"
std::string FormatText(const Diagnostic& d);

// Whole-result JSON: {"files_scanned":N,"diagnostics":[...],"suppressions":[...]}
std::string ToJson(const Result& result);

// Layer metadata, exposed for tests and for the --explain output.
// Rank comparisons define the DAG: an include from layer A to layer B is
// legal iff rank(B) < rank(A), or A == B. telemetry (any layer may include
// it) and fault (only cluster/eval and the non-layer trees may include it)
// are special-cased; tests/bench/tools/examples rank above everything.
int LayerRank(const std::string& layer);          // -1 if unknown
bool IsDeterministicLayer(const std::string& layer);
// Maps a path like "src/sim/cache.cpp" or "tests/lint/fixtures/src/sim/x.cpp"
// to its layer name ("" when the path is outside any known layer).
std::string LayerOfPath(const std::string& path);

}  // namespace sdslint
