// sdslint: project-specific static analysis for the memdos_sds tree.
//
// v2 (DESIGN.md §16) is a multi-pass, cross-translation-unit analyzer — still
// deliberately lexer-light (no libclang):
//
//   pass 1  symbols.cpp   every TU distilled into a FileSummary (model.h):
//                         includes, suppressions, sink tokens, declared
//                         functions/methods (declared vs defined), call
//                         sites, annotated fields, lock operations.
//   pass 2  graph.cpp     cross-TU call graph: call sites resolved against
//                         the symbol index, scoped by each TU's quoted
//                         include closure (a declaration in your closure
//                         links you to its out-of-closure definition).
//   pass 3  graph.cpp     interprocedural determinism taint: live sinks
//                         (ambient randomness, wall clocks, pointer
//                         printing, unordered-container iteration) propagate
//                         backward through the call graph; a deterministic
//                         layer calling across files into a tainted function
//                         is diagnosed with the full call chain (det-taint).
//   pass 4  conc.cpp      concurrency discipline from the SDS_GUARDED_BY /
//                         SDS_SHARD_OWNED / SDS_ASSERT_HELD annotations
//                         (common/annotations.h): conc-guarded-by,
//                         conc-lock-order, conc-shard-owned.
//
// plus the v1 rule families, byte-compatible: the layer DAG, the direct
// determinism contract, header hygiene, and the seam rules
// (det-actuation-idempotent, det-attrib-ledger, det-snapshot/wal-versioned).
//
// Ships with an incremental on-disk cache keyed by content hash (cache.cpp),
// a checked-in baseline file with --update-baseline (baseline.cpp), SARIF
// 2.1.0 output for CI code-scanning annotations (output.cpp) and --fix
// auto-remediation for the mechanical header rules (fix.cpp).
//
// The analyzer is a library so the fixture tests can drive it directly; the
// CLI in main.cpp is a thin wrapper. Diagnostics print as
//   file:line: [rule-id] message
// which is both grep-able and clickable in editors/CI logs.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sdslint {

// Rule identifiers, exactly as they appear in diagnostics and in the
// allow(<rule>) suppression comments (spelled with an `sdslint` prefix).
inline constexpr char kRuleLayerDag[] = "layer-dag";
inline constexpr char kRuleDetRand[] = "det-rand";
inline constexpr char kRuleDetClock[] = "det-clock";
inline constexpr char kRuleDetPointerPrint[] = "det-pointer-print";
inline constexpr char kRuleDetUnorderedIter[] = "det-unordered-iter";
inline constexpr char kRuleDetActuationIdempotent[] =
    "det-actuation-idempotent";
inline constexpr char kRuleDetAttribLedger[] = "det-attrib-ledger";
inline constexpr char kRuleDetSnapshotVersioned[] = "det-snapshot-versioned";
inline constexpr char kRuleDetWalVersioned[] = "det-wal-versioned";
inline constexpr char kRuleDetHandoffVersioned[] = "det-handoff-versioned";
inline constexpr char kRuleHdrPragmaOnce[] = "hdr-pragma-once";
inline constexpr char kRuleHdrSelfContained[] = "hdr-self-contained";
inline constexpr char kRuleHdrTelemetryFwd[] = "hdr-telemetry-fwd";
// v2 rule families.
inline constexpr char kRuleDetTaint[] = "det-taint";
inline constexpr char kRuleConcGuardedBy[] = "conc-guarded-by";
inline constexpr char kRuleConcLockOrder[] = "conc-lock-order";
inline constexpr char kRuleConcShardOwned[] = "conc-shard-owned";

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// One allow(...) suppression comment found in the tree, for
// --list-suppressions. `used` flips when the comment actually silenced at
// least one diagnostic, so stale escape hatches are visible.
struct Suppression {
  std::string file;
  int line = 0;           // line the suppression applies to
  int comment_line = 0;   // line the comment itself is on
  std::string rules;      // raw rule list inside allow(...)
  bool used = false;
};

struct Options {
  // Files or directories to scan (recursively, *.h/*.hpp/*.cpp/*.cc).
  std::vector<std::string> paths;
  // Directory containing src/ — quoted includes resolve against
  // <include_root>/src/<target>. Defaults to the current directory.
  std::string include_root = ".";
  // Path-substring filters; a file whose path contains any entry is skipped.
  // The CLI seeds this with "build/" and "tests/lint/fixtures" (seeded
  // violations testing sdslint itself must not fail the real tree).
  std::vector<std::string> ignores;
  // Directory for the incremental analysis cache; "" disables caching.
  // Unchanged files (by content hash) reuse their pass-1 summary; passes
  // 2-4 always re-link from summaries, so cross-TU facts stay fresh.
  std::string cache_dir;
  // Baseline file of accepted findings; "" disables. Matching diagnostics
  // are moved to Result::baselined instead of Result::diagnostics.
  std::string baseline_path;
};

// Run statistics, also the payload of the CLI's --stats JSON.
struct Stats {
  int files_scanned = 0;
  int cache_hits = 0;
  int parsed = 0;
  int functions = 0;
  int call_edges = 0;
  int taint_seeds = 0;
  int tainted_functions = 0;
  std::map<std::string, int> rule_hits;  // rule id -> emitted count
};

struct Result {
  std::vector<Diagnostic> diagnostics;   // sorted by file, then line
  std::vector<Suppression> suppressions; // every allow() comment seen
  int files_scanned = 0;
  // v2: diagnostics silenced by the baseline file, baseline entries that no
  // longer match anything (stale — candidates for removal), and run stats.
  std::vector<Diagnostic> baselined;
  std::vector<std::string> stale_baseline_entries;
  Stats stats;
};

Result Run(const Options& options);

// "file:line: [rule-id] message"
std::string FormatText(const Diagnostic& d);

// Whole-result JSON: {"files_scanned":N,"diagnostics":[...],"suppressions":[...]}
// Byte-compatible with v1: same keys, same order, no additions.
std::string ToJson(const Result& result);

// SARIF 2.1.0 for GitHub code scanning. Paths are relativized against
// `root` when they live under it.
std::string ToSarif(const Result& result, const std::string& root);

// Stats payload as one JSON object (no schema_version; the CLI splices that
// via bench/common/reporter.h so the envelope matches every BENCH_* line).
std::string StatsJson(const Result& result);

// Writes Result::diagnostics (and any still-live baselined set when
// `result` was produced without a baseline) as a baseline file. Returns
// false when the file cannot be written.
bool WriteBaseline(const std::string& path, const Result& result,
                   const std::string& include_root);

// --fix: auto-remediates the mechanical header rules (hdr-pragma-once,
// hdr-self-contained missing-include insertion) in place. Runs the analyzer
// internally (ignoring any baseline), applies edits, and returns the number
// of files rewritten. A second invocation on the same tree is a no-op.
int ApplyFixes(const Options& options, std::vector<std::string>* fixed_files);

// Layer metadata, exposed for tests and for the --explain output.
// Rank comparisons define the DAG: an include from layer A to layer B is
// legal iff rank(B) < rank(A), or A == B. telemetry (any layer may include
// it) and fault (only cluster/eval and the non-layer trees may include it)
// are special-cased; tests/bench/tools/examples rank above everything.
int LayerRank(const std::string& layer);          // -1 if unknown
bool IsDeterministicLayer(const std::string& layer);
// Maps a path like "src/sim/cache.cpp" or "tests/lint/fixtures/src/sim/x.cpp"
// to its layer name ("" when the path is outside any known layer).
std::string LayerOfPath(const std::string& path);

}  // namespace sdslint
