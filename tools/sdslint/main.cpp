// sdslint CLI: walks the given trees and enforces the project invariants
// documented in DESIGN.md §11 and §16 (layer DAG, determinism contract —
// direct tokens plus interprocedural taint over the cross-TU call graph —
// header hygiene, and the concurrency-discipline annotations).
//
//   sdslint src tests bench tools            lint the whole repo (from root)
//   sdslint --json src                       machine-readable diagnostics
//   sdslint --list-suppressions src          audit every allow() escape hatch
//   sdslint --root=DIR a b                   resolve includes against DIR/src
//   sdslint --cache=DIR ...                  reuse per-file summaries on disk
//   sdslint --sarif=out.sarif ...            also write SARIF 2.1.0
//   sdslint --update-baseline ...            accept current findings
//   sdslint --fix ...                        auto-fix the header rules
//   sdslint --stats ...                      BENCH_lint JSON run summary
//
// Exit codes: 0 clean, 1 diagnostics emitted, 2 usage error — so CI can
// gate on it directly.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/reporter.h"
#include "sdslint/lint.h"

namespace {

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << text << '\n';
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  sds::Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"json", "emit diagnostics as one JSON object instead of text",
            true},
           {"list-suppressions",
            "list every allow(...) suppression comment (and whether it "
            "fired) instead of linting",
            true},
           {"audit", "alias for --list-suppressions", true},
           {"root",
            "directory containing src/ for include resolution (default: .)"},
           {"ignore",
            "extra comma-separated path substrings to skip (always skips "
            "build/ and tests/lint/fixtures)"},
           {"cache",
            "directory for per-file summary cache keyed by content hash "
            "(warm runs skip re-parsing unchanged files)"},
           {"sarif", "also write diagnostics as SARIF 2.1.0 to this file"},
           {"baseline",
            "baseline file of accepted findings (default: <root>/"
            ".sdslint-baseline when it exists)"},
           {"no-baseline", "ignore any baseline file", true},
           {"update-baseline",
            "rewrite the baseline to accept the current findings", true},
           {"fix",
            "auto-fix hdr-pragma-once and hdr-self-contained findings "
            "in place",
            true},
           {"stats",
            "print a BENCH_lint JSON run summary (rule hits, taint graph "
            "size, cache effectiveness)",
            true},
           {"stats-out", "also write the stats JSON payload to this file"}})) {
    return flags.help_requested() ? 0 : 2;
  }
  if (flags.positional().empty()) {
    std::fprintf(
        stderr,
        "usage: sdslint [--json] [--list-suppressions] [--root=DIR] "
        "[--ignore=SUBSTR,...] [--cache=DIR] [--sarif=FILE] "
        "[--baseline=FILE|--no-baseline] [--update-baseline] [--fix] "
        "[--stats] <path>...\n");
    return 2;
  }

  sdslint::Options options;
  options.paths = flags.positional();
  options.include_root = flags.GetString("root", ".");
  // The lint fixture trees seed deliberate violations for sdslint's own
  // tests; generated build trees are not ours to lint.
  options.ignores = {"build/", "tests/lint/fixtures"};
  const std::string extra = flags.GetString("ignore", "");
  for (std::size_t b = 0; b < extra.size();) {
    std::size_t e = extra.find(',', b);
    if (e == std::string::npos) e = extra.size();
    if (e > b) options.ignores.push_back(extra.substr(b, e - b));
    b = e + 1;
  }
  options.cache_dir = flags.GetString("cache", "");

  options.baseline_path = flags.GetString("baseline", "");
  if (options.baseline_path.empty() && !flags.GetBool("no-baseline", false)) {
    const std::filesystem::path candidate =
        std::filesystem::path(options.include_root) / ".sdslint-baseline";
    std::error_code ec;
    if (std::filesystem::is_regular_file(candidate, ec)) {
      options.baseline_path = candidate.generic_string();
    }
  }
  if (flags.GetBool("no-baseline", false)) options.baseline_path.clear();

  if (flags.GetBool("fix", false)) {
    std::vector<std::string> fixed_files;
    const int fixed = sdslint::ApplyFixes(options, &fixed_files);
    for (const std::string& f : fixed_files) {
      std::printf("fixed %s\n", f.c_str());
    }
    std::fprintf(stderr, "sdslint: fixed %d file(s)\n", fixed);
    return 0;
  }

  const sdslint::Result result = sdslint::Run(options);

  if (flags.GetBool("update-baseline", false)) {
    std::string path = options.baseline_path;
    if (path.empty()) {
      path = (std::filesystem::path(options.include_root) / ".sdslint-baseline")
                 .generic_string();
    }
    if (!sdslint::WriteBaseline(path, result, options.include_root)) {
      std::fprintf(stderr, "sdslint: cannot write baseline %s\n", path.c_str());
      return 2;
    }
    std::fprintf(stderr, "sdslint: baseline %s updated with %zu finding(s)\n",
                 path.c_str(),
                 result.diagnostics.size() + result.baselined.size());
    return 0;
  }

  const std::string sarif_path = flags.GetString("sarif", "");
  if (!sarif_path.empty() &&
      !WriteTextFile(sarif_path,
                     sdslint::ToSarif(result, options.include_root))) {
    std::fprintf(stderr, "sdslint: cannot write SARIF file %s\n",
                 sarif_path.c_str());
    return 2;
  }

  if (flags.GetBool("list-suppressions", false) ||
      flags.GetBool("audit", false)) {
    for (const sdslint::Suppression& s : result.suppressions) {
      std::printf("%s:%d: allow(%s) -> line %d [%s]\n", s.file.c_str(),
                  s.comment_line, s.rules.c_str(), s.line,
                  s.used ? "used" : "UNUSED");
    }
    std::printf("%zu suppression(s) in %d file(s)\n",
                result.suppressions.size(), result.files_scanned);
    return 0;
  }

  int exit_code;
  if (flags.GetBool("json", false)) {
    std::printf("%s\n", sdslint::ToJson(result).c_str());
    exit_code = result.diagnostics.empty() ? 0 : 1;
  } else {
    for (const sdslint::Diagnostic& d : result.diagnostics) {
      std::printf("%s\n", sdslint::FormatText(d).c_str());
    }
    if (result.diagnostics.empty()) {
      std::fprintf(stderr, "sdslint: %d file(s) clean\n", result.files_scanned);
      exit_code = 0;
    } else {
      std::fprintf(stderr, "sdslint: %zu finding(s) in %d file(s)\n",
                   result.diagnostics.size(), result.files_scanned);
      exit_code = 1;
    }
  }

  if (!result.baselined.empty()) {
    std::fprintf(stderr, "sdslint: %zu baselined finding(s) suppressed\n",
                 result.baselined.size());
  }
  for (const std::string& stale : result.stale_baseline_entries) {
    std::fprintf(stderr, "sdslint: stale baseline entry: %s\n", stale.c_str());
  }

  if (flags.GetBool("stats", false)) {
    const std::string payload = sdslint::StatsJson(result);
    sds::bench::EmitBenchJson(std::cout, "lint",
                              flags.GetString("stats-out", ""),
                              [&payload](std::ostream& os) { os << payload; });
  }
  return exit_code;
}
