// sdslint CLI: walks the given trees and enforces the project invariants
// documented in DESIGN.md §11 (layer DAG, determinism contract, header
// hygiene).
//
//   sdslint src tests bench tools            lint the whole repo (from root)
//   sdslint --json src                       machine-readable diagnostics
//   sdslint --list-suppressions src          audit every allow() escape hatch
//   sdslint --root=DIR a b                   resolve includes against DIR/src
//
// Exit codes: 0 clean, 1 diagnostics emitted, 2 usage error — so CI can
// gate on it directly.
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "sdslint/lint.h"

int main(int argc, char** argv) {
  sds::Flags flags;
  if (!flags.Parse(
          argc, argv,
          {{"json", "emit diagnostics as one JSON object instead of text",
            true},
           {"list-suppressions",
            "list every allow(...) suppression comment (and whether it "
            "fired) instead of linting",
            true},
           {"root",
            "directory containing src/ for include resolution (default: .)"},
           {"ignore",
            "extra comma-separated path substrings to skip (always skips "
            "build/ and tests/lint/fixtures)"}})) {
    return flags.help_requested() ? 0 : 2;
  }
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: sdslint [--json] [--list-suppressions] [--root=DIR] "
                 "[--ignore=SUBSTR,...] <path>...\n");
    return 2;
  }

  sdslint::Options options;
  options.paths = flags.positional();
  options.include_root = flags.GetString("root", ".");
  // The lint fixture tree seeds deliberate violations for sdslint's own
  // tests; generated build trees are not ours to lint.
  options.ignores = {"build/", "tests/lint/fixtures"};
  const std::string extra = flags.GetString("ignore", "");
  for (std::size_t b = 0; b < extra.size();) {
    std::size_t e = extra.find(',', b);
    if (e == std::string::npos) e = extra.size();
    if (e > b) options.ignores.push_back(extra.substr(b, e - b));
    b = e + 1;
  }

  const sdslint::Result result = sdslint::Run(options);

  if (flags.GetBool("list-suppressions", false)) {
    for (const sdslint::Suppression& s : result.suppressions) {
      std::printf("%s:%d: allow(%s) -> line %d [%s]\n", s.file.c_str(),
                  s.comment_line, s.rules.c_str(), s.line,
                  s.used ? "used" : "UNUSED");
    }
    std::printf("%zu suppression(s) in %d file(s)\n",
                result.suppressions.size(), result.files_scanned);
    return 0;
  }

  if (flags.GetBool("json", false)) {
    std::printf("%s\n", sdslint::ToJson(result).c_str());
    return result.diagnostics.empty() ? 0 : 1;
  }

  for (const sdslint::Diagnostic& d : result.diagnostics) {
    std::printf("%s\n", sdslint::FormatText(d).c_str());
  }
  if (result.diagnostics.empty()) {
    std::fprintf(stderr, "sdslint: %d file(s) clean\n", result.files_scanned);
    return 0;
  }
  std::fprintf(stderr, "sdslint: %zu finding(s) in %d file(s)\n",
               result.diagnostics.size(), result.files_scanned);
  return 1;
}
