// Baseline (accepted-findings) file support. A baseline entry is a stable
// fingerprint of a diagnostic — fnv1a64 over rule | root-relative path |
// message with digits stripped — so line-number drift and chain-line drift
// do not invalidate it, while a different file or a different finding does.
//
// File format, one finding per line (comment lines start with '#'):
//   <16-hex fingerprint> <rule> <file>:<line> <message>
// Everything after the fingerprint is human context only; matching uses the
// fingerprint alone. --update-baseline rewrites the file from the current
// run; entries that no longer match anything are reported as stale.
#pragma once

#include <map>
#include <string>

#include "sdslint/lint.h"

namespace sdslint {

std::string BaselineFingerprint(const Diagnostic& d, const std::string& root);

// Loads `path` into fingerprint -> entry-line-text. Returns false when the
// file cannot be read (a missing baseline is not an error for callers that
// auto-detect; they just skip the filter).
bool LoadBaseline(const std::string& path,
                  std::map<std::string, std::string>* entries);

}  // namespace sdslint
