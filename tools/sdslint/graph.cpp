// Passes 2 and 3: cross-TU call graph and interprocedural determinism taint.
//
// Linkage is closure-scoped: a call site in file A may bind to a definition
// in file B only when A's quoted-include closure reaches B, B's sibling
// header, or a declaration of the same (class, name). That keeps the graph
// honest without a real linker — an unresolvable name simply drops out.
//
// Taint seeds are the direct determinism sinks (ambient randomness, wall
// clocks, pointer printing, unordered-container iteration) that are not
// silenced by an allow(...) comment or a builtin allow. Seeds propagate
// backward over the call graph; telemetry-layer functions are never tainted
// and never propagate (the telemetry plane is a write-only observability
// sink by charter — DESIGN.md §16). A deterministic-layer function calling
// across files into a tainted function is diagnosed with the full chain.
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sdslint/passes.h"
#include "sdslint/source.h"

namespace sdslint {
namespace {

using Key = std::pair<int, int>;  // (file index, function index)

constexpr Key kNoKey{-1, -1};

// Names with more definitions than this are too generic to link (Get, Size,
// ...); binding them would flood the graph with false edges.
constexpr std::size_t kMaxCandidates = 12;

struct TaintRecord {
  Key next = kNoKey;  // hop toward the sink; kNoKey at the seed itself
  std::string sink_token;
  std::string sink_rule;
  std::string sink_file;
  int sink_line = 0;
};

struct Edge {
  Key to;
  int line = 0;  // call-site line in the caller's file
};

class GraphPass {
 public:
  explicit GraphPass(PassContext& ctx) : ctx_(ctx) {
    for (FileSummary* f : ctx.files) {
      scan_set_.insert(static_cast<int>(all_.size()));
      IndexOf(f);
    }
  }

  void Run() {
    BuildEdges();
    SeedSinks();
    SeedUnorderedIters();
    Propagate();
    EmitTaint();
  }

 private:
  int IndexOf(FileSummary* f) {
    auto it = index_.find(f);
    if (it != index_.end()) return it->second;
    const int id = static_cast<int>(all_.size());
    all_.push_back(f);
    index_.emplace(f, id);
    path_index_.emplace(f->path, id);
    return id;
  }

  // Quoted-include closure of file `fi` (as indices into all_), self
  // included. Demand-loads out-of-scan-set dependencies through resolve().
  const std::set<int>& Closure(int fi) {
    auto it = closures_.find(fi);
    if (it != closures_.end()) return it->second;
    std::set<int>& out = closures_[fi];
    std::vector<int> queue{fi};
    out.insert(fi);
    while (!queue.empty()) {
      const int cur = queue.back();
      queue.pop_back();
      // IndexOf may grow all_; take the pointer first.
      const FileSummary* f = all_[static_cast<std::size_t>(cur)];
      for (const IncludeDirective& inc : f->includes) {
        if (inc.angle) continue;
        FileSummary* dep = ctx_.resolve(inc.target);
        if (dep == nullptr) continue;
        const int di = IndexOf(dep);
        if (out.insert(di).second) queue.push_back(di);
      }
    }
    return out;
  }

  const FunctionSym& Fn(const Key& k) const {
    return all_[static_cast<std::size_t>(k.first)]
        ->functions[static_cast<std::size_t>(k.second)];
  }
  const FileSummary& File(const Key& k) const {
    return *all_[static_cast<std::size_t>(k.first)];
  }

  static std::string SiblingHeader(const std::string& path) {
    const std::size_t dot = path.rfind('.');
    if (dot == std::string::npos) return "";
    return path.substr(0, dot) + ".h";
  }

  void BuildEdges() {
    // Closures first: they can demand-load files that contribute symbols.
    const std::size_t scan_count = all_.size();
    for (std::size_t fi = 0; fi < scan_count; ++fi) Closure(static_cast<int>(fi));

    // Definition and declaration indexes over everything now known.
    std::map<std::string, std::vector<Key>> defs;
    std::map<std::string, std::vector<Key>> decls;
    for (std::size_t fi = 0; fi < all_.size(); ++fi) {
      const FileSummary* f = all_[fi];
      for (std::size_t k = 0; k < f->functions.size(); ++k) {
        const FunctionSym& fn = f->functions[k];
        if (fn.name.empty()) continue;
        (fn.is_definition ? defs : decls)[fn.name].push_back(
            {static_cast<int>(fi), static_cast<int>(k)});
      }
      if (ctx_.stats != nullptr && scan_set_.count(static_cast<int>(fi)) != 0) {
        ctx_.stats->functions += static_cast<int>(f->functions.size());
      }
    }

    for (std::size_t fi = 0; fi < all_.size(); ++fi) {
      const FileSummary* f = all_[fi];
      const std::set<int>& closure = Closure(static_cast<int>(fi));
      for (const CallSite& call : f->calls) {
        if (call.func < 0) continue;
        if (call.qualifier == "std") continue;
        auto dit = defs.find(call.name);
        if (dit == defs.end() || dit->second.size() > kMaxCandidates) continue;
        const Key from{static_cast<int>(fi), call.func};
        for (const Key& cand : dit->second) {
          if (cand == from) continue;
          const FunctionSym& target = Fn(cand);
          if (!call.qualifier.empty() &&
              target.class_name != call.qualifier &&
              target.qualified.find(call.qualifier + "::") ==
                  std::string::npos) {
            continue;
          }
          if (!Authorized(closure, cand, decls)) continue;
          edges_[from].push_back({cand, call.line});
          reverse_[cand].push_back(from);
          if (ctx_.stats != nullptr) ++ctx_.stats->call_edges;
        }
      }
    }
  }

  bool Authorized(const std::set<int>& closure, const Key& cand,
                  const std::map<std::string, std::vector<Key>>& decls) {
    if (closure.count(cand.first) != 0) return true;
    const FileSummary& def_file = File(cand);
    const std::string sibling = SiblingHeader(def_file.path);
    if (!sibling.empty()) {
      auto pit = path_index_.find(sibling);
      if (pit != path_index_.end() && closure.count(pit->second) != 0) {
        return true;
      }
    }
    const FunctionSym& def = Fn(cand);
    auto dit = decls.find(def.name);
    if (dit != decls.end()) {
      for (const Key& d : dit->second) {
        if (closure.count(d.first) == 0) continue;
        if (Fn(d).class_name == def.class_name) return true;
      }
    }
    return false;
  }

  bool Seed(const Key& k, const std::string& rule, const std::string& token,
            const std::string& file, int line) {
    if (taint_.count(k) != 0) return false;
    TaintRecord r;
    r.sink_token = token;
    r.sink_rule = rule;
    r.sink_file = file;
    r.sink_line = line;
    taint_.emplace(k, std::move(r));
    frontier_.push_back(k);
    if (ctx_.stats != nullptr) ++ctx_.stats->taint_seeds;
    return true;
  }

  void SeedSinks() {
    for (std::size_t fi = 0; fi < all_.size(); ++fi) {
      const FileSummary* f = all_[fi];
      if (f->layer == "telemetry") continue;
      for (const SinkOccur& s : f->sinks) {
        if (s.func < 0) continue;
        if (ctx_.silenced(*f, s.line, s.rule)) continue;
        Seed({static_cast<int>(fi), s.func}, s.rule, s.token, f->path, s.line);
      }
    }
  }

  void SeedUnorderedIters() {
    for (std::size_t fi = 0; fi < all_.size(); ++fi) {
      FileSummary* f = all_[fi];
      if (f->layer == "telemetry") continue;
      for (const IterSite& it : f->iters) {
        bool hit = it.range_text.find("unordered_map") != std::string::npos ||
                   it.range_text.find("unordered_set") != std::string::npos;
        for (std::size_t n = 0; !hit && n < f->unordered_names.size(); ++n) {
          hit = HasToken(it.range_text, f->unordered_names[n]);
        }
        // Cross-TU extension: the container may be declared in a header the
        // per-file view never sees (the PR-4 scanner's exact blind spot).
        std::string cross_name;
        const FileSummary* cross_decl = nullptr;
        if (!hit) {
          for (int di : Closure(static_cast<int>(fi))) {
            if (di == static_cast<int>(fi)) continue;
            const FileSummary* g = all_[static_cast<std::size_t>(di)];
            for (const std::string& name : g->unordered_names) {
              if (HasToken(it.range_text, name)) {
                cross_name = name;
                cross_decl = g;
                break;
              }
            }
            if (cross_decl != nullptr) break;
          }
        }
        if (!hit && cross_decl == nullptr) continue;
        if (ctx_.silenced(*f, it.line, kRuleDetUnorderedIter)) continue;
        if (it.func >= 0) {
          Seed({static_cast<int>(fi), it.func}, kRuleDetUnorderedIter,
               "range-for over unordered container", f->path, it.line);
        }
        if (cross_decl != nullptr && IsDeterministicLayer(f->layer) &&
            scan_set_.count(static_cast<int>(fi)) != 0) {
          ctx_.emit(*f, it.line, kRuleDetUnorderedIter,
                    "range-for over unordered container '" + cross_name +
                        "' (declared in " + cross_decl->path +
                        ") in deterministic layer " + f->layer +
                        ": iteration order is implementation-defined and "
                        "varies with rehashing; iterate a sorted view or "
                        "switch to std::map/set");
        }
      }
    }
  }

  void Propagate() {
    while (!frontier_.empty()) {
      const Key k = frontier_.back();
      frontier_.pop_back();
      auto rit = reverse_.find(k);
      if (rit == reverse_.end()) continue;
      for (const Key& caller : rit->second) {
        if (File(caller).layer == "telemetry") continue;
        if (taint_.count(caller) != 0) continue;
        TaintRecord r;
        r.next = k;
        taint_.emplace(caller, std::move(r));
        frontier_.push_back(caller);
      }
    }
    if (ctx_.stats != nullptr) {
      ctx_.stats->tainted_functions = static_cast<int>(taint_.size());
    }
  }

  // The chain from `k` down to its sink: "A::f -> B::g -> token [rule] at
  // file:line". Bounded against accidental cycles in the records.
  std::string Chain(Key k) const {
    std::string out;
    for (int hops = 0; hops < 64; ++hops) {
      const auto it = taint_.find(k);
      if (it == taint_.end()) break;
      const FunctionSym& fn = Fn(k);
      if (!out.empty()) out += " -> ";
      out += fn.qualified.empty() ? fn.name : fn.qualified;
      if (it->second.next == kNoKey) {
        out += " -> " + it->second.sink_token + " [" + it->second.sink_rule +
               "] at " + it->second.sink_file + ":" +
               std::to_string(it->second.sink_line);
        break;
      }
      k = it->second.next;
    }
    return out;
  }

  void EmitTaint() {
    std::set<std::pair<Key, std::string>> emitted;
    for (const auto& [from, out] : edges_) {
      FileSummary& caller_file =
          *all_[static_cast<std::size_t>(from.first)];
      if (scan_set_.count(from.first) == 0) continue;
      if (!IsDeterministicLayer(caller_file.layer)) continue;
      for (const Edge& e : out) {
        if (e.to.first == from.first) continue;  // same-file: direct rules own it
        const auto tit = taint_.find(e.to);
        if (tit == taint_.end()) continue;
        const FunctionSym& callee = Fn(e.to);
        const std::string chain = Chain(e.to);
        const std::string msg =
            "call into '" +
            (callee.qualified.empty() ? callee.name : callee.qualified) +
            "' (" + File(e.to).path +
            ") reaches a nondeterministic sink from deterministic layer " +
            caller_file.layer + "; chain: " + chain +
            "; hoist the nondeterminism behind an injected seam (sds::Rng, "
            "TickClock) or move it to eval/telemetry";
        if (!emitted.insert({{from.first, e.line}, msg}).second) continue;
        ctx_.emit(caller_file, e.line, kRuleDetTaint, msg);
      }
    }
  }

  PassContext& ctx_;
  std::vector<FileSummary*> all_;  // scan set first, then demand-loaded
  std::map<const FileSummary*, int> index_;
  std::map<std::string, int> path_index_;
  std::set<int> scan_set_;
  std::map<int, std::set<int>> closures_;
  std::map<Key, std::vector<Edge>> edges_;
  std::map<Key, std::vector<Key>> reverse_;
  std::map<Key, TaintRecord> taint_;
  std::vector<Key> frontier_;
};

}  // namespace

void RunGraphPasses(PassContext& ctx) { GraphPass(ctx).Run(); }

}  // namespace sdslint
