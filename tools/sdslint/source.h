// Raw-text handling for sdslint: file loading, comment/string stripping and
// the include / allow(...) comment parsers. Shared by the symbol pass
// (symbols.cpp) and the concurrency pass (conc.cpp re-reads only the files
// that define annotated classes).
#pragma once

#include <string>
#include <vector>

#include "sdslint/model.h"

namespace sdslint {

// A loaded file with comments and string bodies blanked out, line by line.
struct SourceText {
  std::string path;
  std::vector<std::string> raw;      // raw lines, 0-based
  std::vector<std::string> code;     // comments and string bodies blanked
  std::vector<std::string> strings;  // per line: concatenated literal bodies
};

// Reads `path`; returns false when the file cannot be opened. CRLF-tolerant.
bool LoadSource(const std::string& path, SourceText* out);

// Reads `path` as raw bytes (the cache-key form: no line splitting). Returns
// false when the file cannot be opened.
bool LoadFileBytes(const std::string& path, std::string* out);

// Builds a SourceText from already-loaded bytes (CRLF-tolerant line split +
// comment/string stripping). The cache-aware driver reads bytes once, hashes
// them, and only pays for this on a cache miss.
void BuildSourceText(const std::string& path, const std::string& bytes,
                     SourceText* out);

// Splits the raw rule list of an allow(...) comment on commas/whitespace —
// the exact tokenization ParseAllows applies (shared with the cache codec).
std::vector<std::string> SplitAllowRules(const std::string& raw);

std::string Trimmed(const std::string& s);

// Finds `token` in `line` with word boundaries on its alphanumeric ends;
// npos when absent.
std::size_t FindToken(const std::string& line, const std::string& token,
                      std::size_t from = 0);
bool HasToken(const std::string& line, const std::string& token);

// Parses the `#include` directives and `sdslint: allow(...)` comments of a
// loaded file (legacy-compatible semantics: a comment-only line silences the
// next line, a trailing comment its own line).
void ParseIncludes(const SourceText& text, std::vector<IncludeDirective>* out);
void ParseAllows(const SourceText& text, std::vector<AllowComment>* out);

}  // namespace sdslint
