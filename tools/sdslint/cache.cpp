#include "sdslint/cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "sdslint/source.h"

namespace sdslint {
namespace {

namespace fs = std::filesystem;

// One cache file per source file: <cache_dir>/<fnv1a64(path)>.sum. The entry
// is line-oriented: a `sdslint-cache <format> <hash>` header, then one
// tagged, tab-separated record per IR item. Strings are escaped so embedded
// tabs/newlines (possible in range-expression text) survive the round trip.

std::string HexHash(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

fs::path EntryPath(const std::string& cache_dir, const std::string& path) {
  return fs::path(cache_dir) / (HexHash(Fnv1a64(path)) + ".sum");
}

std::string Esc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string Unesc(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      default: out.push_back(s[i]);
    }
  }
  return out;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t b = 0;
  while (true) {
    const std::size_t e = line.find('\t', b);
    if (e == std::string::npos) {
      out.push_back(line.substr(b));
      return out;
    }
    out.push_back(line.substr(b, e - b));
    b = e + 1;
  }
}

// Strict int parse; flips *ok on failure so one bad record poisons the
// whole entry (a partial summary is worse than a cache miss).
long Num(const std::string& s, bool* ok) {
  if (s.empty()) {
    *ok = false;
    return 0;
  }
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') *ok = false;
  return v;
}

}  // namespace

bool LoadCachedSummary(const std::string& cache_dir, const std::string& path,
                       std::uint64_t content_hash, FileSummary* out) {
  std::ifstream in(EntryPath(cache_dir, path));
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  {
    std::istringstream header(line);
    std::string magic, hex;
    int format = 0;
    header >> magic >> format >> hex;
    if (magic != "sdslint-cache" || format != kSummaryFormatVersion ||
        hex != HexHash(content_hash)) {
      return false;
    }
  }

  FileSummary s;
  s.content_hash = content_hash;
  bool ok = true;
  while (ok && std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> f = SplitTabs(line);
    const std::string& tag = f[0];
    auto need = [&](std::size_t n) {
      if (f.size() < n) ok = false;
      return ok;
    };
    if (tag == "p" && need(4)) {
      s.path = Unesc(f[1]);
      s.layer = f[2];
      s.is_header = f[3] == "1";
    } else if (tag == "i" && need(4)) {
      s.includes.push_back({static_cast<int>(Num(f[1], &ok)), Unesc(f[3]),
                            f[2] == "1"});
    } else if (tag == "a" && need(4)) {
      AllowComment a;
      a.target_line = static_cast<int>(Num(f[1], &ok));
      a.comment_line = static_cast<int>(Num(f[2], &ok));
      a.raw_rules = Unesc(f[3]);
      a.rules = SplitAllowRules(a.raw_rules);
      s.allows.push_back(std::move(a));
    } else if (tag == "F" && need(8)) {
      FunctionSym fn;
      fn.name = Unesc(f[1]);
      fn.qualified = Unesc(f[2]);
      fn.class_name = Unesc(f[3]);
      fn.line = static_cast<int>(Num(f[4], &ok));
      fn.body_begin = static_cast<int>(Num(f[5], &ok));
      fn.body_end = static_cast<int>(Num(f[6], &ok));
      fn.is_definition = f[7] == "1";
      s.functions.push_back(std::move(fn));
    } else if (tag == "C" && need(5)) {
      s.calls.push_back({static_cast<int>(Num(f[1], &ok)),
                         static_cast<int>(Num(f[2], &ok)), Unesc(f[3]),
                         Unesc(f[4])});
    } else if (tag == "D" && need(8)) {
      FieldDecl d;
      d.class_name = Unesc(f[1]);
      d.name = Unesc(f[2]);
      d.line = static_cast<int>(Num(f[3], &ok));
      d.guarded_by = Unesc(f[4]);
      d.shard_owned = f[5] == "1";
      d.is_mutex = f[6] == "1";
      d.is_unordered = f[7] == "1";
      s.fields.push_back(std::move(d));
    } else if (tag == "L" && need(4)) {
      LockOp op;
      op.func = static_cast<int>(Num(f[1], &ok));
      op.line = static_cast<int>(Num(f[2], &ok));
      op.assert_held = f[3] == "1";
      for (std::size_t i = 4; i < f.size(); ++i) op.args.push_back(Unesc(f[i]));
      s.locks.push_back(std::move(op));
    } else if (tag == "S" && need(5)) {
      s.sinks.push_back({static_cast<int>(Num(f[1], &ok)),
                         static_cast<int>(Num(f[2], &ok)), Unesc(f[3]),
                         Unesc(f[4])});
    } else if (tag == "I" && need(4)) {
      s.iters.push_back({static_cast<int>(Num(f[1], &ok)),
                         static_cast<int>(Num(f[2], &ok)), Unesc(f[3])});
    } else if (tag == "U" && need(2)) {
      s.unordered_names.push_back(Unesc(f[1]));
    } else if (tag == "X" && need(3)) {
      s.std_uses.push_back({Unesc(f[1]), static_cast<int>(Num(f[2], &ok))});
    } else if (tag == "V" && need(3)) {
      s.verb_calls.push_back({static_cast<int>(Num(f[1], &ok)), Unesc(f[2])});
    } else if (tag == "P" && need(2)) {
      s.pragma_diag_line = static_cast<int>(Num(f[1], &ok));
    } else if (tag == "N" && need(5)) {
      s.snapshot.first_use = static_cast<int>(Num(f[1], &ok));
      s.snapshot.versioned = f[2] == "1";
      s.wal.first_use = static_cast<int>(Num(f[3], &ok));
      s.wal.versioned = f[4] == "1";
    } else {
      ok = false;  // unknown tag: written by a future format, discard
    }
  }
  if (!ok || s.path != path) return false;
  *out = std::move(s);
  return true;
}

bool StoreCachedSummary(const std::string& cache_dir,
                        const FileSummary& s) {
  std::error_code ec;
  fs::create_directories(cache_dir, ec);
  std::ofstream outf(EntryPath(cache_dir, s.path),
                     std::ios::trunc | std::ios::binary);
  if (!outf) return false;
  outf << "sdslint-cache " << kSummaryFormatVersion << ' '
       << HexHash(s.content_hash) << '\n';
  outf << "p\t" << Esc(s.path) << '\t' << s.layer << '\t' << (s.is_header ? 1 : 0)
       << '\n';
  for (const IncludeDirective& inc : s.includes) {
    outf << "i\t" << inc.line << '\t' << (inc.angle ? 1 : 0) << '\t'
         << Esc(inc.target) << '\n';
  }
  for (const AllowComment& a : s.allows) {
    outf << "a\t" << a.target_line << '\t' << a.comment_line << '\t'
         << Esc(a.raw_rules) << '\n';
  }
  for (const FunctionSym& fn : s.functions) {
    outf << "F\t" << Esc(fn.name) << '\t' << Esc(fn.qualified) << '\t'
         << Esc(fn.class_name) << '\t' << fn.line << '\t' << fn.body_begin
         << '\t' << fn.body_end << '\t' << (fn.is_definition ? 1 : 0) << '\n';
  }
  for (const CallSite& c : s.calls) {
    outf << "C\t" << c.func << '\t' << c.line << '\t' << Esc(c.name) << '\t'
         << Esc(c.qualifier) << '\n';
  }
  for (const FieldDecl& d : s.fields) {
    outf << "D\t" << Esc(d.class_name) << '\t' << Esc(d.name) << '\t'
         << d.line << '\t' << Esc(d.guarded_by) << '\t' << (d.shard_owned ? 1 : 0)
         << '\t' << (d.is_mutex ? 1 : 0) << '\t' << (d.is_unordered ? 1 : 0)
         << '\n';
  }
  for (const LockOp& op : s.locks) {
    outf << "L\t" << op.func << '\t' << op.line << '\t'
         << (op.assert_held ? 1 : 0);
    for (const std::string& a : op.args) outf << '\t' << Esc(a);
    outf << '\n';
  }
  for (const SinkOccur& sk : s.sinks) {
    outf << "S\t" << sk.func << '\t' << sk.line << '\t' << Esc(sk.rule) << '\t'
         << Esc(sk.token) << '\n';
  }
  for (const IterSite& it : s.iters) {
    outf << "I\t" << it.func << '\t' << it.line << '\t' << Esc(it.range_text)
         << '\n';
  }
  for (const std::string& n : s.unordered_names) {
    outf << "U\t" << Esc(n) << '\n';
  }
  for (const StdUse& u : s.std_uses) {
    outf << "X\t" << Esc(u.ident) << '\t' << u.line << '\n';
  }
  for (const VerbCall& v : s.verb_calls) {
    outf << "V\t" << v.line << '\t' << Esc(v.verb) << '\n';
  }
  outf << "P\t" << s.pragma_diag_line << '\n';
  outf << "N\t" << s.snapshot.first_use << '\t' << (s.snapshot.versioned ? 1 : 0)
       << '\t' << s.wal.first_use << '\t' << (s.wal.versioned ? 1 : 0) << '\n';
  return static_cast<bool>(outf);
}

}  // namespace sdslint
