// Pass 4: concurrency discipline from the src/common/annotations.h macros.
//
//   conc-guarded-by    a field tagged SDS_GUARDED_BY(mu) may only be touched
//                      by methods of its class that hold `mu` (a RAII guard
//                      naming it, mu.lock(), or SDS_ASSERT_HELD(mu));
//                      constructors/destructors are exempt (no concurrent
//                      access before/after the object's lifetime).
//   conc-shard-owned   a field tagged SDS_SHARD_OWNED documents single-thread
//                      shard affinity; a method that acquires ANY lock while
//                      touching it is mixing the two ownership disciplines
//                      (and a field can't be both guarded and shard-owned).
//   conc-lock-order    member-mutex acquisition order must form a DAG across
//                      the whole program; a cycle is a latent deadlock.
//                      std::scoped_lock's multi-arg form orders internally,
//                      so it contributes no edges among its own arguments.
//                      Function-local mutexes are skipped — they cannot
//                      participate in a cross-function deadlock.
//
// Field accesses are not part of the FileSummary IR (recording every member
// token would bloat the cache for one rule); instead this pass lazily
// re-reads only the files that define methods of annotated classes.
#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sdslint/passes.h"
#include "sdslint/source.h"

namespace sdslint {
namespace {

struct ClassFields {
  std::vector<const FieldDecl*> guarded;
  std::vector<const FieldDecl*> shard_owned;
};

struct LockEdge {
  FileSummary* file;
  int line;
};

void CheckMethods(PassContext& ctx,
                  const std::map<std::string, ClassFields>& classes) {
  std::map<std::string, SourceText> bodies;  // lazily loaded, per path
  for (FileSummary* f : ctx.files) {
    for (std::size_t k = 0; k < f->functions.size(); ++k) {
      const FunctionSym& fn = f->functions[k];
      if (!fn.is_definition || fn.body_begin <= 0) continue;
      auto cit = classes.find(fn.class_name);
      if (cit == classes.end()) continue;
      const bool is_ctor_dtor =
          fn.name == fn.class_name || fn.name == "~" + fn.class_name;

      // Lock evidence for this method.
      std::set<std::string> held;
      bool acquires_any = false;
      for (const LockOp& op : f->locks) {
        if (op.func != static_cast<int>(k)) continue;
        held.insert(op.args.begin(), op.args.end());
        if (!op.assert_held) acquires_any = true;
      }

      auto bit = bodies.find(f->path);
      if (bit == bodies.end()) {
        SourceText text;
        if (!LoadSource(f->path, &text)) continue;
        bit = bodies.emplace(f->path, std::move(text)).first;
      }
      const SourceText& text = bit->second;

      auto first_access = [&](const std::string& name) -> int {
        const std::size_t begin = static_cast<std::size_t>(fn.body_begin) - 1;
        const std::size_t end =
            std::min(static_cast<std::size_t>(fn.body_end), text.code.size());
        for (std::size_t i = begin; i < end; ++i) {
          if (HasToken(text.code[i], name)) return static_cast<int>(i) + 1;
        }
        return 0;
      };

      for (const FieldDecl* field : cit->second.guarded) {
        if (is_ctor_dtor) break;
        if (held.count(field->guarded_by) != 0) continue;
        const int line = first_access(field->name);
        if (line == 0) continue;
        ctx.emit(*f, line, kRuleConcGuardedBy,
                 "field '" + field->name + "' is SDS_GUARDED_BY(" +
                     field->guarded_by + ") but " + fn.class_name +
                     "::" + fn.name + " accesses it without holding '" +
                     field->guarded_by +
                     "' (no lock_guard/unique_lock/scoped_lock on it and no "
                     "SDS_ASSERT_HELD in the method)");
      }
      for (const FieldDecl* field : cit->second.shard_owned) {
        if (!acquires_any) break;
        const int line = first_access(field->name);
        if (line == 0) continue;
        ctx.emit(*f, line, kRuleConcShardOwned,
                 "field '" + field->name + "' is SDS_SHARD_OWNED "
                 "(single-thread shard affinity) but " + fn.class_name +
                     "::" + fn.name +
                     " acquires a lock; shard-owned state must never be "
                     "shared across threads — drop the annotation or the "
                     "lock");
      }
    }
  }
}

void CheckLockOrder(PassContext& ctx,
                    const std::set<std::string>& durable_mutexes) {
  // Acquisition-order digraph: a -> b when b is acquired while a is held
  // (approximated as "a acquired earlier in the same function" — guards in
  // this codebase live to end of scope). First witness kept for the report.
  std::map<std::string, std::map<std::string, LockEdge>> graph;
  for (FileSummary* f : ctx.files) {
    // Group this file's acquisitions by function, in line order (the
    // summary records them in token order already).
    std::map<int, std::vector<const LockOp*>> by_func;
    for (const LockOp& op : f->locks) {
      if (op.assert_held || op.func < 0) continue;
      by_func[op.func].push_back(&op);
    }
    for (const auto& [func, ops] : by_func) {
      for (std::size_t j = 1; j < ops.size(); ++j) {
        for (std::size_t i = 0; i < j; ++i) {
          for (const std::string& a : ops[i]->args) {
            if (durable_mutexes.count(a) == 0) continue;
            for (const std::string& b : ops[j]->args) {
              if (a == b || durable_mutexes.count(b) == 0) continue;
              graph[a].emplace(b, LockEdge{f, ops[j]->line});
            }
          }
        }
      }
    }
  }

  // Cycle detection: three-color DFS; each back edge closes a cycle and is
  // reported at its first witness.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::set<std::pair<std::string, std::string>> reported;

  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        auto git = graph.find(node);
        if (git != graph.end()) {
          for (const auto& [next, edge] : git->second) {
            if (color[next] == 1) {
              if (!reported.insert({node, next}).second) continue;
              // The gray path from `next` to `node` plus this edge is the cycle.
              std::string cycle = "'" + next + "'";
              bool in_cycle = false;
              for (const std::string& s : stack) {
                if (s == next) in_cycle = true;
                if (in_cycle && s != next) cycle += " -> '" + s + "'";
              }
              cycle += " -> '" + next + "'";
              ctx.emit(*edge.file, edge.line, kRuleConcLockOrder,
                       "lock-order cycle: " + cycle +
                           " (this acquisition closes the cycle); acquire "
                           "member mutexes in one global order or take them "
                           "together with std::scoped_lock");
            } else if (color[next] == 0) {
              visit(next);
            }
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  for (const auto& [node, _] : graph) {
    if (color[node] == 0) visit(node);
  }
}

}  // namespace

void RunConcPass(PassContext& ctx) {
  std::map<std::string, ClassFields> classes;
  std::set<std::string> durable_mutexes;  // member / namespace-scope mutexes
  for (FileSummary* f : ctx.files) {
    for (const FieldDecl& field : f->fields) {
      if (field.is_mutex) durable_mutexes.insert(field.name);
      if (field.class_name.empty()) continue;
      ClassFields& cf = classes[field.class_name];
      if (!field.guarded_by.empty()) cf.guarded.push_back(&field);
      if (field.shard_owned) cf.shard_owned.push_back(&field);
      if (field.shard_owned && !field.guarded_by.empty()) {
        ctx.emit(*f, field.line, kRuleConcShardOwned,
                 "field '" + field.name +
                     "' is both SDS_GUARDED_BY and SDS_SHARD_OWNED; the two "
                     "ownership disciplines are mutually exclusive — pick "
                     "one");
      }
    }
  }
  // Drop classes with nothing annotated before the method sweep.
  for (auto it = classes.begin(); it != classes.end();) {
    if (it->second.guarded.empty() && it->second.shard_owned.empty()) {
      it = classes.erase(it);
    } else {
      ++it;
    }
  }
  if (!classes.empty()) CheckMethods(ctx, classes);
  if (!durable_mutexes.empty()) CheckLockOrder(ctx, durable_mutexes);
}

}  // namespace sdslint
