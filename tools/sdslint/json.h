// Minimal JSON string escaping shared by the legacy --json emitter
// (lint.cpp), the SARIF/stats emitters (output.cpp) and the CLI.
#pragma once

#include <string>

namespace sdslint {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace sdslint
