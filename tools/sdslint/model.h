// sdslint v2 intermediate representation (DESIGN.md §16).
//
// Pass 1 (symbols.cpp) distills every translation unit into a FileSummary:
// everything the later passes and every rule need, with the raw text gone.
// The summary is what the on-disk analysis cache stores (cache.cpp) — a warm
// run deserializes summaries for unchanged files and never re-reads their
// text — and what passes 2–4 (call-graph linkage, interprocedural taint,
// concurrency discipline) consume. Rules therefore never touch raw lines;
// if a rule needs a fact, pass 1 records it here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sdslint {

// Bump to invalidate every on-disk cache entry (format or extraction change).
inline constexpr int kSummaryFormatVersion = 2;

struct IncludeDirective {
  int line = 0;
  std::string target;
  bool angle = false;
};

// One allow(...) suppression comment. `used` is recomputed every run at
// emission time, never cached.
struct AllowComment {
  int target_line = 0;   // the line this suppression silences
  int comment_line = 0;  // line the comment itself is on
  std::vector<std::string> rules;
  std::string raw_rules;
  bool used = false;
};

// A function declaration or definition found by the symbol pass.
struct FunctionSym {
  std::string name;       // last component ("Visit", "~Foo", "operator==")
  std::string qualified;  // best-effort ns::Class::Visit
  std::string class_name; // enclosing or explicitly qualified class, "" free
  int line = 0;           // line of the name token
  int body_begin = 0;     // 0 for declarations
  int body_end = 0;
  bool is_definition = false;
};

// A call site inside a function body: `name(`, optionally qualified
// (`Class::name(`). func indexes FileSummary::functions.
struct CallSite {
  int func = -1;
  int line = 0;
  std::string name;
  std::string qualifier;  // "" for unqualified / member-syntax calls
};

// A data member (class scope) or namespace-scope variable declaration the
// concurrency / unordered rules care about.
struct FieldDecl {
  std::string class_name;  // "" for namespace scope
  std::string name;
  int line = 0;
  std::string guarded_by;  // SDS_GUARDED_BY(mutex) argument, "" if none
  bool shard_owned = false;  // SDS_SHARD_OWNED present
  bool is_mutex = false;     // declared type mentions *mutex
  bool is_unordered = false; // declared type is an unordered container
};

// A lock acquisition (lock_guard / unique_lock / scoped_lock / shared_lock /
// m.lock()) or an SDS_ASSERT_HELD(m) assertion inside a function body.
struct LockOp {
  int func = -1;
  int line = 0;
  std::vector<std::string> args;  // mutex name token per acquired mutex
  bool assert_held = false;       // SDS_ASSERT_HELD: evidence, not acquisition
};

// Sink kinds for the determinism rules; `rule` is the direct det-* rule id
// the sink maps to and `token` the offending token (for messages).
struct SinkOccur {
  int func = -1;  // -1: outside any recorded function body
  int line = 0;
  std::string rule;   // kRuleDetRand / kRuleDetClock / kRuleDetPointerPrint
  std::string token;  // "rand", "system_clock", "%p", ...
};

// A range-for site; the range expression text is kept for unordered-name
// matching (same-file legacy behaviour plus the cross-TU closure check).
struct IterSite {
  int func = -1;
  int line = 0;
  std::string range_text;
};

// First use line of a std:: identifier covered by the self-containment rule.
struct StdUse {
  std::string ident;
  int line = 0;
};

// Member-call occurrences of the restricted mutation verbs
// (Migrate/StopVm/ResumeVm and the AttributionLedger Record* family).
struct VerbCall {
  int line = 0;
  std::string verb;
};

// First SnapshotWriter/Reader (resp. WalWriter/Reader) use and whether the
// file references the version pin token (det-snapshot/wal-versioned rules).
struct VersionPinUse {
  int first_use = 0;
  bool versioned = false;
};

struct FileSummary {
  std::string path;   // generic, lexically normal, as discovered
  std::string layer;  // "" when outside any known layer
  bool is_header = false;
  std::uint64_t content_hash = 0;  // fnv1a64 of raw bytes

  std::vector<IncludeDirective> includes;
  std::vector<AllowComment> allows;
  std::vector<FunctionSym> functions;
  std::vector<CallSite> calls;
  std::vector<FieldDecl> fields;
  std::vector<LockOp> locks;
  std::vector<SinkOccur> sinks;
  std::vector<IterSite> iters;
  std::vector<std::string> unordered_names;  // file-wide declared names
  std::vector<StdUse> std_uses;
  std::vector<VerbCall> verb_calls;
  int pragma_diag_line = 0;  // 0 = clean / not applicable
  VersionPinUse snapshot;
  VersionPinUse wal;
};

// FNV-1a 64-bit, the hash used for cache keys and baseline fingerprints.
inline std::uint64_t Fnv1a64(const char* data, std::size_t n,
                             std::uint64_t seed = 1469598103934665603ull) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}
inline std::uint64_t Fnv1a64(const std::string& s,
                             std::uint64_t seed = 1469598103934665603ull) {
  return Fnv1a64(s.data(), s.size(), seed);
}

// Providers for the self-containment rule: returns the comma-separated
// <header> list satisfying std::`ident`, or nullptr when the identifier is
// out of the rule's scope. Defined in symbols.cpp next to the table.
const char* StdProvidersFor(const std::string& ident);

}  // namespace sdslint
