#include "sdslint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace sdslint {
namespace {

namespace fs = std::filesystem;

bool IsWord(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ---------------------------------------------------------------------------
// Layer model
// ---------------------------------------------------------------------------

struct LayerInfo {
  const char* name;
  int rank;
  bool deterministic;
};

// The DAG from DESIGN.md §11. Equal rank == sibling layers that must not
// include each other. tests/bench/tools/examples sit above everything and may
// include anything.
constexpr LayerInfo kLayers[] = {
    {"common", 0, true},
    {"stats", 1, true},      {"signal", 1, true},    {"telemetry", 1, false},
    {"sim", 2, true},
    {"vm", 3, true},
    {"pcm", 4, true},
    {"attacks", 5, true},    {"workloads", 5, true}, {"detect", 5, true},
    {"fault", 5, true},
    {"cluster", 6, true},    {"obs", 6, true},
    {"svc", 7, true},
    {"eval", 8, false},
    {"tests", 100, false},   {"bench", 100, false},  {"tools", 100, false},
    {"examples", 100, false},
};

const LayerInfo* FindLayer(const std::string& name) {
  for (const auto& l : kLayers) {
    if (name == l.name) return &l;
  }
  return nullptr;
}

// Layers whose sources live under src/<layer>/ (vs the top-level trees).
bool IsSrcLayer(const std::string& name) {
  const LayerInfo* l = FindLayer(name);
  return l != nullptr && l->rank < 100;
}

// Legal same-rank edges: within the rank-1 band the spectral code builds on
// descriptive statistics, never the reverse.
struct SiblingEdge {
  const char* from;
  const char* to;
};
constexpr SiblingEdge kAllowedSiblingEdges[] = {
    {"signal", "stats"},
};

bool SiblingEdgeAllowed(const std::string& from, const std::string& to) {
  for (const SiblingEdge& e : kAllowedSiblingEdges) {
    if (from == e.from && to == e.to) return true;
  }
  return false;
}

// Layers whose dependents are enumerated explicitly: the rank test alone
// would let EVERY higher layer include them, but these seams are narrower
// than their rank. The non-layer trees (tests/bench/tools/examples, rank >=
// 100) may always include them.
struct RestrictedLayer {
  const char* name;
  const char* dependents;  // comma-separated src layers allowed to include it
};
constexpr RestrictedLayer kRestrictedLayers[] = {
    // fault wraps two seams of the response pipeline: the pcm SampleSource
    // (monitoring-plane injection) and the Actuator's ActuationFaultPlan
    // (actuation-plane injection). Only the layers that own those seams —
    // cluster and eval — may depend on it; the detectors under test must
    // never see the injection machinery. svc joins them for its stable-store
    // crash points (fault/service_plan.h).
    {"fault", "cluster,eval,svc"},
    // obs is the off-path observability plane: rollups, SLO scoring and
    // detector snapshots consume detector state but nothing on the
    // decision path may grow a dependency on its aggregates. Only eval
    // (which replays merged streams) and svc (whose checkpoints ride the
    // versioned snapshot envelope) may include it from src/.
    {"obs", "eval,svc"},
    // svc is the streaming service shell around the detectors; only the
    // evaluation harness may drive it from src/.
    {"svc", "eval"},
};

const RestrictedLayer* FindRestricted(const std::string& name) {
  for (const RestrictedLayer& r : kRestrictedLayers) {
    if (name == r.name) return &r;
  }
  return nullptr;
}

bool RestrictedDependentAllowed(const RestrictedLayer& restricted,
                                const std::string& from) {
  std::string cur;
  for (const char* p = restricted.dependents;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (cur == from) return true;
      cur.clear();
      if (*p == '\0') return false;
    } else {
      cur.push_back(*p);
    }
  }
}

// Wall-clock reads that are part of a layer's charter even though the layer
// would otherwise be rank-checked. Today: the telemetry profiler's kWall
// domain. telemetry is already non-deterministic by table, so these entries
// are documentation-grade belt-and-braces — they keep the tool correct if
// someone later flips telemetry deterministic.
struct BuiltinAllow {
  const char* path_fragment;
  const char* rule;
};
constexpr BuiltinAllow kBuiltinAllows[] = {
    {"src/telemetry/", kRuleDetClock},
    {"src/eval/experiment", kRuleDetClock},  // wall-clock run timing report
};

// ---------------------------------------------------------------------------
// Parsed file
// ---------------------------------------------------------------------------

struct IncludeDirective {
  int line = 0;
  std::string target;
  bool angle = false;
};

struct AllowComment {
  int target_line = 0;   // the line this suppression silences
  int comment_line = 0;  // where the comment sits
  std::vector<std::string> rules;
  std::string raw_rules;
  bool used = false;
};

struct ParsedFile {
  std::string path;           // as discovered (generic form)
  std::string layer;          // "" when outside any known layer
  bool is_header = false;
  std::vector<std::string> raw;      // raw lines, 0-based
  std::vector<std::string> code;     // comments and string bodies blanked
  std::vector<std::string> strings;  // per line: concatenated literal bodies
  std::vector<IncludeDirective> includes;
  std::vector<AllowComment> allows;
};

// Blanks comments and string/char literal bodies out of `raw` line by line,
// carrying block-comment state across lines. Literal bodies are collected per
// line into `strings` so the %p rule can look only inside format strings.
// Line/token analysis does not need raw-string or trigraph fidelity; the one
// R"( in the tree is handled well enough by the '"' state machine.
void StripFile(ParsedFile& f) {
  bool in_block = false;
  f.code.reserve(f.raw.size());
  f.strings.reserve(f.raw.size());
  for (const std::string& line : f.raw) {
    std::string code;
    code.reserve(line.size());
    std::string lits;
    bool in_string = false;
    bool in_char = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      if (in_block) {
        if (c == '*' && next == '/') {
          in_block = false;
          ++i;
        }
        code.push_back(' ');
        continue;
      }
      if (in_string || in_char) {
        const char quote = in_string ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          if (in_string) lits.push_back(next);
          code.append(2, ' ');
          ++i;
          continue;
        }
        if (c == quote) {
          in_string = in_char = false;
          code.push_back(c);
        } else {
          if (in_string) lits.push_back(c);
          code.push_back(' ');
        }
        continue;
      }
      if (c == '/' && next == '/') break;  // line comment: drop the rest
      if (c == '/' && next == '*') {
        in_block = true;
        code.append(2, ' ');
        ++i;
        continue;
      }
      if (c == '"') {
        in_string = true;
        code.push_back(c);
        continue;
      }
      if (c == '\'') {
        in_char = true;
        code.push_back(c);
        continue;
      }
      code.push_back(c);
    }
    f.code.push_back(std::move(code));
    f.strings.push_back(std::move(lits));
  }
}

std::string Trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

void ParseIncludes(ParsedFile& f) {
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    std::string t = Trimmed(f.raw[i]);
    if (t.empty() || t[0] != '#') continue;
    std::size_t p = t.find_first_not_of(" \t", 1);
    if (p == std::string::npos || t.compare(p, 7, "include") != 0) continue;
    p = t.find_first_of("\"<", p + 7);
    if (p == std::string::npos) continue;
    const bool angle = t[p] == '<';
    const char close = angle ? '>' : '"';
    const std::size_t end = t.find(close, p + 1);
    if (end == std::string::npos) continue;
    f.includes.push_back(
        {static_cast<int>(i) + 1, t.substr(p + 1, end - p - 1), angle});
  }
}

// Suppression comments — `sdslint` prefix, colon, then allow(rule[, rule]).
// The trailing form silences its own line; a comment-only line silences the
// next line.
void ParseAllows(ParsedFile& f) {
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    const std::string& line = f.raw[i];
    std::size_t p = line.find("sdslint:");
    if (p == std::string::npos) continue;
    std::size_t q = line.find_first_not_of(" \t", p + 8);
    if (q == std::string::npos || line.compare(q, 5, "allow") != 0) continue;
    std::size_t open = line.find('(', q + 5);
    if (open == std::string::npos) continue;
    std::size_t close = line.find(')', open);
    if (close == std::string::npos) continue;
    AllowComment a;
    a.comment_line = static_cast<int>(i) + 1;
    a.raw_rules = line.substr(open + 1, close - open - 1);
    std::string cur;
    for (char c : a.raw_rules + ",") {
      if (c == ',' || c == ' ' || c == '\t') {
        if (!cur.empty()) a.rules.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    const bool comment_only = Trimmed(f.code[i]).empty();
    a.target_line = comment_only ? a.comment_line + 1 : a.comment_line;
    f.allows.push_back(std::move(a));
  }
}

// Finds `token` in `line` with word boundaries on its alphanumeric ends.
// Returns npos when absent.
std::size_t FindToken(const std::string& line, const std::string& token,
                      std::size_t from = 0) {
  for (std::size_t p = line.find(token, from); p != std::string::npos;
       p = line.find(token, p + 1)) {
    const bool left_ok = p == 0 || !IsWord(line[p - 1]);
    const std::size_t after = p + token.size();
    const bool right_ok = after >= line.size() || !IsWord(line[after]);
    if (left_ok && right_ok) return p;
  }
  return std::string::npos;
}

bool HasToken(const std::string& line, const std::string& token) {
  return FindToken(line, token) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

struct StdProvider {
  const char* ident;      // identifier after std::
  const char* providers;  // comma-separated satisfying <headers>
};

// Identifiers checked by hdr-self-contained. Deliberately restricted to types
// with an unambiguous home header (plus a few multi-provider stream cases) so
// the rule stays false-positive-free; pervasive transitively-available names
// (size_t, pair, move, swap) are out of scope.
constexpr StdProvider kStdProviders[] = {
    {"string", "string"},
    {"string_view", "string_view"},
    {"vector", "vector"},
    {"map", "map"},
    {"multimap", "map"},
    {"set", "set"},
    {"multiset", "set"},
    {"unordered_map", "unordered_map"},
    {"unordered_set", "unordered_set"},
    {"optional", "optional"},
    {"function", "functional"},
    {"array", "array"},
    {"deque", "deque"},
    {"atomic", "atomic"},
    {"thread", "thread"},
    {"mutex", "mutex"},
    {"lock_guard", "mutex"},
    {"unique_lock", "mutex"},
    {"condition_variable", "condition_variable"},
    {"chrono", "chrono"},
    {"int8_t", "cstdint"},
    {"int16_t", "cstdint"},
    {"int32_t", "cstdint"},
    {"int64_t", "cstdint"},
    {"uint8_t", "cstdint"},
    {"uint16_t", "cstdint"},
    {"uint32_t", "cstdint"},
    {"uint64_t", "cstdint"},
    {"FILE", "cstdio"},
    {"unique_ptr", "memory"},
    {"shared_ptr", "memory"},
    {"make_unique", "memory"},
    {"make_shared", "memory"},
    {"variant", "variant"},
    {"monostate", "variant"},
    {"span", "span"},
    {"ifstream", "fstream"},
    {"ofstream", "fstream"},
    {"stringstream", "sstream"},
    {"ostringstream", "sstream"},
    {"istringstream", "sstream"},
    {"ostream", "ostream,iostream,fstream,sstream,iosfwd"},
    {"istream", "istream,iostream,fstream,sstream,iosfwd"},
};

class Analyzer {
 public:
  explicit Analyzer(const Options& options) : options_(options) {}

  Result Run() {
    CollectFiles();
    for (const std::string& path : scan_list_) Load(path);
    for (const std::string& path : scan_list_) Check(files_.at(path));
    std::sort(result_.diagnostics.begin(), result_.diagnostics.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    for (const std::string& path : scan_list_) {
      for (const AllowComment& a : files_.at(path).allows) {
        result_.suppressions.push_back(
            {path, a.target_line, a.comment_line, a.raw_rules, a.used});
      }
    }
    result_.files_scanned = static_cast<int>(scan_list_.size());
    return std::move(result_);
  }

 private:
  static bool IsSourceFile(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
  }

  bool Ignored(const std::string& generic) const {
    for (const std::string& frag : options_.ignores) {
      if (!frag.empty() && generic.find(frag) != std::string::npos) return true;
    }
    return false;
  }

  void CollectFiles() {
    std::set<std::string> seen;
    for (const std::string& root : options_.paths) {
      std::error_code ec;
      if (fs::is_directory(root, ec)) {
        for (fs::recursive_directory_iterator it(root, ec), end;
             !ec && it != end; it.increment(ec)) {
          if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
            const std::string g =
                it->path().lexically_normal().generic_string();
            if (!Ignored(g)) seen.insert(g);
          }
        }
      } else if (fs::is_regular_file(root, ec) && IsSourceFile(root)) {
        const std::string g = fs::path(root).lexically_normal().generic_string();
        if (!Ignored(g)) seen.insert(g);
      }
    }
    scan_list_.assign(seen.begin(), seen.end());
  }

  ParsedFile* Load(const std::string& path) {
    auto it = files_.find(path);
    if (it != files_.end()) return &it->second;
    std::ifstream in(path);
    if (!in) return nullptr;
    ParsedFile f;
    f.path = path;
    f.layer = LayerOfPath(path);
    const std::string ext = fs::path(path).extension().string();
    f.is_header = ext == ".h" || ext == ".hpp";
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      f.raw.push_back(line);
    }
    StripFile(f);
    ParseIncludes(f);
    ParseAllows(f);
    return &files_.emplace(path, std::move(f)).first->second;
  }

  // Resolves a quoted include ("detect/params.h") to a file under
  // <include_root>/src/, loading it on demand (it need not be in the scan
  // set). Returns nullptr when the target does not exist.
  ParsedFile* Resolve(const std::string& target) {
    const fs::path p = fs::path(options_.include_root) / "src" / target;
    std::error_code ec;
    if (!fs::is_regular_file(p, ec)) return nullptr;
    return Load(p.lexically_normal().generic_string());
  }

  bool BuiltinAllowed(const ParsedFile& f, const std::string& rule) const {
    for (const BuiltinAllow& a : kBuiltinAllows) {
      if (rule == a.rule && f.path.find(a.path_fragment) != std::string::npos)
        return true;
    }
    return false;
  }

  void Emit(ParsedFile& f, int line, const std::string& rule,
            std::string message) {
    if (BuiltinAllowed(f, rule)) return;
    for (AllowComment& a : f.allows) {
      if (a.target_line != line) continue;
      for (const std::string& r : a.rules) {
        if (r == rule || r == "all" || r == "*") {
          a.used = true;
          return;
        }
      }
    }
    result_.diagnostics.push_back({f.path, line, rule, std::move(message)});
  }

  // ---- rules ----

  void Check(ParsedFile& f) {
    CheckIncludes(f);
    if (f.is_header) {
      CheckPragmaOnce(f);
      CheckSelfContained(f);
    }
    if (IsDeterministicLayer(f.layer)) {
      CheckDeterminismTokens(f);
      CheckUnorderedIteration(f);
    }
    CheckActuationIdempotent(f);
    CheckAttribLedger(f);
    CheckSnapshotVersioned(f);
    CheckWalVersioned(f);
  }

  // det-snapshot-versioned: an obs-layer file that serializes or parses a
  // snapshot byte stream (SnapshotWriter / SnapshotReader) must reference
  // kSnapshotVersion somewhere in its code, so every blob format in the obs
  // plane carries the version pin that OpenSnapshot rejects on (DESIGN.md
  // §13). Detector-side SaveState payloads are out of scope: they are always
  // wrapped in the versioned obs envelope before leaving the process.
  void CheckSnapshotVersioned(ParsedFile& f) {
    if (f.layer != "obs") return;
    int first_use = 0;
    bool versioned = false;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      if (first_use == 0 && (HasToken(line, "SnapshotWriter") ||
                             HasToken(line, "SnapshotReader"))) {
        first_use = static_cast<int>(i) + 1;
      }
      if (HasToken(line, "kSnapshotVersion")) versioned = true;
    }
    if (first_use != 0 && !versioned) {
      Emit(f, first_use, kRuleDetSnapshotVersioned,
           "obs-layer snapshot serialization without a kSnapshotVersion "
           "reference: every blob format must carry the version pin that "
           "OpenSnapshot validates, or restores after a format change would "
           "misparse old bytes instead of rejecting them");
    }
  }

  // det-wal-versioned: a svc-layer file that encodes or scans WAL frames
  // (WalWriter / WalReader) must reference obs::kSnapshotVersion somewhere
  // in its code, so every WAL payload carries the same version pin the
  // checkpoint envelope does (DESIGN.md §14). Without it, a recovery after
  // a record-format change would misparse old frames as garbage counters
  // instead of stopping the scan at a version mismatch.
  void CheckWalVersioned(ParsedFile& f) {
    if (f.layer != "svc") return;
    int first_use = 0;
    bool versioned = false;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      if (first_use == 0 &&
          (HasToken(line, "WalWriter") || HasToken(line, "WalReader"))) {
        first_use = static_cast<int>(i) + 1;
      }
      // kWalPayloadVersion is defined as obs::kSnapshotVersion in svc/wal.h,
      // so referencing the alias references the pin.
      if (HasToken(line, "kSnapshotVersion") ||
          HasToken(line, "kWalPayloadVersion")) {
        versioned = true;
      }
    }
    if (first_use != 0 && !versioned) {
      Emit(f, first_use, kRuleDetWalVersioned,
           "svc-layer WAL framing without a kSnapshotVersion reference: "
           "every WAL record must carry the snapshot version pin so a "
           "recovery scan rejects frames written by a different format "
           "instead of misparsing them");
    }
  }

  // det-actuation-idempotent: inside the cluster layer, only the Cluster
  // itself and the Actuator may invoke the placement-mutating verbs
  // (Migrate / StopVm / ResumeVm). Everything else — the MitigationEngine
  // above all — must route commands through the Actuator so the
  // one-outstanding-command-per-VM idempotency guard and the actuation fault
  // plan stay in the path. Tests/bench/tools drive the Cluster directly and
  // are out of scope (they are not layer "cluster").
  void CheckActuationIdempotent(ParsedFile& f) {
    if (f.layer != "cluster") return;
    if (f.path.find("cluster/cluster.") != std::string::npos ||
        f.path.find("cluster/actuator.") != std::string::npos) {
      return;
    }
    static constexpr const char* kVerbs[] = {"Migrate", "StopVm", "ResumeVm"};
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      for (const char* verb : kVerbs) {
        for (std::size_t p = FindToken(line, verb); p != std::string::npos;
             p = FindToken(line, verb, p + 1)) {
          // Member-call syntax only: obj.Verb( / ptr->Verb(. Declarations
          // and the Actuator's SubmitMigrate wrappers never match (word
          // boundary / preceding character).
          if (p == 0) continue;
          const char before = line[p - 1];
          if (before != '.' && before != '>') continue;
          std::size_t q =
              line.find_first_not_of(" \t", p + std::strlen(verb));
          if (q == std::string::npos || line[q] != '(') continue;
          Emit(f, static_cast<int>(i) + 1, kRuleDetActuationIdempotent,
               std::string(verb) + "() called directly from " + f.path +
                   ": cluster-layer code must route placement changes "
                   "through the Actuator (SubmitMigrate/SubmitStop/"
                   "SubmitResume) so the idempotency guard and the actuation "
                   "fault plan apply");
        }
      }
    }
  }

  // det-attrib-ledger: the interference attribution ledger is a sim-layer
  // observer — only the hardware models (cache, bus, machine) may record
  // into it. A software layer member-calling a Record* mutation verb would
  // fabricate hardware evidence, and a forensic report built on fabricated
  // evidence convicts whoever the caller wanted convicted. Consumers (pcm
  // sampler, forensics engine) read through the const accessors only.
  // Tests/bench/tools are out of scope (they are not src layers).
  void CheckAttribLedger(ParsedFile& f) {
    if (!IsSrcLayer(f.layer) || f.layer == "sim") return;
    static constexpr const char* kVerbs[] = {"RecordTickStart",
                                             "RecordEviction",
                                             "RecordBusOccupancy",
                                             "RecordBusStall"};
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      for (const char* verb : kVerbs) {
        for (std::size_t p = FindToken(line, verb); p != std::string::npos;
             p = FindToken(line, verb, p + 1)) {
          // Member-call syntax only: obj.Verb( / ptr->Verb(. Declarations
          // never match (word boundary / preceding character).
          if (p == 0) continue;
          const char before = line[p - 1];
          if (before != '.' && before != '>') continue;
          std::size_t q =
              line.find_first_not_of(" \t", p + std::strlen(verb));
          if (q == std::string::npos || line[q] != '(') continue;
          Emit(f, static_cast<int>(i) + 1, kRuleDetAttribLedger,
               std::string(verb) + "() mutates the AttributionLedger from "
                   "layer '" + f.layer + "': hardware evidence may only be "
                   "recorded by the sim layer; every other layer reads the "
                   "ledger through its const accessors");
        }
      }
    }
  }

  void CheckIncludes(ParsedFile& f) {
    const LayerInfo* from = FindLayer(f.layer);
    for (const IncludeDirective& inc : f.includes) {
      if (inc.angle) continue;
      const std::size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;
      const std::string to_name = inc.target.substr(0, slash);
      const LayerInfo* to = FindLayer(to_name);
      if (to == nullptr || !IsSrcLayer(to_name)) continue;

      if (from != nullptr && IsSrcLayer(f.layer) && f.is_header &&
          to_name == "telemetry" && f.layer != "telemetry") {
        Emit(f, inc.line, kRuleHdrTelemetryFwd,
             "header includes \"" + inc.target +
                 "\"; headers outside src/telemetry must forward-declare "
                 "sds::telemetry types and include telemetry headers from the "
                 ".cpp only (PR 3 policy)");
        continue;
      }
      if (from == nullptr) continue;  // unknown tree: no DAG claim

      bool ok;
      const RestrictedLayer* restricted = FindRestricted(to_name);
      if (to_name == f.layer) {
        ok = true;
      } else if (to_name == "telemetry") {
        // Universal observability sink: any layer may include it.
        ok = true;
      } else if (restricted != nullptr) {
        ok = from->rank >= 100 ||
             RestrictedDependentAllowed(*restricted, f.layer);
      } else {
        ok = to->rank < from->rank || SiblingEdgeAllowed(f.layer, to_name);
      }
      if (!ok && restricted != nullptr) {
        Emit(f, inc.line, kRuleLayerDag,
             "include of \"" + inc.target + "\" (restricted layer " +
                 to_name + ") from layer " + f.layer + "; only {" +
                 restricted->dependents +
                 "} and the test/bench/tool trees may depend on " + to_name);
      } else if (!ok) {
        Emit(f, inc.line, kRuleLayerDag,
             "include of \"" + inc.target + "\" (layer " + to_name + ", rank " +
                 std::to_string(to->rank) + ") from layer " + f.layer +
                 " (rank " + std::to_string(from->rank) +
                 ") inverts the layer DAG common -> stats/signal -> sim -> vm "
                 "-> pcm -> {attacks,workloads,detect,fault} -> cluster -> "
                 "eval");
      }
    }
  }

  void CheckDeterminismTokens(ParsedFile& f) {
    struct Ban {
      const char* token;
      bool requires_call;  // must be followed by '('
      const char* rule;
      const char* why;
    };
    static constexpr Ban kBans[] = {
        {"rand", true, kRuleDetRand,
         "libc rand() draws from ambient global state; use sds::Rng seeded "
         "from the run config"},
        {"srand", false, kRuleDetRand,
         "seeding the global C RNG makes run order matter; use sds::Rng"},
        {"random_device", false, kRuleDetRand,
         "std::random_device is nondeterministic by definition; use sds::Rng "
         "seeded from the run config"},
        {"system_clock", false, kRuleDetClock,
         "wall-clock reads break bit-identical replays; use the tick clock "
         "(sds::TickClock) or move the timing to eval/telemetry"},
        {"steady_clock", false, kRuleDetClock,
         "wall-clock reads break bit-identical replays; use the tick clock "
         "(sds::TickClock) or move the timing to eval/telemetry"},
        {"high_resolution_clock", false, kRuleDetClock,
         "wall-clock reads break bit-identical replays; use the tick clock "
         "(sds::TickClock) or move the timing to eval/telemetry"},
        {"clock_gettime", false, kRuleDetClock,
         "wall-clock reads break bit-identical replays"},
        {"gettimeofday", false, kRuleDetClock,
         "wall-clock reads break bit-identical replays"},
    };
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      for (const Ban& ban : kBans) {
        std::size_t p = FindToken(line, ban.token);
        if (p == std::string::npos) continue;
        if (ban.requires_call) {
          std::size_t q =
              line.find_first_not_of(" \t", p + std::strlen(ban.token));
          if (q == std::string::npos || line[q] != '(') continue;
        }
        Emit(f, static_cast<int>(i) + 1, ban.rule,
             std::string(ban.token) + " in deterministic layer " + f.layer +
                 ": " + ban.why);
      }
      // Pointer printing: %p inside a string literal renders an ASLR-random
      // address into output that is diffed across runs.
      if (f.strings[i].find("%p") != std::string::npos) {
        Emit(f, static_cast<int>(i) + 1, kRuleDetPointerPrint,
             "\"%p\" in a format string in deterministic layer " + f.layer +
                 ": pointer values differ across runs and machines; print a "
                 "stable id instead");
      }
    }
  }

  // Joins f.code[line..] until parentheses opened on the first line balance
  // (bounded lookahead). Returns the joined text.
  static std::string JoinBalanced(const ParsedFile& f, std::size_t start,
                                  std::size_t open_pos) {
    std::string joined;
    int depth = 0;
    for (std::size_t i = start; i < f.code.size() && i < start + 8; ++i) {
      const std::string& line = f.code[i];
      std::size_t from = i == start ? open_pos : 0;
      joined += line.substr(from);
      for (std::size_t j = from; j < line.size(); ++j) {
        if (line[j] == '(') ++depth;
        if (line[j] == ')' && --depth == 0) return joined;
      }
      joined.push_back(' ');
    }
    return joined;
  }

  void CheckUnorderedIteration(ParsedFile& f) {
    // Pass 1: names declared with an unordered container type, file-wide.
    std::set<std::string> unordered_names;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      for (const char* container : {"unordered_map", "unordered_set"}) {
        for (std::size_t p = FindToken(f.code[i], container);
             p != std::string::npos;
             p = FindToken(f.code[i], container, p + 1)) {
          // Only declarations: the token must open a template argument list
          // (skips `#include <unordered_map>` and prose mentions).
          std::size_t cp = p + std::strlen(container);
          cp = f.code[i].find_first_not_of(" \t", cp);
          if (cp == std::string::npos || f.code[i][cp] != '<') continue;
          // Balance the template argument list (may span lines), then take
          // the following identifier as the declared name.
          std::size_t li = i;
          int depth = 0;
          bool done = false;
          std::string name;
          for (; li < f.code.size() && li < i + 8 && !done; ++li, cp = 0) {
            const std::string& l = f.code[li];
            for (std::size_t j = cp; j < l.size(); ++j) {
              if (l[j] == '<') ++depth;
              if (l[j] == '>' && --depth == 0) {
                std::size_t q = l.find_first_not_of(" \t&*", j + 1);
                while (q != std::string::npos && q < l.size() &&
                       IsWord(l[q])) {
                  name.push_back(l[q]);
                  ++q;
                }
                done = true;
                break;
              }
            }
          }
          if (!name.empty() && name != "const") unordered_names.insert(name);
        }
      }
    }

    // Pass 2: range-for whose range expression names one of them (or an
    // inline unordered expression).
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      std::size_t p = FindToken(f.code[i], "for");
      if (p == std::string::npos) continue;
      std::size_t open = f.code[i].find('(', p);
      if (open == std::string::npos) continue;
      const std::string body = JoinBalanced(f, i, open);
      // The range-for ':' — skip "::" scope operators.
      std::size_t colon = std::string::npos;
      for (std::size_t j = 1; j + 1 < body.size(); ++j) {
        if (body[j] == ':' && body[j - 1] != ':' && body[j + 1] != ':') {
          colon = j;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      const std::string range = body.substr(colon + 1);
      bool hit = range.find("unordered_map") != std::string::npos ||
                 range.find("unordered_set") != std::string::npos;
      if (!hit) {
        for (const std::string& name : unordered_names) {
          if (HasToken(range, name)) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        Emit(f, static_cast<int>(i) + 1, kRuleDetUnorderedIter,
             "range-for over an unordered container in deterministic layer " +
                 f.layer +
                 ": iteration order is implementation-defined and varies with "
                 "rehashing; iterate a sorted view or switch to std::map/set");
      }
    }
  }

  void CheckPragmaOnce(ParsedFile& f) {
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string t = Trimmed(f.code[i]);
      if (t.empty()) continue;
      if (t == "#pragma once") return;
      Emit(f, static_cast<int>(i) + 1, kRuleHdrPragmaOnce,
           "header's first code line must be #pragma once");
      return;
    }
    if (!f.raw.empty()) {
      Emit(f, 1, kRuleHdrPragmaOnce,
           "header's first code line must be #pragma once");
    }
  }

  // Transitive closure of <angle> includes reachable through the project
  // include graph (quoted includes resolved under <include_root>/src).
  const std::set<std::string>& AngleClosure(const std::string& path) {
    auto it = closures_.find(path);
    if (it != closures_.end()) return it->second;
    // Insert first to break include cycles.
    auto& closure = closures_[path];
    ParsedFile* f = Load(path);
    if (f == nullptr) return closure;
    std::vector<std::string> nested;
    for (const IncludeDirective& inc : f->includes) {
      if (inc.angle) {
        closure.insert(inc.target);
      } else if (ParsedFile* dep = Resolve(inc.target)) {
        nested.push_back(dep->path);
      }
    }
    for (const std::string& dep : nested) {
      const std::set<std::string>& sub = AngleClosure(dep);
      closure.insert(sub.begin(), sub.end());
    }
    return closure;
  }

  void CheckSelfContained(ParsedFile& f) {
    const std::set<std::string>& closure = AngleClosure(f.path);
    std::set<std::string> reported;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& line = f.code[i];
      for (std::size_t p = line.find("std::"); p != std::string::npos;
           p = line.find("std::", p + 5)) {
        if (p > 0 && IsWord(line[p - 1])) continue;
        std::size_t q = p + 5;
        std::string ident;
        while (q < line.size() && IsWord(line[q])) ident.push_back(line[q++]);
        for (const StdProvider& sp : kStdProviders) {
          if (ident != sp.ident) continue;
          bool satisfied = false;
          std::string providers = sp.providers;
          std::stringstream ss(providers);
          std::string provider;
          while (std::getline(ss, provider, ',')) {
            if (closure.count(provider) != 0) {
              satisfied = true;
              break;
            }
          }
          if (!satisfied && reported.insert(ident).second) {
            Emit(f, static_cast<int>(i) + 1, kRuleHdrSelfContained,
                 "header uses std::" + ident + " but its include closure "
                 "never pulls in <" + std::string(sp.providers).substr(
                     0, std::string(sp.providers).find(',')) +
                 ">; include it directly so the header stays self-contained");
          }
          break;
        }
      }
    }
  }

  const Options& options_;
  std::vector<std::string> scan_list_;
  std::map<std::string, ParsedFile> files_;
  std::map<std::string, std::set<std::string>> closures_;
  Result result_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

int LayerRank(const std::string& layer) {
  const LayerInfo* l = FindLayer(layer);
  return l == nullptr ? -1 : l->rank;
}

bool IsDeterministicLayer(const std::string& layer) {
  const LayerInfo* l = FindLayer(layer);
  return l != nullptr && l->deterministic;
}

std::string LayerOfPath(const std::string& path) {
  const fs::path p(path);
  std::vector<std::string> parts;
  for (const auto& comp : p) parts.push_back(comp.generic_string());
  // The src/<layer>/ pattern wins anywhere in the path (the lint fixture
  // tree nests a src/ mirror under tests/), then the top-level trees.
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src" && i + 1 < parts.size() && IsSrcLayer(parts[i + 1]))
      return parts[i + 1];
  }
  for (const std::string& part : parts) {
    const LayerInfo* l = FindLayer(part);
    if (l != nullptr && l->rank >= 100) return part;
  }
  return "";
}

Result Run(const Options& options) { return Analyzer(options).Run(); }

std::string FormatText(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

std::string ToJson(const Result& result) {
  std::string out = "{\"files_scanned\":" +
                    std::to_string(result.files_scanned) +
                    ",\"diagnostics\":[";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    if (i != 0) out += ",";
    out += "{\"file\":\"" + JsonEscape(d.file) +
           "\",\"line\":" + std::to_string(d.line) + ",\"rule\":\"" +
           JsonEscape(d.rule) + "\",\"message\":\"" + JsonEscape(d.message) +
           "\"}";
  }
  out += "],\"suppressions\":[";
  for (std::size_t i = 0; i < result.suppressions.size(); ++i) {
    const Suppression& s = result.suppressions[i];
    if (i != 0) out += ",";
    out += "{\"file\":\"" + JsonEscape(s.file) +
           "\",\"line\":" + std::to_string(s.line) + ",\"rules\":\"" +
           JsonEscape(s.rules) + "\",\"used\":" + (s.used ? "true" : "false") +
           "}";
  }
  out += "]}";
  return out;
}

}  // namespace sdslint
